#include "util/random.h"

#include <algorithm>
#include <unordered_set>

namespace aqo {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& word : state_) word = SplitMix64(&s);
  // xoshiro must not start in the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  AQO_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = ~0ULL - ~0ULL % range;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::UniformReal() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * UniformReal();
}

bool Rng::Bernoulli(double p) { return UniformReal() < p; }

uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  // Two SplitMix64 rounds over a combination of the pair; the golden-ratio
  // offset keeps (seed, 0) distinct from (seed) used directly.
  uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL);
  uint64_t first = SplitMix64(&x);
  return first ^ SplitMix64(&x);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  AQO_CHECK(0 <= k && k <= n);
  // Partial Fisher-Yates over an index vector; O(n) space, fine for the
  // graph sizes this library handles.
  std::vector<int> idx(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  for (int i = 0; i < k; ++i) {
    int j = static_cast<int>(UniformInt(i, n - 1));
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(k));
  return idx;
}

}  // namespace aqo
