#include "util/cancellation.h"

#include "obs/metrics.h"

namespace aqo {

const char* PlanStatusName(PlanStatus status) {
  switch (status) {
    case PlanStatus::kComplete:
      return "complete";
    case PlanStatus::kBudgetExhausted:
      return "budget_exhausted";
    case PlanStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case PlanStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

RunGuard::RunGuard(const Budget& budget, CancelToken* token)
    : max_evaluations_(budget.max_evaluations), token_(token) {
  if (budget.deadline_ms > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(budget.deadline_ms));
  }
  // A token with nothing armed (no deadline, no stop request) leaves the
  // guard inert so unbudgeted runs stay bit-identical to a null token.
  bool token_active = token_ != nullptr && token_->armed();
  active_ = max_evaluations_ > 0 || has_deadline_ || token_active;
  if (has_deadline_ || token_active) {
    static obs::Counter& armed =
        obs::Registry::Get().GetCounter("qo.deadline.armed");
    armed.Increment();
  }
}

bool RunGuard::ShouldStopSlow(uint64_t evaluations) {
  if (status_ != PlanStatus::kComplete) return true;
  // Deterministic cap first: it must trip at the same evaluation count
  // regardless of how fast the wall clock is moving.
  if (max_evaluations_ != 0 && evaluations >= max_evaluations_) {
    Trip(PlanStatus::kBudgetExhausted);
    return true;
  }
  if (!has_deadline_ && token_ == nullptr) return false;
  // Poll the clock (and the shared token) on an evaluation stride so the
  // per-check cost stays a compare, however many evaluations one check
  // covers.
  if (evaluations < next_poll_evals_) return false;
  next_poll_evals_ = evaluations + kDeadlinePollStride;
  if (token_ != nullptr && token_->Expired()) {
    Trip(PlanStatus::kDeadlineExceeded);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    Trip(PlanStatus::kDeadlineExceeded);
    return true;
  }
  return false;
}

void RunGuard::Trip(PlanStatus status) {
  status_ = status;
  if (status == PlanStatus::kBudgetExhausted) {
    static obs::Counter& budget =
        obs::Registry::Get().GetCounter("qo.cancel.budget_exhausted");
    budget.Increment();
  } else if (status == PlanStatus::kDeadlineExceeded) {
    static obs::Counter& deadline =
        obs::Registry::Get().GetCounter("qo.cancel.deadline_exceeded");
    deadline.Increment();
  }
}

}  // namespace aqo
