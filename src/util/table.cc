#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace aqo {

void TextTable::AddRow(std::vector<std::string> row) {
  if (!header_.empty()) {
    AQO_CHECK_EQ(row.size(), header_.size());
  }
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_rule = [&]() {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  print_rule();
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string FormatLog2(double log2_value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "2^%.*g", digits, log2_value);
  return buf;
}

}  // namespace aqo
