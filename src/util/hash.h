#ifndef AQO_UTIL_HASH_H_
#define AQO_UTIL_HASH_H_

// Deterministic 64/128-bit hashing for structural fingerprints (see
// qo/fingerprint.h). Not cryptographic: the mixer is the SplitMix64
// finalizer, which is bijective on 64-bit words and passes avalanche
// tests — adequate for content-addressed cache keys, where a collision
// costs a wrong cache hit. The 128-bit digest keeps the collision
// probability negligible at any realistic cache population (~2^-64 per
// pair).
//
// Everything here is pure and platform-independent: no seeding from the
// environment, no pointer values, doubles hashed by bit pattern. Equal
// inputs hash equally across runs, processes, and machines, which is what
// lets fingerprints serve as stable cache keys and appear in run logs.

#include <bit>
#include <cstdint>
#include <functional>

namespace aqo {

// SplitMix64 finalizer: bijective avalanche mixer.
inline constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Hash128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const Hash128& a, const Hash128& b) = default;
};

// For unordered containers keyed by Hash128. The value is already mixed;
// passing `lo` through is enough.
struct Hash128Hasher {
  size_t operator()(const Hash128& h) const {
    return static_cast<size_t>(h.lo);
  }
};

// Order-sensitive accumulator: feed a canonical serialization word by
// word, then take the 128-bit digest. Two independent 64-bit chains with
// position-dependent mixing, so permuted inputs digest differently.
class HashAccumulator {
 public:
  explicit HashAccumulator(uint64_t seed = 0) {
    lo_ = Mix64(seed ^ 0x6a09e667f3bcc908ULL);
    hi_ = Mix64(seed ^ 0xbb67ae8584caa73bULL);
  }

  void Add(uint64_t word) {
    ++length_;
    lo_ = Mix64(lo_ ^ word);
    hi_ = Mix64(hi_ + (word ^ Mix64(length_)));
  }

  // Hashes the exact bit pattern (so -0.0 != +0.0 and every NaN payload is
  // distinct — fingerprints must be at least as fine as bit equality).
  void AddDouble(double v) { Add(std::bit_cast<uint64_t>(v)); }

  Hash128 Digest() const {
    // Cross-mix the chains so neither half is independent of the other.
    uint64_t a = Mix64(lo_ ^ Mix64(hi_ ^ length_));
    uint64_t b = Mix64(hi_ ^ Mix64(lo_ + length_));
    return Hash128{a, b};
  }

 private:
  uint64_t lo_;
  uint64_t hi_;
  uint64_t length_ = 0;
};

}  // namespace aqo

#endif  // AQO_UTIL_HASH_H_
