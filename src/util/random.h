#ifndef AQO_UTIL_RANDOM_H_
#define AQO_UTIL_RANDOM_H_

// Deterministic pseudo-random generation for instance generators, local
// search optimizers, and property tests.
//
// Rng wraps xoshiro256** seeded through SplitMix64 and satisfies
// std::uniform_random_bit_generator, so it plugs into <random> and
// std::shuffle. All generators in this library take an explicit Rng so every
// experiment is reproducible from its seed.

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace aqo {

class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  uint64_t Next();

  // Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double UniformReal();

  // Uniform in [lo, hi).
  double UniformReal(double lo, double hi);

  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // k distinct values from {0, ..., n-1}, in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t state_[4];
};

// Derives the seed of an independent substream `stream` of `seed`
// (SplitMix64 over the pair). Parallel sweeps give every grid cell its own
// Rng(MixSeed(base_seed, cell_index)) so results do not depend on which
// thread runs which cell — or on the thread count at all.
uint64_t MixSeed(uint64_t seed, uint64_t stream);

}  // namespace aqo

#endif  // AQO_UTIL_RANDOM_H_
