#ifndef AQO_UTIL_LOG_DOUBLE_H_
#define AQO_UTIL_LOG_DOUBLE_H_

// LogDouble: a non-negative real number stored in base-2 log domain.
//
// The hardness constructions of Chatterji et al. (PODS 2002) manipulate
// relation sizes and plan costs of magnitude alpha^{Theta(n^2)} with
// alpha = 4^{n^{1/delta}} — far beyond any machine float. Every inequality
// in the paper's lemmas compares such quantities, so we carry log2(x) as a
// double:
//   * multiplication / division / powers are exact float operations on the
//     exponent;
//   * addition / subtraction use log-sum-exp and are accurate to ~1 ulp of
//     the exponent, which is all the lemma comparisons need (they compare
//     quantities separated by factors >= alpha).
//
// Zero is representable (log2 = -infinity). Negative values are not; the
// cost models never produce them, and operations that would (subtracting a
// larger value) abort via AQO_CHECK.

#include <cmath>
#include <algorithm>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

#include "util/check.h"

namespace aqo {

class LogDouble {
 public:
  // Default-constructs zero.
  constexpr LogDouble() : log2_(-std::numeric_limits<double>::infinity()) {}

  // Conversion from a linear-domain value. v must be finite and >= 0.
  static LogDouble FromLinear(double v) {
    AQO_CHECK(v >= 0.0 && std::isfinite(v)) << "v=" << v;
    LogDouble r;
    if (v > 0.0) r.log2_ = std::log2(v);
    return r;
  }

  // Constructs the value 2^l. l may be any double; -inf yields zero.
  static LogDouble FromLog2(double l) {
    AQO_CHECK(!std::isnan(l));
    AQO_CHECK(l != std::numeric_limits<double>::infinity());
    LogDouble r;
    r.log2_ = l;
    return r;
  }

  static constexpr LogDouble Zero() { return LogDouble(); }
  static LogDouble One() { return FromLog2(0.0); }

  bool IsZero() const { return std::isinf(log2_) && log2_ < 0; }

  // log2 of the value; -infinity for zero.
  double Log2() const { return log2_; }

  // Natural log of the value; -infinity for zero.
  double Ln() const { return log2_ * kLn2; }

  // Converts back to linear domain; overflows to +inf for huge values.
  double ToLinear() const { return std::exp2(log2_); }

  LogDouble operator*(LogDouble o) const {
    if (IsZero() || o.IsZero()) return Zero();
    return FromLog2(log2_ + o.log2_);
  }

  LogDouble operator/(LogDouble o) const {
    AQO_CHECK(!o.IsZero()) << "division by zero";
    if (IsZero()) return Zero();
    return FromLog2(log2_ - o.log2_);
  }

  LogDouble operator+(LogDouble o) const {
    if (IsZero()) return o;
    if (o.IsZero()) return *this;
    // log2(2^a + 2^b) = max + log2(1 + 2^(min-max)).
    double hi = log2_, lo = o.log2_;
    if (hi < lo) std::swap(hi, lo);
    return FromLog2(hi + std::log1p(std::exp2(lo - hi)) / kLn2);
  }

  // Subtraction; requires *this >= o (up to exponent rounding). If the two
  // operands are equal to within float precision the result is zero.
  LogDouble operator-(LogDouble o) const {
    if (o.IsZero()) return *this;
    AQO_CHECK(log2_ >= o.log2_) << "negative result: 2^" << log2_ << " - 2^"
                                << o.log2_;
    double d = o.log2_ - log2_;  // <= 0
    double factor = -std::expm1(d * kLn2);  // 1 - 2^d in [0, 1)
    if (factor <= 0.0) return Zero();
    return FromLog2(log2_ + std::log2(factor));
  }

  LogDouble& operator*=(LogDouble o) { return *this = *this * o; }
  LogDouble& operator/=(LogDouble o) { return *this = *this / o; }
  LogDouble& operator+=(LogDouble o) { return *this = *this + o; }
  LogDouble& operator-=(LogDouble o) { return *this = *this - o; }

  // Raises to an arbitrary real power. Pow(0) == 1 even for zero input
  // (empty product convention).
  LogDouble Pow(double e) const {
    if (e == 0.0) return One();
    if (IsZero()) {
      AQO_CHECK(e > 0.0) << "0 to a negative power";
      return Zero();
    }
    return FromLog2(log2_ * e);
  }

  LogDouble Sqrt() const { return Pow(0.5); }

  // Comparison is exact on the stored exponents.
  friend bool operator==(LogDouble a, LogDouble b) { return a.log2_ == b.log2_; }
  friend std::partial_ordering operator<=>(LogDouble a, LogDouble b) {
    return a.log2_ <=> b.log2_;
  }

  // True when the two values agree to within `rel_log2_tol` in the exponent,
  // i.e. a/b is within 2^{+-rel_log2_tol}. Handy for property tests.
  bool ApproxEquals(LogDouble o, double rel_log2_tol = 1e-9) const {
    if (IsZero() && o.IsZero()) return true;
    if (IsZero() || o.IsZero()) return false;
    double scale = std::max({1.0, std::fabs(log2_), std::fabs(o.log2_)});
    return std::fabs(log2_ - o.log2_) <= rel_log2_tol * scale;
  }

 private:
  static constexpr double kLn2 = 0.6931471805599453;

  double log2_;
};

inline LogDouble MaxOf(LogDouble a, LogDouble b) { return a < b ? b : a; }
inline LogDouble MinOf(LogDouble a, LogDouble b) { return a < b ? a : b; }

// Prints as a linear value when it fits comfortably in double range,
// otherwise as "2^<exponent>".
std::ostream& operator<<(std::ostream& os, LogDouble v);

}  // namespace aqo

#endif  // AQO_UTIL_LOG_DOUBLE_H_
