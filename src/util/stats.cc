#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace aqo {

void StatAccumulator::Add(double x) {
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::Stddev() const { return std::sqrt(Variance()); }

double SampleSet::Percentile(double p) const {
  AQO_CHECK(!samples_.empty());
  AQO_CHECK(0.0 <= p && p <= 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

LineFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys) {
  AQO_CHECK(xs.size() == ys.size());
  AQO_CHECK(xs.size() >= 2);
  double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LineFit fit;
  double denom = n * sxx - sx * sx;
  AQO_CHECK(denom != 0.0) << "degenerate x values";
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r_squared = 1.0;
  } else {
    double ss_res = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

}  // namespace aqo
