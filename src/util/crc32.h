#ifndef AQO_UTIL_CRC32_H_
#define AQO_UTIL_CRC32_H_

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/gzip checksum) for
// integrity-checking persisted records (qo/persist.h). Software
// table-driven implementation: deterministic and platform-independent, no
// hardware intrinsics, so checksums written on one machine verify on any
// other. This is corruption detection, not authentication — a CRC catches
// torn writes, bit rot, and truncation, never an adversary.

#include <cstddef>
#include <cstdint>

namespace aqo {

// CRC-32 of `data[0..len)`, with the conventional ~0 pre/post-conditioning
// (Crc32("") == 0; matches zlib's crc32()).
uint32_t Crc32(const void* data, size_t len);

// Incremental form: feed `crc` the running value (start from 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

}  // namespace aqo

#endif  // AQO_UTIL_CRC32_H_
