#ifndef AQO_UTIL_STATS_H_
#define AQO_UTIL_STATS_H_

// Small statistics helpers used by the benchmark harness: streaming
// mean/variance accumulation, percentiles over retained samples, and a
// least-squares line fit used to estimate empirical growth exponents.

#include <cstddef>
#include <limits>
#include <vector>

namespace aqo {

// Streaming accumulator (Welford) for count/mean/stddev/min/max.
class StatAccumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // +inf / -inf respectively while empty, so an accumulator that never saw
  // a sample cannot masquerade as one that saw 0.0 (e.g. all-negative
  // streams must report a negative max).
  double min() const { return min_; }
  double max() const { return max_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double Variance() const;
  double Stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Retains samples; supports exact percentiles. Percentile sorts the
// retained samples in place the first time it is called and reuses that
// order until the next Add, so a run of percentile reads (p50/p90/p99 of
// the same set) costs one sort, not one per read.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  size_t size() const { return samples_.size(); }
  // p in [0, 100]; linear interpolation between order statistics.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

 private:
  // Sample insertion order is not part of the interface, so Percentile
  // may reorder lazily behind const.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

// Ordinary least squares y = slope*x + intercept. Requires >= 2 points.
LineFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace aqo

#endif  // AQO_UTIL_STATS_H_
