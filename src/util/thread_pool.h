#ifndef AQO_UTIL_THREAD_POOL_H_
#define AQO_UTIL_THREAD_POOL_H_

// Fixed-size worker pool with a *deterministic* ParallelFor.
//
// The pool exists to make sweeps and the subset DP scale with cores while
// keeping every observable result a pure function of the inputs, never of
// the thread count or of scheduling:
//
//   * Work is split by static chunking: ParallelFor over `count` items
//     always produces num_threads() contiguous chunks whose boundaries
//     depend only on (count, num_threads()) — see ChunkOf. There is no
//     work stealing and no dynamic rebalancing, so any per-chunk
//     accumulation (local counters, local best tables) sees a fixed,
//     reproducible item order.
//   * Chunk `t` of every job runs on the same worker (chunk 0 on the
//     submitting thread), so thread-local state such as the obs::Profiler
//     span tree stays internally consistent per chunk.
//   * A pool constructed with threads == 1 spawns no workers at all and
//     runs every job inline on the calling thread — byte-for-byte the
//     serial behavior.
//
// Exceptions thrown by the body are caught per chunk and the one from the
// lowest chunk index is rethrown on the submitting thread after the whole
// job has drained (so the exception choice is deterministic too).
//
// Jobs do not nest: a ParallelFor issued while another job is running on
// the same pool (e.g. a parallel DP inside a parallel sweep cell) detects
// the situation and degrades to an inline serial loop instead of
// deadlocking. See docs/parallelism.md for the full determinism contract.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aqo {

class ThreadPool {
 public:
  // `threads` >= 1; 0 means HardwareConcurrency(). The pool spawns
  // threads - 1 workers (the submitting thread always executes chunk 0).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return threads_; }

  // std::thread::hardware_concurrency(), clamped to >= 1.
  static int HardwareConcurrency();

  // The half-open item range [begin, end) that chunk `t` of `threads`
  // covers for a job of `count` items: a balanced contiguous split, the
  // first count % threads chunks one item larger.
  struct Range {
    size_t begin;
    size_t end;
  };
  static Range ChunkOf(size_t count, int threads, int t);

  // Runs body(i) for every i in [0, count), split into num_threads()
  // static chunks. Blocks until all chunks finished; rethrows the
  // lowest-chunk exception if any body threw.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  // Like ParallelFor but hands each chunk to `chunk` whole as
  // (chunk_index, begin, end), for bodies that keep per-chunk accumulators
  // (local counters, local best tables) merged deterministically by the
  // caller afterwards. Chunks with an empty range are not invoked.
  using ChunkFn = std::function<void(int chunk, size_t begin, size_t end)>;
  void ParallelForChunks(size_t count, const ChunkFn& chunk);

 private:
  void WorkerLoop(int chunk_index);
  void RunInline(size_t count, const ChunkFn& chunk);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  uint64_t generation_ = 0;          // bumped once per submitted job
  const ChunkFn* job_ = nullptr;     // valid while a job is in flight
  size_t job_count_ = 0;
  int pending_ = 0;                  // workers that have not finished yet
  std::vector<std::exception_ptr> errors_;  // one slot per chunk

  // Set while a job is in flight; a ParallelFor arriving meanwhile (nested
  // call from a chunk body, or a second external submitter) runs inline.
  std::atomic<bool> busy_{false};
};

}  // namespace aqo

#endif  // AQO_UTIL_THREAD_POOL_H_
