#ifndef AQO_UTIL_TABLE_H_
#define AQO_UTIL_TABLE_H_

// TextTable: aligned ASCII table output for the experiment harness. Every
// bench binary prints its results through this so EXPERIMENTS.md rows can be
// pasted directly from bench output.

#include <iosfwd>
#include <string>
#include <vector>

namespace aqo {

class TextTable {
 public:
  void SetTitle(std::string title) { title_ = std::move(title); }
  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }
  void AddRow(std::vector<std::string> row);

  size_t NumRows() const { return rows_.size(); }

  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `v` with `digits` significant digits (general format).
std::string FormatDouble(double v, int digits = 4);

// Formats a huge value given as a log2 exponent: "2^123.4".
std::string FormatLog2(double log2_value, int digits = 5);

}  // namespace aqo

#endif  // AQO_UTIL_TABLE_H_
