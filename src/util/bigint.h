#ifndef AQO_UTIL_BIGINT_H_
#define AQO_UTIL_BIGINT_H_

// BigInt: arbitrary-precision signed integers.
//
// The Appendix A/B reductions (PARTITION -> SPPCS -> SQO-CP) construct exact
// integers such as J = (4*ks*prod p_i)^2 and n_i = (m+1)*n0*J^3*c_i whose
// many-one property depends on exact arithmetic; machine integers overflow
// for even tiny source instances. BigInt provides the exact substrate.
//
// Representation: sign + little-endian magnitude in 64-bit limbs, kept
// canonical (no leading zero limbs; zero has an empty limb vector and
// non-negative sign). Multiplication is schoolbook (the reduction numbers
// stay in the thousands of bits, where schoolbook is fast); division is
// shift-subtract long division, adequate off the hot path.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace aqo {

class BigInt {
 public:
  // Zero.
  BigInt() = default;

  // Implicit conversion from machine integers is intentional: BigInt is a
  // drop-in numeric type and mixed arithmetic (x * 3 + 1) reads naturally.
  BigInt(int64_t v);  // NOLINT(google-explicit-constructor)
  BigInt(int v) : BigInt(static_cast<int64_t>(v)) {}  // NOLINT

  static BigInt FromUint64(uint64_t v);
  // Parses an optionally '-'-prefixed decimal string; aborts on bad input.
  static BigInt FromString(std::string_view s);

  bool IsZero() const { return limbs_.empty(); }
  // -1, 0, or +1.
  int Sign() const { return limbs_.empty() ? 0 : (negative_ ? -1 : 1); }

  // Number of bits in the magnitude; 0 for zero.
  int BitLength() const;

  // Magnitude as double (sign applied); +/-inf when out of range.
  double ToDouble() const;
  // log2 of the magnitude (sign ignored); requires non-zero.
  double Log2Abs() const;

  std::string ToString() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  // Truncated division (C++ semantics: quotient rounds toward zero, the
  // remainder has the dividend's sign). Aborts on division by zero.
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }
  BigInt& operator/=(const BigInt& o) { return *this = *this / o; }
  BigInt& operator%=(const BigInt& o) { return *this = *this % o; }

  // Shifts operate on the magnitude; sign is preserved. Shift counts are in
  // bits and must be >= 0.
  BigInt operator<<(int bits) const;
  BigInt operator>>(int bits) const;

  // this^e by repeated squaring; 0^0 == 1.
  BigInt Pow(uint64_t e) const;

  friend bool operator==(const BigInt& a, const BigInt& b) = default;
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  // Computes quotient and remainder in one pass (same semantics as / and %).
  static void DivMod(const BigInt& num, const BigInt& den, BigInt* quot,
                     BigInt* rem);

 private:
  void Canonicalize();
  static std::strong_ordering CompareMagnitude(const BigInt& a,
                                               const BigInt& b);
  static std::vector<uint64_t> AddMagnitude(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint64_t> SubMagnitude(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b);

  bool negative_ = false;
  std::vector<uint64_t> limbs_;  // little-endian magnitude
};

std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace aqo

#endif  // AQO_UTIL_BIGINT_H_
