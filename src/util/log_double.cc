#include "util/log_double.h"

#include <cmath>
#include <ostream>

namespace aqo {

std::ostream& operator<<(std::ostream& os, LogDouble v) {
  if (v.IsZero()) return os << "0";
  double l = v.Log2();
  if (std::fabs(l) <= 40.0) return os << v.ToLinear();
  return os << "2^" << l;
}

}  // namespace aqo
