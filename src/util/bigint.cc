#include "util/bigint.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "util/check.h"

namespace aqo {

namespace {

// Multiplies a magnitude by a small constant and adds a small constant, in
// place. Used by the decimal parser.
void MulAddSmall(std::vector<uint64_t>* limbs, uint64_t mul, uint64_t add) {
  unsigned __int128 carry = add;
  for (uint64_t& limb : *limbs) {
    unsigned __int128 cur = static_cast<unsigned __int128>(limb) * mul + carry;
    limb = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  while (carry != 0) {
    limbs->push_back(static_cast<uint64_t>(carry));
    carry >>= 64;
  }
}

// Divides a magnitude by a small constant in place, returning the remainder.
uint64_t DivModSmall(std::vector<uint64_t>* limbs, uint64_t div) {
  unsigned __int128 rem = 0;
  for (size_t i = limbs->size(); i-- > 0;) {
    unsigned __int128 cur = (rem << 64) | (*limbs)[i];
    (*limbs)[i] = static_cast<uint64_t>(cur / div);
    rem = cur % div;
  }
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
  return static_cast<uint64_t>(rem);
}

}  // namespace

BigInt::BigInt(int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  // Careful with INT64_MIN: negate in unsigned domain.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  limbs_.push_back(mag);
}

BigInt BigInt::FromUint64(uint64_t v) {
  BigInt r;
  if (v != 0) r.limbs_.push_back(v);
  return r;
}

BigInt BigInt::FromString(std::string_view s) {
  AQO_CHECK(!s.empty()) << "empty BigInt string";
  bool neg = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  AQO_CHECK(i < s.size()) << "BigInt string has no digits";
  BigInt r;
  for (; i < s.size(); ++i) {
    char c = s[i];
    AQO_CHECK(c >= '0' && c <= '9') << "bad digit '" << c << "'";
    MulAddSmall(&r.limbs_, 10, static_cast<uint64_t>(c - '0'));
  }
  r.negative_ = neg;
  r.Canonicalize();
  return r;
}

void BigInt::Canonicalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  int top = 64 - std::countl_zero(limbs_.back());
  return static_cast<int>(limbs_.size() - 1) * 64 + top;
}

double BigInt::ToDouble() const {
  double r = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    r = r * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -r : r;
}

double BigInt::Log2Abs() const {
  AQO_CHECK(!IsZero()) << "log2 of zero";
  // Use the top (up to) 128 bits for a precise mantissa.
  size_t n = limbs_.size();
  double top = static_cast<double>(limbs_[n - 1]);
  double next = n >= 2 ? static_cast<double>(limbs_[n - 2]) : 0.0;
  double mant = top + next / 18446744073709551616.0;
  return std::log2(mant) + 64.0 * static_cast<double>(n - 1);
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  std::vector<uint64_t> mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    uint64_t chunk = DivModSmall(&mag, 1000000000ULL);
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.IsZero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::Abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

std::strong_ordering BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() <=> b.limbs_.size();
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_)
    return a.negative_ ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  auto mag = BigInt::CompareMagnitude(a, b);
  return a.negative_ ? 0 <=> mag : mag;
}

std::vector<uint64_t> BigInt::AddMagnitude(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  const std::vector<uint64_t>& lo = a.size() < b.size() ? a : b;
  const std::vector<uint64_t>& hi = a.size() < b.size() ? b : a;
  std::vector<uint64_t> r(hi.size());
  unsigned __int128 carry = 0;
  for (size_t i = 0; i < hi.size(); ++i) {
    unsigned __int128 cur = carry + hi[i] + (i < lo.size() ? lo[i] : 0);
    r[i] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  if (carry != 0) r.push_back(static_cast<uint64_t>(carry));
  return r;
}

std::vector<uint64_t> BigInt::SubMagnitude(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  std::vector<uint64_t> r(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    unsigned __int128 sub =
        static_cast<unsigned __int128>(i < b.size() ? b[i] : 0) +
        static_cast<unsigned __int128>(borrow);
    if (static_cast<unsigned __int128>(a[i]) >= sub) {
      r[i] = static_cast<uint64_t>(a[i] - static_cast<uint64_t>(sub));
      borrow = 0;
    } else {
      unsigned __int128 cur =
          (static_cast<unsigned __int128>(1) << 64) + a[i] - sub;
      r[i] = static_cast<uint64_t>(cur);
      borrow = 1;
    }
  }
  AQO_CHECK(borrow == 0) << "SubMagnitude requires |a| >= |b|";
  return r;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt r;
  if (negative_ == o.negative_) {
    r.limbs_ = AddMagnitude(limbs_, o.limbs_);
    r.negative_ = negative_;
  } else {
    auto cmp = CompareMagnitude(*this, o);
    if (cmp == std::strong_ordering::equal) return BigInt();
    if (cmp == std::strong_ordering::greater) {
      r.limbs_ = SubMagnitude(limbs_, o.limbs_);
      r.negative_ = negative_;
    } else {
      r.limbs_ = SubMagnitude(o.limbs_, limbs_);
      r.negative_ = o.negative_;
    }
  }
  r.Canonicalize();
  return r;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

namespace {

using Limbs = std::vector<uint64_t>;

// Karatsuba pays off once both operands have this many limbs.
constexpr size_t kKaratsubaThreshold = 24;

void TrimLimbs(Limbs* v) {
  while (!v->empty() && v->back() == 0) v->pop_back();
}

Limbs SchoolbookMul(const Limbs& a, const Limbs& b) {
  if (a.empty() || b.empty()) return {};
  Limbs r(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    unsigned __int128 carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(a[i]) * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      unsigned __int128 cur = carry + r[k];
      r[k] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  TrimLimbs(&r);
  return r;
}

Limbs AddLimbs(const Limbs& a, const Limbs& b) {
  const Limbs& lo = a.size() < b.size() ? a : b;
  const Limbs& hi = a.size() < b.size() ? b : a;
  Limbs r(hi.size());
  unsigned __int128 carry = 0;
  for (size_t i = 0; i < hi.size(); ++i) {
    unsigned __int128 cur = carry + hi[i] + (i < lo.size() ? lo[i] : 0);
    r[i] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  if (carry != 0) r.push_back(static_cast<uint64_t>(carry));
  return r;
}

// r -= b; requires r >= b as magnitudes.
void SubLimbsInPlace(Limbs* r, const Limbs& b) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < r->size(); ++i) {
    unsigned __int128 sub =
        static_cast<unsigned __int128>(i < b.size() ? b[i] : 0) + borrow;
    if (static_cast<unsigned __int128>((*r)[i]) >= sub) {
      (*r)[i] -= static_cast<uint64_t>(sub);
      borrow = 0;
    } else {
      (*r)[i] = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(1) << 64) + (*r)[i] - sub);
      borrow = 1;
    }
  }
  AQO_CHECK(borrow == 0) << "Karatsuba middle term underflow";
  TrimLimbs(r);
}

// r += b << (64 * shift).
void AddShiftedInPlace(Limbs* r, const Limbs& b, size_t shift) {
  if (r->size() < b.size() + shift) r->resize(b.size() + shift, 0);
  unsigned __int128 carry = 0;
  size_t i = 0;
  for (; i < b.size(); ++i) {
    unsigned __int128 cur = carry + (*r)[i + shift] + b[i];
    (*r)[i + shift] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  while (carry != 0) {
    if (i + shift >= r->size()) r->push_back(0);
    unsigned __int128 cur = carry + (*r)[i + shift];
    (*r)[i + shift] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
    ++i;
  }
}

Limbs KaratsubaMul(const Limbs& a, const Limbs& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return SchoolbookMul(a, b);
  }
  size_t h = std::max(a.size(), b.size()) / 2;
  Limbs a0(a.begin(), a.begin() + static_cast<int64_t>(std::min(h, a.size())));
  Limbs a1(a.begin() + static_cast<int64_t>(std::min(h, a.size())), a.end());
  Limbs b0(b.begin(), b.begin() + static_cast<int64_t>(std::min(h, b.size())));
  Limbs b1(b.begin() + static_cast<int64_t>(std::min(h, b.size())), b.end());
  TrimLimbs(&a0);
  TrimLimbs(&b0);

  Limbs z0 = KaratsubaMul(a0, b0);
  Limbs z2 = KaratsubaMul(a1, b1);
  Limbs z1 = KaratsubaMul(AddLimbs(a0, a1), AddLimbs(b0, b1));
  SubLimbsInPlace(&z1, z0);
  SubLimbsInPlace(&z1, z2);

  Limbs r = z0;
  AddShiftedInPlace(&r, z1, h);
  AddShiftedInPlace(&r, z2, 2 * h);
  TrimLimbs(&r);
  return r;
}

}  // namespace

BigInt BigInt::operator*(const BigInt& o) const {
  if (IsZero() || o.IsZero()) return BigInt();
  BigInt r;
  r.limbs_ = KaratsubaMul(limbs_, o.limbs_);
  r.negative_ = negative_ != o.negative_;
  r.Canonicalize();
  return r;
}

BigInt BigInt::operator<<(int bits) const {
  AQO_CHECK(bits >= 0);
  if (IsZero() || bits == 0) return *this;
  int limb_shift = bits / 64;
  int bit_shift = bits % 64;
  BigInt r;
  r.negative_ = negative_;
  r.limbs_.assign(limbs_.size() + static_cast<size_t>(limb_shift) + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    size_t pos = i + static_cast<size_t>(limb_shift);
    r.limbs_[pos] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) r.limbs_[pos + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  r.Canonicalize();
  return r;
}

BigInt BigInt::operator>>(int bits) const {
  AQO_CHECK(bits >= 0);
  if (IsZero() || bits == 0) return *this;
  int limb_shift = bits / 64;
  int bit_shift = bits % 64;
  if (static_cast<size_t>(limb_shift) >= limbs_.size()) return BigInt();
  BigInt r;
  r.negative_ = negative_;
  r.limbs_.assign(limbs_.size() - static_cast<size_t>(limb_shift), 0);
  for (size_t i = 0; i < r.limbs_.size(); ++i) {
    size_t src = i + static_cast<size_t>(limb_shift);
    r.limbs_[i] = bit_shift == 0 ? limbs_[src] : (limbs_[src] >> bit_shift);
    if (bit_shift != 0 && src + 1 < limbs_.size())
      r.limbs_[i] |= limbs_[src + 1] << (64 - bit_shift);
  }
  r.Canonicalize();
  return r;
}

void BigInt::DivMod(const BigInt& num, const BigInt& den, BigInt* quot,
                    BigInt* rem) {
  AQO_CHECK(!den.IsZero()) << "BigInt division by zero";
  BigInt n_abs = num.Abs();
  BigInt d_abs = den.Abs();
  BigInt q, r;
  if (CompareMagnitude(n_abs, d_abs) == std::strong_ordering::less) {
    r = n_abs;
  } else if (d_abs.limbs_.size() == 1) {
    // Fast path: small divisor.
    q = n_abs;
    uint64_t rm = DivModSmall(&q.limbs_, d_abs.limbs_[0]);
    q.Canonicalize();
    r = FromUint64(rm);
  } else {
    // Shift-subtract long division. Off the hot path; the Appendix numbers
    // stay in the low thousands of bits.
    int shift = n_abs.BitLength() - d_abs.BitLength();
    BigInt d_shifted = d_abs << shift;
    r = n_abs;
    for (int s = shift; s >= 0; --s) {
      q = q << 1;
      if (CompareMagnitude(r, d_shifted) != std::strong_ordering::less) {
        r = r - d_shifted;
        q += 1;
      }
      d_shifted = d_shifted >> 1;
    }
  }
  bool q_neg = num.negative_ != den.negative_;
  if (q_neg && !q.IsZero()) q.negative_ = true;
  if (num.negative_ && !r.IsZero()) r.negative_ = true;
  if (quot != nullptr) *quot = std::move(q);
  if (rem != nullptr) *rem = std::move(r);
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q;
  DivMod(*this, o, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt r;
  DivMod(*this, o, nullptr, &r);
  return r;
}

BigInt BigInt::Pow(uint64_t e) const {
  BigInt base = *this;
  BigInt result = 1;
  while (e != 0) {
    if (e & 1) result *= base;
    base *= base;
    e >>= 1;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToString();
}

}  // namespace aqo
