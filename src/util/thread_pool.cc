#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace aqo {

int ThreadPool::HardwareConcurrency() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::Range ThreadPool::ChunkOf(size_t count, int threads, int t) {
  AQO_CHECK(threads >= 1);
  AQO_CHECK(0 <= t && t < threads);
  size_t nt = static_cast<size_t>(threads);
  size_t ti = static_cast<size_t>(t);
  size_t base = count / nt;
  size_t rem = count % nt;
  size_t begin = ti * base + std::min(ti, rem);
  size_t end = begin + base + (ti < rem ? 1 : 0);
  return Range{begin, end};
}

ThreadPool::ThreadPool(int threads)
    : threads_(threads == 0 ? HardwareConcurrency() : threads) {
  AQO_CHECK(threads_ >= 1) << "threads=" << threads;
  errors_.assign(static_cast<size_t>(threads_), nullptr);
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int t = 1; t < threads_; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop(int chunk_index) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const ChunkFn* job = job_;
    size_t count = job_count_;
    lock.unlock();
    std::exception_ptr error;
    try {
      Range r = ChunkOf(count, threads_, chunk_index);
      if (r.begin < r.end) (*job)(chunk_index, r.begin, r.end);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    errors_[static_cast<size_t>(chunk_index)] = error;
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::RunInline(size_t count, const ChunkFn& chunk) {
  // Preserve the chunk boundaries the concurrent execution would use, so
  // per-chunk accumulators merge identically either way.
  for (int t = 0; t < threads_; ++t) {
    Range r = ChunkOf(count, threads_, t);
    if (r.begin < r.end) chunk(t, r.begin, r.end);
  }
}

void ThreadPool::ParallelForChunks(size_t count, const ChunkFn& chunk) {
  if (count == 0) return;
  bool expected = false;
  if (workers_.empty() ||
      !busy_.compare_exchange_strong(expected, true,
                                     std::memory_order_acquire)) {
    // threads_ == 1, a nested call from inside a running chunk, or a
    // concurrent external submitter: run the chunks inline. Exceptions
    // propagate naturally (chunk 0 first — the lowest index).
    RunInline(count, chunk);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &chunk;
    job_count_ = count;
    pending_ = threads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();

  std::exception_ptr my_error;
  try {
    Range r = ChunkOf(count, threads_, 0);
    if (r.begin < r.end) chunk(0, r.begin, r.end);
  } catch (...) {
    my_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  job_ = nullptr;
  errors_[0] = my_error;
  std::exception_ptr first;
  for (std::exception_ptr& e : errors_) {
    if (e != nullptr && first == nullptr) first = e;
    e = nullptr;
  }
  lock.unlock();
  busy_.store(false, std::memory_order_release);
  if (first != nullptr) std::rethrow_exception(first);
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  ParallelForChunks(count, [&body](int /*chunk*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

}  // namespace aqo
