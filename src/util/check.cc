#include "util/check.h"

#include <cstdio>

namespace aqo::internal {

void CheckFail(const char* expr, const char* file, int line,
               const std::string& message) {
  std::fprintf(stderr, "%s:%d: check failed: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace aqo::internal
