#include "util/fault_injection.h"

namespace aqo {

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, uint64_t ordinal, int times) {
  std::lock_guard<std::mutex> lock(mu_);
  site_ = site;
  ordinal_ = ordinal;
  remaining_ = times;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  site_.clear();
  remaining_ = 0;
  armed_.store(false, std::memory_order_release);
}

bool FaultInjector::ShouldFail(const char* site, uint64_t ordinal) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (remaining_ <= 0 || site_ != site ||
      (ordinal_ != kAnyOrdinal && ordinal != ordinal_)) {
    return false;
  }
  --remaining_;
  return true;
}

void FaultInjector::MaybeThrow(const char* site, uint64_t ordinal) {
  if (ShouldFail(site, ordinal)) {
    throw FaultInjectedError(std::string("injected fault at ") + site + "#" +
                             std::to_string(ordinal));
  }
}

}  // namespace aqo
