#ifndef AQO_UTIL_CHECK_H_
#define AQO_UTIL_CHECK_H_

// Lightweight runtime assertion macros used across the library.
//
// AQO_CHECK(cond) aborts the process with a diagnostic when `cond` is false,
// and accepts a streamed message: AQO_CHECK(x > 0) << "x was " << x;
// It is always on (also in release builds): the library manipulates
// combinatorial constructions whose invariants, once violated, silently
// produce wrong reductions, so we prefer a hard stop.
// AQO_DCHECK(cond) compiles away in NDEBUG builds; use it on hot paths.

#include <cstdlib>
#include <sstream>
#include <string>

// Restrict-qualified pointer hint for hot loops (qo/fast_eval.cc and
// friends): promises the compiler that the pointee is not aliased by any
// other pointer in scope, unlocking vectorization of loads/stores that
// would otherwise be ordered conservatively. No-op on compilers without
// the extension.
#if defined(__GNUC__) || defined(__clang__)
#define AQO_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define AQO_RESTRICT __restrict
#else
#define AQO_RESTRICT
#endif

namespace aqo::internal {

// Prints `file:line: check failed: expr[: message]` to stderr and aborts.
[[noreturn]] void CheckFail(const char* expr, const char* file, int line,
                            const std::string& message);

// Stream-collecting helper that lets AQO_CHECK accept `<<` style messages.
// The process aborts when the temporary is destroyed at the end of the full
// expression.
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}

  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessage() { CheckFail(expr_, file_, line_, stream_.str()); }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Turns the CheckMessage expression into `void` so the conditional operator
// in AQO_CHECK type-checks. `&` binds looser than `<<`, so streamed message
// parts attach to the CheckMessage first.
struct Voidify {
  void operator&(const CheckMessage&) {}
};

}  // namespace aqo::internal

#define AQO_CHECK(cond)              \
  (cond) ? (void)0                   \
         : ::aqo::internal::Voidify() & \
               ::aqo::internal::CheckMessage(#cond, __FILE__, __LINE__)

#define AQO_CHECK_EQ(a, b) AQO_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define AQO_CHECK_NE(a, b) AQO_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define AQO_CHECK_LE(a, b) AQO_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define AQO_CHECK_LT(a, b) AQO_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define AQO_CHECK_GE(a, b) AQO_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "
#define AQO_CHECK_GT(a, b) AQO_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define AQO_DCHECK(cond) AQO_CHECK(true)
#else
#define AQO_DCHECK(cond) AQO_CHECK(cond)
#endif

#endif  // AQO_UTIL_CHECK_H_
