#ifndef AQO_UTIL_PARSE_RESULT_H_
#define AQO_UTIL_PARSE_RESULT_H_

// ParseResult<T>: the outcome of a recoverable parse or decode of
// untrusted bytes — exactly one of `value` / `error` is set.
//
// This lives in util/ (not io/) because every layer that consumes bytes a
// user could hand to a tool — the text readers in io/serialization.h and
// the binary plan-cache persistence in qo/persist.h — reports failures the
// same way: never abort on malformed input, pre-validate everything a
// downstream AQO_CHECK would die on, and return a one-line reason suitable
// for `error: <file>: <reason>`.

#include <optional>
#include <string>

namespace aqo {

template <typename T>
struct ParseResult {
  std::optional<T> value;
  std::string error;

  bool ok() const { return value.has_value(); }
};

}  // namespace aqo

#endif  // AQO_UTIL_PARSE_RESULT_H_
