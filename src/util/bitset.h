#ifndef AQO_UTIL_BITSET_H_
#define AQO_UTIL_BITSET_H_

// DynamicBitset: a fixed-size-at-construction bitset on 64-bit words.
//
// The graph substrate stores adjacency rows as bitsets so that the clique
// branch & bound can intersect candidate sets in word-parallel time; graphs
// in this library reach a few thousand vertices.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace aqo {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(int size)
      : size_(size), words_(WordCount(size), 0) {
    AQO_CHECK(size >= 0);
  }

  int size() const { return size_; }

  void Set(int i) {
    AQO_DCHECK(InRange(i));
    words_[static_cast<size_t>(i >> 6)] |= 1ULL << (i & 63);
  }

  void Reset(int i) {
    AQO_DCHECK(InRange(i));
    words_[static_cast<size_t>(i >> 6)] &= ~(1ULL << (i & 63));
  }

  void Assign(int i, bool value) { value ? Set(i) : Reset(i); }

  bool Test(int i) const {
    AQO_DCHECK(InRange(i));
    return (words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1;
  }

  void Clear() { std::fill(words_.begin(), words_.end(), 0); }

  void SetAll() {
    std::fill(words_.begin(), words_.end(), ~0ULL);
    TrimTail();
  }

  int Count() const {
    int c = 0;
    for (uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  bool None() const { return !Any(); }

  // Index of the lowest set bit, or -1 when empty.
  int FindFirst() const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi] != 0)
        return static_cast<int>(wi * 64) + std::countr_zero(words_[wi]);
    }
    return -1;
  }

  // Index of the lowest set bit strictly greater than `i`, or -1.
  int FindNext(int i) const {
    int start = i + 1;
    if (start >= size_) return -1;
    size_t wi = static_cast<size_t>(start >> 6);
    uint64_t w = words_[wi] & (~0ULL << (start & 63));
    while (true) {
      if (w != 0) return static_cast<int>(wi * 64) + std::countr_zero(w);
      if (++wi >= words_.size()) return -1;
      w = words_[wi];
    }
  }

  DynamicBitset& operator&=(const DynamicBitset& o) {
    AQO_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  DynamicBitset& operator|=(const DynamicBitset& o) {
    AQO_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  DynamicBitset& operator^=(const DynamicBitset& o) {
    AQO_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
  }

  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator^(DynamicBitset a, const DynamicBitset& b) {
    a ^= b;
    return a;
  }

  // Bitwise complement within [0, size).
  DynamicBitset operator~() const {
    DynamicBitset r = *this;
    for (uint64_t& w : r.words_) w = ~w;
    r.TrimTail();
    return r;
  }

  // |this AND o| without materializing the intersection.
  int AndCount(const DynamicBitset& o) const {
    AQO_DCHECK(size_ == o.size_);
    int c = 0;
    for (size_t i = 0; i < words_.size(); ++i)
      c += std::popcount(words_[i] & o.words_[i]);
    return c;
  }

  bool Intersects(const DynamicBitset& o) const {
    AQO_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & o.words_[i]) != 0) return true;
    }
    return false;
  }

  bool IsSubsetOf(const DynamicBitset& o) const {
    AQO_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~o.words_[i]) != 0) return false;
    }
    return true;
  }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) = default;

  // Calls f(i) for every set bit, in increasing order.
  template <typename F>
  void ForEachSetBit(F&& f) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        int bit = std::countr_zero(w);
        f(static_cast<int>(wi * 64) + bit);
        w &= w - 1;
      }
    }
  }

  // The set bits collected into a vector, increasing.
  std::vector<int> ToVector() const {
    std::vector<int> v;
    v.reserve(static_cast<size_t>(Count()));
    ForEachSetBit([&v](int i) { v.push_back(i); });
    return v;
  }

 private:
  static size_t WordCount(int size) {
    return static_cast<size_t>((size + 63) / 64);
  }

  bool InRange(int i) const { return 0 <= i && i < size_; }

  // Clears bits at positions >= size_ in the last word.
  void TrimTail() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ULL << (size_ % 64)) - 1;
    }
  }

  int size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace aqo

#endif  // AQO_UTIL_BITSET_H_
