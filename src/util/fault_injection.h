#ifndef AQO_UTIL_FAULT_INJECTION_H_
#define AQO_UTIL_FAULT_INJECTION_H_

// Deterministic fault injection for robustness tests. The injector is
// compiled in always but inert unless a test arms it, so production
// binaries pay one relaxed atomic load per probe site and nothing else.
//
// Faults are keyed by (site, ordinal): the probe site names the
// operation class ("service.item", "plan_cache.insert", "io.parse") and
// the ordinal is supplied by the caller from its own deterministic
// numbering (batch item index, insert sequence number, parse count).
// Because the ordinal comes from program structure rather than thread
// arrival order, "fail the k-th task" reproduces bit-identically across
// thread counts and schedules.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace aqo {

// Thrown by FaultInjector::MaybeThrow at an armed site. Derives from
// std::runtime_error so generic catch-and-retry paths treat an injected
// fault exactly like a real one.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

// Process-wide singleton. Arm/Disarm are test-only entry points; probe
// sites call ShouldFail/MaybeThrow. One fault spec is active at a time —
// tests arm, exercise, disarm.
class FaultInjector {
 public:
  // Passing kAnyOrdinal to Arm matches the next probe at the site
  // regardless of its ordinal — for sites whose counters are process-wide
  // and therefore unknowable to an individual test (e.g. "io.parse").
  static constexpr uint64_t kAnyOrdinal = ~0ull;

  static FaultInjector& Get();

  // Arms the injector: the next `times` probes at `site` whose ordinal
  // equals `ordinal` fail. `times` defaults to 1 (fail once; a retry of
  // the same ordinal then succeeds — the recovery path). `times` >= 2
  // makes the retry fail too (the permanent-failure path).
  void Arm(const std::string& site, uint64_t ordinal, int times = 1);

  // Returns to the inert state. Always safe to call.
  void Disarm();

  // True while a fault spec is armed (even if all its shots are spent).
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // True when (site, ordinal) matches the armed spec and shots remain;
  // consumes one shot. Inert fast path: one relaxed load, no locks.
  bool ShouldFail(const char* site, uint64_t ordinal);

  // Throws FaultInjectedError when ShouldFail would return true.
  void MaybeThrow(const char* site, uint64_t ordinal);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::string site_;
  uint64_t ordinal_ = 0;
  int remaining_ = 0;
};

}  // namespace aqo

#endif  // AQO_UTIL_FAULT_INJECTION_H_
