#ifndef AQO_UTIL_CANCELLATION_H_
#define AQO_UTIL_CANCELLATION_H_

// Cooperative cancellation for anytime optimization. Every optimizer run
// can carry a Budget: a deterministic cost-evaluation cap and/or a
// wall-clock deadline. Optimizers poll a RunGuard inside their hot loops
// and, when cut short, return their best-so-far plan together with an
// explicit PlanStatus instead of running to completion.
//
// Determinism contract (docs/robustness.md): the evaluation cap is an
// integer compare against a monotone counter the optimizer already
// maintains, so a capped run is a pure function of (instance, options,
// seed) — bit-identical across threads, runs, and cache state. Wall-clock
// deadlines are inherently nondeterministic and are never exercised by
// tier-1 tests. When neither is armed the guard is inert: no counters, no
// clock reads, no behavior change.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace aqo {

// Outcome of an optimizer run (or of a batch item). `kComplete` is the
// zero value so default-constructed results read as complete.
enum class PlanStatus : uint8_t {
  kComplete = 0,          // ran to its natural end
  kBudgetExhausted = 1,   // evaluation cap hit; result is best-so-far
  kDeadlineExceeded = 2,  // wall-clock deadline hit; result is best-so-far
  kFailed = 3,            // run threw (or was faulted) and retry failed
};

// Stable lowercase name, e.g. "budget_exhausted" (used in run-log JSON).
const char* PlanStatusName(PlanStatus status);

// Resource limits for one optimizer run. Zero values mean unlimited; a
// default Budget imposes nothing and perturbs nothing.
struct Budget {
  // Stop after this many cost evaluations (0 = unlimited). Deterministic.
  uint64_t max_evaluations = 0;
  // Stop after this much wall time (<= 0 = none). Nondeterministic.
  double deadline_ms = 0.0;

  bool limited() const { return max_evaluations > 0 || deadline_ms > 0; }
};

// Shared stop signal, e.g. one per service batch. Arms an absolute
// wall-clock deadline and/or an explicit stop request; many RunGuards may
// observe one token concurrently. Copying is disabled — share by pointer.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Arms a wall-clock deadline `deadline_ms` from now (<= 0 clears it).
  void ArmDeadline(double deadline_ms) {
    if (deadline_ms > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(deadline_ms));
      has_deadline_.store(true, std::memory_order_release);
    } else {
      has_deadline_.store(false, std::memory_order_release);
    }
  }

  // Explicit stop, independent of any deadline.
  void RequestStop() { stop_.store(true, std::memory_order_release); }

  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  // True once a deadline is armed (whether or not it has passed).
  bool armed() const {
    return has_deadline_.load(std::memory_order_acquire) || stop_requested();
  }

  // True when stopped or past the armed deadline. Reads the clock, so
  // callers should poll it on a stride, not per iteration.
  bool Expired() const {
    if (stop_requested()) return true;
    if (!has_deadline_.load(std::memory_order_acquire)) return false;
    return std::chrono::steady_clock::now() >= deadline_;
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
};

// Per-invocation guard combining an options-level Budget with an optional
// shared CancelToken. Cheap to construct; the hot-path check is a single
// branch when inactive and an integer compare when only the evaluation
// cap is armed. Not thread-safe: one guard per optimizer invocation.
class RunGuard {
 public:
  // How many evaluations between wall-clock polls. Strided on the
  // caller's evaluation count, not on ShouldStop() calls: optimizers
  // whose checks each cover O(n^2) evaluations (greedy, ii) would
  // otherwise make too few calls per run to ever reach a call-count
  // stride. Deadline precision is bounded by the cost of `stride`
  // evaluations plus the span of one check interval.
  static constexpr uint64_t kDeadlinePollStride = 256;

  RunGuard(const Budget& budget, CancelToken* token);

  // Returns true when the run should stop; `evaluations` is the caller's
  // monotone evaluation count. The first tripping call latches the status
  // and bumps the matching qo.cancel.* counter; later calls return true
  // without re-counting. Never consumes RNG state.
  bool ShouldStop(uint64_t evaluations) {
    if (!active_) return false;
    return ShouldStopSlow(evaluations);
  }

  // kComplete until the guard trips.
  PlanStatus status() const { return status_; }

  // True when any limit (budget, deadline, or token) is armed.
  bool active() const { return active_; }

 private:
  bool ShouldStopSlow(uint64_t evaluations);
  void Trip(PlanStatus status);

  uint64_t max_evaluations_ = 0;  // 0 = unlimited
  CancelToken* token_ = nullptr;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  bool active_ = false;
  uint64_t next_poll_evals_ = 0;
  PlanStatus status_ = PlanStatus::kComplete;
};

}  // namespace aqo

#endif  // AQO_UTIL_CANCELLATION_H_
