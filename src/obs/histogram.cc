#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <chrono>

namespace aqo::obs {

namespace {

// Innermost active histogram tally of the current thread; reading this is
// the whole hot-path cost when tallies are off.
thread_local ThreadHistogramTally* tls_hist_tally = nullptr;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

uint32_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<uint32_t>(value);
  int msb = 63 - std::countl_zero(value);
  int shift = msb - kSubBucketBits;
  return static_cast<uint32_t>((msb - kSubBucketBits + 1) * kSubBuckets +
                               ((value >> shift) - kSubBuckets));
}

uint64_t Histogram::BucketLowerBound(uint32_t index) {
  if (index < kSubBuckets) return index;
  uint32_t range = index / static_cast<uint32_t>(kSubBuckets);
  uint64_t sub = index % kSubBuckets;
  return (kSubBuckets + sub) << (range - 1);
}

uint64_t Histogram::BucketUpperBound(uint32_t index) {
  if (index < kSubBuckets) return index;
  uint32_t range = index / static_cast<uint32_t>(kSubBuckets);
  return BucketLowerBound(index) + ((uint64_t{1} << (range - 1)) - 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // In steady state the extrema rarely move: one relaxed load and a
  // never-taken branch each. The CAS loop runs only while a new extreme
  // races in.
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  if (ThreadHistogramTally* tally = ThreadHistogramTally::Current()) {
    tally->Record(this, value);
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) {
      data.buckets.emplace_back(i, c);
      data.count += c;
    }
  }
  data.sum = sum_.load(std::memory_order_relaxed);
  if (data.count != 0) {
    data.min = min_.load(std::memory_order_relaxed);
    data.max = max_.load(std::memory_order_relaxed);
  }
  return data;
}

void Histogram::Reset() {
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t HistogramData::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target order statistic, 1-based.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (const auto& [index, c] : buckets) {
    cumulative += c;
    if (cumulative >= rank) {
      uint64_t v = Histogram::BucketUpperBound(index);
      // The true value lies inside this bucket; the recorded extrema can
      // only tighten the bound.
      return std::min(std::max(v, min), max);
    }
  }
  return max;
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  std::vector<std::pair<uint32_t, uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t i = 0, j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j == other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i == buckets.size() ||
               other.buckets[j].first < buckets[i].first) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first,
                          buckets[i].second + other.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

ThreadHistogramTally::ThreadHistogramTally() : parent_(tls_hist_tally) {
  tls_hist_tally = this;
}

ThreadHistogramTally::~ThreadHistogramTally() {
  tls_hist_tally = parent_;
  if (parent_ == nullptr) return;
  for (const auto& [histogram, local] : locals_) {
    Local& into = parent_->locals_[histogram];
    if (into.count == 0) {
      into = local;
      continue;
    }
    into.count += local.count;
    into.sum += local.sum;
    into.min = std::min(into.min, local.min);
    into.max = std::max(into.max, local.max);
    for (const auto& [index, c] : local.buckets) into.buckets[index] += c;
  }
}

ThreadHistogramTally* ThreadHistogramTally::Current() {
  return tls_hist_tally;
}

void ThreadHistogramTally::Record(const Histogram* histogram, uint64_t value) {
  Local& local = locals_[histogram];
  if (local.count == 0 || value < local.min) local.min = value;
  if (local.count == 0 || value > local.max) local.max = value;
  ++local.count;
  local.sum += value;
  ++local.buckets[Histogram::BucketIndex(value)];
}

std::vector<std::pair<std::string, HistogramData>>
ThreadHistogramTally::Snapshot() const {
  std::vector<std::pair<std::string, HistogramData>> out;
  out.reserve(locals_.size());
  for (const auto& [histogram, local] : locals_) {
    if (local.count == 0) continue;
    HistogramData data;
    data.count = local.count;
    data.sum = local.sum;
    data.min = local.min;
    data.max = local.max;
    data.buckets.assign(local.buckets.begin(), local.buckets.end());
    out.emplace_back(histogram->name(), std::move(data));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

ScopedLatencyTimer::ScopedLatencyTimer(Histogram& histogram)
    : histogram_(histogram), start_ns_(NowNanos()) {}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  histogram_.Record((NowNanos() - start_ns_) / 1000);
}

}  // namespace aqo::obs
