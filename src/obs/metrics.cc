#include "obs/metrics.h"

#include <algorithm>

#include "obs/histogram.h"

namespace aqo::obs {

namespace {

// Innermost active tally of the current thread. A plain thread_local
// pointer: reading it is the whole hot-path cost when tallies are off.
thread_local ThreadCounterTally* tls_tally = nullptr;

}  // namespace

ThreadCounterTally::ThreadCounterTally() : parent_(tls_tally) {
  tls_tally = this;
}

ThreadCounterTally::~ThreadCounterTally() {
  tls_tally = parent_;
  if (parent_ != nullptr) {
    for (const auto& [counter, delta] : deltas_) {
      parent_->deltas_[counter] += delta;
    }
  }
}

ThreadCounterTally* ThreadCounterTally::Current() { return tls_tally; }

std::vector<std::pair<std::string, uint64_t>> ThreadCounterTally::Snapshot()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(deltas_.size());
  for (const auto& [counter, delta] : deltas_) {
    if (delta != 0) out.emplace_back(counter->name(), delta);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Registry& Registry::Get() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(std::string(name))))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, HistogramData>> Registry::Histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramData>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Snapshot());
  }
  return out;
}

void Registry::ResetHistograms() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

CounterSnapshot Registry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  CounterSnapshot out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

GaugeSnapshot Registry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  GaugeSnapshot out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  return out;
}

void Registry::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
}

CounterSnapshot Registry::Delta(const CounterSnapshot& before,
                                const CounterSnapshot& after) {
  CounterSnapshot out;
  size_t i = 0;
  for (const auto& [name, value] : after) {
    // Both snapshots are name-sorted; advance `before` to the match.
    while (i < before.size() && before[i].first < name) ++i;
    uint64_t prev =
        (i < before.size() && before[i].first == name) ? before[i].second : 0;
    if (value != prev) out.emplace_back(name, value - prev);
  }
  return out;
}

}  // namespace aqo::obs
