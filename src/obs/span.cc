#include "obs/span.h"

#include "obs/trace.h"
#include "util/check.h"

namespace aqo::obs {

ProfileNode* ProfileNode::Child(std::string_view child_name) {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  children.push_back(std::make_unique<ProfileNode>());
  children.back()->name = std::string(child_name);
  return children.back().get();
}

Profiler& Profiler::Get() {
  thread_local Profiler profiler;
  return profiler;
}

void Profiler::Reset() {
  AQO_CHECK(current_ == &root_) << "Profiler::Reset with open spans";
  root_.children.clear();
  root_.total_seconds = 0.0;
  root_.count = 0;
}

Span::Span(std::string_view name) {
  Profiler& p = Profiler::Get();
  parent_ = p.current_;
  node_ = parent_->Child(name);
  p.current_ = node_;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  std::chrono::steady_clock::time_point end = std::chrono::steady_clock::now();
  node_->total_seconds += std::chrono::duration<double>(end - start_).count();
  ++node_->count;
  Profiler::Get().current_ = parent_;
  // Armed() is a relaxed flag load — the only cost spans pay for trace
  // support while tracing is off.
  if (TraceEventRecorder::Armed()) {
    TraceEventRecorder::Emit(node_->name, "span", start_, end);
  }
}

double Span::Elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace aqo::obs
