#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace aqo::obs {

double JsonValue::AsDouble() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      AQO_CHECK(false) << "JsonValue::AsDouble on non-number";
      return 0.0;
  }
}

int64_t JsonValue::AsInt() const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUint:
      return static_cast<int64_t>(uint_);
    case Kind::kDouble:
      return static_cast<int64_t>(double_);
    default:
      AQO_CHECK(false) << "JsonValue::AsInt on non-number";
      return 0;
  }
}

uint64_t JsonValue::AsUint() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<uint64_t>(int_);
    case Kind::kUint:
      return uint_;
    case Kind::kDouble:
      return static_cast<uint64_t>(double_);
    default:
      AQO_CHECK(false) << "JsonValue::AsUint on non-number";
      return 0;
  }
}

JsonValue& JsonValue::operator[](std::string_view key) {
  AQO_CHECK(kind_ == Kind::kObject) << "operator[] on non-object";
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(std::string(key), JsonValue());
  return members_.back().second;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Push(JsonValue v) {
  AQO_CHECK(kind_ == Kind::kArray) << "Push on non-array";
  items_.push_back(std::move(v));
}

size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

namespace {

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(double v, std::string* out) {
  // JSON has no NaN/Inf; map them to null.
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %.17g is round-trip exact; trim to the shortest representation that
  // still round-trips to keep the logs readable.
  for (int prec = 6; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) {
      *out += shorter;
      return;
    }
  }
  *out += buf;
}

}  // namespace

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      *out += std::to_string(int_);
      break;
    case Kind::kUint:
      *out += std::to_string(uint_);
      break;
    case Kind::kDouble:
      AppendDouble(double_, out);
      break;
    case Kind::kString:
      AppendEscaped(string_, out);
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : items_) {
        if (!first) out->push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(k, out);
        out->push_back(':');
        v.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Run() {
    std::optional<JsonValue> v = ParseValue();
    if (!v) return std::nullopt;
    SkipSpace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return std::nullopt;
              }
            }
            // Only BMP codepoints we emit ourselves (control chars); encode
            // as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return std::nullopt;
    if (!is_double) {
      int64_t iv = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), iv);
      if (ec == std::errc() && p == token.data() + token.size()) {
        return JsonValue(iv);
      }
      uint64_t uv = 0;
      auto [pu, ecu] =
          std::from_chars(token.data(), token.data() + token.size(), uv);
      if (ecu == std::errc() && pu == token.data() + token.size()) {
        return JsonValue(uv);
      }
      // Out-of-range integer: fall through to double.
    }
    double dv = std::strtod(std::string(token).c_str(), nullptr);
    return JsonValue(dv);
  }

  std::optional<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      JsonValue obj = JsonValue::Object();
      SkipSpace();
      if (Consume('}')) return obj;
      while (true) {
        SkipSpace();
        std::optional<std::string> key = ParseString();
        if (!key || !Consume(':')) return std::nullopt;
        std::optional<JsonValue> v = ParseValue();
        if (!v) return std::nullopt;
        obj[*key] = std::move(*v);
        if (Consume(',')) continue;
        if (Consume('}')) return obj;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      JsonValue arr = JsonValue::Array();
      SkipSpace();
      if (Consume(']')) return arr;
      while (true) {
        std::optional<JsonValue> v = ParseValue();
        if (!v) return std::nullopt;
        arr.Push(std::move(*v));
        if (Consume(',')) continue;
        if (Consume(']')) return arr;
        return std::nullopt;
      }
    }
    if (c == '"') {
      std::optional<std::string> s = ParseString();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue();
    return ParseNumber();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace aqo::obs
