#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace aqo::obs {

namespace {

struct TraceEvent {
  std::string name;
  std::string cat;
  uint64_t start_ns;  // since recorder arm time
  uint64_t dur_ns;
  uint32_t tid;
  std::string args_json;  // empty or a serialized JSON object
};

// One buffer per thread that has emitted at least one armed event.
// Buffers are registered once and never removed: a thread_local raw
// pointer to a buffer that outlives the thread would dangle if CloseGlobal
// freed them, so they persist for the life of the process (bounded by
// thread count, not event count — events themselves are released on
// flush).
struct ThreadBuffer {
  std::mutex mu;  // contended only during FlushLocked
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
};

struct RecorderState {
  std::mutex mu;
  std::ofstream file;
  std::ostream* out = nullptr;  // &file or an attached stream
  std::vector<ThreadBuffer*> buffers;  // registration order; never shrinks
  uint32_t next_tid = 1;
  std::chrono::steady_clock::time_point epoch;
};

RecorderState& State() {
  static RecorderState* state = new RecorderState();  // never destroyed
  return *state;
}

thread_local ThreadBuffer* tls_buffer = nullptr;

ThreadBuffer* BufferForThisThread() {
  if (tls_buffer == nullptr) {
    auto* buffer = new ThreadBuffer();  // leaks by design, see above
    RecorderState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    buffer->tid = state.next_tid++;
    state.buffers.push_back(buffer);
    tls_buffer = buffer;
  }
  return tls_buffer;
}

// Drains every thread buffer into one time-sorted event list and writes
// the trace JSON. Caller holds state.mu.
void FlushLocked(RecorderState& state) {
  std::vector<TraceEvent> all;
  for (ThreadBuffer* buffer : state.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    all.insert(all.end(), std::make_move_iterator(buffer->events.begin()),
               std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
    buffer->events.shrink_to_fit();
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.dur_ns > b.dur_ns;  // enclosing slice first
  });

  // Timestamps/durations are microseconds (the trace-event unit) with
  // nanosecond precision kept as three zero-padded fractional digits.
  auto micros = [](uint64_t ns) {
    std::string s = std::to_string(ns / 1000);
    uint64_t frac = ns % 1000;
    s += '.';
    s += static_cast<char>('0' + frac / 100);
    s += static_cast<char>('0' + frac / 10 % 10);
    s += static_cast<char>('0' + frac % 10);
    return s;
  };

  std::ostream& out = *state.out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : all) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":" << JsonValue(e.name).Dump()
        << ",\"cat\":" << JsonValue(e.cat).Dump()
        << ",\"ph\":\"X\",\"ts\":" << micros(e.start_ns)
        << ",\"dur\":" << micros(e.dur_ns) << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args_json.empty()) out << ",\"args\":" << e.args_json;
    out << "}";
  }
  out << "\n]}\n";
  out.flush();
}

}  // namespace

std::atomic<bool> TraceEventRecorder::armed_{false};

bool TraceEventRecorder::OpenGlobal(const std::string& path) {
  RecorderState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.file.open(path, std::ios::out | std::ios::trunc);
  if (!state.file.is_open()) return false;
  state.out = &state.file;
  state.epoch = std::chrono::steady_clock::now();
  armed_.store(true, std::memory_order_relaxed);
  return true;
}

void TraceEventRecorder::AttachGlobal(std::ostream* out) {
  RecorderState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.out = out;
  state.epoch = std::chrono::steady_clock::now();
  armed_.store(true, std::memory_order_relaxed);
}

void TraceEventRecorder::CloseGlobal() {
  if (!Armed()) return;
  // Disarm first so events emitted during the flush don't race the drain.
  armed_.store(false, std::memory_order_relaxed);
  RecorderState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.out == nullptr) return;
  FlushLocked(state);
  if (state.out == &state.file) state.file.close();
  state.out = nullptr;
}

void TraceEventRecorder::Emit(std::string_view name, std::string_view cat,
                              std::chrono::steady_clock::time_point start,
                              std::chrono::steady_clock::time_point end,
                              std::string args_json) {
  ThreadBuffer* buffer = BufferForThisThread();
  RecorderState& state = State();
  // epoch is set before arming and only mutated under state.mu while
  // disarmed; armed readers see a stable value.
  std::chrono::steady_clock::time_point epoch = state.epoch;
  if (start < epoch) start = epoch;
  if (end < start) end = start;
  TraceEvent event;
  event.name.assign(name.data(), name.size());
  event.cat.assign(cat.data(), cat.size());
  event.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch)
          .count());
  event.dur_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  event.tid = buffer->tid;
  event.args_json = std::move(args_json);
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

void TraceSpan::AnnotateRaw(std::string_view key, std::string_view raw_json) {
  if (!armed_) return;
  args_ += args_.empty() ? '{' : ',';
  args_ += '"';
  args_.append(key.data(), key.size());
  args_ += "\":";
  args_.append(raw_json.data(), raw_json.size());
}

void TraceSpan::Annotate(std::string_view key, std::string_view string_value) {
  if (!armed_) return;
  AnnotateRaw(key, JsonValue(std::string(string_value)).Dump());
}

void TraceSpan::Annotate(std::string_view key, uint64_t value) {
  if (!armed_) return;
  AnnotateRaw(key, std::to_string(value));
}

}  // namespace aqo::obs
