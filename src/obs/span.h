#ifndef AQO_OBS_SPAN_H_
#define AQO_OBS_SPAN_H_

// Scoped timing spans that nest and aggregate into a per-thread profile
// tree. A Span covers one lexical scope; same-named spans under the same
// parent merge into a single ProfileNode accumulating total time and hit
// count, so loops produce an aggregate instead of one node per iteration.
//
//   {
//     obs::Span reduce("compose.sat_to_qon");
//     { obs::Span s("compose.solve_sat"); ... }
//     { obs::Span s("compose.maxsat"); ... }
//   }
//
// yields
//
//   compose.sat_to_qon (1x, 12.3ms)
//     compose.solve_sat (1x, 4.0ms)
//     compose.maxsat    (1x, 7.9ms)
//
// The tree is thread-local (no synchronization on the timing path). The
// run-log layer snapshots and resets it around each measured invocation.

#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace aqo::obs {

struct ProfileNode {
  std::string name;
  double total_seconds = 0.0;
  uint64_t count = 0;  // completed spans aggregated into this node
  std::vector<std::unique_ptr<ProfileNode>> children;

  // Find-or-create the child named `name` (linear scan: fan-out is small).
  ProfileNode* Child(std::string_view child_name);
};

// Per-thread profile tree. root() is an unnamed node holding top-level
// spans; current() is the innermost open span (or root).
class Profiler {
 public:
  static Profiler& Get();  // thread-local instance

  ProfileNode* root() { return &root_; }
  ProfileNode* current() { return current_; }

  // Discards all recorded spans. Must not be called with spans open.
  void Reset();

 private:
  friend class Span;
  Profiler() : current_(&root_) {}
  ProfileNode root_;
  ProfileNode* current_;
};

// RAII span: opens on construction, aggregates elapsed wall time into the
// profile tree on destruction.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Elapsed seconds so far (the span is still open).
  double Elapsed() const;

 private:
  ProfileNode* node_;
  ProfileNode* parent_;
  std::chrono::steady_clock::time_point start_;
};

// The issue-facing alias: a ScopedTimer *is* a span.
using ScopedTimer = Span;

}  // namespace aqo::obs

#endif  // AQO_OBS_SPAN_H_
