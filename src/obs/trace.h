#ifndef AQO_OBS_TRACE_H_
#define AQO_OBS_TRACE_H_

// Chrome/Perfetto trace-event export: an opt-in recorder that turns
// span open/close pairs and explicit trace slices into "complete" events
// (`"ph":"X"`) and writes a chrome://tracing- / ui.perfetto.dev-loadable
// JSON file at close. Armed by `--trace-out=<path>` on every bench/tool
// (bench/bench_common.h RunLogSession reads the flag).
//
// Cost model: when disarmed — the always-on case — every instrumentation
// point is a single relaxed atomic flag load and a predictable branch
// (bench/micro's BM_SpanDisarmed keeps this honest; it is the same check
// Span already pays for its profile bookkeeping). When armed, events
// append to a per-thread buffer with no synchronization on the hot path;
// buffers are collected and serialized once at CloseGlobal.
//
// Threading: arm the recorder before spawning worker threads (bench
// mains construct RunLogSession before their ThreadPool) and close it
// after they quiesce (pools are destroyed before the session in every
// main). A thread registers its buffer lazily on its first armed event.
//
// See docs/observability.md for the walkthrough.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace aqo::obs {

class TraceEventRecorder {
 public:
  // True while a recorder is armed. The one check instrumentation points
  // pay when tracing is off.
  static bool Armed() {
    return armed_.load(std::memory_order_relaxed);
  }

  // Arms a file-backed global recorder (the JSON is written at
  // CloseGlobal); false when the file cannot be created. Replaces any
  // previously armed recorder.
  static bool OpenGlobal(const std::string& path);
  // Arms a recorder over a caller-owned stream (tests).
  static void AttachGlobal(std::ostream* out);
  // Serializes all buffered events as trace JSON, writes them out, and
  // disarms. No-op when disarmed.
  static void CloseGlobal();

  // Appends one complete event for the calling thread. `start`/`end` are
  // steady_clock points; `args_json` is either empty or a serialized JSON
  // object (e.g. {"cache_hit":false}). Callers must check Armed() first.
  static void Emit(std::string_view name, std::string_view cat,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end,
                   std::string args_json = std::string());

 private:
  static std::atomic<bool> armed_;
};

// RAII trace-only slice: emits one complete event covering its scope when
// the recorder is armed, and does nothing (one flag load) otherwise.
// Unlike obs::Span it does NOT touch the profile tree, so wrapping a
// region in a TraceSpan never changes run-log span output — use it where
// a profile span would perturb InstrumentedRun's tree ownership.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, std::string_view cat = "qo")
      : armed_(TraceEventRecorder::Armed()) {
    if (armed_) {
      name_ = name;
      cat_ = cat;
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~TraceSpan() {
    if (armed_) {
      if (!args_.empty()) args_ += '}';
      TraceEventRecorder::Emit(name_, cat_, start_,
                               std::chrono::steady_clock::now(),
                               std::move(args_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // True when the slice will be emitted; lets callers skip annotation
  // work entirely while disarmed.
  bool armed() const { return armed_; }

  // Attach `"key":<raw>` to the event's args, where `raw` is already
  // valid JSON (a quoted string, number, or bool literal). No-ops while
  // disarmed.
  void AnnotateRaw(std::string_view key, std::string_view raw_json);
  void Annotate(std::string_view key, std::string_view string_value);
  void Annotate(std::string_view key, bool value) {
    AnnotateRaw(key, value ? "true" : "false");
  }
  void Annotate(std::string_view key, uint64_t value);

 private:
  bool armed_;
  std::string name_;
  std::string cat_;
  std::string args_;  // grows as {"k":v,"k":v and is closed in the dtor
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aqo::obs

#endif  // AQO_OBS_TRACE_H_
