#ifndef AQO_OBS_HISTOGRAM_H_
#define AQO_OBS_HISTOGRAM_H_

// Lock-free latency histograms: the distribution tier of the telemetry
// subsystem. Counters (obs/metrics.h) answer "how many"; histograms
// answer "how long" — p50/p99 latency of a batch item, a plan-cache
// probe, an optimizer invocation — without retaining samples.
//
// Layout is HDR-style log-linear: values bucket by power-of-two range
// with kSubBuckets linear sub-buckets per range, so every recorded value
// lands in a bucket whose width is at most 1/kSubBuckets of its lower
// bound (<= 6.25% relative error with the default 16 sub-buckets;
// values below kSubBuckets are exact). Recording is a relaxed-atomic
// bucket increment plus a relaxed sum add — safe from any thread, no
// locks, and within ~2x of a bare Counter::Increment (bench/micro's
// BM_HistogramRecord vs BM_CounterIncrement keeps this honest).
//
// The unit convention is microseconds with names ending in `_us`
// (`qo.service.item_computed_us`, `qo.plan_cache.probe_us`); see
// docs/observability.md for the naming rules.
//
// Hot-path usage mirrors counters — one registry lookup, then record:
//
//   static obs::Histogram& probe_us =
//       obs::Registry::Get().GetHistogram("qo.plan_cache.probe_us");
//   probe_us.Record(micros);

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace aqo::obs {

class Histogram;

// Immutable snapshot of one histogram's contents: totals plus the sparse
// non-empty buckets (index-sorted, so snapshots serialize and compare
// deterministically). Snapshots merge — the merge of two datas equals the
// data of recording both streams into one histogram — which is what makes
// per-thread and per-invocation distributions composable.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  std::vector<std::pair<uint32_t, uint64_t>> buckets;  // (index, count)

  // q in [0, 1]. Returns the upper bound of the bucket holding the
  // ceil(q*count)-th smallest recorded value, clamped to [min, max]; 0
  // when empty. Error bound: within one sub-bucket of the true order
  // statistic, i.e. relative error < 1/kSubBuckets for values >=
  // kSubBuckets and exact below.
  uint64_t Quantile(double q) const;

  // Folds `other` in (buckets unioned, min/max widened, totals added).
  void Merge(const HistogramData& other);

  bool operator==(const HistogramData& other) const {
    return count == other.count && sum == other.sum && min == other.min &&
           max == other.max && buckets == other.buckets;
  }
};

// Scoped per-thread histogram attribution, the distribution analogue of
// ThreadCounterTally: while a tally is on a thread's stack, every
// Histogram::Record made *by that thread* is also folded into the tally,
// so a run record can report the latency distributions of exactly one
// invocation while other pool workers hammer the same global histograms.
// Tallies nest; popping an inner tally folds its contents into the
// enclosing one. Cost when no tally is active: one thread-local pointer
// load and a predictable branch per Record.
class ThreadHistogramTally {
 public:
  ThreadHistogramTally();
  ~ThreadHistogramTally();

  ThreadHistogramTally(const ThreadHistogramTally&) = delete;
  ThreadHistogramTally& operator=(const ThreadHistogramTally&) = delete;

  static ThreadHistogramTally* Current();

  // Name-sorted (name, data) pairs recorded so far; empty histograms
  // never appear.
  std::vector<std::pair<std::string, HistogramData>> Snapshot() const;

 private:
  friend class Histogram;
  void Record(const Histogram* histogram, uint64_t value);

  struct Local {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::map<uint32_t, uint64_t> buckets;
  };

  std::unordered_map<const Histogram*, Local> locals_;
  ThreadHistogramTally* parent_;
};

// A process-lifetime latency histogram. Create through
// Registry::GetHistogram (obs/metrics.h); references are stable forever.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
  // Ranges: values < kSubBuckets are exact (kSubBuckets buckets), then
  // one range of kSubBuckets buckets per remaining power of two.
  static constexpr uint32_t kNumBuckets =
      static_cast<uint32_t>((64 - kSubBucketBits + 1) * kSubBuckets);

  // Log-linear bucket math, exposed for tests and consumers re-deriving
  // bounds from serialized bucket indexes.
  static uint32_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(uint32_t index);
  static uint64_t BucketUpperBound(uint32_t index);

  // Records one value (typically a latency in microseconds). Relaxed
  // atomics; safe from any thread.
  void Record(uint64_t value);

  // Convenience for callers timing with double seconds.
  void RecordSeconds(double seconds) {
    Record(seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e6));
  }

  // Consistent-enough snapshot (advisory under concurrent writes, exact
  // once writers are quiescent). Bucket list is index-sorted.
  HistogramData Snapshot() const;

  // Test isolation only, like Counter::Reset.
  void Reset();

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

// Name-sorted (name, data) snapshot of every registered histogram, the
// distribution analogue of CounterSnapshot.
using HistogramSnapshot = std::vector<std::pair<std::string, HistogramData>>;

// RAII latency timer: records the scope's wall time into `histogram` in
// microseconds on destruction.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram& histogram);
  ~ScopedLatencyTimer();
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram& histogram_;
  uint64_t start_ns_;
};

}  // namespace aqo::obs

#endif  // AQO_OBS_HISTOGRAM_H_
