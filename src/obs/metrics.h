#ifndef AQO_OBS_METRICS_H_
#define AQO_OBS_METRICS_H_

// Process-wide counter/gauge registry. Counters are the always-on layer of
// the telemetry subsystem: optimizers and reductions increment them
// unconditionally (a single relaxed atomic add on the hot path), and the
// run-log machinery snapshots them around an invocation to attribute the
// deltas to one record.
//
// Names are hierarchical, dot-separated, lowercase: <area>.<algo>.<what>,
// e.g. "qon.dp.states", "qon.sa.accepts", "qoh.decomp.fragments",
// "reduce.sat_to_clique.vertices". See docs/observability.md for the
// naming conventions and the list of counters each algorithm maintains.
//
// Hot-path usage pattern (one registry lookup per process, then a relaxed
// increment per event):
//
//   static obs::Counter& accepts =
//       obs::Registry::Get().GetCounter("qon.sa.accepts");
//   accepts.Increment();

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace aqo::obs {

class Counter;
class Histogram;
struct HistogramData;

// Scoped per-thread counter attribution. While a tally is on a thread's
// stack, every Counter increment made *by that thread* is also recorded
// into the tally, so the run-log layer can attribute an invocation's exact
// counter deltas even while other threads hammer the same global counters
// concurrently (a whole-registry before/after snapshot cannot). Tallies
// nest: popping an inner tally folds its totals into the enclosing one,
// matching the old snapshot semantics where an outer record includes the
// work of nested instrumented runs.
//
// The hot-path cost when no tally is active — the always-on case — is one
// thread-local pointer load and a predictable branch per increment.
class ThreadCounterTally {
 public:
  ThreadCounterTally();
  ~ThreadCounterTally();

  ThreadCounterTally(const ThreadCounterTally&) = delete;
  ThreadCounterTally& operator=(const ThreadCounterTally&) = delete;

  // This thread's innermost active tally, or nullptr.
  static ThreadCounterTally* Current();

  // Name-sorted (counter, delta) pairs recorded so far, zero deltas
  // dropped — same shape as Registry::Delta output.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

 private:
  friend class Counter;
  void Record(const Counter* counter, uint64_t delta) {
    deltas_[counter] += delta;
  }

  std::unordered_map<const Counter*, uint64_t> deltas_;
  ThreadCounterTally* parent_;
};

// Monotonic event counter. Increments are relaxed atomics: safe from any
// thread, no ordering guarantees needed (snapshots are advisory).
class Counter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    if (ThreadCounterTally* tally = ThreadCounterTally::Current()) {
      tally->Record(this, delta);
    }
  }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins scalar (e.g. "qon.bnb.best_cost_log2"). Same threading
// rules as Counter.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

// Name -> metric snapshot, sorted by name (map iteration order).
using CounterSnapshot = std::vector<std::pair<std::string, uint64_t>>;
using GaugeSnapshot = std::vector<std::pair<std::string, double>>;

// Process-wide registry. GetCounter/GetGauge/GetHistogram find-or-create
// under a mutex; returned references are stable for the life of the
// process, so callers cache them in function-local statics and never
// touch the lock again.
class Registry {
 public:
  static Registry& Get();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  // Latency distributions (obs/histogram.h); names end in `_us`.
  Histogram& GetHistogram(std::string_view name);

  CounterSnapshot Counters() const;
  GaugeSnapshot Gauges() const;
  // Name-sorted snapshot of every histogram (empty ones included, so the
  // set of keys is stable once all call sites have been reached).
  std::vector<std::pair<std::string, HistogramData>> Histograms() const;

  // Resets every counter to 0 (gauges keep their last value). Meant for
  // test isolation, not for production use — run records use deltas.
  void ResetCounters();
  // Test isolation for histograms, same caveats as ResetCounters.
  void ResetHistograms();

  // after - before, dropping entries whose delta is 0. `before` may lack
  // counters that were created after it was taken.
  static CounterSnapshot Delta(const CounterSnapshot& before,
                               const CounterSnapshot& after);

 private:
  Registry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace aqo::obs

#endif  // AQO_OBS_METRICS_H_
