#include "obs/provenance.h"

#include <cstdio>
#include <ctime>

#ifdef __unix__
#include <unistd.h>
#endif

#ifndef AQO_GIT_SHA
#define AQO_GIT_SHA "unknown"
#endif
#ifndef AQO_BUILD_TYPE
#define AQO_BUILD_TYPE "unknown"
#endif

namespace aqo::obs {

Provenance CollectProvenance() {
  Provenance p;
  p.git_sha = AQO_GIT_SHA;
  p.compiler =
#if defined(__clang__)
      std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
      std::string("gcc ") + __VERSION__;
#else
      "unknown";
#endif
  p.build_type = AQO_BUILD_TYPE;

  char host[256] = "unknown";
#ifdef __unix__
  if (gethostname(host, sizeof(host)) != 0) {
    std::snprintf(host, sizeof(host), "unknown");
  }
  host[sizeof(host) - 1] = '\0';
#endif
  p.hostname = host;

  std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
#ifdef __unix__
  gmtime_r(&now, &tm_utc);
#else
  tm_utc = *std::gmtime(&now);
#endif
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  p.timestamp_utc = stamp;
  return p;
}

JsonValue ProvenanceJson() {
  Provenance p = CollectProvenance();
  JsonValue out = JsonValue::Object();
  out["git_sha"] = p.git_sha;
  out["compiler"] = p.compiler;
  out["build_type"] = p.build_type;
  out["hostname"] = p.hostname;
  out["timestamp_utc"] = p.timestamp_utc;
  return out;
}

}  // namespace aqo::obs
