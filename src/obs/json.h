#ifndef AQO_OBS_JSON_H_
#define AQO_OBS_JSON_H_

// Minimal JSON document model for the run-log emitter and its consumers:
// enough to serialize telemetry records and to re-parse them in tests and
// tooling (the schema-guard test round-trips every emitted line). Not a
// general-purpose JSON library: numbers are int64/uint64/double, no
// \uXXXX escapes beyond pass-through of ASCII, objects keep insertion
// order.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aqo::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  // Objects preserve insertion order so records serialize with a stable,
  // human-friendly key layout ("type" first, "counters" last).
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool v) : kind_(Kind::kBool), bool_(v) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(const char* v) : kind_(Kind::kString), string_(v) {}
  JsonValue(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}
  JsonValue(std::string_view v) : kind_(Kind::kString), string_(v) {}

  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool AsBool() const { return bool_; }
  double AsDouble() const;
  int64_t AsInt() const;
  uint64_t AsUint() const;
  const std::string& AsString() const { return string_; }

  // Object access. operator[] find-or-inserts (must be an object).
  JsonValue& operator[](std::string_view key);
  const JsonValue* Find(std::string_view key) const;  // nullptr when absent
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  const std::vector<Member>& members() const { return members_; }

  // Array access.
  void Push(JsonValue v);
  const std::vector<JsonValue>& items() const { return items_; }
  size_t size() const;

  // Compact single-line serialization (newline-free: JSONL-safe).
  std::string Dump() const;

  // Strict-enough parser; nullopt on malformed input or trailing garbage.
  static std::optional<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

}  // namespace aqo::obs

#endif  // AQO_OBS_JSON_H_
