#ifndef AQO_OBS_RUNLOG_H_
#define AQO_OBS_RUNLOG_H_

// JSONL run-log emitter: one structured record per line.
//
// A log starts with a `run_header` record carrying provenance (git sha,
// compiler, build type, seed, hostname, timestamp) and is followed by
// records describing work the process did — most importantly
// `optimizer_run` records, one per optimizer invocation, with the instance
// shape, the result (cost in log2, evaluations), wall time, the counter
// deltas attributed to the invocation, and the span profile tree.
//
// The process has at most one *global* log (what --json-out attaches);
// instrumentation points query RunLog::Global() and do nothing when no log
// is attached, so telemetry costs one pointer load when disabled. Tests
// attach a log over a caller-owned ostream instead of a file.
//
// Record schema: see docs/observability.md. The schema-guard test
// (tests/obs_test.cc) re-parses emitted lines and fails if a required key
// disappears — update the doc and the test together with any change.

#include <chrono>
#include <cmath>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/cancellation.h"

namespace aqo::obs {

inline constexpr int kRunLogSchemaVersion = 1;

class RunLog {
 public:
  // Log writing to a caller-owned stream (kept alive by the caller).
  explicit RunLog(std::ostream* out);
  ~RunLog();

  // The process-wide log, or nullptr when none is attached.
  static RunLog* Global();
  // Attaches a file-backed global log (truncates `path`); false when the
  // file cannot be opened. Replaces any previously attached global log.
  static bool OpenGlobal(const std::string& path);
  // Attaches a global log over a caller-owned stream (tests).
  static void AttachGlobal(std::ostream* out);
  static void CloseGlobal();

  // Serializes `record` as one line and flushes (crash-safe artifacts).
  // While a RunLogBuffer is active on the calling thread the line is
  // captured there instead of reaching the stream.
  void Write(const JsonValue& record);

  // Appends pre-serialized lines (a RunLogBuffer's contents) verbatim.
  void WriteRaw(const std::string& lines);

  // Emits the provenance header. `binary` is the emitting program's name,
  // `args` its raw argv tail.
  void WriteHeader(std::string_view binary, uint64_t seed,
                   const std::vector<std::string>& args);

 private:
  RunLog(std::unique_ptr<std::ofstream> file);

  std::unique_ptr<std::ofstream> file_;  // set when file-backed
  std::ostream* out_;
  std::mutex mu_;
};

// Captures the calling thread's RunLog::Write()s into an in-memory string
// while in scope. This is how parallel sweeps keep run-log record order
// independent of scheduling: each sweep cell runs under its own buffer on
// whatever worker executes it, and the runner replays the buffers in cell
// order with RunLog::WriteRaw afterwards (see bench/bench_common.h).
// Scopes nest per thread (inner captures win); anything not Take()n is
// discarded at scope exit.
class RunLogBuffer {
 public:
  RunLogBuffer();
  ~RunLogBuffer();

  RunLogBuffer(const RunLogBuffer&) = delete;
  RunLogBuffer& operator=(const RunLogBuffer&) = delete;

  // Drains the captured lines (each newline-terminated).
  std::string Take() { return std::move(buffer_); }

 private:
  friend class RunLog;
  static RunLogBuffer* Current();

  std::string buffer_;
  RunLogBuffer* parent_;
};

// Instance shape attached to each optimizer_run record.
struct InstanceShape {
  std::string family;  // "qon" | "qoh"
  std::string kind;    // e.g. "random", "clique_yes", "multipartite_no"
  std::string side;    // "yes" | "no" | "" when not a gap instance
  std::string source;  // source reduction, e.g. "f_N", "f_H", "" when none
  int n = 0;           // relations
  int edges = 0;       // join predicates
};

// Span profile tree as JSON: {"name","seconds","count","children":[...]}.
JsonValue ProfileJson(const ProfileNode& node);

// One histogram's summary as JSON:
// {"count","sum_us","min_us","max_us","p50_us","p90_us","p99_us","p999_us"}.
JsonValue HistogramJson(const HistogramData& data);

// A (name -> HistogramJson) object for a snapshot, the value of the
// record-level "histograms" key.
JsonValue HistogramsJson(const HistogramSnapshot& histograms);

// Builds and writes an optimizer_run record to the global log (no-op
// without one). `cost_log2` is ignored when !feasible (serialized null).
// A "status" key is added ONLY when `status` != kComplete, so records of
// complete (unbudgeted) runs are byte-identical to the pre-status schema.
// `histograms` are the latency distributions attributed to the invocation
// (a ThreadHistogramTally snapshot); the "histograms" key is always
// present, empty when nothing was recorded.
void EmitRunRecord(std::string_view optimizer, const InstanceShape& shape,
                   bool feasible, double cost_log2, uint64_t evaluations,
                   double wall_seconds, const CounterSnapshot& counters,
                   const ProfileNode* profile,
                   PlanStatus status = PlanStatus::kComplete,
                   const HistogramSnapshot& histograms = {});

// Runs `fn` (an optimizer invocation returning a result with `feasible`,
// `cost` (LogDouble) and `evaluations` members — OptimizerResult or
// QohOptimizerResult), measuring wall time, counter deltas and the span
// profile, and emits an optimizer_run record. When no global log is
// attached this is exactly `fn()`: no snapshots, no timing.
//
// Counter deltas are attributed through a per-thread ThreadCounterTally,
// so the record charges exactly the increments this invocation made (plus
// any nested instrumented runs), even when other pool workers increment
// the same counters concurrently. The span profile is the calling
// thread's (Profiler is thread-local), so worker-side invocations under a
// sweep get their own consistent trees.
template <typename Fn>
auto InstrumentedRun(std::string_view optimizer, const InstanceShape& shape,
                     Fn&& fn) {
  if (RunLog::Global() == nullptr) return fn();
  Profiler& profiler = Profiler::Get();
  // Only reset the profile when we own the whole tree (no open spans), so
  // nested instrumented runs degrade gracefully instead of corrupting it.
  bool owns_profile = profiler.current() == profiler.root();
  if (owns_profile) profiler.Reset();
  ThreadCounterTally tally;
  ThreadHistogramTally hist_tally;
  auto start = std::chrono::steady_clock::now();
  auto result = fn();
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Results that predate PlanStatus (or test fakes) log as complete.
  PlanStatus status = PlanStatus::kComplete;
  if constexpr (requires { result.status; }) status = result.status;
  EmitRunRecord(optimizer, shape, result.feasible,
                result.feasible ? result.cost.Log2() : std::nan(""),
                result.evaluations, wall_seconds, tally.Snapshot(),
                owns_profile ? profiler.root() : nullptr, status,
                hist_tally.Snapshot());
  return result;
}

}  // namespace aqo::obs

#endif  // AQO_OBS_RUNLOG_H_
