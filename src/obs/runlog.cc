#include "obs/runlog.h"

#include "obs/provenance.h"
#include "util/check.h"

namespace aqo::obs {

namespace {

// Owned by the process; replaced by OpenGlobal/AttachGlobal.
std::unique_ptr<RunLog>& GlobalSlot() {
  static std::unique_ptr<RunLog>* slot = new std::unique_ptr<RunLog>();
  return *slot;
}

thread_local RunLogBuffer* tls_runlog_buffer = nullptr;

}  // namespace

RunLogBuffer::RunLogBuffer() : parent_(tls_runlog_buffer) {
  tls_runlog_buffer = this;
}

RunLogBuffer::~RunLogBuffer() { tls_runlog_buffer = parent_; }

RunLogBuffer* RunLogBuffer::Current() { return tls_runlog_buffer; }

RunLog::RunLog(std::ostream* out) : out_(out) { AQO_CHECK(out != nullptr); }

RunLog::RunLog(std::unique_ptr<std::ofstream> file)
    : file_(std::move(file)), out_(file_.get()) {}

RunLog::~RunLog() = default;

RunLog* RunLog::Global() { return GlobalSlot().get(); }

bool RunLog::OpenGlobal(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!file->is_open()) return false;
  GlobalSlot() = std::unique_ptr<RunLog>(new RunLog(std::move(file)));
  return true;
}

void RunLog::AttachGlobal(std::ostream* out) {
  GlobalSlot() = std::make_unique<RunLog>(out);
}

void RunLog::CloseGlobal() { GlobalSlot().reset(); }

void RunLog::Write(const JsonValue& record) {
  std::string line = record.Dump();
  line += '\n';
  if (RunLogBuffer* buffer = RunLogBuffer::Current()) {
    buffer->buffer_ += line;
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << line;
  out_->flush();
}

void RunLog::WriteRaw(const std::string& lines) {
  if (lines.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << lines;
  out_->flush();
}

void RunLog::WriteHeader(std::string_view binary, uint64_t seed,
                         const std::vector<std::string>& args) {
  JsonValue rec = JsonValue::Object();
  rec["type"] = "run_header";
  rec["schema_version"] = kRunLogSchemaVersion;
  rec["binary"] = binary;
  rec["seed"] = seed;
  JsonValue argv = JsonValue::Array();
  for (const std::string& a : args) argv.Push(a);
  rec["args"] = std::move(argv);
  rec["provenance"] = ProvenanceJson();
  Write(rec);
}

JsonValue ProfileJson(const ProfileNode& node) {
  JsonValue out = JsonValue::Object();
  out["name"] = node.name;
  out["seconds"] = node.total_seconds;
  out["count"] = node.count;
  if (!node.children.empty()) {
    JsonValue children = JsonValue::Array();
    for (const auto& child : node.children) {
      children.Push(ProfileJson(*child));
    }
    out["children"] = std::move(children);
  }
  return out;
}

JsonValue HistogramJson(const HistogramData& data) {
  JsonValue out = JsonValue::Object();
  out["count"] = data.count;
  out["sum_us"] = data.sum;
  out["min_us"] = data.min;
  out["max_us"] = data.max;
  out["p50_us"] = data.Quantile(0.50);
  out["p90_us"] = data.Quantile(0.90);
  out["p99_us"] = data.Quantile(0.99);
  out["p999_us"] = data.Quantile(0.999);
  return out;
}

JsonValue HistogramsJson(const HistogramSnapshot& histograms) {
  JsonValue out = JsonValue::Object();
  for (const auto& [name, data] : histograms) out[name] = HistogramJson(data);
  return out;
}

void EmitRunRecord(std::string_view optimizer, const InstanceShape& shape,
                   bool feasible, double cost_log2, uint64_t evaluations,
                   double wall_seconds, const CounterSnapshot& counters,
                   const ProfileNode* profile, PlanStatus status,
                   const HistogramSnapshot& histograms) {
  RunLog* log = RunLog::Global();
  if (log == nullptr) return;

  JsonValue rec = JsonValue::Object();
  rec["type"] = "optimizer_run";
  rec["optimizer"] = optimizer;
  JsonValue inst = JsonValue::Object();
  inst["family"] = shape.family;
  inst["kind"] = shape.kind;
  inst["side"] = shape.side;
  inst["source"] = shape.source;
  inst["n"] = shape.n;
  inst["edges"] = shape.edges;
  rec["instance"] = std::move(inst);
  rec["feasible"] = feasible;
  rec["cost_log2"] = feasible ? JsonValue(cost_log2) : JsonValue();
  rec["evaluations"] = evaluations;
  // Only cut-short / failed runs carry a status key: complete runs keep
  // the pre-status record bytes (the determinism contract of PRs 2-3).
  if (status != PlanStatus::kComplete) {
    rec["status"] = PlanStatusName(status);
  }
  rec["wall_seconds"] = wall_seconds;
  JsonValue cs = JsonValue::Object();
  for (const auto& [name, value] : counters) cs[name] = value;
  rec["counters"] = std::move(cs);
  // Always present (possibly empty), like "spans": latency distributions
  // attributed to this invocation. Values are run-varying (they are real
  // timings); differential checks normalize this key like wall_seconds.
  rec["histograms"] = HistogramsJson(histograms);
  // Always present (possibly empty): consumers index into it unconditionally.
  JsonValue spans = JsonValue::Array();
  if (profile != nullptr) {
    for (const auto& child : profile->children) {
      spans.Push(ProfileJson(*child));
    }
  }
  rec["spans"] = std::move(spans);
  log->Write(rec);
}

}  // namespace aqo::obs
