#ifndef AQO_OBS_PROVENANCE_H_
#define AQO_OBS_PROVENANCE_H_

// Build/run provenance captured into every run-log header: enough to tie a
// JSONL artifact back to the exact source revision and build configuration
// that produced it. The git sha and build type are baked in at configure
// time (see src/obs/CMakeLists.txt); the rest is collected at runtime.

#include <string>

#include "obs/json.h"

namespace aqo::obs {

struct Provenance {
  std::string git_sha;        // short sha, or "unknown" outside a checkout
  std::string compiler;       // e.g. "g++ 13.2.0" (__VERSION__)
  std::string build_type;     // CMAKE_BUILD_TYPE
  std::string hostname;
  std::string timestamp_utc;  // ISO 8601, e.g. "2026-08-07T12:34:56Z"
};

Provenance CollectProvenance();

// Provenance as a JSON object with keys git_sha, compiler, build_type,
// hostname, timestamp_utc.
JsonValue ProvenanceJson();

}  // namespace aqo::obs

#endif  // AQO_OBS_PROVENANCE_H_
