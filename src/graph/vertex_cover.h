#ifndef AQO_GRAPH_VERTEX_COVER_H_
#define AQO_GRAPH_VERTEX_COVER_H_

// Vertex cover solvers, used to validate the 3SAT -> VERTEX COVER gadget
// reduction (Theorem 2 of the paper, via Garey & Johnson) that underlies
// Lemmas 3 and 4.

#include <vector>

#include "graph/graph.h"

namespace aqo {

// Exact minimum vertex cover size via branch & bound (branch on a
// max-degree vertex: either it is in the cover, or all its neighbors are).
// Exponential; intended for the small graphs in tests/benches.
int MinVertexCoverSize(const Graph& g);

// Maximal-matching 2-approximation; returns the cover vertices.
std::vector<int> ApproxVertexCover(const Graph& g);

}  // namespace aqo

#endif  // AQO_GRAPH_VERTEX_COVER_H_
