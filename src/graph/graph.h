#ifndef AQO_GRAPH_GRAPH_H_
#define AQO_GRAPH_GRAPH_H_

// Undirected simple graphs over vertices {0, ..., n-1}, stored as one
// adjacency bitset per vertex. This is the shared substrate for query
// graphs, the CLIQUE / VERTEX COVER reductions, and the clique solvers.

#include <utility>
#include <vector>

#include "util/bitset.h"
#include "util/check.h"

namespace aqo {

class Graph {
 public:
  Graph() = default;
  explicit Graph(int n) : n_(n), adj_(static_cast<size_t>(n), DynamicBitset(n)) {
    AQO_CHECK(n >= 0);
  }

  static Graph FromEdges(int n, const std::vector<std::pair<int, int>>& edges);

  // Complete graph K_n.
  static Graph Complete(int n);

  int NumVertices() const { return n_; }
  int NumEdges() const { return num_edges_; }

  // Adds edge {u, v}; no-op when it already exists. Self-loops are illegal.
  void AddEdge(int u, int v);
  void RemoveEdge(int u, int v);

  bool HasEdge(int u, int v) const {
    AQO_DCHECK(InRange(u) && InRange(v));
    return adj_[static_cast<size_t>(u)].Test(v);
  }

  int Degree(int v) const { return adj_[static_cast<size_t>(v)].Count(); }
  int MinDegree() const;
  int MaxDegree() const;

  const DynamicBitset& Neighbors(int v) const {
    AQO_DCHECK(InRange(v));
    return adj_[static_cast<size_t>(v)];
  }

  // All edges as (u, v) with u < v, lexicographic.
  std::vector<std::pair<int, int>> Edges() const;

  // Graph complement (no self-loops).
  Graph Complement() const;

  // Induced subgraph on `vertices`; vertex i of the result corresponds to
  // vertices[i]. Duplicates are illegal.
  Graph InducedSubgraph(const std::vector<int>& vertices) const;

  // True when every pair in `vertices` is adjacent.
  bool IsClique(const std::vector<int>& vertices) const;
  bool IsCliqueSet(const DynamicBitset& vertices) const;

  // True when every edge has at least one endpoint in `cover`.
  bool IsVertexCover(const DynamicBitset& cover) const;

  bool IsConnected() const;

  // Number of edges of the subgraph induced by `vertices`.
  int InducedEdgeCount(const DynamicBitset& vertices) const;

  friend bool operator==(const Graph& a, const Graph& b) = default;

 private:
  bool InRange(int v) const { return 0 <= v && v < n_; }

  int n_ = 0;
  int num_edges_ = 0;
  std::vector<DynamicBitset> adj_;
};

// Disjoint union of g1 and g2; vertices of g2 are shifted by
// g1.NumVertices().
Graph DisjointUnion(const Graph& g1, const Graph& g2);

}  // namespace aqo

#endif  // AQO_GRAPH_GRAPH_H_
