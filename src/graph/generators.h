#ifndef AQO_GRAPH_GENERATORS_H_
#define AQO_GRAPH_GENERATORS_H_

// Random and structured graph generators.
//
// The CLIQUE variants in the paper (Section 3) restrict instances to graphs
// where every vertex has degree >= |V| - 14, i.e. the complement has maximum
// degree <= 13. CliqueClassGraph generates exactly that family, optionally
// with a planted clique (YES instances) or with the complement arranged so
// that no large clique survives (NO instances rely on the caller checking
// with the exact solver).

#include "graph/graph.h"
#include "util/random.h"

namespace aqo {

// Erdos-Renyi G(n, p).
Graph Gnp(int n, double p, Rng* rng);

// Uniform graph with exactly m edges.
Graph RandomWithEdgeCount(int n, int m, Rng* rng);

// G(n, p) with a clique planted on k random vertices. Out param
// `planted_vertices` (optional) receives the clique members.
Graph PlantedClique(int n, int k, double p, Rng* rng,
                    std::vector<int>* planted_vertices = nullptr);

// A graph in the paper's CLIQUE instance class: every vertex has degree
// >= n - 1 - max_complement_degree (paper: max_complement_degree = 13).
// The complement is a random graph with maximum degree <= that bound.
// When planted_clique_size > 0, the complement avoids edges inside a random
// vertex subset of that size, so the returned graph contains it as a clique
// (recorded in `planted_vertices` when non-null).
Graph CliqueClassGraph(int n, int max_complement_degree, double density,
                       int planted_clique_size, Rng* rng,
                       std::vector<int>* planted_vertices = nullptr);

// Connected graph with exactly m edges (requires n-1 <= m <= n(n-1)/2):
// a random spanning tree plus uniformly sampled extra edges.
Graph ConnectedWithEdgeBudget(int n, int m, Rng* rng);

// Uniform random labelled tree (Prufer sequence).
Graph RandomTree(int n, Rng* rng);

// Path 0-1-2-...-(n-1).
Graph Chain(int n);

// Star with center 0.
Graph Star(int n);

// Cycle 0-1-...-(n-1)-0.
Graph Cycle(int n);

// Balanced complete multipartite graph: vertices u, v are adjacent iff
// u % parts != v % parts. Its maximum clique has size exactly `parts`
// (one vertex per class) — the provably-omega NO instances of E1/E3/E7.
Graph CompleteMultipartite(int n, int parts);

}  // namespace aqo

#endif  // AQO_GRAPH_GENERATORS_H_
