#include "graph/clique.h"

#include <algorithm>

#include "util/check.h"

namespace aqo {

namespace {

// Tomita-style MCQ: expand candidates in reverse greedy-coloring order and
// prune with the color bound.
class CliqueSearch {
 public:
  CliqueSearch(const Graph& g, uint64_t node_limit, int target)
      : g_(g), node_limit_(node_limit), target_(target) {}

  MaxCliqueResult Run() {
    DynamicBitset all(g_.NumVertices());
    all.SetAll();
    current_.clear();
    Expand(all);
    MaxCliqueResult result;
    result.clique = best_;
    std::sort(result.clique.begin(), result.clique.end());
    result.nodes_explored = nodes_;
    result.exact = !stopped_;
    return result;
  }

 private:
  void Expand(const DynamicBitset& candidates) {
    if (stopped_) return;
    ++nodes_;
    if (node_limit_ > 0 && nodes_ > node_limit_) {
      stopped_ = true;
      return;
    }

    // Greedy coloring of the candidate set; vertices of color class c can
    // contribute at most c vertices to any clique inside `candidates`.
    std::vector<int> order;
    std::vector<int> color_bound;
    DynamicBitset uncolored = candidates;
    int color = 0;
    while (uncolored.Any()) {
      ++color;
      DynamicBitset available = uncolored;
      while (available.Any()) {
        int v = available.FindFirst();
        available.Reset(v);
        uncolored.Reset(v);
        // Neighbors of v cannot share its color class.
        DynamicBitset blocked = g_.Neighbors(v);
        // available &= ~blocked, word-wise via XOR trick: keep non-neighbors.
        DynamicBitset keep = available;
        keep &= blocked;
        available ^= keep;
        order.push_back(v);
        color_bound.push_back(color);
      }
    }

    DynamicBitset remaining = candidates;
    for (size_t i = order.size(); i-- > 0;) {
      if (static_cast<int>(current_.size()) + color_bound[i] <=
          static_cast<int>(best_.size())) {
        return;  // color bound prunes this and all earlier candidates
      }
      int v = order[i];
      current_.push_back(v);
      if (current_.size() > best_.size()) {
        best_ = current_;
        if (target_ > 0 && static_cast<int>(best_.size()) >= target_) {
          stopped_by_target_ = true;
        }
      }
      if (!stopped_by_target_) {
        DynamicBitset next = remaining;
        next &= g_.Neighbors(v);
        if (next.Any()) Expand(next);
      }
      current_.pop_back();
      if (stopped_ || stopped_by_target_) return;
      remaining.Reset(v);
    }
  }

  const Graph& g_;
  uint64_t node_limit_;
  int target_;
  uint64_t nodes_ = 0;
  bool stopped_ = false;
  bool stopped_by_target_ = false;
  std::vector<int> current_;
  std::vector<int> best_;
};

}  // namespace

MaxCliqueResult MaxClique(const Graph& g, uint64_t node_limit, int target) {
  if (g.NumVertices() == 0) return MaxCliqueResult{};
  CliqueSearch search(g, node_limit, target);
  MaxCliqueResult result = search.Run();
  AQO_CHECK(g.IsClique(result.clique));
  return result;
}

bool HasCliqueOfSize(const Graph& g, int k, uint64_t node_limit) {
  if (k <= 0) return true;
  if (k > g.NumVertices()) return false;
  MaxCliqueResult r = MaxClique(g, node_limit, k);
  return static_cast<int>(r.clique.size()) >= k;
}

std::vector<int> GreedyClique(const Graph& g, Rng* rng, int restarts) {
  AQO_CHECK(restarts >= 1);
  int n = g.NumVertices();
  std::vector<int> best;
  for (int r = 0; r < restarts; ++r) {
    // Random starting vertex; then repeatedly add the candidate with the
    // most neighbors inside the shrinking candidate set.
    if (n == 0) break;
    std::vector<int> clique;
    DynamicBitset candidates(n);
    candidates.SetAll();
    int v = static_cast<int>(rng->UniformInt(0, n - 1));
    while (true) {
      clique.push_back(v);
      candidates &= g.Neighbors(v);
      if (candidates.None()) break;
      int best_v = -1;
      int best_score = -1;
      candidates.ForEachSetBit([&](int w) {
        int score = g.Neighbors(w).AndCount(candidates);
        if (score > best_score) {
          best_score = score;
          best_v = w;
        }
      });
      v = best_v;
    }
    if (clique.size() > best.size()) best = std::move(clique);
  }
  std::sort(best.begin(), best.end());
  AQO_CHECK(g.IsClique(best));
  return best;
}

}  // namespace aqo
