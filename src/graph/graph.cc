#include "graph/graph.h"

#include <algorithm>

namespace aqo {

Graph Graph::FromEdges(int n, const std::vector<std::pair<int, int>>& edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) g.AddEdge(u, v);
  return g;
}

Graph Graph::Complete(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

void Graph::AddEdge(int u, int v) {
  AQO_CHECK(InRange(u) && InRange(v)) << "u=" << u << " v=" << v << " n=" << n_;
  AQO_CHECK(u != v) << "self-loop at " << u;
  if (HasEdge(u, v)) return;
  adj_[static_cast<size_t>(u)].Set(v);
  adj_[static_cast<size_t>(v)].Set(u);
  ++num_edges_;
}

void Graph::RemoveEdge(int u, int v) {
  AQO_CHECK(InRange(u) && InRange(v));
  if (!HasEdge(u, v)) return;
  adj_[static_cast<size_t>(u)].Reset(v);
  adj_[static_cast<size_t>(v)].Reset(u);
  --num_edges_;
}

int Graph::MinDegree() const {
  int d = n_ == 0 ? 0 : n_;
  for (int v = 0; v < n_; ++v) d = std::min(d, Degree(v));
  return d;
}

int Graph::MaxDegree() const {
  int d = 0;
  for (int v = 0; v < n_; ++v) d = std::max(d, Degree(v));
  return d;
}

std::vector<std::pair<int, int>> Graph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (int u = 0; u < n_; ++u) {
    adj_[static_cast<size_t>(u)].ForEachSetBit([&edges, u](int v) {
      if (u < v) edges.emplace_back(u, v);
    });
  }
  return edges;
}

Graph Graph::Complement() const {
  Graph g(n_);
  for (int v = 0; v < n_; ++v) {
    DynamicBitset row = ~adj_[static_cast<size_t>(v)];
    row.Reset(v);
    g.adj_[static_cast<size_t>(v)] = row;
  }
  g.num_edges_ = n_ * (n_ - 1) / 2 - num_edges_;
  return g;
}

Graph Graph::InducedSubgraph(const std::vector<int>& vertices) const {
  Graph g(static_cast<int>(vertices.size()));
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      AQO_CHECK(vertices[i] != vertices[j]) << "duplicate vertex";
      if (HasEdge(vertices[i], vertices[j]))
        g.AddEdge(static_cast<int>(i), static_cast<int>(j));
    }
  }
  return g;
}

bool Graph::IsClique(const std::vector<int>& vertices) const {
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      if (!HasEdge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

bool Graph::IsCliqueSet(const DynamicBitset& vertices) const {
  bool ok = true;
  vertices.ForEachSetBit([this, &vertices, &ok](int v) {
    if (!ok) return;
    // v must be adjacent to every other member.
    DynamicBitset others = vertices;
    others.Reset(v);
    if (!others.IsSubsetOf(Neighbors(v))) ok = false;
  });
  return ok;
}

bool Graph::IsVertexCover(const DynamicBitset& cover) const {
  for (int u = 0; u < n_; ++u) {
    if (cover.Test(u)) continue;
    // Every neighbor of an uncovered vertex must be in the cover.
    if (!Neighbors(u).IsSubsetOf(cover)) return false;
  }
  return true;
}

bool Graph::IsConnected() const {
  if (n_ <= 1) return true;
  DynamicBitset visited(n_);
  std::vector<int> stack = {0};
  visited.Set(0);
  int seen = 1;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    Neighbors(v).ForEachSetBit([&](int w) {
      if (!visited.Test(w)) {
        visited.Set(w);
        ++seen;
        stack.push_back(w);
      }
    });
  }
  return seen == n_;
}

int Graph::InducedEdgeCount(const DynamicBitset& vertices) const {
  int twice = 0;
  vertices.ForEachSetBit([this, &vertices, &twice](int v) {
    twice += Neighbors(v).AndCount(vertices);
  });
  return twice / 2;
}

Graph DisjointUnion(const Graph& g1, const Graph& g2) {
  int n1 = g1.NumVertices();
  Graph g(n1 + g2.NumVertices());
  for (const auto& [u, v] : g1.Edges()) g.AddEdge(u, v);
  for (const auto& [u, v] : g2.Edges()) g.AddEdge(u + n1, v + n1);
  return g;
}

}  // namespace aqo
