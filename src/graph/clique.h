#ifndef AQO_GRAPH_CLIQUE_H_
#define AQO_GRAPH_CLIQUE_H_

// Clique solvers.
//
// The hardness pipeline needs ground truth about omega(G) on both sides of
// every reduction: YES instances must contain a clique of the promised size
// and NO instances must not. MaxClique is an exact Tomita-style branch &
// bound with a greedy-coloring bound; GreedyClique is the cheap heuristic
// used to seed it and as an optimizer baseline.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace aqo {

struct MaxCliqueResult {
  std::vector<int> clique;      // vertices of the best clique found, sorted
  uint64_t nodes_explored = 0;  // search tree size
  bool exact = true;            // false when the node limit stopped the search
};

// Exact maximum clique (branch & bound, greedy coloring bound). When
// `node_limit` > 0 the search aborts after that many nodes and reports the
// incumbent with exact=false. When `target` > 0 the search additionally
// stops as soon as a clique of at least `target` vertices is found (the
// result is then a witness, not necessarily maximum).
MaxCliqueResult MaxClique(const Graph& g, uint64_t node_limit = 0,
                          int target = 0);

// True iff omega(g) >= k; uses the targeted search.
bool HasCliqueOfSize(const Graph& g, int k, uint64_t node_limit = 0);

// Randomized greedy clique: `restarts` greedy runs from random seeds,
// keeping the best. Always returns a (possibly empty) clique.
std::vector<int> GreedyClique(const Graph& g, Rng* rng, int restarts = 8);

}  // namespace aqo

#endif  // AQO_GRAPH_CLIQUE_H_
