#include "graph/generators.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace aqo {

Graph Gnp(int n, double p, Rng* rng) {
  AQO_CHECK(0.0 <= p && p <= 1.0);
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng->Bernoulli(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

Graph RandomWithEdgeCount(int n, int m, Rng* rng) {
  int max_edges = n * (n - 1) / 2;
  AQO_CHECK(0 <= m && m <= max_edges) << "m=" << m << " n=" << n;
  // Sample m distinct edge indices and decode.
  std::vector<int> picks = rng->SampleWithoutReplacement(max_edges, m);
  Graph g(n);
  for (int e : picks) {
    // Decode edge index e into (u, v), u < v, row-major over u.
    int u = 0;
    int row = n - 1;
    while (e >= row) {
      e -= row;
      ++u;
      --row;
    }
    int v = u + 1 + e;
    g.AddEdge(u, v);
  }
  return g;
}

Graph PlantedClique(int n, int k, double p, Rng* rng,
                    std::vector<int>* planted_vertices) {
  AQO_CHECK(0 <= k && k <= n);
  Graph g = Gnp(n, p, rng);
  std::vector<int> members = rng->SampleWithoutReplacement(n, k);
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      g.AddEdge(members[i], members[j]);
    }
  }
  if (planted_vertices != nullptr) {
    std::sort(members.begin(), members.end());
    *planted_vertices = std::move(members);
  }
  return g;
}

Graph CliqueClassGraph(int n, int max_complement_degree, double density,
                       int planted_clique_size, Rng* rng,
                       std::vector<int>* planted_vertices) {
  AQO_CHECK(max_complement_degree >= 0);
  AQO_CHECK(0 <= planted_clique_size && planted_clique_size <= n);
  AQO_CHECK(0.0 <= density && density <= 1.0);

  std::vector<int> planted =
      rng->SampleWithoutReplacement(n, planted_clique_size);
  std::sort(planted.begin(), planted.end());
  DynamicBitset in_planted(n);
  for (int v : planted) in_planted.Set(v);

  // Build the complement: random non-edges, respecting the max complement
  // degree and avoiding pairs inside the planted set. `density` scales how
  // close each vertex gets to the complement-degree cap.
  Graph comp(n);
  std::vector<int> degree(static_cast<size_t>(n), 0);
  // Candidate pairs in random order.
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(n) * static_cast<size_t>(n) / 2);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) pairs.emplace_back(u, v);
  }
  rng->Shuffle(&pairs);
  for (const auto& [u, v] : pairs) {
    if (in_planted.Test(u) && in_planted.Test(v)) continue;
    if (degree[static_cast<size_t>(u)] >= max_complement_degree ||
        degree[static_cast<size_t>(v)] >= max_complement_degree) {
      continue;
    }
    if (!rng->Bernoulli(density)) continue;
    comp.AddEdge(u, v);
    ++degree[static_cast<size_t>(u)];
    ++degree[static_cast<size_t>(v)];
  }

  Graph g = comp.Complement();
  AQO_CHECK(g.MinDegree() >= n - 1 - max_complement_degree);
  if (planted_vertices != nullptr) *planted_vertices = std::move(planted);
  return g;
}

Graph ConnectedWithEdgeBudget(int n, int m, Rng* rng) {
  AQO_CHECK(n >= 1);
  int max_edges = n * (n - 1) / 2;
  AQO_CHECK(n - 1 <= m && m <= max_edges)
      << "need n-1 <= m <= n(n-1)/2; n=" << n << " m=" << m;
  Graph g = RandomTree(n, rng);
  // Add random extra edges until the budget is met.
  while (g.NumEdges() < m) {
    int u = static_cast<int>(rng->UniformInt(0, n - 1));
    int v = static_cast<int>(rng->UniformInt(0, n - 1));
    if (u == v || g.HasEdge(u, v)) continue;
    g.AddEdge(u, v);
  }
  return g;
}

Graph RandomTree(int n, Rng* rng) {
  AQO_CHECK(n >= 1);
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.AddEdge(0, 1);
    return g;
  }
  // Decode a random Prufer sequence.
  std::vector<int> prufer(static_cast<size_t>(n - 2));
  for (int& x : prufer) x = static_cast<int>(rng->UniformInt(0, n - 1));
  std::vector<int> degree(static_cast<size_t>(n), 1);
  for (int x : prufer) ++degree[static_cast<size_t>(x)];
  // Repeatedly attach the smallest leaf to the next Prufer element.
  DynamicBitset leaf(n);
  for (int v = 0; v < n; ++v) {
    if (degree[static_cast<size_t>(v)] == 1) leaf.Set(v);
  }
  for (int x : prufer) {
    int v = leaf.FindFirst();
    leaf.Reset(v);
    g.AddEdge(v, x);
    if (--degree[static_cast<size_t>(x)] == 1) leaf.Set(x);
  }
  int a = leaf.FindFirst();
  int b = leaf.FindNext(a);
  g.AddEdge(a, b);
  return g;
}

Graph Chain(int n) {
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  return g;
}

Graph Star(int n) {
  Graph g(n);
  for (int v = 1; v < n; ++v) g.AddEdge(0, v);
  return g;
}

Graph Cycle(int n) {
  AQO_CHECK(n >= 3);
  Graph g = Chain(n);
  g.AddEdge(n - 1, 0);
  return g;
}

Graph CompleteMultipartite(int n, int parts) {
  AQO_CHECK(1 <= parts && parts <= n);
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (u % parts != v % parts) g.AddEdge(u, v);
    }
  }
  return g;
}

}  // namespace aqo
