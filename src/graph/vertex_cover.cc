#include "graph/vertex_cover.h"

#include <algorithm>

#include "util/check.h"

namespace aqo {

namespace {

// Branch & bound on a mutable copy. `budget` is the best known cover size
// minus vertices already taken; returns the minimum cover size of `g` or
// `budget` if no smaller cover exists (standard alpha-pruning).
int CoverSearch(Graph* g, int upper_bound) {
  // Remove degree-0 vertices implicitly (they never matter). Handle
  // degree-1 vertices greedily: taking the neighbor is always optimal.
  for (int v = 0; v < g->NumVertices(); ++v) {
    if (g->Degree(v) == 1) {
      int u = g->Neighbors(v).FindFirst();
      Graph reduced = *g;
      std::vector<int> neighbors = reduced.Neighbors(u).ToVector();
      for (int w : neighbors) reduced.RemoveEdge(u, w);
      return 1 + CoverSearch(&reduced, upper_bound - 1);
    }
  }
  if (g->NumEdges() == 0) return 0;
  if (upper_bound <= 0) return 1 << 20;  // prune: cannot beat incumbent

  // Lower bound: greedy maximal matching size.
  {
    Graph copy = *g;
    int matching = 0;
    for (const auto& [u, v] : g->Edges()) {
      if (copy.Degree(u) > 0 && copy.Degree(v) > 0 && copy.HasEdge(u, v)) {
        ++matching;
        std::vector<int> nu = copy.Neighbors(u).ToVector();
        for (int w : nu) copy.RemoveEdge(u, w);
        std::vector<int> nv = copy.Neighbors(v).ToVector();
        for (int w : nv) copy.RemoveEdge(v, w);
      }
    }
    if (matching >= upper_bound) return 1 << 20;
  }

  // Branch on a maximum-degree vertex v: either v is in the cover, or all
  // of N(v) are.
  int v = 0;
  for (int u = 1; u < g->NumVertices(); ++u) {
    if (g->Degree(u) > g->Degree(v)) v = u;
  }
  std::vector<int> neighbors = g->Neighbors(v).ToVector();

  Graph take_v = *g;
  for (int w : neighbors) take_v.RemoveEdge(v, w);
  int best = 1 + CoverSearch(&take_v, upper_bound - 1);

  int nb = static_cast<int>(neighbors.size());
  if (nb < std::min(best, upper_bound)) {
    Graph take_n = *g;
    for (int w : neighbors) {
      std::vector<int> nw = take_n.Neighbors(w).ToVector();
      for (int x : nw) take_n.RemoveEdge(w, x);
    }
    best = std::min(best,
                    nb + CoverSearch(&take_n, std::min(best, upper_bound) - nb));
  }
  return best;
}

}  // namespace

int MinVertexCoverSize(const Graph& g) {
  Graph copy = g;
  int upper = static_cast<int>(ApproxVertexCover(g).size());
  int exact = CoverSearch(&copy, upper + 1);
  AQO_CHECK(exact <= upper);
  return exact;
}

std::vector<int> ApproxVertexCover(const Graph& g) {
  Graph copy = g;
  std::vector<int> cover;
  for (const auto& [u, v] : g.Edges()) {
    if (copy.HasEdge(u, v)) {
      cover.push_back(u);
      cover.push_back(v);
      std::vector<int> nu = copy.Neighbors(u).ToVector();
      for (int w : nu) copy.RemoveEdge(u, w);
      std::vector<int> nv = copy.Neighbors(v).ToVector();
      for (int w : nv) copy.RemoveEdge(v, w);
    }
  }
  std::sort(cover.begin(), cover.end());
  DynamicBitset cover_set(g.NumVertices());
  for (int v : cover) cover_set.Set(v);
  AQO_CHECK(g.IsVertexCover(cover_set));
  return cover;
}

}  // namespace aqo
