#include "sqo/partition.h"

#include <algorithm>

#include "util/check.h"

namespace aqo {

int64_t PartitionInstance::Total() const {
  int64_t sum = 0;
  for (int64_t v : values) {
    AQO_CHECK(v >= 0);
    sum += v;
  }
  return sum;
}

std::optional<std::vector<int>> SolvePartitionDp(const PartitionInstance& inst) {
  int64_t total = inst.Total();
  AQO_CHECK(total % 2 == 0) << "PARTITION variant requires an even total";
  int64_t half = total / 2;
  AQO_CHECK(half <= (int64_t{1} << 26)) << "DP table too large";
  int n = static_cast<int>(inst.values.size());

  // reach[s] = index of the last value used to first reach sum s, or -1.
  std::vector<int> reach(static_cast<size_t>(half) + 1, -1);
  std::vector<int> reached_at(static_cast<size_t>(half) + 1, -1);
  reach[0] = n;  // sentinel: sum 0 needs nothing
  for (int i = 0; i < n; ++i) {
    int64_t v = inst.values[static_cast<size_t>(i)];
    if (v > half) continue;
    for (int64_t s = half; s >= v; --s) {
      if (reach[static_cast<size_t>(s)] < 0 &&
          reach[static_cast<size_t>(s - v)] >= 0 &&
          reached_at[static_cast<size_t>(s - v)] < i) {
        reach[static_cast<size_t>(s)] = i;
        reached_at[static_cast<size_t>(s)] = i;
      }
    }
  }
  if (reach[static_cast<size_t>(half)] < 0) return std::nullopt;

  std::vector<int> subset;
  int64_t s = half;
  while (s > 0) {
    int i = reach[static_cast<size_t>(s)];
    AQO_CHECK(0 <= i && i < n);
    subset.push_back(i);
    s -= inst.values[static_cast<size_t>(i)];
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

std::optional<std::vector<int>> SolvePartitionBrute(
    const PartitionInstance& inst) {
  int n = static_cast<int>(inst.values.size());
  AQO_CHECK(n <= 24);
  int64_t total = inst.Total();
  AQO_CHECK(total % 2 == 0);
  int64_t half = total / 2;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    int64_t s = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) s += inst.values[static_cast<size_t>(i)];
    }
    if (s == half) {
      std::vector<int> subset;
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) subset.push_back(i);
      }
      return subset;
    }
  }
  return std::nullopt;
}

PartitionInstance RandomPartitionInstance(int n, int64_t max_value,
                                          bool force_yes, Rng* rng) {
  AQO_CHECK(n >= 2);
  PartitionInstance inst;
  if (force_yes) {
    // Build two halves of equal sum: draw pairs (v, v) and then split some
    // pairs asymmetrically while preserving balance.
    int64_t left = 0, right = 0;
    for (int i = 0; i < n - 2; ++i) {
      int64_t v = rng->UniformInt(0, max_value);
      inst.values.push_back(v);
      if (left <= right) {
        left += v;
      } else {
        right += v;
      }
    }
    // Two closing values equalize the sides.
    int64_t diff = left > right ? left - right : right - left;
    int64_t extra = rng->UniformInt(0, max_value);
    if (left <= right) {
      inst.values.push_back(diff + extra);
      inst.values.push_back(extra);
    } else {
      inst.values.push_back(extra);
      inst.values.push_back(diff + extra);
    }
  } else {
    for (int i = 0; i < n; ++i) {
      inst.values.push_back(rng->UniformInt(0, max_value));
    }
    if (inst.Total() % 2 != 0) {
      inst.values.back() += 1;  // make the total even
    }
  }
  AQO_CHECK(inst.Total() % 2 == 0);
  return inst;
}

}  // namespace aqo
