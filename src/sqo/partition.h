#ifndef AQO_SQO_PARTITION_H_
#define AQO_SQO_PARTITION_H_

// PARTITION, in the variant the paper uses (Appendix A.4): a multiset of
// non-negative integers with an even sum; the question is whether some
// subset sums to exactly half the total. (The paper notes the standard
// PARTITION reduces to this variant by doubling every value.)

#include <cstdint>
#include <optional>
#include <vector>

#include "util/random.h"

namespace aqo {

struct PartitionInstance {
  std::vector<int64_t> values;  // non-negative; sum must be even

  int64_t Total() const;
  int64_t Half() const { return Total() / 2; }
};

// Pseudo-polynomial subset-sum DP. Returns an index subset summing to half
// the total, or nullopt. O(n * Total).
std::optional<std::vector<int>> SolvePartitionDp(const PartitionInstance& inst);

// Exhaustive 2^n solver (for cross-checks); n <= 24.
std::optional<std::vector<int>> SolvePartitionBrute(
    const PartitionInstance& inst);

// Random instance with n values in [0, max_value]. When `force_yes`, the
// values are drawn so that a balanced split exists by construction; the
// final value is adjusted so the total is even in all cases.
PartitionInstance RandomPartitionInstance(int n, int64_t max_value,
                                          bool force_yes, Rng* rng);

}  // namespace aqo

#endif  // AQO_SQO_PARTITION_H_
