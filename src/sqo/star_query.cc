#include "sqo/star_query.h"

#include <algorithm>
#include <bit>

#include "util/check.h"

namespace aqo {

namespace {

BigInt MinOf(const BigInt& a, const BigInt& b) { return a < b ? a : b; }

// Marginal cost of joining satellite `sat` into intermediate of n(W) =
// `inter` tuples (which contains R_0 and at least one more relation, so
// b(W) = n(W)).
BigInt LaterJoinCost(const SqoCpInstance& inst, const BigInt& inter, int sat,
                     JoinMethod method) {
  size_t i = static_cast<size_t>(sat) - 1;
  if (method == JoinMethod::kNestedLoops) return inter * inst.w[i];
  return inter * BigInt(inst.ks - 1) + inst.SortCost(sat);
}

BigInt FirstJoinCost(const SqoCpInstance& inst, int first, int second,
                     JoinMethod method) {
  if (method == JoinMethod::kSortMerge) {
    return inst.SortCost(first) + inst.SortCost(second);
  }
  if (first == 0) {
    size_t i = static_cast<size_t>(second) - 1;
    return inst.central_pages + inst.w[i] * inst.central_tuples;
  }
  AQO_CHECK_EQ(second, 0);
  size_t i = static_cast<size_t>(first) - 1;
  return inst.pages[i] + inst.w0[i] * inst.tuples[i];
}

}  // namespace

void SqoCpInstance::Validate() const {
  size_t s = static_cast<size_t>(num_satellites);
  AQO_CHECK(num_satellites >= 1);
  AQO_CHECK(ks >= 2);
  AQO_CHECK(tuples.size() == s && pages.size() == s && match.size() == s &&
            w.size() == s && w0.size() == s);
  AQO_CHECK(central_tuples.Sign() > 0 && central_pages.Sign() > 0);
  for (size_t i = 0; i < s; ++i) {
    AQO_CHECK(tuples[i].Sign() > 0 && pages[i].Sign() > 0);
    AQO_CHECK(match[i].Sign() > 0) << "match factor must be positive";
    AQO_CHECK(w[i].Sign() > 0 && w0[i].Sign() > 0);
  }
}

bool SqoCpInstance::InTwoPassSortRegime() const {
  // mem = n_0 / 2; require mem < b_r <= mem^2 for every relation.
  BigInt mem = central_tuples / 2;
  if (mem.Sign() <= 0) return false;
  BigInt mem_sq = mem * mem;
  if (central_pages <= mem || central_pages > mem_sq) return false;
  for (const BigInt& b : pages) {
    if (b <= mem || b > mem_sq) return false;
  }
  return true;
}

BigInt SqoCpPlanCost(const SqoCpInstance& inst, const SqoCpPlan& plan) {
  int s = inst.num_satellites;
  AQO_CHECK_EQ(plan.sequence.size(), static_cast<size_t>(s) + 1);
  AQO_CHECK_EQ(plan.methods.size(), static_cast<size_t>(s));
  // Feasibility: R_0 first or second.
  AQO_CHECK(plan.sequence[0] == 0 || plan.sequence[1] == 0)
      << "cartesian-product-free star sequences place R_0 first or second";

  BigInt cost =
      FirstJoinCost(inst, plan.sequence[0], plan.sequence[1], plan.methods[0]);
  // Intermediate after the first join.
  BigInt inter = inst.central_tuples;
  if (plan.sequence[0] != 0) {
    inter = inter * inst.match[static_cast<size_t>(plan.sequence[0]) - 1];
  } else {
    inter = inter * inst.match[static_cast<size_t>(plan.sequence[1]) - 1];
  }
  for (size_t j = 2; j < plan.sequence.size(); ++j) {
    int sat = plan.sequence[j];
    AQO_CHECK(sat != 0);
    cost += LaterJoinCost(inst, inter, sat, plan.methods[j - 1]);
    inter = inter * inst.match[static_cast<size_t>(sat) - 1];
  }
  return cost;
}

SqoCpResult SolveSqoCpExact(const SqoCpInstance& inst) {
  int s = inst.num_satellites;
  AQO_CHECK(s >= 1 && s <= 18);
  inst.Validate();
  size_t full = (size_t{1} << s) - 1;

  SqoCpResult result;
  bool have_result = false;

  // Intermediate size for a satellite set: n_0 * prod match.
  std::vector<BigInt> inter(full + 1);
  inter[0] = inst.central_tuples;
  for (size_t mask = 1; mask <= full; ++mask) {
    int j = std::countr_zero(mask);
    inter[mask] =
        inter[mask & (mask - 1)] * inst.match[static_cast<size_t>(j)];
  }

  // One DP per start relation.
  for (int start = 0; start <= s; ++start) {
    std::vector<BigInt> dp(full + 1);
    std::vector<uint8_t> seen(full + 1, 0);
    std::vector<int> from(full + 1, -1);          // previous satellite
    std::vector<uint8_t> used_sm(full + 1, 0);    // method of the last join

    size_t init_mask;
    if (start == 0) {
      init_mask = 0;
      dp[0] = 0;
    } else {
      init_mask = size_t{1} << (start - 1);
      dp[init_mask] = MinOf(
          FirstJoinCost(inst, start, 0, JoinMethod::kNestedLoops),
          FirstJoinCost(inst, start, 0, JoinMethod::kSortMerge));
    }
    seen[init_mask] = 1;

    for (size_t mask = init_mask; mask <= full; ++mask) {
      if (!seen[mask] || (mask & init_mask) != init_mask) continue;
      for (int j = 1; j <= s; ++j) {
        size_t bit = size_t{1} << (j - 1);
        if (mask & bit) continue;
        BigInt nl, sm;
        if (start == 0 && mask == 0) {
          nl = FirstJoinCost(inst, 0, j, JoinMethod::kNestedLoops);
          sm = FirstJoinCost(inst, 0, j, JoinMethod::kSortMerge);
        } else {
          nl = LaterJoinCost(inst, inter[mask], j, JoinMethod::kNestedLoops);
          sm = LaterJoinCost(inst, inter[mask], j, JoinMethod::kSortMerge);
        }
        bool pick_sm = sm < nl;
        BigInt cand = dp[mask] + (pick_sm ? sm : nl);
        size_t next = mask | bit;
        if (!seen[next] || cand < dp[next]) {
          seen[next] = 1;
          dp[next] = std::move(cand);
          from[next] = j;
          used_sm[next] = pick_sm ? 1 : 0;
        }
      }
    }
    if (!seen[full]) continue;
    if (!have_result || dp[full] < result.best_cost) {
      have_result = true;
      result.best_cost = dp[full];
      // Reconstruct the plan.
      SqoCpPlan plan;
      std::vector<int> rev;
      std::vector<JoinMethod> rev_methods;
      size_t mask = full;
      while (mask != init_mask) {
        int j = from[mask];
        AQO_CHECK(j > 0);
        rev.push_back(j);
        rev_methods.push_back(used_sm[mask] ? JoinMethod::kSortMerge
                                            : JoinMethod::kNestedLoops);
        mask &= ~(size_t{1} << (j - 1));
      }
      if (start == 0) {
        plan.sequence.push_back(0);
      } else {
        plan.sequence.push_back(start);
        plan.sequence.push_back(0);
        // Method of the forced first join: recompute the cheaper one.
        BigInt nl = FirstJoinCost(inst, start, 0, JoinMethod::kNestedLoops);
        BigInt sm = FirstJoinCost(inst, start, 0, JoinMethod::kSortMerge);
        plan.methods.push_back(sm < nl ? JoinMethod::kSortMerge
                                       : JoinMethod::kNestedLoops);
      }
      for (size_t i = rev.size(); i-- > 0;) {
        plan.sequence.push_back(rev[i]);
        plan.methods.push_back(rev_methods[i]);
      }
      AQO_CHECK(SqoCpPlanCost(inst, plan) == result.best_cost);
      result.best_plan = std::move(plan);
    }
  }
  AQO_CHECK(have_result);
  result.within_budget = result.best_cost <= inst.budget;
  return result;
}

SqoCpResult SolveSqoCpBrute(const SqoCpInstance& inst) {
  int s = inst.num_satellites;
  AQO_CHECK(s >= 1 && s <= 7);
  inst.Validate();
  SqoCpResult result;
  bool have_result = false;

  // Enumerate feasible relation orders; per join pick the cheaper method
  // (methods never change sizes, so the greedy choice is exact).
  std::vector<int> sats(static_cast<size_t>(s));
  for (int i = 0; i < s; ++i) sats[static_cast<size_t>(i)] = i + 1;
  std::sort(sats.begin(), sats.end());
  do {
    for (int start_case = 0; start_case <= 1; ++start_case) {
      SqoCpPlan plan;
      if (start_case == 0) {
        plan.sequence.push_back(0);
        plan.sequence.insert(plan.sequence.end(), sats.begin(), sats.end());
      } else {
        plan.sequence.push_back(sats[0]);
        plan.sequence.push_back(0);
        plan.sequence.insert(plan.sequence.end(), sats.begin() + 1,
                             sats.end());
      }
      // Greedy per-join methods.
      BigInt cost = 0;
      BigInt inter = inst.central_tuples;
      for (size_t j = 1; j < plan.sequence.size(); ++j) {
        BigInt nl, sm;
        if (j == 1) {
          nl = FirstJoinCost(inst, plan.sequence[0], plan.sequence[1],
                             JoinMethod::kNestedLoops);
          sm = FirstJoinCost(inst, plan.sequence[0], plan.sequence[1],
                             JoinMethod::kSortMerge);
        } else {
          nl = LaterJoinCost(inst, inter, plan.sequence[j],
                             JoinMethod::kNestedLoops);
          sm = LaterJoinCost(inst, inter, plan.sequence[j],
                             JoinMethod::kSortMerge);
        }
        plan.methods.push_back(sm < nl ? JoinMethod::kSortMerge
                                       : JoinMethod::kNestedLoops);
        cost += MinOf(nl, sm);
        int sat = plan.sequence[j] == 0 ? plan.sequence[0] : plan.sequence[j];
        if (plan.sequence[j] != 0 || j == 1) {
          inter = inter * inst.match[static_cast<size_t>(sat) - 1];
        }
      }
      if (!have_result || cost < result.best_cost) {
        have_result = true;
        result.best_cost = cost;
        result.best_plan = std::move(plan);
      }
    }
  } while (std::next_permutation(sats.begin(), sats.end()));
  AQO_CHECK(have_result);
  result.within_budget = result.best_cost <= inst.budget;
  return result;
}

namespace {

// rank(i) < rank(j) <=> (f_i - 1) w_j < (f_j - 1) w_i, exact in BigInt.
// match factors are >= 1 by validation, so both sides are non-negative.
bool NlRankLess(const SqoCpInstance& inst, int i, int j) {
  const BigInt& fi = inst.match[static_cast<size_t>(i)];
  const BigInt& fj = inst.match[static_cast<size_t>(j)];
  const BigInt& wi = inst.w[static_cast<size_t>(i)];
  const BigInt& wj = inst.w[static_cast<size_t>(j)];
  return (fi - 1) * wj < (fj - 1) * wi;
}

}  // namespace

SqoCpResult SolveSqoNlOnly(const SqoCpInstance& inst) {
  inst.Validate();
  int s = inst.num_satellites;
  SqoCpResult result;
  bool have = false;

  for (int start = 0; start <= s; ++start) {
    // Satellites after the prefix, in ascending NL rank (ASI-optimal; the
    // star graph imposes no precedence among satellites once R_0 is in).
    std::vector<int> order;
    for (int i = 1; i <= s; ++i) {
      if (i != start) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&inst](int a, int b) {
      return NlRankLess(inst, a - 1, b - 1);
    });

    SqoCpPlan plan;
    if (start == 0) {
      plan.sequence.push_back(0);
    } else {
      plan.sequence.push_back(start);
      plan.sequence.push_back(0);
      plan.methods.push_back(JoinMethod::kNestedLoops);
    }
    for (int sat : order) {
      plan.sequence.push_back(sat);
      plan.methods.push_back(JoinMethod::kNestedLoops);
    }
    if (start == 0) {
      // The first join's method slot belongs to the first satellite.
      AQO_CHECK_EQ(plan.methods.size(), plan.sequence.size() - 1);
    }
    BigInt cost = SqoCpPlanCost(inst, plan);
    if (!have || cost < result.best_cost) {
      have = true;
      result.best_cost = cost;
      result.best_plan = std::move(plan);
    }
  }
  AQO_CHECK(have);
  result.within_budget = result.best_cost <= inst.budget;
  return result;
}

SppcsToSqoCpResult ReduceSppcsToSqoCp(const SppcsInstance& sppcs) {
  int m = static_cast<int>(sppcs.pairs.size());
  AQO_CHECK(m >= 1);
  BigInt prod_p = 1;
  BigInt sum_c = 0;
  for (const auto& pair : sppcs.pairs) {
    AQO_CHECK(pair.p >= BigInt(2)) << "Appendix B assumes p_i >= 2";
    AQO_CHECK(pair.c >= BigInt(1)) << "Appendix B assumes c_i >= 1";
    prod_p *= pair.p;
    sum_c += pair.c;
  }

  SppcsToSqoCpResult out;
  const int64_t ks = 4;
  BigInt base = BigInt(4 * ks) * prod_p;
  out.j_term = base * base;                 // J = (4 ks prod p)^2
  out.u_term = sum_c + prod_p + 1;          // U
  const BigInt& j = out.j_term;
  BigInt j2 = j * j;
  BigInt n0 = BigInt(5) * j2 * j * out.u_term;  // 5 J^3 U

  SqoCpInstance inst;
  inst.num_satellites = m + 1;
  inst.ks = ks;
  inst.central_tuples = n0;
  inst.central_pages = n0;
  for (int i = 0; i < m; ++i) {
    const auto& pair = sppcs.pairs[static_cast<size_t>(i)];
    BigInt b = n0 * j2 * pair.c;
    inst.pages.push_back(b);
    inst.tuples.push_back(BigInt(m + 1) * b);
    inst.match.push_back(pair.p);
    inst.w.push_back(j * BigInt(ks) * pair.p);
    inst.w0.push_back(n0);
  }
  // Amplifier relation R_{m+1}.
  BigInt b_amp = n0 * j2 * out.u_term;
  inst.pages.push_back(b_amp);
  inst.tuples.push_back(BigInt(m + 1) * b_amp);
  inst.match.push_back(j);
  inst.w.push_back(j2 * BigInt(ks));
  inst.w0.push_back(n0);

  inst.budget = n0 * j2 * BigInt(ks) * (sppcs.l_bound + 1) - 1;
  inst.Validate();
  out.instance = std::move(inst);
  return out;
}

SqoCpPlan SqoCpWitnessPlan(const SppcsToSqoCpResult& reduction,
                           const std::vector<bool>& in_a) {
  int m = reduction.instance.num_satellites - 1;
  AQO_CHECK_EQ(in_a.size(), static_cast<size_t>(m));
  SqoCpPlan plan;
  plan.sequence.push_back(0);
  for (int i = 0; i < m; ++i) {
    if (in_a[static_cast<size_t>(i)]) {
      plan.sequence.push_back(i + 1);
      plan.methods.push_back(JoinMethod::kNestedLoops);
    }
  }
  plan.sequence.push_back(reduction.AmplifierSatellite());
  plan.methods.push_back(JoinMethod::kNestedLoops);
  for (int i = 0; i < m; ++i) {
    if (!in_a[static_cast<size_t>(i)]) {
      plan.sequence.push_back(i + 1);
      plan.methods.push_back(JoinMethod::kSortMerge);
    }
  }
  return plan;
}

}  // namespace aqo
