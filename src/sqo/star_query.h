#ifndef AQO_SQO_STAR_QUERY_H_
#define AQO_SQO_STAR_QUERY_H_

// SQO-CP (paper Appendix A): join-order optimization for *star* queries
// with cartesian products forbidden and two join methods — nested loops and
// sort-merge — available per join. Appendix B reduces SPPCS to SQO-CP,
// establishing NP-completeness (a question posed by Ibaraki & Kameda [1]).
//
// Model (Appendix A.2). Relations R_0 (central), R_1..R_s (satellites);
// every predicate links R_0 with one satellite. A feasible sequence starts
// with R_0, or with one satellite immediately followed by R_0. Each of the
// joins is executed by nested loops (N) or sort-merge (S):
//   * first join, outer R_r, adding X:
//       N: b_r + w' * n_r   (w' = w_X for X a satellite, w_{0,r} for R_0)
//       S: A_r + A_X        (two disk-resident sorts)
//   * later join, intermediate W, adding satellite X:
//       N: n(W) * w_X
//       S: b(W) * (ks - 1) + A_X   (stream sort of W + disk sort of X)
// Intermediate sizes: n(W) multiplies by match_i = n_i * s_i when satellite
// i joins (exact integers by construction); output tuples are one page, so
// b(W) = n(W) for |W| >= 2.
//
// All arithmetic is exact (BigInt): the Appendix B constants make costs
// astronomically large and the decision boundary C(Z) <= M razor thin.

#include <cstdint>
#include <vector>

#include "sqo/sppcs.h"
#include "util/bigint.h"

namespace aqo {

struct SqoCpInstance {
  int num_satellites = 0;
  int64_t ks = 4;  // 2-pass sort read+write factor

  BigInt central_tuples;  // n_0
  BigInt central_pages;   // b_0

  // Per satellite i (index i-1): tuples n_i, pages b_i, the exact join
  // factor match_i = n_i * s_i, nested-loops unit cost w_i, and the cost
  // w_{0,i} of nested-loops access to R_0 given a tuple of R_i.
  std::vector<BigInt> tuples;
  std::vector<BigInt> pages;
  std::vector<BigInt> match;
  std::vector<BigInt> w;
  std::vector<BigInt> w0;

  BigInt budget;  // decision bound M

  BigInt SortCost(int relation) const {  // A_r; relation 0 = central
    return (relation == 0 ? central_pages
                          : pages[static_cast<size_t>(relation) - 1]) *
           BigInt(ks);
  }

  void Validate() const;

  // Appendix B's side condition: with sort memory mem = n_0 / 2 pages,
  // every base relation satisfies mem < b <= mem^2, so a 2-pass sort (the
  // constant ks) is exactly right for all of them. True for instances
  // produced by ReduceSppcsToSqoCp.
  bool InTwoPassSortRegime() const;
};

enum class JoinMethod { kNestedLoops, kSortMerge };

struct SqoCpPlan {
  // Feasible relation order: starts with 0, or with a satellite followed
  // immediately by 0.
  std::vector<int> sequence;
  // methods[j] executes the join adding sequence[j+1].
  std::vector<JoinMethod> methods;
};

// Exact cost of a fully specified plan.
BigInt SqoCpPlanCost(const SqoCpInstance& inst, const SqoCpPlan& plan);

struct SqoCpResult {
  BigInt best_cost;
  SqoCpPlan best_plan;
  bool within_budget = false;  // best_cost <= budget
};

// Exact optimum by subset DP (per start relation): the marginal cost of a
// join depends on the joined *set* only. O((s+1) * 2^s * s); s <= 18.
SqoCpResult SolveSqoCpExact(const SqoCpInstance& inst);

// Exhaustive over sequences (methods chosen greedily per join, which is
// optimal since methods do not affect sizes); s <= 7. Cross-check.
SqoCpResult SolveSqoCpBrute(const SqoCpInstance& inst);

// --- The polynomial contrast (Ibaraki & Kameda [1]) ---
//
// With joins restricted to nested loops, star-query optimization is
// polynomial: starting from R_0 the cost is
//     b_0 + n_0 * (w_{z1} + f_{z1} w_{z2} + f_{z1} f_{z2} w_{z3} + ...),
// an ASI objective over the satellites (f = match factors), minimized by
// sorting on rank_i = (match_i - 1) / w_i; satellite-first starts are
// checked the same way. It is exactly the *choice* between nested loops
// and sort-merge that Appendix B proves NP-complete.

// Exact optimal nested-loops-only plan in O(s^2 log s) (per-start rank
// sort). The returned plan has every method set to kNestedLoops.
SqoCpResult SolveSqoNlOnly(const SqoCpInstance& inst);

// --- Appendix B reduction ---

struct SppcsToSqoCpResult {
  SqoCpInstance instance;
  BigInt j_term;  // J
  BigInt u_term;  // U
  // Satellite ids: SPPCS pair i -> satellite i+1; the amplifier relation
  // R_{m+1} is satellite m+1.
  int AmplifierSatellite() const { return instance.num_satellites; }
};

// Builds the SQO-CP instance from an SPPCS instance (requires p_i >= 2,
// c_i >= 1 for all pairs, the paper's WLOG normalization):
//   J = (4 ks prod p_i)^2,  U = sum c_i + prod p_i + 1,  n_0 = b_0 = 5J^3U,
//   satellites i = 1..m:  b_i = n_0 J^2 c_i, n_i = (m+1) b_i,
//                         match_i = p_i, w_i = J ks p_i, w_{0,i} = n_0,
//   amplifier m+1:        b = n_0 J^2 U, n = (m+1) b, match = J,
//                         w = J^2 ks, w_0 = n_0,
//   M = n_0 J^2 ks (L+1) - 1.
// Intended optimal plans put the SPPCS subset A (nested loops, factors
// p_i) before the amplifier — whose nested-loops join contributes
// n_0 J^2 ks * prod_{i in A} p_i, the subset-product term — and sort-merge
// the rest, paying n_0 J^2 ks * c_j each: cost tracks n_0 J^2 ks (V(A)+1).
SppcsToSqoCpResult ReduceSppcsToSqoCp(const SppcsInstance& sppcs);

// The canonical witness plan for subset A: R_0, A ascending (nested
// loops), the amplifier (nested loops), then the rest (sort-merge).
SqoCpPlan SqoCpWitnessPlan(const SppcsToSqoCpResult& reduction,
                           const std::vector<bool>& in_a);

}  // namespace aqo

#endif  // AQO_SQO_STAR_QUERY_H_
