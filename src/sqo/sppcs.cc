#include "sqo/sppcs.h"

#include "util/check.h"

namespace aqo {

BigInt SppcsValue(const SppcsInstance& inst, const std::vector<bool>& in_a) {
  AQO_CHECK_EQ(in_a.size(), inst.pairs.size());
  BigInt product = 1;
  BigInt sum = 0;
  for (size_t i = 0; i < inst.pairs.size(); ++i) {
    if (in_a[i]) {
      product *= inst.pairs[i].p;
    } else {
      sum += inst.pairs[i].c;
    }
  }
  return product + sum;
}

SppcsSolution SolveSppcsBrute(const SppcsInstance& inst) {
  size_t m = inst.pairs.size();
  AQO_CHECK(m <= 22);
  SppcsSolution best;
  std::vector<bool> in_a(m, false);
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    for (size_t i = 0; i < m; ++i) in_a[i] = (mask >> i) & 1;
    BigInt value = SppcsValue(inst, in_a);
    if (mask == 0 || value < best.best_value) {
      best.best_value = value;
      best.subset = in_a;
    }
  }
  best.yes = best.best_value <= inst.l_bound;
  return best;
}

SppcsInstance ReducePartitionToSppcs(const PartitionInstance& partition) {
  int64_t total = partition.Total();
  AQO_CHECK(total % 2 == 0);
  AQO_CHECK(total >= 4) << "need K >= 2 for the strict minimum";
  uint64_t k = static_cast<uint64_t>(total / 2);

  BigInt s = BigInt(3) * (BigInt(1) << static_cast<int>(k - 2));
  SppcsInstance inst;
  for (int64_t b : partition.values) {
    SppcsInstance::Pair pair;
    pair.p = BigInt(1) << static_cast<int>(b);
    pair.c = s * BigInt(b);
    inst.pairs.push_back(std::move(pair));
  }
  inst.l_bound = (BigInt(1) << static_cast<int>(k)) + s * BigInt::FromUint64(k);
  return inst;
}

std::vector<bool> SppcsWitnessFromPartition(const PartitionInstance& partition,
                                            const std::vector<int>& subset) {
  std::vector<bool> in_a(partition.values.size(), false);
  int64_t sum = 0;
  for (int i : subset) {
    in_a[static_cast<size_t>(i)] = true;
    sum += partition.values[static_cast<size_t>(i)];
  }
  AQO_CHECK_EQ(sum, partition.Half());
  return in_a;
}

}  // namespace aqo
