#ifndef AQO_SQO_SPPCS_H_
#define AQO_SQO_SPPCS_H_

// SPPCS — Subset Product Plus Complement Sum (paper Appendix A.4):
// given pairs (p_1, c_1) ... (p_m, c_m) of non-negative integers and L, is
// there A subset of {1..m} with
//     prod_{i in A} p_i  +  sum_{j not in A} c_j  <=  L ?
// (The empty product is 1.)
//
// The paper proves SPPCS NP-complete by reduction from PARTITION
// (Appendix A.5); the detailed constants live in an unavailable internal
// technical report [7] and are corrupted in the surviving abstract, so
// this library ships a *reconstructed* reduction with the same structure —
// subset products standing in for subset sums through exponentiation —
// whose many-one property is proved below and verified exhaustively in the
// test suite:
//
//   Given b_1..b_n with even total 2K, emit pairs
//       p_i = 2^{b_i},   c_i = S * b_i,   with S = 3 * 2^{K-2} (K >= 2),
//   and L = 2^K + S*K. For any A, the objective equals
//       F(s_A) = 2^{s_A} + S (2K - s_A),        s_A = sum_{i in A} b_i,
//   and F(s+1) - F(s) = 2^s - S is negative exactly for s < K and positive
//   exactly for s >= K (because 2^{K-1} < S < 2^K), so F has a strict
//   integer minimum at s = K of value L. Hence SPPCS-yes iff some subset
//   sums to K iff PARTITION-yes.
//
// The construction writes numbers of Theta(K) bits (pseudo-polynomial
// rather than the paper's q-bit-rounded polynomial encoding); BigInt makes
// that immaterial for the executable artifact.

#include <vector>

#include "sqo/partition.h"
#include "util/bigint.h"

namespace aqo {

struct SppcsInstance {
  struct Pair {
    BigInt p;
    BigInt c;
  };
  std::vector<Pair> pairs;
  BigInt l_bound;  // L
};

// Objective value of a chosen subset (indicator per pair).
BigInt SppcsValue(const SppcsInstance& inst, const std::vector<bool>& in_a);

struct SppcsSolution {
  bool yes = false;
  std::vector<bool> subset;  // a witness when yes (indicator)
  BigInt best_value;         // minimum objective over all subsets
};

// Exhaustive 2^m solver; m <= 22.
SppcsSolution SolveSppcsBrute(const SppcsInstance& inst);

// The reconstructed PARTITION -> SPPCS reduction described above.
// Requires an even total >= 4 (K >= 2).
SppcsInstance ReducePartitionToSppcs(const PartitionInstance& partition);

// Maps a PARTITION witness (indices summing to half) to an SPPCS witness.
std::vector<bool> SppcsWitnessFromPartition(const PartitionInstance& partition,
                                            const std::vector<int>& subset);

}  // namespace aqo

#endif  // AQO_SQO_SPPCS_H_
