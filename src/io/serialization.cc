#include "io/serialization.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <tuple>

#include "util/check.h"
#include "util/fault_injection.h"

namespace aqo {

namespace {

// Reads the next non-comment, non-empty line into `line`; returns false at
// EOF.
bool NextLine(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    if ((*line)[start] == 'c' && start + 1 < line->size() &&
        ((*line)[start + 1] == ' ' || (*line)[start + 1] == '\t')) {
      continue;  // DIMACS comment
    }
    return true;
  }
  return false;
}

// Writes a log2 value with enough digits to round-trip.
void WriteLog2(std::ostream& os, LogDouble v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v.Log2());
  os << buf;
}

// The "io.parse" fault site: ordinals count Parse* entries process-wide,
// so "fail the k-th parse" is exact regardless of which reader runs.
// Returns a ready-made error string when the armed ordinal is hit.
std::atomic<uint64_t> parse_ordinal{0};

bool InjectedParseFault(std::string* error) {
  uint64_t ordinal = parse_ordinal.fetch_add(1, std::memory_order_relaxed);
  if (!FaultInjector::Get().ShouldFail("io.parse", ordinal)) return false;
  std::ostringstream os;
  os << "injected fault at io.parse#" << ordinal;
  *error = os.str();
  return true;
}

template <typename T>
ParseResult<T> Fail(const std::string& reason) {
  ParseResult<T> r;
  r.error = reason;
  return r;
}

template <typename T>
ParseResult<T> Fail(const std::string& reason, const std::string& line) {
  return Fail<T>(reason + ": " + line);
}

}  // namespace

void WriteGraph(const Graph& g, std::ostream& os) {
  os << "graph " << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (const auto& [u, v] : g.Edges()) os << "e " << u << " " << v << "\n";
}

ParseResult<Graph> ParseGraph(std::istream& is) {
  using R = ParseResult<Graph>;
  R out;
  if (InjectedParseFault(&out.error)) return out;
  std::string line;
  if (!NextLine(is, &line)) return Fail<Graph>("missing graph header");
  std::istringstream header(line);
  std::string tag;
  int n = -1, m = -1;
  header >> tag >> n >> m;
  if (header.fail() || tag != "graph" || n < 0 || m < 0) {
    return Fail<Graph>("bad graph header", line);
  }
  if (n > kMaxSerializedRelations) {
    return Fail<Graph>("graph header n exceeds supported maximum", line);
  }
  Graph g(n);
  for (int i = 0; i < m; ++i) {
    if (!NextLine(is, &line)) return Fail<Graph>("truncated graph edge list");
    std::istringstream edge(line);
    int u = -1, v = -1;
    edge >> tag >> u >> v;
    if (edge.fail() || tag != "e") return Fail<Graph>("bad edge line", line);
    if (u < 0 || u >= n || v < 0 || v >= n) {
      return Fail<Graph>("edge vertex out of range", line);
    }
    if (u == v) return Fail<Graph>("self-loop edge", line);
    if (g.HasEdge(u, v)) return Fail<Graph>("duplicate edge in input", line);
    g.AddEdge(u, v);
  }
  out.value = std::move(g);
  return out;
}

Graph ReadGraph(std::istream& is) {
  ParseResult<Graph> r = ParseGraph(is);
  AQO_CHECK(r.ok()) << r.error;
  return *std::move(r.value);
}

void WriteDimacs(const CnfFormula& f, std::ostream& os) {
  os << "p cnf " << f.num_vars() << " " << f.NumClauses() << "\n";
  for (const Clause& c : f.clauses()) {
    for (Lit l : c) os << l << " ";
    os << "0\n";
  }
}

ParseResult<CnfFormula> ParseDimacs(std::istream& is) {
  using R = ParseResult<CnfFormula>;
  R out;
  if (InjectedParseFault(&out.error)) return out;
  std::string line;
  if (!NextLine(is, &line)) return Fail<CnfFormula>("missing DIMACS header");
  std::istringstream header(line);
  std::string p, cnf;
  int vars = -1, clauses = -1;
  header >> p >> cnf >> vars >> clauses;
  if (header.fail() || p != "p" || cnf != "cnf" || vars < 0 || clauses < 0) {
    return Fail<CnfFormula>("bad DIMACS header", line);
  }
  CnfFormula f(vars);
  Clause current;
  int read = 0;
  while (read < clauses && NextLine(is, &line)) {
    std::istringstream body(line);
    Lit l;
    while (body >> l) {
      if (l == 0) {
        if (current.empty()) {
          return Fail<CnfFormula>("empty DIMACS clause", line);
        }
        f.AddClause(current);
        current.clear();
        ++read;
      } else {
        if (std::abs(l) > vars) {
          return Fail<CnfFormula>("DIMACS literal out of range", line);
        }
        current.push_back(l);
      }
    }
    if (!body.eof()) return Fail<CnfFormula>("bad DIMACS body line", line);
  }
  if (read != clauses) return Fail<CnfFormula>("truncated DIMACS body");
  out.value = std::move(f);
  return out;
}

CnfFormula ReadDimacs(std::istream& is) {
  ParseResult<CnfFormula> r = ParseDimacs(is);
  AQO_CHECK(r.ok()) << r.error;
  return *std::move(r.value);
}

void WriteQonInstance(const QonInstance& inst, std::ostream& os) {
  int n = inst.NumRelations();
  os << "qon " << n << "\n";
  for (int i = 0; i < n; ++i) {
    os << "rel " << i << " ";
    WriteLog2(os, inst.size(i));
    os << "\n";
  }
  for (const auto& [u, v] : inst.graph().Edges()) {
    os << "edge " << u << " " << v << " ";
    WriteLog2(os, inst.selectivity(u, v));
    os << "\n";
  }
  // Only non-default access costs are emitted.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      LogDouble def = inst.size(j) * inst.selectivity(i, j);
      if (!inst.AccessCost(i, j).ApproxEquals(def, 1e-12)) {
        os << "w " << i << " " << j << " ";
        WriteLog2(os, inst.AccessCost(i, j));
        os << "\n";
      }
    }
  }
}

ParseResult<QonInstance> ParseQonInstance(std::istream& is) {
  using R = ParseResult<QonInstance>;
  R out;
  if (InjectedParseFault(&out.error)) return out;
  std::string line;
  if (!NextLine(is, &line)) return Fail<QonInstance>("missing qon header");
  std::istringstream header(line);
  std::string tag;
  int n = -1;
  header >> tag >> n;
  if (header.fail() || tag != "qon" || n < 1) {
    return Fail<QonInstance>("bad qon header", line);
  }
  if (n > kMaxSerializedRelations) {
    return Fail<QonInstance>("qon header n exceeds supported maximum", line);
  }

  std::vector<LogDouble> sizes(static_cast<size_t>(n), LogDouble::One());
  std::vector<std::tuple<int, int, double>> edges;
  std::vector<std::tuple<int, int, double>> costs;
  while (NextLine(is, &line)) {
    std::istringstream body(line);
    body >> tag;
    if (tag == "rel") {
      int i = -1;
      double lg = 0.0;
      body >> i >> lg;
      if (body.fail() || i < 0 || i >= n || !std::isfinite(lg)) {
        return Fail<QonInstance>("bad rel line", line);
      }
      sizes[static_cast<size_t>(i)] = LogDouble::FromLog2(lg);
    } else if (tag == "edge") {
      int i = -1, j = -1;
      double lg = 0.0;
      body >> i >> j >> lg;
      if (body.fail() || i < 0 || i >= n || j < 0 || j >= n || i == j ||
          !std::isfinite(lg)) {
        return Fail<QonInstance>("bad edge line", line);
      }
      if (lg > 0.0) {
        return Fail<QonInstance>("edge selectivity above 1", line);
      }
      edges.emplace_back(i, j, lg);
    } else if (tag == "w") {
      int i = -1, j = -1;
      double lg = 0.0;
      body >> i >> j >> lg;
      if (body.fail() || i < 0 || i >= n || j < 0 || j >= n || i == j ||
          !std::isfinite(lg)) {
        return Fail<QonInstance>("bad w line", line);
      }
      costs.emplace_back(i, j, lg);
    } else {
      return Fail<QonInstance>("unknown qon line", line);
    }
  }
  Graph g(n);
  for (const auto& [i, j, lg] : edges) {
    if (g.HasEdge(i, j)) {
      std::ostringstream os;
      os << "duplicate edge " << i << " " << j;
      return Fail<QonInstance>(os.str());
    }
    g.AddEdge(i, j);
  }
  QonInstance inst(std::move(g), std::move(sizes));
  for (const auto& [i, j, lg] : edges) {
    inst.SetSelectivity(i, j, LogDouble::FromLog2(lg));
  }
  for (const auto& [i, j, lg] : costs) {
    // SetAccessCost CHECK-fails outside [t_j s, t_j]; pre-validate so a
    // malformed file reports instead of aborting.
    LogDouble w = LogDouble::FromLog2(lg);
    LogDouble lo = inst.size(j) * inst.selectivity(i, j);
    LogDouble hi = inst.size(j);
    if (!(lo <= w && w <= hi)) {
      std::ostringstream os;
      os << "access cost out of [t_j s, t_j] at (" << i << "," << j << ")";
      return Fail<QonInstance>(os.str());
    }
    inst.SetAccessCost(i, j, w);
  }
  inst.Validate();
  out.value = std::move(inst);
  return out;
}

QonInstance ReadQonInstance(std::istream& is) {
  ParseResult<QonInstance> r = ParseQonInstance(is);
  AQO_CHECK(r.ok()) << r.error;
  return *std::move(r.value);
}

void WriteQohInstance(const QohInstance& inst, std::ostream& os) {
  int n = inst.NumRelations();
  char memory[40];
  std::snprintf(memory, sizeof(memory), "%.17g", inst.memory());
  char eta[40];
  std::snprintf(eta, sizeof(eta), "%.17g", inst.eta());
  os << "qoh " << n << " " << memory << " " << eta << "\n";
  for (int i = 0; i < n; ++i) {
    os << "rel " << i << " ";
    WriteLog2(os, inst.size(i));
    os << "\n";
  }
  for (const auto& [u, v] : inst.graph().Edges()) {
    os << "edge " << u << " " << v << " ";
    WriteLog2(os, inst.selectivity(u, v));
    os << "\n";
  }
}

ParseResult<QohInstance> ParseQohInstance(std::istream& is) {
  using R = ParseResult<QohInstance>;
  R out;
  if (InjectedParseFault(&out.error)) return out;
  std::string line;
  if (!NextLine(is, &line)) return Fail<QohInstance>("missing qoh header");
  std::istringstream header(line);
  std::string tag;
  int n = -1;
  double memory = 0.0, eta = 0.5;
  header >> tag >> n >> memory >> eta;
  if (header.fail() || tag != "qoh" || n < 1 || !std::isfinite(memory) ||
      memory <= 0.0 || !std::isfinite(eta) || eta <= 0.0 || eta >= 1.0) {
    return Fail<QohInstance>("bad qoh header", line);
  }
  if (n > kMaxSerializedRelations) {
    return Fail<QohInstance>("qoh header n exceeds supported maximum", line);
  }

  std::vector<LogDouble> sizes(static_cast<size_t>(n), LogDouble::One());
  std::vector<std::tuple<int, int, double>> edges;
  while (NextLine(is, &line)) {
    std::istringstream body(line);
    body >> tag;
    if (tag == "rel") {
      int i = -1;
      double lg = 0.0;
      body >> i >> lg;
      if (body.fail() || i < 0 || i >= n || !std::isfinite(lg)) {
        return Fail<QohInstance>("bad rel line", line);
      }
      sizes[static_cast<size_t>(i)] = LogDouble::FromLog2(lg);
    } else if (tag == "edge") {
      int i = -1, j = -1;
      double lg = 0.0;
      body >> i >> j >> lg;
      if (body.fail() || i < 0 || i >= n || j < 0 || j >= n || i == j ||
          !std::isfinite(lg)) {
        return Fail<QohInstance>("bad edge line", line);
      }
      if (lg > 0.0) {
        return Fail<QohInstance>("edge selectivity above 1", line);
      }
      edges.emplace_back(i, j, lg);
    } else {
      return Fail<QohInstance>("unknown qoh line", line);
    }
  }
  Graph g(n);
  for (const auto& [i, j, lg] : edges) {
    if (g.HasEdge(i, j)) {
      std::ostringstream os;
      os << "duplicate edge " << i << " " << j;
      return Fail<QohInstance>(os.str());
    }
    g.AddEdge(i, j);
  }
  QohInstance inst(std::move(g), std::move(sizes), memory, eta);
  for (const auto& [i, j, lg] : edges) {
    inst.SetSelectivity(i, j, LogDouble::FromLog2(lg));
  }
  inst.Validate();
  out.value = std::move(inst);
  return out;
}

QohInstance ReadQohInstance(std::istream& is) {
  ParseResult<QohInstance> r = ParseQohInstance(is);
  AQO_CHECK(r.ok()) << r.error;
  return *std::move(r.value);
}

std::string GraphToString(const Graph& g) {
  std::ostringstream os;
  WriteGraph(g, os);
  return os.str();
}

Graph GraphFromString(const std::string& s) {
  std::istringstream is(s);
  return ReadGraph(is);
}

std::string QonToString(const QonInstance& inst) {
  std::ostringstream os;
  WriteQonInstance(inst, os);
  return os.str();
}

QonInstance QonFromString(const std::string& s) {
  std::istringstream is(s);
  return ReadQonInstance(is);
}

}  // namespace aqo
