#include "io/serialization.h"

#include <cmath>
#include <tuple>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace aqo {

namespace {

// Reads the next non-comment, non-empty line into `line`; returns false at
// EOF.
bool NextLine(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    if ((*line)[start] == 'c' && start + 1 < line->size() &&
        ((*line)[start + 1] == ' ' || (*line)[start + 1] == '\t')) {
      continue;  // DIMACS comment
    }
    return true;
  }
  return false;
}

// Writes a log2 value with enough digits to round-trip.
void WriteLog2(std::ostream& os, LogDouble v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v.Log2());
  os << buf;
}

}  // namespace

void WriteGraph(const Graph& g, std::ostream& os) {
  os << "graph " << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (const auto& [u, v] : g.Edges()) os << "e " << u << " " << v << "\n";
}

Graph ReadGraph(std::istream& is) {
  std::string line;
  AQO_CHECK(NextLine(is, &line)) << "missing graph header";
  std::istringstream header(line);
  std::string tag;
  int n = -1, m = -1;
  header >> tag >> n >> m;
  AQO_CHECK(tag == "graph" && n >= 0 && m >= 0) << "bad graph header: " << line;
  Graph g(n);
  for (int i = 0; i < m; ++i) {
    AQO_CHECK(NextLine(is, &line)) << "truncated graph edge list";
    std::istringstream edge(line);
    int u = -1, v = -1;
    edge >> tag >> u >> v;
    AQO_CHECK(tag == "e") << "bad edge line: " << line;
    g.AddEdge(u, v);
  }
  AQO_CHECK_EQ(g.NumEdges(), m) << "duplicate edges in input";
  return g;
}

void WriteDimacs(const CnfFormula& f, std::ostream& os) {
  os << "p cnf " << f.num_vars() << " " << f.NumClauses() << "\n";
  for (const Clause& c : f.clauses()) {
    for (Lit l : c) os << l << " ";
    os << "0\n";
  }
}

CnfFormula ReadDimacs(std::istream& is) {
  std::string line;
  AQO_CHECK(NextLine(is, &line)) << "missing DIMACS header";
  std::istringstream header(line);
  std::string p, cnf;
  int vars = -1, clauses = -1;
  header >> p >> cnf >> vars >> clauses;
  AQO_CHECK(p == "p" && cnf == "cnf" && vars >= 0 && clauses >= 0)
      << "bad DIMACS header: " << line;
  CnfFormula f(vars);
  Clause current;
  int read = 0;
  while (read < clauses && NextLine(is, &line)) {
    std::istringstream body(line);
    Lit l;
    while (body >> l) {
      if (l == 0) {
        f.AddClause(current);
        current.clear();
        ++read;
      } else {
        current.push_back(l);
      }
    }
  }
  AQO_CHECK_EQ(read, clauses) << "truncated DIMACS body";
  return f;
}

void WriteQonInstance(const QonInstance& inst, std::ostream& os) {
  int n = inst.NumRelations();
  os << "qon " << n << "\n";
  for (int i = 0; i < n; ++i) {
    os << "rel " << i << " ";
    WriteLog2(os, inst.size(i));
    os << "\n";
  }
  for (const auto& [u, v] : inst.graph().Edges()) {
    os << "edge " << u << " " << v << " ";
    WriteLog2(os, inst.selectivity(u, v));
    os << "\n";
  }
  // Only non-default access costs are emitted.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      LogDouble def = inst.size(j) * inst.selectivity(i, j);
      if (!inst.AccessCost(i, j).ApproxEquals(def, 1e-12)) {
        os << "w " << i << " " << j << " ";
        WriteLog2(os, inst.AccessCost(i, j));
        os << "\n";
      }
    }
  }
}

QonInstance ReadQonInstance(std::istream& is) {
  std::string line;
  AQO_CHECK(NextLine(is, &line)) << "missing qon header";
  std::istringstream header(line);
  std::string tag;
  int n = -1;
  header >> tag >> n;
  AQO_CHECK(tag == "qon" && n >= 1) << "bad qon header: " << line;

  std::vector<LogDouble> sizes(static_cast<size_t>(n), LogDouble::One());
  std::vector<std::tuple<int, int, double>> edges;
  std::vector<std::tuple<int, int, double>> costs;
  while (NextLine(is, &line)) {
    std::istringstream body(line);
    body >> tag;
    if (tag == "rel") {
      int i;
      double lg;
      body >> i >> lg;
      AQO_CHECK(0 <= i && i < n) << "bad rel line: " << line;
      sizes[static_cast<size_t>(i)] = LogDouble::FromLog2(lg);
    } else if (tag == "edge") {
      int i, j;
      double lg;
      body >> i >> j >> lg;
      edges.emplace_back(i, j, lg);
    } else if (tag == "w") {
      int i, j;
      double lg;
      body >> i >> j >> lg;
      costs.emplace_back(i, j, lg);
    } else {
      AQO_CHECK(false) << "unknown qon line: " << line;
    }
  }
  Graph g(n);
  for (const auto& [i, j, lg] : edges) g.AddEdge(i, j);
  QonInstance inst(std::move(g), std::move(sizes));
  for (const auto& [i, j, lg] : edges) {
    inst.SetSelectivity(i, j, LogDouble::FromLog2(lg));
  }
  for (const auto& [i, j, lg] : costs) {
    inst.SetAccessCost(i, j, LogDouble::FromLog2(lg));
  }
  inst.Validate();
  return inst;
}

void WriteQohInstance(const QohInstance& inst, std::ostream& os) {
  int n = inst.NumRelations();
  char memory[40];
  std::snprintf(memory, sizeof(memory), "%.17g", inst.memory());
  char eta[40];
  std::snprintf(eta, sizeof(eta), "%.17g", inst.eta());
  os << "qoh " << n << " " << memory << " " << eta << "\n";
  for (int i = 0; i < n; ++i) {
    os << "rel " << i << " ";
    WriteLog2(os, inst.size(i));
    os << "\n";
  }
  for (const auto& [u, v] : inst.graph().Edges()) {
    os << "edge " << u << " " << v << " ";
    WriteLog2(os, inst.selectivity(u, v));
    os << "\n";
  }
}

QohInstance ReadQohInstance(std::istream& is) {
  std::string line;
  AQO_CHECK(NextLine(is, &line)) << "missing qoh header";
  std::istringstream header(line);
  std::string tag;
  int n = -1;
  double memory = 0.0, eta = 0.5;
  header >> tag >> n >> memory >> eta;
  AQO_CHECK(tag == "qoh" && n >= 1) << "bad qoh header: " << line;

  std::vector<LogDouble> sizes(static_cast<size_t>(n), LogDouble::One());
  std::vector<std::tuple<int, int, double>> edges;
  while (NextLine(is, &line)) {
    std::istringstream body(line);
    body >> tag;
    if (tag == "rel") {
      int i;
      double lg;
      body >> i >> lg;
      AQO_CHECK(0 <= i && i < n) << "bad rel line: " << line;
      sizes[static_cast<size_t>(i)] = LogDouble::FromLog2(lg);
    } else if (tag == "edge") {
      int i, j;
      double lg;
      body >> i >> j >> lg;
      edges.emplace_back(i, j, lg);
    } else {
      AQO_CHECK(false) << "unknown qoh line: " << line;
    }
  }
  Graph g(n);
  for (const auto& [i, j, lg] : edges) g.AddEdge(i, j);
  QohInstance inst(std::move(g), std::move(sizes), memory, eta);
  for (const auto& [i, j, lg] : edges) {
    inst.SetSelectivity(i, j, LogDouble::FromLog2(lg));
  }
  inst.Validate();
  return inst;
}

std::string GraphToString(const Graph& g) {
  std::ostringstream os;
  WriteGraph(g, os);
  return os.str();
}

Graph GraphFromString(const std::string& s) {
  std::istringstream is(s);
  return ReadGraph(is);
}

std::string QonToString(const QonInstance& inst) {
  std::ostringstream os;
  WriteQonInstance(inst, os);
  return os.str();
}

QonInstance QonFromString(const std::string& s) {
  std::istringstream is(s);
  return ReadQonInstance(is);
}

}  // namespace aqo
