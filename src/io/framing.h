#ifndef AQO_IO_FRAMING_H_
#define AQO_IO_FRAMING_H_

// Length-prefixed message framing for the aqo_serve wire protocol
// (docs/persistence.md): each frame is a u32 little-endian payload length
// followed by that many payload bytes. Payloads are opaque here — the
// server layers a small line-oriented request/response text format on
// top (tools/aqo_serve.cc).
//
// Reading distinguishes three outcomes: a complete frame, clean EOF (the
// stream ended exactly on a frame boundary — how a client says goodbye),
// and error (truncated frame or an implausible length; reason suitable
// for `error: <source>: <reason>`). A truncated final frame is the
// streaming analogue of the persistence layer's torn tail.
//
// Corruption recovery: FrameReader wraps a stream and, instead of
// treating an implausible length prefix as fatal, resynchronizes — it
// slides a byte at a time until it finds a prefix whose length is
// plausible and whose payload passes the caller's validator (for the
// serve protocol: "starts with a known verb"). Skipped garbage is
// counted, never silently swallowed: the frame after a resync is flagged
// so the server can answer `err ? frame: ...` for the corrupt region.
// Scanning buffers unconsumed candidate bytes internally, so a rejected
// candidate loses no data — which is why resync lives in a stateful
// reader rather than a free function.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace aqo {

// Upper bound on a single frame payload; larger prefixes are treated as
// protocol corruption, not gigantic requests.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameRead {
  kFrame,  // *payload filled
  kEof,    // clean end of stream on a frame boundary
  kError,  // *error filled
};

// Appends the length prefix + payload to `os` (no flush; callers decide
// when to flush, e.g. once per response).
void WriteFrame(std::ostream& os, const std::string& payload);

// Reads one frame, no resync. On kError, `*error` holds a one-line
// reason.
FrameRead ReadFrame(std::istream& is, std::string* payload,
                    std::string* error);

// --- fd-level framing (pipes; aqo_loadgen / aqo_chaos drive modes) ---

// Full, EINTR-retrying write; false on error.
bool WriteAllFd(int fd, const char* data, size_t size);
// Writes one frame (prefix + payload); false on error.
bool WriteFrameFd(int fd, const std::string& payload);
// Reads one frame: 1 = frame, 0 = clean EOF, -1 = error/truncation.
int ReadFrameFd(int fd, std::string* payload);

// --- Resynchronizing reader ---

class FrameReader {
 public:
  // Returns true when `payload` is plausibly a real frame payload. Only
  // consulted while resynchronizing after corruption — well-framed
  // payloads are delivered regardless (payload-level validation is the
  // protocol layer's job). Null = accept any plausible length.
  using Validator = std::function<bool(const std::string& payload)>;

  explicit FrameReader(std::istream& is, Validator validator = nullptr)
      : is_(is), validator_(std::move(validator)) {}

  // Reads the next frame, resynchronizing past corrupt bytes if needed.
  // kError is reserved for unrecoverable states (stream ended mid-frame
  // or mid-scan). After kFrame, resynced() says whether garbage was
  // skipped immediately before this frame and last_skipped() how many
  // bytes.
  FrameRead Next(std::string* payload, std::string* error);

  bool resynced() const { return last_skipped_ > 0; }
  uint64_t last_skipped() const { return last_skipped_; }
  uint64_t total_skipped() const { return total_skipped_; }
  uint64_t resync_count() const { return resync_count_; }

 private:
  // Ensures buffer_ holds at least `need` bytes, reading from is_.
  // False: stream exhausted first.
  bool Fill(size_t need);

  std::istream& is_;
  Validator validator_;
  std::string buffer_;  // bytes read but not yet consumed
  uint64_t last_skipped_ = 0;
  uint64_t total_skipped_ = 0;
  uint64_t resync_count_ = 0;
};

}  // namespace aqo

#endif  // AQO_IO_FRAMING_H_
