#ifndef AQO_IO_FRAMING_H_
#define AQO_IO_FRAMING_H_

// Length-prefixed message framing for the aqo_serve wire protocol
// (docs/persistence.md): each frame is a u32 little-endian payload length
// followed by that many payload bytes. Payloads are opaque here — the
// server layers a small line-oriented request/response text format on
// top (tools/aqo_serve.cc).
//
// Reading distinguishes three outcomes: a complete frame, clean EOF (the
// stream ended exactly on a frame boundary — how a client says goodbye),
// and error (truncated frame or an implausible length; reason suitable
// for `error: <source>: <reason>`). A truncated final frame is the
// streaming analogue of the persistence layer's torn tail.

#include <cstdint>
#include <iosfwd>
#include <string>

namespace aqo {

// Upper bound on a single frame payload; larger prefixes are treated as
// protocol corruption, not gigantic requests.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameRead {
  kFrame,  // *payload filled
  kEof,    // clean end of stream on a frame boundary
  kError,  // *error filled
};

// Appends the length prefix + payload to `os` (no flush; callers decide
// when to flush, e.g. once per response).
void WriteFrame(std::ostream& os, const std::string& payload);

// Reads one frame. On kError, `*error` holds a one-line reason.
FrameRead ReadFrame(std::istream& is, std::string* payload,
                    std::string* error);

}  // namespace aqo

#endif  // AQO_IO_FRAMING_H_
