#include "io/framing.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace aqo {

void WriteFrame(std::ostream& os, const std::string& payload) {
  char prefix[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((len >> (8 * i)) & 0xFF);
  }
  os.write(prefix, sizeof(prefix));
  os.write(payload.data(),
           static_cast<std::streamsize>(payload.size()));
}

FrameRead ReadFrame(std::istream& is, std::string* payload,
                    std::string* error) {
  char prefix[4];
  is.read(prefix, sizeof(prefix));
  std::streamsize got = is.gcount();
  if (got == 0) return FrameRead::kEof;
  if (got < static_cast<std::streamsize>(sizeof(prefix))) {
    std::ostringstream why;
    why << "truncated frame length prefix (" << got << " of 4 bytes)";
    *error = why.str();
    return FrameRead::kError;
  }
  uint32_t len = 0;
  for (int i = 3; i >= 0; --i) {
    len = (len << 8) | static_cast<unsigned char>(prefix[i]);
  }
  if (len > kMaxFrameBytes) {
    std::ostringstream why;
    why << "implausible frame length " << len << " (max " << kMaxFrameBytes
        << ")";
    *error = why.str();
    return FrameRead::kError;
  }
  payload->resize(len);
  if (len > 0) {
    is.read(payload->data(), static_cast<std::streamsize>(len));
    if (is.gcount() < static_cast<std::streamsize>(len)) {
      std::ostringstream why;
      why << "truncated frame payload (" << is.gcount() << " of " << len
          << " bytes)";
      *error = why.str();
      return FrameRead::kError;
    }
  }
  return FrameRead::kFrame;
}

}  // namespace aqo
