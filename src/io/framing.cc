#include "io/framing.h"

#include <unistd.h>

#include <cerrno>
#include <istream>
#include <ostream>
#include <sstream>

namespace aqo {

namespace {

uint32_t DecodeLen(const char* p) {
  uint32_t len = 0;
  for (int i = 3; i >= 0; --i) {
    len = (len << 8) | static_cast<unsigned char>(p[i]);
  }
  return len;
}

}  // namespace

void WriteFrame(std::ostream& os, const std::string& payload) {
  char prefix[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((len >> (8 * i)) & 0xFF);
  }
  os.write(prefix, sizeof(prefix));
  os.write(payload.data(),
           static_cast<std::streamsize>(payload.size()));
}

FrameRead ReadFrame(std::istream& is, std::string* payload,
                    std::string* error) {
  char prefix[4];
  is.read(prefix, sizeof(prefix));
  std::streamsize got = is.gcount();
  if (got == 0) return FrameRead::kEof;
  if (got < static_cast<std::streamsize>(sizeof(prefix))) {
    std::ostringstream why;
    why << "truncated frame length prefix (" << got << " of 4 bytes)";
    *error = why.str();
    return FrameRead::kError;
  }
  uint32_t len = DecodeLen(prefix);
  if (len > kMaxFrameBytes) {
    std::ostringstream why;
    why << "implausible frame length " << len << " (max " << kMaxFrameBytes
        << ")";
    *error = why.str();
    return FrameRead::kError;
  }
  payload->resize(len);
  if (len > 0) {
    is.read(payload->data(), static_cast<std::streamsize>(len));
    if (is.gcount() < static_cast<std::streamsize>(len)) {
      std::ostringstream why;
      why << "truncated frame payload (" << is.gcount() << " of " << len
          << " bytes)";
      *error = why.str();
      return FrameRead::kError;
    }
  }
  return FrameRead::kFrame;
}

bool WriteAllFd(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t wrote = ::write(fd, data, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += wrote;
    size -= static_cast<size_t>(wrote);
  }
  return true;
}

bool WriteFrameFd(int fd, const std::string& payload) {
  char prefix[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((len >> (8 * i)) & 0xFF);
  }
  return WriteAllFd(fd, prefix, sizeof(prefix)) &&
         WriteAllFd(fd, payload.data(), payload.size());
}

int ReadFrameFd(int fd, std::string* payload) {
  char prefix[4];
  size_t got = 0;
  while (got < sizeof(prefix)) {
    ssize_t r = ::read(fd, prefix + got, sizeof(prefix) - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) return got == 0 ? 0 : -1;
    got += static_cast<size_t>(r);
  }
  uint32_t len = DecodeLen(prefix);
  if (len > kMaxFrameBytes) return -1;
  payload->resize(len);
  size_t off = 0;
  while (off < len) {
    ssize_t r = ::read(fd, payload->data() + off, len - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) return -1;
    off += static_cast<size_t>(r);
  }
  return 1;
}

// --- FrameReader ---

bool FrameReader::Fill(size_t need) {
  while (buffer_.size() < need) {
    if (!is_.good()) return false;
    size_t want = need - buffer_.size();
    size_t old = buffer_.size();
    buffer_.resize(old + want);
    is_.read(buffer_.data() + old, static_cast<std::streamsize>(want));
    size_t got = static_cast<size_t>(is_.gcount());
    buffer_.resize(old + got);
    if (got < want) return false;  // stream exhausted mid-fill
  }
  return true;
}

FrameRead FrameReader::Next(std::string* payload, std::string* error) {
  last_skipped_ = 0;
  if (!Fill(4)) {
    if (buffer_.empty()) return FrameRead::kEof;
    std::ostringstream why;
    why << "truncated frame length prefix (" << buffer_.size()
        << " of 4 bytes)";
    *error = why.str();
    return FrameRead::kError;
  }
  while (true) {
    uint32_t len = DecodeLen(buffer_.data());
    if (len <= kMaxFrameBytes) {
      bool filled = Fill(4 + static_cast<size_t>(len));
      if (!filled && last_skipped_ == 0) {
        // Clean state: a genuinely truncated final frame.
        std::ostringstream why;
        why << "truncated frame payload (" << (buffer_.size() - 4) << " of "
            << len << " bytes)";
        *error = why.str();
        return FrameRead::kError;
      }
      if (filled) {
        std::string candidate = buffer_.substr(4, len);
        // Clean-state frames are delivered as-is; while resyncing, the
        // validator keeps us from mistaking garbage-embedded lengths for
        // frame boundaries.
        if (last_skipped_ == 0 || !validator_ || validator_(candidate)) {
          buffer_.erase(0, 4 + static_cast<size_t>(len));
          *payload = std::move(candidate);
          if (last_skipped_ > 0) {
            ++resync_count_;
            total_skipped_ += last_skipped_;
          }
          return FrameRead::kFrame;
        }
      }
      // While resyncing, a garbage window can decode to a plausible
      // length that overruns the stream; the overread bytes stay in
      // buffer_, so sliding onward loses nothing — fall through.
    }
    // Corrupt prefix (or rejected candidate): slide one byte and rescan.
    buffer_.erase(0, 1);
    ++last_skipped_;
    if (!Fill(4)) {
      std::ostringstream why;
      why << "stream ended while resynchronizing (skipped " << last_skipped_
          << " bytes, no frame boundary found)";
      *error = why.str();
      return FrameRead::kError;
    }
  }
}

}  // namespace aqo
