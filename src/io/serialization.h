#ifndef AQO_IO_SERIALIZATION_H_
#define AQO_IO_SERIALIZATION_H_

// Plain-text serialization for the library's instance types, so generated
// hardness instances can be shipped to / consumed by external optimizers.
//
// Formats (line-oriented, '#' comments):
//
//   graph:      "graph <n> <m>" then m lines "e <u> <v>"
//   cnf:        DIMACS: "p cnf <vars> <clauses>" then clauses, 0-terminated
//   qon:        "qon <n>"
//               "rel <i> <log2_size>"                      (n lines)
//               "edge <i> <j> <log2_selectivity>"          (per predicate)
//               "w <i> <j> <log2_cost>"                    (only overrides)
//   qoh:        "qoh <n> <memory> <eta>" + rel/edge lines as above
//
// Sizes/selectivities/costs are written as log2 values: the gap instances
// do not fit in any linear-domain notation.
//
// Error handling: the Parse* readers never abort on malformed input —
// they validate every line (tags, indices, ranges, duplicates, semantic
// constraints like selectivity <= 1) and return a ParseResult carrying
// either the value or a one-line reason. The legacy Read* readers are
// thin AQO_CHECK wrappers over them, for callers whose inputs are
// program-generated and therefore trusted. User-facing tools must use
// Parse* and report `error: <file>: <reason>`.

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>

#include "graph/graph.h"
#include "qo/qoh.h"
#include "qo/qon.h"
#include "sat/cnf.h"
// ParseResult<T> lives in util/parse_result.h so lower layers (the binary
// persistence in qo/persist.h) can report recoverable decode errors the
// same way without depending on aqo_io.
#include "util/parse_result.h"

namespace aqo {

// Ceiling on the relation/vertex count a parser will accept. Instance
// state is quadratic in n, so the bound is what keeps a 12-byte
// "qon 2000000000" header from costing gigabytes before any admission
// check can run (the fuzz harnesses under fuzz/ hammer exactly this).
// Far above anything the optimizers can process anyway.
inline constexpr int kMaxSerializedRelations = 4096;

// Recoverable readers: structured error instead of abort, for any
// malformed input reachable from files a user hands to a tool. Also the
// "io.parse" fault-injection site (util/fault_injection.h): the k-th
// Parse* call process-wide can be armed to fail with an injected error.
ParseResult<Graph> ParseGraph(std::istream& is);
ParseResult<CnfFormula> ParseDimacs(std::istream& is);
ParseResult<QonInstance> ParseQonInstance(std::istream& is);
ParseResult<QohInstance> ParseQohInstance(std::istream& is);

void WriteGraph(const Graph& g, std::ostream& os);
// Aborts on malformed input (AQO_CHECK wrapper over ParseGraph).
Graph ReadGraph(std::istream& is);

void WriteDimacs(const CnfFormula& f, std::ostream& os);
CnfFormula ReadDimacs(std::istream& is);

void WriteQonInstance(const QonInstance& inst, std::ostream& os);
QonInstance ReadQonInstance(std::istream& is);

void WriteQohInstance(const QohInstance& inst, std::ostream& os);
QohInstance ReadQohInstance(std::istream& is);

// Convenience string round-trips (used by tests and the CLI tools).
std::string GraphToString(const Graph& g);
Graph GraphFromString(const std::string& s);
std::string QonToString(const QonInstance& inst);
QonInstance QonFromString(const std::string& s);

}  // namespace aqo

#endif  // AQO_IO_SERIALIZATION_H_
