#ifndef AQO_IO_SERIALIZATION_H_
#define AQO_IO_SERIALIZATION_H_

// Plain-text serialization for the library's instance types, so generated
// hardness instances can be shipped to / consumed by external optimizers.
//
// Formats (line-oriented, '#' comments):
//
//   graph:      "graph <n> <m>" then m lines "e <u> <v>"
//   cnf:        DIMACS: "p cnf <vars> <clauses>" then clauses, 0-terminated
//   qon:        "qon <n>"
//               "rel <i> <log2_size>"                      (n lines)
//               "edge <i> <j> <log2_selectivity>"          (per predicate)
//               "w <i> <j> <log2_cost>"                    (only overrides)
//   qoh:        "qoh <n> <memory> <eta>" + rel/edge lines as above
//
// Sizes/selectivities/costs are written as log2 values: the gap instances
// do not fit in any linear-domain notation.

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "qo/qoh.h"
#include "qo/qon.h"
#include "sat/cnf.h"

namespace aqo {

void WriteGraph(const Graph& g, std::ostream& os);
// Aborts on malformed input.
Graph ReadGraph(std::istream& is);

void WriteDimacs(const CnfFormula& f, std::ostream& os);
CnfFormula ReadDimacs(std::istream& is);

void WriteQonInstance(const QonInstance& inst, std::ostream& os);
QonInstance ReadQonInstance(std::istream& is);

void WriteQohInstance(const QohInstance& inst, std::ostream& os);
QohInstance ReadQohInstance(std::istream& is);

// Convenience string round-trips (used by tests and the CLI tools).
std::string GraphToString(const Graph& g);
Graph GraphFromString(const std::string& s);
std::string QonToString(const QonInstance& inst);
QonInstance QonFromString(const std::string& s);

}  // namespace aqo

#endif  // AQO_IO_SERIALIZATION_H_
