#include "qo/cost_eval.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "obs/metrics.h"
#include "util/check.h"

namespace aqo {

namespace cost_eval_internal {
std::atomic<bool> g_force_naive{false};
}  // namespace cost_eval_internal

ScopedNaiveCostEvaluation::ScopedNaiveCostEvaluation()
    : previous_(cost_eval_internal::g_force_naive.exchange(true)) {}

ScopedNaiveCostEvaluation::~ScopedNaiveCostEvaluation() {
  cost_eval_internal::g_force_naive.store(previous_);
}

// --- QO_N ---------------------------------------------------------------

QonCostEvaluator::QonCostEvaluator(const QonInstance& inst)
    : inst_(&inst), n_(inst.NumRelations()) {
  size_t n = static_cast<size_t>(n_);
  words_ = (n + 63) / 64;
  sizes_.resize(n);
  wt_.resize(n * n);
  selt_.resize(n * n);
  adj_.assign(n * words_, 0);
  wlog_.assign(n * n, std::numeric_limits<double>::infinity());
  mslog_.assign(n * n, 0.0);
  szlog_.resize(n);
  for (int t = 0; t < n_; ++t) {
    sizes_[static_cast<size_t>(t)] = inst.size(t);
    szlog_[static_cast<size_t>(t)] = inst.size(t).Log2();
    LogDouble* wrow = wt_.data() + static_cast<size_t>(t) * n;
    LogDouble* srow = selt_.data() + static_cast<size_t>(t) * n;
    double* wlrow = wlog_.data() + static_cast<size_t>(t) * n;
    double* msrow = mslog_.data() + static_cast<size_t>(t) * n;
    uint64_t* arow = adj_.data() + static_cast<size_t>(t) * words_;
    for (int k = 0; k < n_; ++k) {
      if (k != t) {
        wrow[static_cast<size_t>(k)] = inst.AccessCost(k, t);
        wlrow[static_cast<size_t>(k)] = inst.AccessCost(k, t).Log2();
      }
      srow[static_cast<size_t>(k)] = inst.selectivity(k, t);
      if (inst.graph().HasEdge(t, k)) {
        arow[static_cast<size_t>(k >> 6)] |= uint64_t{1} << (k & 63);
        msrow[static_cast<size_t>(k)] = inst.selectivity(k, t).Log2();
      }
    }
  }
  seq_.resize(n);
  prefix_.resize(n + 1);
  run_cost_.resize(std::max<size_t>(n, 1));
  run_cost_[0] = LogDouble::Zero();
}

LogDouble QonCostEvaluator::EvaluateFrom(int first) {
  if (n_ == 0) return LogDouble::Zero();
  if (first == 0) prefix_[0] = LogDouble::One();
  const int* AQO_RESTRICT seq = seq_.data();
  for (int p = first; p < n_; ++p) {
    size_t sp = static_cast<size_t>(p);
    size_t sv = static_cast<size_t>(seq[sp]);
    if (p >= 1) {
      // H_p = N(prefix) * min_j AccessCost(seq[j], v), folded in position
      // order starting from position 0 — the QonJoinCosts association.
      // Raw log2 fold: MinOf keeps the left operand only when strictly
      // smaller, and equal log2 values here are bit-identical (no -0.0
      // sources), so the branch-free min matches LogDouble MinOf exactly.
      const double* AQO_RESTRICT wrow =
          wlog_.data() + sv * static_cast<size_t>(n_);
      double mw = wrow[static_cast<size_t>(seq[0])];
      for (size_t j = 1; j < sp; ++j) {
        double c = wrow[static_cast<size_t>(seq[j])];
        mw = mw < c ? mw : c;
      }
      run_cost_[sp] = run_cost_[sp - 1] + prefix_[sp] * LogDouble::FromLog2(mw);
    }
    // N(prefix + v) = N(prefix) * t_v * (selectivities toward the prefix,
    // in position order) — the PrefixSizes association. mslog_ stores
    // +0.0 for non-edges, so the fold needs no adjacency branch: adding
    // +0.0 is exact, keeping the sum bit-identical to the gated product.
    const double* AQO_RESTRICT srow =
        mslog_.data() + sv * static_cast<size_t>(n_);
    double next = prefix_[sp].Log2() + szlog_[sv];
    for (size_t j = 0; j < sp; ++j) {
      next += srow[static_cast<size_t>(seq[j])];
    }
    prefix_[sp + 1] = LogDouble::FromLog2(next);
  }
  return run_cost_[static_cast<size_t>(n_) - 1];
}

LogDouble QonCostEvaluator::Cost(const JoinSequence& seq) {
  if (cost_eval_internal::ForceNaive()) {
    valid_ = false;
    return QonSequenceCost(*inst_, seq);
  }
  AQO_CHECK(static_cast<int>(seq.size()) == n_);
  AQO_DCHECK(IsPermutation(seq, n_));
  int first = 0;
  if (valid_) {
    while (first < n_ && seq[static_cast<size_t>(first)] ==
                             seq_[static_cast<size_t>(first)]) {
      ++first;
    }
    if (first == n_) {
      return n_ == 0 ? LogDouble::Zero()
                     : run_cost_[static_cast<size_t>(n_) - 1];
    }
  }
  std::copy(seq.begin() + first, seq.end(), seq_.begin() + first);
  valid_ = true;
  return EvaluateFrom(first);
}

LogDouble QonCostEvaluator::CostAfterSwap(int i, int j) {
  AQO_CHECK(valid_) << "CostAfterSwap needs a prior Cost() call";
  AQO_CHECK(0 <= i && i < n_ && 0 <= j && j < n_);
  std::swap(seq_[static_cast<size_t>(i)], seq_[static_cast<size_t>(j)]);
  if (cost_eval_internal::ForceNaive()) {
    valid_ = false;
    return QonSequenceCost(*inst_, seq_);
  }
  return EvaluateFrom(std::min(i, j));
}

LogDouble QonCostEvaluator::CostWithPrefix(const JoinSequence& seq,
                                           int first_changed) {
  AQO_CHECK(static_cast<int>(seq.size()) == n_);
  AQO_CHECK(0 <= first_changed && first_changed <= n_);
  AQO_CHECK(valid_ || first_changed == 0);
  AQO_DCHECK(IsPermutation(seq, n_));
  AQO_DCHECK(std::equal(seq.begin(), seq.begin() + first_changed,
                        seq_.begin()));
  if (cost_eval_internal::ForceNaive()) {
    valid_ = false;
    return QonSequenceCost(*inst_, seq);
  }
  std::copy(seq.begin() + first_changed, seq.end(),
            seq_.begin() + first_changed);
  valid_ = true;
  return EvaluateFrom(first_changed);
}

LogDouble QonCostEvaluator::MinAccess(const std::vector<int>& prefix,
                                      int target) const {
  AQO_CHECK(!prefix.empty());
  if (cost_eval_internal::ForceNaive()) {
    LogDouble best = inst_->AccessCost(prefix[0], target);
    for (size_t i = 1; i < prefix.size(); ++i) {
      best = MinOf(best, inst_->AccessCost(prefix[i], target));
    }
    return best;
  }
  const LogDouble* wrow =
      wt_.data() + static_cast<size_t>(target) * static_cast<size_t>(n_);
  LogDouble best = wrow[static_cast<size_t>(prefix[0])];
  for (size_t i = 1; i < prefix.size(); ++i) {
    best = MinOf(best, wrow[static_cast<size_t>(prefix[i])]);
  }
  return best;
}

LogDouble QonCostEvaluator::MinAccessSeeded(LogDouble init,
                                            const std::vector<int>& prefix,
                                            int target) const {
  if (cost_eval_internal::ForceNaive()) {
    LogDouble best = init;
    for (int k : prefix) best = MinOf(best, inst_->AccessCost(k, target));
    return best;
  }
  const LogDouble* wrow =
      wt_.data() + static_cast<size_t>(target) * static_cast<size_t>(n_);
  LogDouble best = init;
  for (int k : prefix) best = MinOf(best, wrow[static_cast<size_t>(k)]);
  return best;
}

LogDouble QonCostEvaluator::ExtendSize(LogDouble intermediate,
                                       const std::vector<int>& prefix,
                                       int target) const {
  if (cost_eval_internal::ForceNaive()) {
    LogDouble next = intermediate * inst_->size(target);
    for (int k : prefix) {
      if (inst_->graph().HasEdge(k, target)) {
        next *= inst_->selectivity(k, target);
      }
    }
    return next;
  }
  size_t st = static_cast<size_t>(target);
  LogDouble next = intermediate * sizes_[st];
  const uint64_t* arow = adj_.data() + st * words_;
  const LogDouble* srow = selt_.data() + st * static_cast<size_t>(n_);
  for (int k : prefix) {
    if ((arow[static_cast<size_t>(k >> 6)] >> (k & 63)) & 1) {
      next *= srow[static_cast<size_t>(k)];
    }
  }
  return next;
}

bool QonCostEvaluator::ConnectsTo(const std::vector<int>& prefix,
                                  int target) const {
  const uint64_t* arow = adj_.data() + static_cast<size_t>(target) * words_;
  for (int k : prefix) {
    if ((arow[static_cast<size_t>(k >> 6)] >> (k & 63)) & 1) return true;
  }
  return false;
}

// --- QO_H ---------------------------------------------------------------

QohCostEvaluator::QohCostEvaluator(const QohInstance& inst)
    : inst_(&inst), n_(inst.NumRelations()) {
  AQO_CHECK(n_ >= 2) << "need at least two relations";
  total_joins_ = n_ - 1;
  size_t n = static_cast<size_t>(n_);
  words_ = (n + 63) / 64;
  memory_linear_ = inst.memory();
  memory_ = LogDouble::FromLinear(memory_linear_);
  sizes_.resize(n);
  selt_.resize(n * n);
  adj_.assign(n * words_, 0);
  rel_hjmin_.resize(n);
  rel_hjmin_lin_.resize(n);
  rel_inner_lin_.resize(n);
  rel_extra_cap_.resize(n);
  rel_denom_.resize(n);
  rel_build_infeasible_.resize(n);
  for (int t = 0; t < n_; ++t) {
    size_t st = static_cast<size_t>(t);
    LogDouble inner = inst.size(t);
    sizes_[st] = inner;
    // Exactly the JoinShape fields of PipelineCostImpl that do not depend
    // on the outer stream, computed once per relation.
    LogDouble hjmin = inst.HashJoinMinMemory(inner);
    rel_hjmin_[st] = hjmin;
    rel_build_infeasible_[st] = hjmin > memory_ ? 1 : 0;
    rel_hjmin_lin_[st] = inst.HashJoinMinMemoryLinear(inner);
    rel_inner_lin_[st] = inner.Log2() <= 52.0
                             ? inner.ToLinear()
                             : std::numeric_limits<double>::infinity();
    rel_extra_cap_[st] = rel_inner_lin_[st] - rel_hjmin_lin_[st];
    // The naive code only ever forms inner - hjmin when extra capacity is
    // positive; mirror the branch so no new subtraction can trip.
    rel_denom_[st] = rel_extra_cap_[st] > 0.0 ? inner - hjmin
                                              : LogDouble::Zero();
    LogDouble* srow = selt_.data() + st * n;
    uint64_t* arow = adj_.data() + st * words_;
    for (int k = 0; k < n_; ++k) {
      srow[static_cast<size_t>(k)] = inst.selectivity(k, t);
      if (inst.graph().HasEdge(t, k)) {
        arow[static_cast<size_t>(k >> 6)] |= uint64_t{1} << (k & 63);
      }
    }
  }
  seq_.resize(n);
  prefix_.resize(n + 1);
  size_t joins = static_cast<size_t>(total_joins_) + 1;  // 1-based
  join_opi_.resize(joins);
  join_h1_.resize(joins);
  join_slope_.resize(joins);
  join_inner_.resize(joins);
  join_hjmin_lin_.resize(joins);
  join_extra_cap_.resize(joins);
  join_infeasible_.resize(joins);
  dp_.resize(joins);
  parent_.assign(joins, 0);
  reachable_.assign(joins, 0);
  evals_pre_.assign(joins, 0);
  reachable_[0] = 1;
  dp_[0] = LogDouble::Zero();
  sorted_.resize(n);
  extra_.resize(n);
}

bool QohCostEvaluator::PipelineCost(int first, int last,
                                    const LogDouble* bound, LogDouble* cost) {
  // Memory floors, folded in join order like PipelineCostImpl. The naive
  // code compares only the final sum against the budget; since each
  // addend is non-negative, partial sums are monotone under
  // round-to-nearest, so bailing out as soon as a partial exceeds the
  // budget reaches the identical feasibility verdict.
  double floor_sum = 0.0;
  for (int j = first; j <= last; ++j) {
    floor_sum += join_hjmin_lin_[static_cast<size_t>(j)];
    if (floor_sum > memory_linear_) return false;
  }

  // Greedy continuous allocation in decreasing slope order, equal slopes
  // toward the earlier join. The comparator is a strict *total* order, so
  // the sorted permutation is unique — the incrementally maintained
  // sorted_ (see EvaluateFrom) is exactly what PipelineCostImpl's
  // std::sort would produce, and walking it replays the allocator
  // operand for operand.
  double budget = memory_linear_ - floor_sum;
  size_t len = static_cast<size_t>(last - first + 1);
  std::fill(extra_.begin() + first, extra_.begin() + last + 1, 0.0);
  for (size_t i = 0; i < len; ++i) {
    if (budget <= 0.0) break;
    size_t idx = static_cast<size_t>(sorted_[i]);
    double want = std::min(budget, join_extra_cap_[idx]);
    if (want <= 0.0) continue;
    extra_[idx] = want;
    budget -= want;
  }

  // The cost fold, with a sound early exit: every addend is a non-negative
  // LogDouble and operator+ never rounds below its larger operand, so the
  // partial sums are monotone non-decreasing bit-for-bit. The moment a
  // partial strictly exceeds `bound` (the DP incumbent), the full cost —
  // and a fortiori dp_[i-1] + cost — strictly exceeds it too; the naive
  // code would finish the fold and then reject the candidate, so stopping
  // here reaches the identical DP outcome without the remaining
  // log-sum-exp work.
  LogDouble c = prefix_[static_cast<size_t>(first)] +
                prefix_[static_cast<size_t>(last) + 1];
  if (bound != nullptr && c > *bound) return false;
  for (int j = first; j <= last; ++j) {
    size_t sj = static_cast<size_t>(j);
    double g = 0.0;
    if (join_extra_cap_[sj] > 0.0) {
      g = std::clamp(1.0 - extra_[sj] / join_extra_cap_[sj], 0.0, 1.0);
    }
    // g is clamped to [0, 1] and is exactly 0.0 or 1.0 for every join
    // that is fully granted or not granted at all — the common cases —
    // and both admit a bit-exact shortcut for opi * FromLinear(g) + inner:
    //   g == 0: opi * Zero() is Zero(), and Zero() + inner returns inner
    //           verbatim (operator+'s IsZero branch), so the term is
    //           join_inner_ itself.
    //   g == 1: FromLinear(1.0) is One() bit for bit (IEEE log2(1.0) is
    //           +0.0) and opi * One() adds +0.0 to an exponent that is
    //           never -0.0 (it comes out of operator+'s hi + positive),
    //           so the term is the precomputed join_h1_ = opi + inner.
    // Only fractional grants pay the log2 and the extra log-sum-exp.
    LogDouble term;
    if (g == 0.0) {
      term = join_inner_[sj];
    } else if (g == 1.0) {
      term = join_h1_[sj];
    } else {
      term = join_opi_[sj] * LogDouble::FromLinear(g) + join_inner_[sj];
    }
    c += term;
    if (bound != nullptr && c > *bound) return false;
  }
  *cost = c;
  return true;
}

void QohCostEvaluator::EvaluateFrom(int first_pos) {
  size_t n = static_cast<size_t>(n_);
  // Prefix sizes: the QohPrefixSizes fold, resumed at first_pos.
  if (first_pos == 0) prefix_[0] = LogDouble::One();
  for (size_t p = static_cast<size_t>(first_pos); p < n; ++p) {
    int v = seq_[p];
    size_t sv = static_cast<size_t>(v);
    LogDouble next = prefix_[p] * sizes_[sv];
    const uint64_t* arow = adj_.data() + sv * words_;
    const LogDouble* srow = selt_.data() + sv * n;
    for (size_t j = 0; j < p; ++j) {
      int u = seq_[j];
      if ((arow[static_cast<size_t>(u >> 6)] >> (u & 63)) & 1) {
        next *= srow[static_cast<size_t>(u)];
      }
    }
    prefix_[p + 1] = next;
  }
  // Join shapes: join j (inner seq_[j], outer prefix_[j]) is unaffected by
  // a change at position `first_pos` exactly when j < first_pos.
  int first_join = std::max(first_pos, 1);
  for (int j = first_join; j <= total_joins_; ++j) {
    size_t sj = static_cast<size_t>(j);
    size_t sv = static_cast<size_t>(seq_[sj]);
    join_inner_[sj] = sizes_[sv];
    join_hjmin_lin_[sj] = rel_hjmin_lin_[sv];
    join_extra_cap_[sj] = rel_extra_cap_[sv];
    join_infeasible_[sj] = rel_build_infeasible_[sv];
    join_opi_[sj] = prefix_[sj] + sizes_[sv];
    join_h1_[sj] = join_opi_[sj] + sizes_[sv];
    join_slope_[sj] = rel_extra_cap_[sv] > 0.0
                          ? join_opi_[sj] / rel_denom_[sv]
                          : LogDouble::Zero();
  }
  // DP over break points, bit-identical to the OptimalDecomposition
  // transitions; dp_/parent_/reachable_ for k < first_join are reused
  // verbatim (they depend only on joins < first_join). Transitions into k
  // run with i *descending* so pipeline (i..k) grows at the front and
  // sorted_ can be maintained by insertion instead of a per-pipeline
  // std::sort — the slope comparator is a strict total order, so the
  // permutation is the same either way. Result equivalence with the
  // naive ascending loop: dp_[k] is the min over the same candidate set
  // (min is order-independent), and the `<=` update below makes the
  // smallest i win exact ties, matching first-wins under ascending `<`.
  for (int k = first_join; k <= total_joins_; ++k) {
    size_t sk = static_cast<size_t>(k);
    uint64_t evals = 0;
    size_t sorted_len = 0;
    bool has_infeasible_join = false;
    bool any = false;
    LogDouble best;
    int best_parent = 0;
    for (int i = k; i >= 1; --i) {
      size_t si = static_cast<size_t>(i);
      if (join_infeasible_[si]) {
        // Every pipeline from here on contains this join, so none can be
        // feasible (PipelineCostImpl rejects them one by one; we reject
        // them wholesale). Evaluations are still counted per reachable i.
        has_infeasible_join = true;
      } else if (!has_infeasible_join) {
        // Insert join i into the slope order. It has the smallest index
        // in the pipeline, so among equal slopes it goes first.
        int* begin = sorted_.data();
        int* pos = std::partition_point(begin, begin + sorted_len, [&](int j) {
          return join_slope_[static_cast<size_t>(j)] > join_slope_[si];
        });
        std::memmove(pos + 1, pos,
                     static_cast<size_t>(begin + sorted_len - pos) *
                         sizeof(int));
        *pos = i;
        ++sorted_len;
      }
      if (!reachable_[si - 1]) continue;
      ++evals;
      if (has_infeasible_join) continue;
      // frag_cost is a sum of non-negative LogDoubles, and LogDouble's +
      // never rounds below its larger operand, so candidate >= dp_[i-1]
      // bit-for-bit: when dp_[i-1] > best the candidate cannot win (not
      // even a tie), and the pipeline evaluation can be skipped outright.
      if (any && dp_[si - 1] > best) continue;
      LogDouble frag_cost;
      if (!PipelineCost(i, k, any ? &best : nullptr, &frag_cost)) continue;
      LogDouble candidate = dp_[si - 1] + frag_cost;
      if (!any || candidate <= best) {
        any = true;
        best = candidate;
        best_parent = i;
      }
    }
    reachable_[sk] = any ? 1 : 0;
    if (any) {
      dp_[sk] = best;
      parent_[sk] = best_parent;
    }
    evals_pre_[sk] = evals_pre_[sk - 1] + evals;
  }

  std::vector<int>& starts = plan_.decomposition.starts;
  starts.clear();
  if (!reachable_[static_cast<size_t>(total_joins_)]) {
    plan_.feasible = false;
    plan_.cost = LogDouble::Zero();
    return;
  }
  for (int k = total_joins_; k > 0; k = parent_[static_cast<size_t>(k)] - 1) {
    starts.push_back(parent_[static_cast<size_t>(k)]);
  }
  std::reverse(starts.begin(), starts.end());
  plan_.feasible = true;
  plan_.cost = dp_[static_cast<size_t>(total_joins_)];
}

const QohPlan& QohCostEvaluator::Evaluate(const JoinSequence& seq) {
  if (cost_eval_internal::ForceNaive()) {
    valid_ = false;
    plan_ = OptimalDecomposition(*inst_, seq);
    return plan_;
  }
  // Same counters, incremented by the same per-call amounts, as
  // OptimalDecomposition — run-log counter deltas must not change.
  static obs::Counter& calls =
      obs::Registry::Get().GetCounter("qoh.decomp.calls");
  static obs::Counter& pipeline_evals =
      obs::Registry::Get().GetCounter("qoh.decomp.pipeline_evals");
  static obs::Counter& fragments =
      obs::Registry::Get().GetCounter("qoh.decomp.fragments");
  calls.Increment();
  AQO_CHECK(static_cast<int>(seq.size()) == n_);
  AQO_DCHECK(IsPermutation(seq, n_));
  int first = 0;
  if (valid_) {
    while (first < n_ && seq[static_cast<size_t>(first)] ==
                             seq_[static_cast<size_t>(first)]) {
      ++first;
    }
  }
  if (!valid_ || first < n_) {
    std::copy(seq.begin() + first, seq.end(), seq_.begin() + first);
    EvaluateFrom(valid_ ? first : 0);
    valid_ = true;
  }
  // The naive code re-runs the full DP every call, so the logical (and
  // reported) evaluation count is the total, not just the recomputed tail.
  pipeline_evals.Add(evals_pre_[static_cast<size_t>(total_joins_)]);
  if (plan_.feasible) fragments.Add(plan_.decomposition.starts.size());
  return plan_;
}

LogDouble QohCostEvaluator::ExtendSize(LogDouble intermediate,
                                       const std::vector<int>& prefix,
                                       int target) const {
  if (cost_eval_internal::ForceNaive()) {
    LogDouble next = intermediate * inst_->size(target);
    for (int k : prefix) {
      if (inst_->graph().HasEdge(k, target)) {
        next *= inst_->selectivity(k, target);
      }
    }
    return next;
  }
  size_t st = static_cast<size_t>(target);
  LogDouble next = intermediate * sizes_[st];
  const uint64_t* arow = adj_.data() + st * words_;
  const LogDouble* srow = selt_.data() + st * static_cast<size_t>(n_);
  for (int k : prefix) {
    if ((arow[static_cast<size_t>(k >> 6)] >> (k & 63)) & 1) {
      next *= srow[static_cast<size_t>(k)];
    }
  }
  return next;
}

}  // namespace aqo
