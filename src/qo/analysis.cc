#include "qo/analysis.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/check.h"

namespace aqo {

CostProfile ComputeCostProfile(const QonInstance& inst,
                               const JoinSequence& seq) {
  std::vector<LogDouble> h = QonJoinCosts(inst, seq);
  AQO_CHECK(!h.empty());
  CostProfile profile;
  profile.log2_h.reserve(h.size());
  LogDouble total = LogDouble::Zero();
  for (size_t i = 0; i < h.size(); ++i) {
    profile.log2_h.push_back(h[i].Log2());
    total += h[i];
    if (h[i] > h[static_cast<size_t>(profile.peak_index)]) {
      profile.peak_index = static_cast<int>(i);
    }
  }
  profile.log2_total = total.Log2();
  profile.log2_sum_over_peak =
      total.Log2() - profile.log2_h[static_cast<size_t>(profile.peak_index)];
  for (size_t i = 1; i < profile.log2_h.size(); ++i) {
    double step = profile.log2_h[i] - profile.log2_h[i - 1];
    if (static_cast<int>(i) <= profile.peak_index) {
      profile.max_rise_violation =
          std::max(profile.max_rise_violation, -step);
    } else {
      profile.max_post_peak_rise =
          std::max(profile.max_post_peak_rise, step);
    }
  }
  return profile;
}

std::string PlanToString(const QonInstance& inst, const JoinSequence& seq,
                         const std::vector<std::string>& names) {
  AQO_CHECK(IsPermutation(seq, inst.NumRelations()));
  auto name = [&names](int r) {
    return static_cast<size_t>(r) < names.size() ? names[static_cast<size_t>(r)]
                                                 : "R" + std::to_string(r);
  };
  std::vector<LogDouble> prefix = PrefixSizes(inst, seq);
  std::vector<LogDouble> h = QonJoinCosts(inst, seq);
  std::ostringstream os;
  os << name(seq[0]) << "  (|" << name(seq[0]) << "| = " << inst.size(seq[0])
     << ")\n";
  for (size_t i = 1; i < seq.size(); ++i) {
    os << std::string(2 * i, ' ') << "|x| " << name(seq[i])
       << "   cost " << h[i - 1] << ", result " << prefix[i + 1] << "\n";
  }
  LogDouble total = LogDouble::Zero();
  for (LogDouble x : h) total += x;
  os << "total cost: " << total << "\n";
  return os.str();
}

LogDouble CoutSequenceCost(const QonInstance& inst, const JoinSequence& seq) {
  std::vector<LogDouble> prefix = PrefixSizes(inst, seq);
  LogDouble total = LogDouble::Zero();
  for (size_t k = 2; k < prefix.size(); ++k) total += prefix[k];
  return total;
}

namespace {

// Anytime fallback for a C_out DP cut short mid-table: greedy
// min-next-intermediate construction (the natural C_out greedy), a pure
// function of the instance. Starts from the smallest relation; all ties
// break toward the lowest relation id.
OptimizerResult CoutGreedyCutShort(const QonInstance& inst, PlanStatus status,
                                   uint64_t dp_evaluations) {
  int n = inst.NumRelations();
  OptimizerResult result;
  int first = 0;
  for (int j = 1; j < n; ++j) {
    if (inst.size(j) < inst.size(first)) first = j;
  }
  JoinSequence seq = {first};
  std::vector<bool> placed(static_cast<size_t>(n), false);
  placed[static_cast<size_t>(first)] = true;
  LogDouble intermediate = inst.size(first);
  while (static_cast<int>(seq.size()) < n) {
    int best_j = -1;
    LogDouble best_next;
    for (int j = 0; j < n; ++j) {
      if (placed[static_cast<size_t>(j)]) continue;
      LogDouble next = intermediate * inst.size(j);
      for (int k : seq) {
        if (inst.graph().HasEdge(k, j)) next *= inst.selectivity(k, j);
      }
      if (best_j < 0 || next < best_next) {
        best_j = j;
        best_next = next;
      }
    }
    seq.push_back(best_j);
    placed[static_cast<size_t>(best_j)] = true;
    intermediate = best_next;
  }
  result.feasible = true;
  result.sequence = seq;
  result.cost = CoutSequenceCost(inst, seq);
  result.evaluations = dp_evaluations + static_cast<uint64_t>(n) - 1;
  result.status = status;
  return result;
}

}  // namespace

OptimizerResult CoutOptimalJoinOrder(const QonInstance& inst,
                                     const Budget& budget,
                                     CancelToken* cancel) {
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  AQO_CHECK(n <= 24) << "subset DP is 2^n";
  RunGuard guard(budget, cancel);
  size_t full = (size_t{1} << n) - 1;

  std::vector<LogDouble> subset_size(full + 1, LogDouble::One());
  for (size_t mask = 1; mask <= full; ++mask) {
    int j = std::countr_zero(mask);
    size_t rest = mask & (mask - 1);
    LogDouble v = subset_size[rest] * inst.size(j);
    for (size_t m = rest; m != 0; m &= m - 1) {
      int k = std::countr_zero(m);
      if (inst.graph().HasEdge(k, j)) v *= inst.selectivity(k, j);
    }
    subset_size[mask] = v;
  }

  // C_out extension cost is N(S union {j}) = subset_size of the new set:
  // dp[S] = min_j dp[S \ {j}] + N(S) for |S| >= 2.
  std::vector<LogDouble> dp(full + 1);
  std::vector<int8_t> last(full + 1, -1);
  OptimizerResult result;
  for (size_t mask = 1; mask <= full; ++mask) {
    if (guard.ShouldStop(result.evaluations)) {
      return CoutGreedyCutShort(inst, guard.status(), result.evaluations);
    }
    int bits = std::popcount(mask);
    if (bits == 1) {
      dp[mask] = LogDouble::Zero();
      last[mask] = static_cast<int8_t>(std::countr_zero(mask));
      continue;
    }
    bool first = true;
    for (size_t m = mask; m != 0; m &= m - 1) {
      int j = std::countr_zero(m);
      LogDouble cand = dp[mask & ~(size_t{1} << j)];
      ++result.evaluations;
      if (first || cand < dp[mask]) {
        dp[mask] = cand;
        last[mask] = static_cast<int8_t>(j);
        first = false;
      }
    }
    dp[mask] += subset_size[mask];
  }

  result.feasible = true;
  result.cost = dp[full];
  JoinSequence seq;
  size_t mask = full;
  while (mask != 0) {
    int j = last[mask];
    seq.push_back(j);
    mask &= ~(size_t{1} << j);
  }
  std::reverse(seq.begin(), seq.end());
  result.sequence = seq;
  AQO_CHECK(CoutSequenceCost(inst, seq).ApproxEquals(result.cost, 1e-6));
  return result;
}

}  // namespace aqo
