#include "qo/workloads.h"

#include <cmath>

#include "graph/generators.h"
#include "util/check.h"

namespace aqo {

namespace {

LogDouble LogUniformSize(Rng* rng, const WorkloadOptions& options) {
  AQO_CHECK(options.min_size >= 1.0 && options.max_size >= options.min_size);
  double lg = rng->UniformReal(std::log2(options.min_size),
                               std::log2(options.max_size));
  return LogDouble::FromLog2(lg);
}

LogDouble UniformSelectivity(Rng* rng, const WorkloadOptions& options) {
  AQO_CHECK(0.0 < options.min_selectivity &&
            options.min_selectivity <= options.max_selectivity &&
            options.max_selectivity <= 1.0);
  return LogDouble::FromLinear(
      rng->UniformReal(options.min_selectivity, options.max_selectivity));
}

}  // namespace

Graph WorkloadGraph(int n, Rng* rng, const WorkloadOptions& options) {
  switch (options.shape) {
    case WorkloadShape::kChain:
      return Chain(n);
    case WorkloadShape::kStar:
      return Star(n);
    case WorkloadShape::kTree:
      return RandomTree(n, rng);
    case WorkloadShape::kCycle:
      return Cycle(n);
    case WorkloadShape::kClique:
      return Graph::Complete(n);
    case WorkloadShape::kRandom:
      return Gnp(n, options.edge_probability, rng);
  }
  AQO_CHECK(false) << "unknown shape";
}

QonInstance RandomQonWorkload(int n, Rng* rng, const WorkloadOptions& options) {
  Graph g = WorkloadGraph(n, rng, options);
  std::vector<LogDouble> sizes;
  sizes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) sizes.push_back(LogUniformSize(rng, options));
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, UniformSelectivity(rng, options));
  }
  return inst;
}

QohInstance RandomQohWorkload(int n, Rng* rng, double memory_fraction,
                              const WorkloadOptions& options) {
  AQO_CHECK(memory_fraction > 0.0);
  Graph g = WorkloadGraph(n, rng, options);
  std::vector<LogDouble> sizes;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    // Keep sizes in exact double range: hash tables must be allocatable.
    WorkloadOptions bounded = options;
    bounded.max_size = std::min(options.max_size, 1e9);
    LogDouble s = LogUniformSize(rng, bounded);
    total += s.ToLinear();
    sizes.push_back(s);
  }
  QohInstance inst(g, std::move(sizes), std::max(1.0, total * memory_fraction));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, UniformSelectivity(rng, options));
  }
  return inst;
}

}  // namespace aqo
