#include "qo/qoh_optimizers.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/metrics.h"
#include "qo/cost_eval.h"
#include "qo/fast_eval.h"
#include "util/check.h"

namespace aqo {

namespace {

obs::Counter& CounterRef(const char* name) {
  return obs::Registry::Get().GetCounter(name);
}

JoinSequence RandomQohSequence(int n, Rng* rng, int sentinel_first) {
  JoinSequence seq;
  if (sentinel_first >= 0) {
    seq.push_back(sentinel_first);
    for (int v = 0; v < n; ++v) {
      if (v != sentinel_first) seq.push_back(v);
    }
    // Shuffle the tail only.
    for (size_t i = seq.size() - 1; i > 1; --i) {
      size_t j = static_cast<size_t>(rng->UniformInt(1, static_cast<int64_t>(i)));
      std::swap(seq[i], seq[j]);
    }
  } else {
    seq = IdentitySequence(n);
    rng->Shuffle(&seq);
  }
  return seq;
}

void Consider(QohCostEvaluator* evaluator, const JoinSequence& seq,
              QohOptimizerResult* best) {
  const QohPlan& plan = evaluator->Evaluate(seq);
  ++best->evaluations;
  if (plan.feasible && (!best->feasible || plan.cost < best->cost)) {
    best->feasible = true;
    best->cost = plan.cost;
    best->sequence = seq;
    best->decomposition = plan.decomposition;
  }
}

// Positions eligible for moves: everything when sentinel_first < 0,
// otherwise positions 1..n-1.
size_t FirstMovable(int sentinel_first) { return sentinel_first >= 0 ? 1 : 0; }

}  // namespace

QohOptimizerResult RandomSamplingQohOptimizer(
    const QohInstance& inst, Rng* rng, const QohOptimizerOptions& options) {
  AQO_CHECK(options.samples >= 1);
  static obs::Counter& drawn = CounterRef("qoh.sample.samples");
  int n = inst.NumRelations();
  RunGuard guard(options.budget, options.cancel);
  QohOptimizerResult best;
  QohCostEvaluator evaluator(inst);
  for (int s = 0; s < options.samples; ++s) {
    if (guard.ShouldStop(best.evaluations)) break;
    drawn.Increment();
    Consider(&evaluator, RandomQohSequence(n, rng, options.sentinel_first),
             &best);
  }
  best.status = guard.status();
  return best;
}

QohOptimizerResult IterativeImprovementQohOptimizer(
    const QohInstance& inst, Rng* rng, const QohOptimizerOptions& options) {
  AQO_CHECK(options.restarts >= 1);
  static obs::Counter& restart_count = CounterRef("qoh.ii.restarts");
  static obs::Counter& improvements = CounterRef("qoh.ii.improvements");
  int n = inst.NumRelations();
  RunGuard guard(options.budget, options.cancel);
  QohOptimizerResult best;
  // Adjacent transpositions change two positions; the evaluator resumes
  // its prefix-size and decomposition DP state from the first of them.
  QohCostEvaluator evaluator(inst);
  // Fast tier: the approximate evaluator's feasibility verdict is exact,
  // and its cost carries a certified bound — so a candidate that is
  // infeasible, or provably no cheaper than `current`, is skipped without
  // the exact decomposition. Possible accepts always go through the exact
  // evaluator (the accepted plan needs its decomposition anyway), keeping
  // the descent trajectory bit-identical. See docs/performance.md.
  const bool use_fast = options.eval_tier == EvalTier::kFast &&
                        !cost_eval_internal::ForceNaive();
  std::optional<QohNeighborhoodEvaluator> fast;
  if (use_fast) fast.emplace(inst);
  static obs::Counter& certified = CounterRef("qo.fast_eval.certified_rejects");
  static obs::Counter& repricings = CounterRef("qo.fast_eval.exact_repricings");
  for (int r = 0; r < options.restarts; ++r) {
    if (guard.ShouldStop(best.evaluations)) break;
    restart_count.Increment();
    JoinSequence current = RandomQohSequence(n, rng, options.sentinel_first);
    const QohPlan& plan = evaluator.Evaluate(current);
    ++best.evaluations;
    if (!plan.feasible) continue;
    LogDouble current_cost = plan.cost;
    bool fast_loaded = false;
    if (!best.feasible || current_cost < best.cost) {
      best.feasible = true;
      best.cost = current_cost;
      best.sequence = current;
      best.decomposition = plan.decomposition;
    }
    bool improved = true;
    size_t lo = FirstMovable(options.sentinel_first);
    while (improved) {
      // `best` already folds every accepted improvement, so a mid-descent
      // cut loses nothing.
      if (guard.ShouldStop(best.evaluations)) break;
      improved = false;
      for (size_t a = lo; a + 1 < current.size() && !improved; ++a) {
        if (use_fast) {
          if (!fast_loaded) {
            fast->Load(current);
            fast_loaded = true;
          }
          bool feasible = false;
          double fc = fast->PriceSwap(static_cast<int>(a),
                                      static_cast<int>(a) + 1, &feasible);
          if (!feasible ||
              fc >= current_cost.Log2() + fast->EpsLog2()) {
            // Infeasibility is the exact verdict; a cost at least
            // current + eps certifies the exact tier's rejection.
            certified.Increment();
            continue;
          }
        }
        std::swap(current[a], current[a + 1]);
        const QohPlan& candidate = evaluator.Evaluate(current);
        if (use_fast) repricings.Increment();
        ++best.evaluations;
        if (candidate.feasible && candidate.cost < current_cost) {
          current_cost = candidate.cost;
          improved = true;
          improvements.Increment();
          fast_loaded = false;
          if (current_cost < best.cost) {
            best.cost = current_cost;
            best.sequence = current;
            best.decomposition = candidate.decomposition;
          }
        } else {
          std::swap(current[a], current[a + 1]);  // undo
        }
      }
    }
  }
  best.status = guard.status();
  return best;
}

QohOptimizerResult SimulatedAnnealingQohOptimizer(
    const QohInstance& inst, Rng* rng, const QohOptimizerOptions& options) {
  static obs::Counter& restarts = CounterRef("qoh.sa.restarts");
  static obs::Counter& accepts = CounterRef("qoh.sa.accepts");
  static obs::Counter& rejects = CounterRef("qoh.sa.rejects");
  int n = inst.NumRelations();
  RunGuard guard(options.budget, options.cancel);
  QohOptimizerResult best;
  QohCostEvaluator evaluator(inst);
  // Fast tier — same scheme as the QO_N annealer: swap candidates whose
  // Boltzmann verdict is identical across the certified error interval
  // are decided without the exact decomposition (the feasibility verdict
  // is exact either way); everything else is re-priced exactly. The
  // accept/reject trajectory, the RNG stream, and the final result are
  // bit-identical across tiers.
  const bool use_fast = options.eval_tier == EvalTier::kFast &&
                        !cost_eval_internal::ForceNaive();
  std::optional<QohNeighborhoodEvaluator> fast;
  if (use_fast) fast.emplace(inst);
  static obs::Counter& certified = CounterRef("qo.fast_eval.certified_rejects");
  static obs::Counter& repricings = CounterRef("qo.fast_eval.exact_repricings");
  static obs::Counter& ambiguous = CounterRef("qo.fast_eval.ambiguous");
  size_t lo = FirstMovable(options.sentinel_first);
  for (int r = 0; r < options.sa.restarts; ++r) {
    if (guard.ShouldStop(best.evaluations)) break;
    restarts.Increment();
    JoinSequence current = RandomQohSequence(n, rng, options.sentinel_first);
    const QohPlan& plan = evaluator.Evaluate(current);
    ++best.evaluations;
    if (!plan.feasible) continue;
    LogDouble current_cost = plan.cost;
    bool fast_loaded = false;
    if (!best.feasible || current_cost < best.cost) {
      best.feasible = true;
      best.cost = current_cost;
      best.sequence = current;
      best.decomposition = plan.decomposition;
    }
    double temperature = options.sa.initial_temperature;
    for (int it = 0; it < options.sa.iterations; ++it) {
      // Before the move draw: the guard never consumes RNG state, so a
      // capped trajectory is an exact prefix of the uncapped one.
      if (guard.ShouldStop(best.evaluations)) break;
      temperature *= options.sa.cooling;
      JoinSequence candidate = current;
      if (static_cast<size_t>(n) - lo < 2) break;
      size_t a = static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(lo), n - 1));
      size_t b = static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(lo), n - 1));
      std::swap(candidate[a], candidate[b]);
      double tprime = std::max(temperature, 1e-9);
      bool decided = false, accept = false, drew = false;
      double u = 0.0;
      if (use_fast && a != b) {
        if (!fast_loaded) {
          fast->Load(current);
          fast_loaded = true;
        }
        int swap_lo = static_cast<int>(std::min(a, b));
        int swap_hi = static_cast<int>(std::max(a, b));
        bool feasible = false;
        double fc = fast->PriceSwap(swap_lo, swap_hi, &feasible);
        if (!feasible) {
          // Exact verdict: the exact tier would evaluate, see an
          // infeasible plan, and fall through without touching the
          // accept/reject counters or the RNG.
          certified.Increment();
          continue;
        }
        double eps = fast->EpsLog2();
        double fd = fc - current_cost.Log2();
        if (fd + eps < 0.0) {
          decided = true;
          accept = true;
        } else if (fd - eps > 0.0) {
          u = rng->UniformReal();
          drew = true;
          if (u >= std::exp(-(fd - eps) / tprime)) {
            certified.Increment();
            rejects.Increment();
            continue;
          }
          if (u < std::exp(-(fd + eps) / tprime)) {
            decided = true;
            accept = true;
          }
        }
      }
      const QohPlan& next = evaluator.Evaluate(candidate);
      if (use_fast) repricings.Increment();
      ++best.evaluations;
      if (!next.feasible) continue;
      double delta = next.cost.Log2() - current_cost.Log2();
      if (!decided) {
        if (use_fast && a != b) ambiguous.Increment();
        if (delta <= 0.0) {
          accept = true;
        } else {
          if (!drew) u = rng->UniformReal();
          accept = u < std::exp(-delta / tprime);
        }
      }
      if (accept) {
        accepts.Increment();
        current = std::move(candidate);
        current_cost = next.cost;
        fast_loaded = false;
        if (current_cost < best.cost) {
          best.cost = current_cost;
          best.sequence = current;
          best.decomposition = next.decomposition;
        }
      } else {
        rejects.Increment();
      }
    }
  }
  best.status = guard.status();
  return best;
}

}  // namespace aqo
