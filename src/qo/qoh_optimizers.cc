#include "qo/qoh_optimizers.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "qo/cost_eval.h"
#include "util/check.h"

namespace aqo {

namespace {

obs::Counter& CounterRef(const char* name) {
  return obs::Registry::Get().GetCounter(name);
}

JoinSequence RandomQohSequence(int n, Rng* rng, int sentinel_first) {
  JoinSequence seq;
  if (sentinel_first >= 0) {
    seq.push_back(sentinel_first);
    for (int v = 0; v < n; ++v) {
      if (v != sentinel_first) seq.push_back(v);
    }
    // Shuffle the tail only.
    for (size_t i = seq.size() - 1; i > 1; --i) {
      size_t j = static_cast<size_t>(rng->UniformInt(1, static_cast<int64_t>(i)));
      std::swap(seq[i], seq[j]);
    }
  } else {
    seq = IdentitySequence(n);
    rng->Shuffle(&seq);
  }
  return seq;
}

void Consider(QohCostEvaluator* evaluator, const JoinSequence& seq,
              QohOptimizerResult* best) {
  const QohPlan& plan = evaluator->Evaluate(seq);
  ++best->evaluations;
  if (plan.feasible && (!best->feasible || plan.cost < best->cost)) {
    best->feasible = true;
    best->cost = plan.cost;
    best->sequence = seq;
    best->decomposition = plan.decomposition;
  }
}

// Positions eligible for moves: everything when sentinel_first < 0,
// otherwise positions 1..n-1.
size_t FirstMovable(int sentinel_first) { return sentinel_first >= 0 ? 1 : 0; }

}  // namespace

QohOptimizerResult RandomSamplingQohOptimizer(
    const QohInstance& inst, Rng* rng, const QohOptimizerOptions& options) {
  AQO_CHECK(options.samples >= 1);
  static obs::Counter& drawn = CounterRef("qoh.sample.samples");
  int n = inst.NumRelations();
  RunGuard guard(options.budget, options.cancel);
  QohOptimizerResult best;
  QohCostEvaluator evaluator(inst);
  for (int s = 0; s < options.samples; ++s) {
    if (guard.ShouldStop(best.evaluations)) break;
    drawn.Increment();
    Consider(&evaluator, RandomQohSequence(n, rng, options.sentinel_first),
             &best);
  }
  best.status = guard.status();
  return best;
}

QohOptimizerResult IterativeImprovementQohOptimizer(
    const QohInstance& inst, Rng* rng, const QohOptimizerOptions& options) {
  AQO_CHECK(options.restarts >= 1);
  static obs::Counter& restart_count = CounterRef("qoh.ii.restarts");
  static obs::Counter& improvements = CounterRef("qoh.ii.improvements");
  int n = inst.NumRelations();
  RunGuard guard(options.budget, options.cancel);
  QohOptimizerResult best;
  // Adjacent transpositions change two positions; the evaluator resumes
  // its prefix-size and decomposition DP state from the first of them.
  QohCostEvaluator evaluator(inst);
  for (int r = 0; r < options.restarts; ++r) {
    if (guard.ShouldStop(best.evaluations)) break;
    restart_count.Increment();
    JoinSequence current = RandomQohSequence(n, rng, options.sentinel_first);
    const QohPlan& plan = evaluator.Evaluate(current);
    ++best.evaluations;
    if (!plan.feasible) continue;
    LogDouble current_cost = plan.cost;
    if (!best.feasible || current_cost < best.cost) {
      best.feasible = true;
      best.cost = current_cost;
      best.sequence = current;
      best.decomposition = plan.decomposition;
    }
    bool improved = true;
    size_t lo = FirstMovable(options.sentinel_first);
    while (improved) {
      // `best` already folds every accepted improvement, so a mid-descent
      // cut loses nothing.
      if (guard.ShouldStop(best.evaluations)) break;
      improved = false;
      for (size_t a = lo; a + 1 < current.size() && !improved; ++a) {
        std::swap(current[a], current[a + 1]);
        const QohPlan& candidate = evaluator.Evaluate(current);
        ++best.evaluations;
        if (candidate.feasible && candidate.cost < current_cost) {
          current_cost = candidate.cost;
          improved = true;
          improvements.Increment();
          if (current_cost < best.cost) {
            best.cost = current_cost;
            best.sequence = current;
            best.decomposition = candidate.decomposition;
          }
        } else {
          std::swap(current[a], current[a + 1]);  // undo
        }
      }
    }
  }
  best.status = guard.status();
  return best;
}

QohOptimizerResult SimulatedAnnealingQohOptimizer(
    const QohInstance& inst, Rng* rng, const QohOptimizerOptions& options) {
  static obs::Counter& restarts = CounterRef("qoh.sa.restarts");
  static obs::Counter& accepts = CounterRef("qoh.sa.accepts");
  static obs::Counter& rejects = CounterRef("qoh.sa.rejects");
  int n = inst.NumRelations();
  RunGuard guard(options.budget, options.cancel);
  QohOptimizerResult best;
  QohCostEvaluator evaluator(inst);
  size_t lo = FirstMovable(options.sentinel_first);
  for (int r = 0; r < options.sa.restarts; ++r) {
    if (guard.ShouldStop(best.evaluations)) break;
    restarts.Increment();
    JoinSequence current = RandomQohSequence(n, rng, options.sentinel_first);
    const QohPlan& plan = evaluator.Evaluate(current);
    ++best.evaluations;
    if (!plan.feasible) continue;
    LogDouble current_cost = plan.cost;
    if (!best.feasible || current_cost < best.cost) {
      best.feasible = true;
      best.cost = current_cost;
      best.sequence = current;
      best.decomposition = plan.decomposition;
    }
    double temperature = options.sa.initial_temperature;
    for (int it = 0; it < options.sa.iterations; ++it) {
      // Before the move draw: the guard never consumes RNG state, so a
      // capped trajectory is an exact prefix of the uncapped one.
      if (guard.ShouldStop(best.evaluations)) break;
      temperature *= options.sa.cooling;
      JoinSequence candidate = current;
      if (static_cast<size_t>(n) - lo < 2) break;
      size_t a = static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(lo), n - 1));
      size_t b = static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(lo), n - 1));
      std::swap(candidate[a], candidate[b]);
      const QohPlan& next = evaluator.Evaluate(candidate);
      ++best.evaluations;
      if (!next.feasible) continue;
      double delta = next.cost.Log2() - current_cost.Log2();
      if (delta <= 0.0 ||
          rng->UniformReal() < std::exp(-delta / std::max(temperature, 1e-9))) {
        accepts.Increment();
        current = std::move(candidate);
        current_cost = next.cost;
        if (current_cost < best.cost) {
          best.cost = current_cost;
          best.sequence = current;
          best.decomposition = next.decomposition;
        }
      } else {
        rejects.Increment();
      }
    }
  }
  best.status = guard.status();
  return best;
}

}  // namespace aqo
