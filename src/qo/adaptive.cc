#include "qo/adaptive.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "obs/metrics.h"
#include "obs/runlog.h"
#include "qo/persist.h"
#include "qo/registry.h"
#include "util/check.h"

namespace aqo {

namespace {

// Log-domain features are clamped to this magnitude so zero sizes /
// selectivities (log2 = -inf) stay inside finite arithmetic.
constexpr double kLogClamp = 1024.0;

// Infeasible neighbors predict this regret: far beyond any clamped cost
// difference, so a candidate with infeasible history never looks cheap.
constexpr double kInfeasibleRegret = 1.0e6;

// Stream tags for the two inner-run Rngs (ASCII "fallback" / "chosen..").
constexpr uint64_t kFallbackStream = 0x66616c6c6261636bULL;
constexpr uint64_t kChosenStream = 0x63686f73656e2e2eULL;

double ClampLog(double log2) {
  if (std::isnan(log2)) return 0.0;
  return std::min(kLogClamp, std::max(-kLogClamp, log2));
}

obs::Counter& AdaptiveCounter(const char* name) {
  return obs::Registry::Get().GetCounter(std::string("qo.adaptive.") + name);
}

std::string HexU64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return buf;
}

bool ParseHexU64(std::string_view s, uint64_t* out) {
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
  }
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

// --- LE byte codec helpers (mirrors qo/persist.cc's internal codec; the
// framing above the payload is shared via EncodeFramedRecord) ---

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view s) : s_(s) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(s_[pos_++]);
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(s_[pos_++])) << (8 * i);
    }
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(s_[pos_++])) << (8 * i);
    }
    return v;
  }

  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string Bytes(size_t len) {
    if (!Need(len)) return {};
    std::string out(s_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == s_.size(); }
  size_t remaining() const { return s_.size() - pos_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || s_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view s_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Digest of a record's encoded bytes, for committed-set dedup.
Hash128 DigestBytes(std::string_view bytes) {
  HashAccumulator acc(0x61646170746976ULL);  // "adaptiv"
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word = 0;
    std::memcpy(&word, bytes.data() + i, 8);
    acc.Add(word);
  }
  uint64_t tail = 0;
  if (i < bytes.size()) std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
  acc.Add(tail);
  acc.Add(bytes.size());
  return acc.Digest();
}

// Weighted L1 feature distance. Weights put the structural coordinates
// (size, density, 1-WL class) in charge and let the cost-model summaries
// refine; any fixed positive weighting keeps the ordering deterministic,
// which is the property the replay contract needs.
double FeatureDistance(const InstanceFeatures& a, const InstanceFeatures& b,
                       uint64_t knob_hash_a, uint64_t knob_hash_b) {
  double d = 0.0;
  d += 1.0 * std::abs(static_cast<double>(a.n) - static_cast<double>(b.n));
  d += 8.0 * std::abs(a.edge_density - b.edge_density);
  d += 0.25 * std::abs(a.log_size_mean - b.log_size_mean);
  d += 0.125 * std::abs(a.log_size_max - b.log_size_max);
  d += 0.25 * std::abs(a.sel_log_mean - b.sel_log_mean);
  d += 0.125 * std::abs(a.sel_log_min - b.sel_log_min);
  d += 0.125 * std::abs(a.access_log_mean - b.access_log_mean);
  d += 0.0625 * std::abs(a.memory_log2 - b.memory_log2);
  d += 1.0 * std::abs(a.eta - b.eta);
  if (a.wl_class != b.wl_class) d += 4.0;
  if (knob_hash_a != knob_hash_b) d += 2.0;
  return d;
}

obs::JsonValue FeaturesJson(const InstanceFeatures& f) {
  obs::JsonValue v = obs::JsonValue::Object();
  v["n"] = f.n;
  v["edges"] = f.edges;
  v["edge_density"] = f.edge_density;
  v["log_size_mean"] = f.log_size_mean;
  v["log_size_min"] = f.log_size_min;
  v["log_size_max"] = f.log_size_max;
  v["sel_log_mean"] = f.sel_log_mean;
  v["sel_log_min"] = f.sel_log_min;
  v["access_log_mean"] = f.access_log_mean;
  v["access_log_max"] = f.access_log_max;
  v["memory_log2"] = f.memory_log2;
  v["eta"] = f.eta;
  // u64: hex string, not a JSON number (doubles cannot carry 64 bits).
  v["wl_class"] = HexU64(f.wl_class);
  return v;
}

bool FeaturesFromJson(const obs::JsonValue& v, InstanceFeatures* f,
                      std::string* error) {
  auto need = [&](const char* key) -> const obs::JsonValue* {
    const obs::JsonValue* m = v.Find(key);
    if (m == nullptr) *error = std::string("features missing key: ") + key;
    return m;
  };
  const obs::JsonValue* m;
  if ((m = need("n")) == nullptr) return false;
  f->n = static_cast<int>(m->AsInt());
  if ((m = need("edges")) == nullptr) return false;
  f->edges = static_cast<int>(m->AsInt());
  if ((m = need("edge_density")) == nullptr) return false;
  f->edge_density = m->AsDouble();
  if ((m = need("log_size_mean")) == nullptr) return false;
  f->log_size_mean = m->AsDouble();
  if ((m = need("log_size_min")) == nullptr) return false;
  f->log_size_min = m->AsDouble();
  if ((m = need("log_size_max")) == nullptr) return false;
  f->log_size_max = m->AsDouble();
  if ((m = need("sel_log_mean")) == nullptr) return false;
  f->sel_log_mean = m->AsDouble();
  if ((m = need("sel_log_min")) == nullptr) return false;
  f->sel_log_min = m->AsDouble();
  if ((m = need("access_log_mean")) == nullptr) return false;
  f->access_log_mean = m->AsDouble();
  if ((m = need("access_log_max")) == nullptr) return false;
  f->access_log_max = m->AsDouble();
  if ((m = need("memory_log2")) == nullptr) return false;
  f->memory_log2 = m->AsDouble();
  if ((m = need("eta")) == nullptr) return false;
  f->eta = m->AsDouble();
  if ((m = need("wl_class")) == nullptr) return false;
  if (!ParseHexU64(m->AsString(), &f->wl_class)) {
    *error = "features: malformed wl_class hex";
    return false;
  }
  return true;
}

}  // namespace

const char* AdaptiveFamilyName(AdaptiveFamily family) {
  return family == AdaptiveFamily::kQon ? "qon" : "qoh";
}

// --- Feature extraction ---

namespace {

// Shared size/selectivity statistics, accumulated in canonical index
// order (the caller passes the canonical instance, so the summation
// order — and therefore every bit of the result — is label-invariant).
template <typename Instance>
void FillCommonFeatures(const Instance& inst, InstanceFeatures* f) {
  int n = inst.NumRelations();
  f->n = n;
  f->edges = inst.graph().NumEdges();
  f->edge_density =
      n >= 2 ? 2.0 * static_cast<double>(f->edges) /
                   (static_cast<double>(n) * static_cast<double>(n - 1))
             : 0.0;
  if (n > 0) {
    double sum = 0.0;
    double min_l = kLogClamp;
    double max_l = -kLogClamp;
    for (int i = 0; i < n; ++i) {
      double l = ClampLog(inst.size(i).Log2());
      sum += l;
      min_l = std::min(min_l, l);
      max_l = std::max(max_l, l);
    }
    f->log_size_mean = sum / static_cast<double>(n);
    f->log_size_min = min_l;
    f->log_size_max = max_l;
  }
  auto edges = inst.graph().Edges();  // (u, v), u < v, lexicographic
  if (!edges.empty()) {
    double sum = 0.0;
    double min_l = kLogClamp;
    for (const auto& [u, v] : edges) {
      double l = ClampLog(inst.selectivity(u, v).Log2());
      sum += l;
      min_l = std::min(min_l, l);
    }
    f->sel_log_mean = sum / static_cast<double>(edges.size());
    f->sel_log_min = min_l;
  }
}

}  // namespace

InstanceFeatures ExtractQonFeatures(const CanonicalQon& canon) {
  const QonInstance& inst = canon.instance;
  InstanceFeatures f;
  FillCommonFeatures(inst, &f);
  int n = inst.NumRelations();
  if (n >= 2) {
    double sum = 0.0;
    double max_l = -kLogClamp;
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        if (j == k) continue;
        double l = ClampLog(inst.AccessCost(k, j).Log2());
        sum += l;
        max_l = std::max(max_l, l);
      }
    }
    f.access_log_mean = sum / static_cast<double>(n) /
                        static_cast<double>(n - 1);
    f.access_log_max = max_l;
  }
  f.wl_class = canon.fingerprint.lo;
  return f;
}

InstanceFeatures ExtractQohFeatures(const CanonicalQoh& canon) {
  const QohInstance& inst = canon.instance;
  InstanceFeatures f;
  FillCommonFeatures(inst, &f);
  f.memory_log2 = inst.memory() > 0.0 ? ClampLog(std::log2(inst.memory()))
                                      : -kLogClamp;
  f.eta = inst.eta();
  f.wl_class = canon.fingerprint.lo;
  return f;
}

// --- Record codec ---

std::string EncodeFeedbackPayload(const FeedbackRecord& rec) {
  std::string out;
  out.reserve(64 + rec.optimizer.size() + 10 * 8);
  PutU8(&out, static_cast<uint8_t>(rec.family));
  PutU8(&out, rec.feasible ? 1 : 0);
  PutU8(&out, static_cast<uint8_t>(rec.status));
  PutU8(&out, 0);  // reserved
  PutU32(&out, static_cast<uint32_t>(rec.optimizer.size()));
  out.append(rec.optimizer);
  PutU64(&out, rec.knob_hash);
  PutU32(&out, static_cast<uint32_t>(rec.features.n));
  PutU32(&out, static_cast<uint32_t>(rec.features.edges));
  PutF64(&out, rec.features.edge_density);
  PutF64(&out, rec.features.log_size_mean);
  PutF64(&out, rec.features.log_size_min);
  PutF64(&out, rec.features.log_size_max);
  PutF64(&out, rec.features.sel_log_mean);
  PutF64(&out, rec.features.sel_log_min);
  PutF64(&out, rec.features.access_log_mean);
  PutF64(&out, rec.features.access_log_max);
  PutF64(&out, rec.features.memory_log2);
  PutF64(&out, rec.features.eta);
  PutU64(&out, rec.features.wl_class);
  PutF64(&out, rec.cost_log2);
  PutF64(&out, rec.regret_log2);
  PutU64(&out, rec.evaluations);
  return out;
}

bool DecodeFeedbackPayload(std::string_view payload, FeedbackRecord* out,
                           std::string* error) {
  auto fail = [&](const char* reason) {
    if (error != nullptr) *error = reason;
    return false;
  };
  PayloadReader r(payload);
  FeedbackRecord rec;
  uint8_t family = r.U8();
  uint8_t feasible = r.U8();
  uint8_t status = r.U8();
  uint8_t reserved = r.U8();
  if (!r.ok()) return fail("truncated feedback record");
  if (family > 1) return fail("feedback record: family out of range");
  if (feasible > 1) return fail("feedback record: feasible out of range");
  if (status > 3) return fail("feedback record: status out of range");
  if (reserved != 0) return fail("feedback record: nonzero reserved byte");
  uint32_t name_len = r.U32();
  if (!r.ok() || name_len > r.remaining()) {
    return fail("feedback record: implausible optimizer length");
  }
  rec.optimizer = r.Bytes(name_len);
  if (rec.optimizer.empty()) return fail("feedback record: empty optimizer");
  rec.family = static_cast<AdaptiveFamily>(family);
  rec.feasible = feasible != 0;
  rec.status = static_cast<PlanStatus>(status);
  rec.knob_hash = r.U64();
  rec.features.n = static_cast<int>(r.U32());
  rec.features.edges = static_cast<int>(r.U32());
  rec.features.edge_density = r.F64();
  rec.features.log_size_mean = r.F64();
  rec.features.log_size_min = r.F64();
  rec.features.log_size_max = r.F64();
  rec.features.sel_log_mean = r.F64();
  rec.features.sel_log_min = r.F64();
  rec.features.access_log_mean = r.F64();
  rec.features.access_log_max = r.F64();
  rec.features.memory_log2 = r.F64();
  rec.features.eta = r.F64();
  rec.features.wl_class = r.U64();
  rec.cost_log2 = r.F64();
  rec.regret_log2 = r.F64();
  rec.evaluations = r.U64();
  if (!r.ok()) return fail("truncated feedback record");
  if (!r.AtEnd()) return fail("feedback record: trailing bytes");
  const double doubles[] = {
      rec.features.edge_density, rec.features.log_size_mean,
      rec.features.log_size_min, rec.features.log_size_max,
      rec.features.sel_log_mean, rec.features.sel_log_min,
      rec.features.access_log_mean, rec.features.access_log_max,
      rec.features.memory_log2, rec.features.eta, rec.cost_log2,
      rec.regret_log2};
  for (double d : doubles) {
    if (!std::isfinite(d)) return fail("feedback record: non-finite double");
  }
  if (rec.features.n < 0 || rec.features.edges < 0) {
    return fail("feedback record: negative instance shape");
  }
  *out = std::move(rec);
  return true;
}

// --- Knob hashing ---

uint64_t AdaptiveKnobHash(const OptimizerOptions& options) {
  HashAccumulator acc(0x716f6e5f6b6e6f62ULL);  // "qon_knob"
  acc.Add(options.forbid_cartesian ? 1 : 0);
  acc.Add(static_cast<uint64_t>(options.samples));
  acc.Add(static_cast<uint64_t>(options.restarts));
  acc.Add(static_cast<uint64_t>(options.sa.iterations));
  acc.AddDouble(options.sa.initial_temperature);
  acc.AddDouble(options.sa.cooling);
  acc.Add(static_cast<uint64_t>(options.sa.restarts));
  acc.Add(static_cast<uint64_t>(options.ga.population));
  acc.Add(static_cast<uint64_t>(options.ga.generations));
  acc.AddDouble(options.ga.crossover_rate);
  acc.AddDouble(options.ga.mutation_rate);
  acc.Add(static_cast<uint64_t>(options.ga.tournament));
  acc.Add(static_cast<uint64_t>(options.ga.elites));
  acc.Add(options.bnb_node_limit);
  acc.Add(options.budget.max_evaluations);
  return acc.Digest().lo;
}

uint64_t AdaptiveKnobHash(const QohOptimizerOptions& options) {
  HashAccumulator acc(0x716f685f6b6e6f62ULL);  // "qoh_knob"
  acc.Add(static_cast<uint64_t>(options.samples));
  acc.Add(static_cast<uint64_t>(options.restarts));
  acc.Add(static_cast<uint64_t>(static_cast<int64_t>(options.sentinel_first)));
  acc.Add(static_cast<uint64_t>(options.sa.iterations));
  acc.AddDouble(options.sa.initial_temperature);
  acc.AddDouble(options.sa.cooling);
  acc.Add(static_cast<uint64_t>(options.sa.restarts));
  acc.Add(options.budget.max_evaluations);
  return acc.Digest().lo;
}

// --- FeedbackStore ---

FeedbackStore& FeedbackStore::Default() {
  static FeedbackStore* store = new FeedbackStore();
  return *store;
}

void FeedbackStore::Record(const FeedbackRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(rec);
}

uint64_t FeedbackStore::Commit() {
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked();
}

uint64_t FeedbackStore::CommitLocked() {
  if (pending_.empty()) return 0;
  // Sort by encoded bytes: a total order independent of Record() arrival
  // order (pool scheduling must not leak into committed state).
  std::vector<std::pair<std::string, size_t>> order;
  order.reserve(pending_.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    order.emplace_back(EncodeFeedbackPayload(pending_[i]), i);
  }
  std::sort(order.begin(), order.end());
  uint64_t committed = 0;
  uint64_t duplicates = 0;
  std::string appended;
  for (const auto& [bytes, index] : order) {
    Hash128 digest = DigestBytes(bytes);
    if (!digests_.insert(digest).second) {
      ++duplicates;
      continue;
    }
    committed_.push_back(std::move(pending_[index]));
    appended += EncodeFramedRecord(bytes);
    ++committed;
  }
  pending_.clear();
  if (!appended.empty() && !attached_path_.empty() && !attach_failed_) {
    std::ofstream out(attached_path_,
                      std::ios::binary | std::ios::app);
    if (!out || !(out.write(appended.data(),
                            static_cast<std::streamsize>(appended.size())))) {
      attach_failed_ = true;
    } else {
      out.flush();
      if (!out) attach_failed_ = true;
    }
  }
  AdaptiveCounter("records_committed").Add(committed);
  AdaptiveCounter("records_duplicate").Add(duplicates);
  return committed;
}

size_t FeedbackStore::CommittedSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.size();
}

size_t FeedbackStore::PendingSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void FeedbackStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  committed_.clear();
  pending_.clear();
  digests_.clear();
}

Recommendation FeedbackStore::Recommend(
    const InstanceFeatures& features, AdaptiveFamily family,
    const std::vector<std::string>& candidates, uint64_t knob_hash,
    double quality_target, int k_neighbors, int min_trials,
    uint64_t decision_seed) const {
  std::lock_guard<std::mutex> lock(mu_);
  AQO_CHECK(!candidates.empty()) << "adaptive: empty candidate list";
  if (quality_target < 1.0) quality_target = 1.0;
  if (k_neighbors < 1) k_neighbors = 1;
  if (min_trials < 0) min_trials = 0;

  Recommendation rec;
  rec.candidates.reserve(candidates.size());
  for (const std::string& name : candidates) {
    CandidatePrediction pred;
    pred.optimizer = name;
    // (distance, committed index): ties resolve toward earlier commits.
    std::vector<std::pair<double, size_t>> near;
    for (size_t i = 0; i < committed_.size(); ++i) {
      const FeedbackRecord& r = committed_[i];
      if (r.family != family || r.optimizer != name) continue;
      near.emplace_back(
          FeatureDistance(features, r.features, knob_hash, r.knob_hash), i);
    }
    pred.trials = near.size();
    if (!near.empty()) {
      size_t k = std::min(near.size(), static_cast<size_t>(k_neighbors));
      std::sort(near.begin(), near.end());
      double regret_sum = 0.0;
      double evals_sum = 0.0;
      for (size_t i = 0; i < k; ++i) {
        const FeedbackRecord& r = committed_[near[i].second];
        regret_sum += r.feasible ? r.regret_log2 : kInfeasibleRegret;
        evals_sum += static_cast<double>(r.evaluations);
      }
      pred.predicted_regret_log2 = regret_sum / static_cast<double>(k);
      pred.predicted_evaluations = evals_sum / static_cast<double>(k);
    }
    rec.candidates.push_back(std::move(pred));
  }

  // Explore: any candidate below the trial floor gets priority, chosen by
  // a seeded draw so repeat instances spread over the under-tried set.
  std::vector<size_t> under;
  for (size_t i = 0; i < rec.candidates.size(); ++i) {
    if (rec.candidates[i].trials < static_cast<uint64_t>(min_trials)) {
      under.push_back(i);
    }
  }
  if (!under.empty()) {
    Rng rng(decision_seed);
    size_t pick = under[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(under.size()) - 1))];
    rec.optimizer = rec.candidates[pick].optimizer;
    rec.explored = true;
    return rec;
  }

  // Exploit: cheapest candidate predicted within quality_target of the
  // best (regret is log2-cost over the best sibling, so the slack is the
  // target ratio's log).
  double best_regret = rec.candidates[0].predicted_regret_log2;
  for (const CandidatePrediction& p : rec.candidates) {
    best_regret = std::min(best_regret, p.predicted_regret_log2);
  }
  double slack = std::log2(quality_target);
  size_t choice = 0;
  bool have_choice = false;
  for (size_t i = 0; i < rec.candidates.size(); ++i) {
    CandidatePrediction& p = rec.candidates[i];
    p.eligible = p.predicted_regret_log2 <= best_regret + slack;
    if (!p.eligible) continue;
    if (!have_choice || p.predicted_evaluations <
                            rec.candidates[choice].predicted_evaluations) {
      choice = i;
      have_choice = true;
    }
  }
  AQO_CHECK(have_choice);  // the best-regret candidate is always eligible
  rec.optimizer = rec.candidates[choice].optimizer;
  rec.explored = false;
  return rec;
}

bool FeedbackStore::SaveTo(const std::string& path,
                           std::string* error) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  std::string bytes = EncodePersistHeader(PersistFileKind::kFeedback);
  for (const FeedbackRecord& rec : committed_) {
    bytes += EncodeFramedRecord(EncodeFeedbackPayload(rec));
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

FeedbackLoadStats FeedbackStore::LoadFrom(const std::string& path) {
  FeedbackLoadStats stats;
  std::ifstream in(path, std::ios::binary);
  if (!in) return stats;  // missing file: cold start, not an error
  stats.existed = true;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  FramedFileInfo info = ScanFramedFile(bytes, PersistFileKind::kFeedback);
  stats.torn_tail = info.torn_tail;
  stats.damage = info.damage;
  if (!info.header_ok) return stats;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < info.payloads.size(); ++i) {
    FeedbackRecord rec;
    std::string decode_error;
    if (!DecodeFeedbackPayload(info.payloads[i], &rec, &decode_error)) {
      // Decode damage trumps any later framing damage: salvage stops here.
      std::ostringstream msg;
      msg << "record #" << i << ": " << decode_error;
      stats.damage = msg.str();
      stats.torn_tail = false;
      break;
    }
    Hash128 digest = DigestBytes(info.payloads[i]);
    if (!digests_.insert(digest).second) {
      ++stats.duplicates;
      continue;
    }
    committed_.push_back(std::move(rec));
    ++stats.records;
  }
  AdaptiveCounter("load_records").Add(stats.records);
  return stats;
}

bool FeedbackStore::AttachFile(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Absent: create with a header so appends land in a well-formed file.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    std::string header = EncodePersistHeader(PersistFileKind::kFeedback);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.flush();
    if (!out) {
      if (error != nullptr) *error = "cannot create " + path;
      return false;
    }
  } else {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    in.close();
    FramedFileInfo info = ScanFramedFile(bytes, PersistFileKind::kFeedback);
    if (!info.header_ok) {
      if (error != nullptr) {
        *error = "refusing to attach " + path + ": " + info.damage;
      }
      return false;
    }
    if (info.valid_bytes < bytes.size()) {
      // Torn tail (or post-damage garbage): truncate to the last intact
      // record so appends extend a clean frame boundary.
      if (::truncate(path.c_str(),
                     static_cast<off_t>(info.valid_bytes)) != 0) {
        if (error != nullptr) *error = "cannot repair " + path;
        return false;
      }
    }
  }
  attached_path_ = path;
  attach_failed_ = false;
  return true;
}

// --- The meta-optimizers ---

std::vector<std::string> DefaultAdaptiveCandidates(AdaptiveFamily family) {
  (void)family;  // the same heuristic spread exists in both registries
  return {"greedy", "ii", "sa", "random"};
}

namespace {

struct QonAdaptiveTraits {
  using Instance = QonInstance;
  using Options = OptimizerOptions;
  using Result = OptimizerResult;
  using Canonical = CanonicalQon;
  using Entry = QonOptimizerEntry;
  static constexpr AdaptiveFamily kFamily = AdaptiveFamily::kQon;
  static Canonical Canonicalize(const Instance& inst) {
    return CanonicalizeQon(inst);
  }
  static InstanceFeatures Features(const Canonical& canon) {
    return ExtractQonFeatures(canon);
  }
  static const Entry* FindEntry(std::string_view name) {
    return OptimizerRegistry::Qon().Find(name);
  }
  static void RemapToCanonical(Options*, const Canonical&) {}
};

struct QohAdaptiveTraits {
  using Instance = QohInstance;
  using Options = QohOptimizerOptions;
  using Result = QohOptimizerResult;
  using Canonical = CanonicalQoh;
  using Entry = QohOptimizerEntry;
  static constexpr AdaptiveFamily kFamily = AdaptiveFamily::kQoh;
  static Canonical Canonicalize(const Instance& inst) {
    return CanonicalizeQoh(inst);
  }
  static InstanceFeatures Features(const Canonical& canon) {
    return ExtractQohFeatures(canon);
  }
  static const Entry* FindEntry(std::string_view name) {
    return QohOptimizerRegistry::Get().Find(name);
  }
  static void RemapToCanonical(Options* options, const Canonical& canon) {
    if (options->sentinel_first >= 0) {
      options->sentinel_first = canon.to_canonical[static_cast<size_t>(
          options->sentinel_first)];
    }
  }
};

template <typename Traits>
typename Traits::Result AdaptiveRun(const typename Traits::Instance& inst,
                                    const typename Traits::Options& options) {
  using Result = typename Traits::Result;
  const AdaptiveKnobs& knobs = options.adaptive;
  FeedbackStore& store =
      knobs.store != nullptr ? *knobs.store : FeedbackStore::Default();

  // Canonicalize (idempotent when the batch service already did): the
  // features, the decision, and both inner runs live in canonical labels,
  // so 1-WL-equivalent relabelings decide and plan identically.
  typename Traits::Canonical canon = Traits::Canonicalize(inst);
  InstanceFeatures features = Traits::Features(canon);
  uint64_t decision_seed = MixSeed(knobs.seed, canon.fingerprint.lo);

  // Resolve the fallback and candidate set against the family registry.
  const typename Traits::Entry* fallback_entry =
      Traits::FindEntry(knobs.fallback.empty() ? "greedy" : knobs.fallback);
  AQO_CHECK(fallback_entry != nullptr)
      << "adaptive: unknown fallback optimizer: " << knobs.fallback;
  const std::string& fallback = fallback_entry->name;
  AQO_CHECK(fallback != "adaptive")
      << "adaptive cannot be its own fallback";

  std::vector<std::string> candidates;
  {
    std::vector<std::string> requested =
        knobs.candidates.empty() ? DefaultAdaptiveCandidates(Traits::kFamily)
                                 : ParseOptimizerList(knobs.candidates);
    AQO_CHECK(!requested.empty()) << "adaptive: empty candidate list";
    auto add = [&candidates](const std::string& name) {
      for (const std::string& existing : candidates) {
        if (existing == name) return;
      }
      candidates.push_back(name);
    };
    // The fallback is always a candidate: its outcome is recorded every
    // decision, so the store can learn it is (or is not) good enough.
    add(fallback);
    for (const std::string& name : requested) {
      const typename Traits::Entry* entry = Traits::FindEntry(name);
      AQO_CHECK(entry != nullptr)
          << "adaptive: unknown candidate optimizer: " << name;
      AQO_CHECK(entry->name != "adaptive")
          << "adaptive cannot be its own candidate";
      add(entry->name);
    }
  }

  // Inner options: canonical-label knobs, no outcome reporting (the
  // registry reports one RunOutcome for the adaptive invocation itself;
  // the inner runs feed the store directly).
  typename Traits::Options inner = options;
  inner.feedback = nullptr;
  // Pin the exact tier for inner runs: the fast tier never changes plans,
  // but it does change `evaluations` (exact re-pricings only), and the
  // effort signal recorded in the store must be tier-independent.
  inner.eval_tier = EvalTier::kExact;
  Traits::RemapToCanonical(&inner, canon);
  uint64_t knob_hash = AdaptiveKnobHash(inner);

  double quality_target =
      knobs.quality_target < 1.0 ? 1.0 : knobs.quality_target;
  Recommendation rec = store.Recommend(
      features, Traits::kFamily, candidates, knob_hash, quality_target,
      knobs.k_neighbors, knobs.min_trials, decision_seed);

  // The fallback always runs, on an Rng derived only from the decision
  // seed — its plan is independent of the store state, which is what
  // makes "never worse than the fallback" testable cold vs. warm.
  Rng fallback_rng(MixSeed(decision_seed, kFallbackStream));
  Result fallback_result =
      fallback_entry->run(canon.instance, inner, &fallback_rng);

  Result chosen_result;
  bool ran_chosen = false;
  if (rec.optimizer != fallback) {
    const typename Traits::Entry* chosen_entry =
        Traits::FindEntry(rec.optimizer);
    AQO_CHECK(chosen_entry != nullptr);
    Rng chosen_rng(MixSeed(decision_seed, kChosenStream));
    chosen_result = chosen_entry->run(canon.instance, inner, &chosen_rng);
    ran_chosen = true;
  }

  // Record both outcomes (pending; committed by CommitAdaptiveFeedback).
  double best_log2 = 0.0;
  bool have_best = false;
  auto consider = [&](const Result& r) {
    double l = r.cost.Log2();
    if (!r.feasible || !std::isfinite(l)) return;
    if (!have_best || l < best_log2) best_log2 = l;
    have_best = true;
  };
  consider(fallback_result);
  if (ran_chosen) consider(chosen_result);
  auto record_of = [&](const std::string& name, const Result& r) {
    FeedbackRecord fr;
    fr.family = Traits::kFamily;
    fr.optimizer = name;
    fr.knob_hash = knob_hash;
    fr.features = features;
    double l = r.cost.Log2();
    fr.feasible = r.feasible && std::isfinite(l);
    fr.cost_log2 = fr.feasible ? l : 0.0;
    fr.regret_log2 =
        fr.feasible && have_best ? std::max(0.0, l - best_log2) : 0.0;
    fr.evaluations = r.evaluations;
    fr.status = r.status;
    return fr;
  };
  store.Record(record_of(fallback, fallback_result));
  if (ran_chosen) store.Record(record_of(rec.optimizer, chosen_result));

  // Differential guarantee: return the chosen plan only when it strictly
  // beats the fallback; ties and infeasibility keep the fallback.
  bool return_chosen =
      ran_chosen && chosen_result.feasible &&
      (!fallback_result.feasible || chosen_result.cost < fallback_result.cost);
  Result out = return_chosen ? chosen_result : fallback_result;
  out.evaluations = fallback_result.evaluations +
                    (ran_chosen ? chosen_result.evaluations : 0);
  out.sequence = MapSequenceFromCanonical(out.sequence, canon.from_canonical);

  AdaptiveCounter("decisions").Increment();
  AdaptiveCounter(rec.explored ? "explore" : "exploit").Increment();
  AdaptiveCounter(return_chosen ? "returned_chosen" : "returned_fallback")
      .Increment();

  if (obs::RunLog::Global() != nullptr) {
    obs::JsonValue record = obs::JsonValue::Object();
    record["type"] = "adaptive_decision";
    record["family"] = AdaptiveFamilyName(Traits::kFamily);
    record["fingerprint"] =
        HexU64(canon.fingerprint.lo) + HexU64(canon.fingerprint.hi).substr(2);
    record["features"] = FeaturesJson(features);
    record["knob_hash"] = HexU64(knob_hash);
    record["quality_target"] = quality_target;
    record["k_neighbors"] = knobs.k_neighbors;
    record["min_trials"] = knobs.min_trials;
    record["decision_seed"] = HexU64(decision_seed);
    record["fallback"] = fallback;
    obs::JsonValue cands = obs::JsonValue::Array();
    for (const CandidatePrediction& p : rec.candidates) {
      obs::JsonValue c = obs::JsonValue::Object();
      c["name"] = p.optimizer;
      c["trials"] = p.trials;
      c["predicted_regret_log2"] = p.predicted_regret_log2;
      c["predicted_evaluations"] = p.predicted_evaluations;
      c["eligible"] = p.eligible;
      cands.Push(std::move(c));
    }
    record["candidates"] = std::move(cands);
    record["chosen"] = rec.optimizer;
    record["explored"] = rec.explored;
    obs::JsonValue outcomes = obs::JsonValue::Array();
    auto outcome_json = [](const FeedbackRecord& fr) {
      obs::JsonValue o = obs::JsonValue::Object();
      o["optimizer"] = fr.optimizer;
      o["feasible"] = fr.feasible;
      o["cost_log2"] = fr.cost_log2;
      o["regret_log2"] = fr.regret_log2;
      o["evaluations"] = fr.evaluations;
      o["status"] = static_cast<int>(fr.status);
      return o;
    };
    outcomes.Push(outcome_json(record_of(fallback, fallback_result)));
    if (ran_chosen) {
      outcomes.Push(outcome_json(record_of(rec.optimizer, chosen_result)));
    }
    record["outcomes"] = std::move(outcomes);
    record["returned"] = return_chosen ? rec.optimizer : fallback;
    obs::RunLog::Global()->Write(record);
  }
  return out;
}

}  // namespace

OptimizerResult AdaptiveQonOptimizer(const QonInstance& inst,
                                     const OptimizerOptions& options,
                                     Rng* /*rng*/) {
  return AdaptiveRun<QonAdaptiveTraits>(inst, options);
}

QohOptimizerResult AdaptiveQohOptimizer(const QohInstance& inst,
                                        const QohOptimizerOptions& options,
                                        Rng* /*rng*/) {
  return AdaptiveRun<QohAdaptiveTraits>(inst, options);
}

uint64_t CommitAdaptiveFeedback(const AdaptiveKnobs& knobs) {
  FeedbackStore& store =
      knobs.store != nullptr ? *knobs.store : FeedbackStore::Default();
  uint64_t committed = store.Commit();
  AdaptiveCounter("commits").Increment();
  if (obs::RunLog::Global() != nullptr) {
    obs::JsonValue record = obs::JsonValue::Object();
    record["type"] = "adaptive_commit";
    record["records"] = committed;
    obs::RunLog::Global()->Write(record);
  }
  return committed;
}

// --- Decision-log replay ---

namespace {

bool ReplayDecision(const obs::JsonValue& record, FeedbackStore* store,
                    std::string* error) {
  auto need = [&](const char* key) -> const obs::JsonValue* {
    const obs::JsonValue* m = record.Find(key);
    if (m == nullptr) *error = std::string("decision missing key: ") + key;
    return m;
  };
  const obs::JsonValue* m;
  if ((m = need("family")) == nullptr) return false;
  AdaptiveFamily family =
      m->AsString() == "qoh" ? AdaptiveFamily::kQoh : AdaptiveFamily::kQon;
  if ((m = need("features")) == nullptr) return false;
  InstanceFeatures features;
  if (!FeaturesFromJson(*m, &features, error)) return false;
  uint64_t knob_hash = 0;
  uint64_t decision_seed = 0;
  if ((m = need("knob_hash")) == nullptr) return false;
  if (!ParseHexU64(m->AsString(), &knob_hash)) {
    *error = "malformed knob_hash hex";
    return false;
  }
  if ((m = need("decision_seed")) == nullptr) return false;
  if (!ParseHexU64(m->AsString(), &decision_seed)) {
    *error = "malformed decision_seed hex";
    return false;
  }
  if ((m = need("quality_target")) == nullptr) return false;
  double quality_target = m->AsDouble();
  if ((m = need("k_neighbors")) == nullptr) return false;
  int k_neighbors = static_cast<int>(m->AsInt());
  if ((m = need("min_trials")) == nullptr) return false;
  int min_trials = static_cast<int>(m->AsInt());
  if ((m = need("candidates")) == nullptr) return false;
  std::vector<std::string> candidates;
  for (const obs::JsonValue& c : m->items()) {
    const obs::JsonValue* name = c.Find("name");
    if (name == nullptr) {
      *error = "candidate entry missing name";
      return false;
    }
    candidates.push_back(name->AsString());
  }
  if (candidates.empty()) {
    *error = "decision has no candidates";
    return false;
  }
  const obs::JsonValue* chosen = record.Find("chosen");
  const obs::JsonValue* explored = record.Find("explored");
  if (chosen == nullptr || explored == nullptr) {
    *error = "decision missing chosen/explored";
    return false;
  }

  Recommendation rec =
      store->Recommend(features, family, candidates, knob_hash,
                       quality_target, k_neighbors, min_trials, decision_seed);
  if (rec.optimizer != chosen->AsString() ||
      rec.explored != explored->AsBool()) {
    std::ostringstream msg;
    msg << "decision mismatch: log chose " << chosen->AsString()
        << (explored->AsBool() ? " (explore)" : " (exploit)")
        << ", replay chose " << rec.optimizer
        << (rec.explored ? " (explore)" : " (exploit)");
    *error = msg.str();
    return false;
  }

  // Apply the logged outcomes so later decisions see the same state the
  // original process accumulated.
  if ((m = need("outcomes")) == nullptr) return false;
  for (const obs::JsonValue& o : m->items()) {
    FeedbackRecord fr;
    fr.family = family;
    fr.features = features;
    fr.knob_hash = knob_hash;
    const obs::JsonValue* field;
    if ((field = o.Find("optimizer")) == nullptr) {
      *error = "outcome missing optimizer";
      return false;
    }
    fr.optimizer = field->AsString();
    if ((field = o.Find("feasible")) == nullptr) {
      *error = "outcome missing feasible";
      return false;
    }
    fr.feasible = field->AsBool();
    if ((field = o.Find("cost_log2")) == nullptr) {
      *error = "outcome missing cost_log2";
      return false;
    }
    fr.cost_log2 = field->AsDouble();
    if ((field = o.Find("regret_log2")) == nullptr) {
      *error = "outcome missing regret_log2";
      return false;
    }
    fr.regret_log2 = field->AsDouble();
    if ((field = o.Find("evaluations")) == nullptr) {
      *error = "outcome missing evaluations";
      return false;
    }
    fr.evaluations = field->AsUint();
    if ((field = o.Find("status")) == nullptr) {
      *error = "outcome missing status";
      return false;
    }
    int status = static_cast<int>(field->AsInt());
    if (status < 0 || status > 3) {
      *error = "outcome status out of range";
      return false;
    }
    fr.status = static_cast<PlanStatus>(status);
    store->Record(fr);
  }
  return true;
}

}  // namespace

DecisionReplayStats ReplayDecisionLog(std::istream& jsonl,
                                      FeedbackStore* store) {
  DecisionReplayStats stats;
  std::string line;
  size_t line_number = 0;
  while (std::getline(jsonl, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::optional<obs::JsonValue> record = obs::JsonValue::Parse(line);
    if (!record.has_value() || !record->is_object()) continue;
    const obs::JsonValue* type = record->Find("type");
    if (type == nullptr || !type->is_string()) continue;
    if (type->AsString() == "adaptive_commit") {
      store->Commit();
      ++stats.commits;
      continue;
    }
    if (type->AsString() != "adaptive_decision") continue;
    ++stats.decisions;
    std::string error;
    if (!ReplayDecision(*record, store, &error)) {
      ++stats.mismatches;
      if (stats.error.empty()) {
        std::ostringstream msg;
        msg << "line " << line_number << ": " << error;
        stats.error = msg.str();
      }
    }
  }
  return stats;
}

}  // namespace aqo
