#ifndef AQO_QO_ANALYSIS_H_
#define AQO_QO_ANALYSIS_H_

// Plan diagnostics and alternative cost metrics.
//
// CostProfile materializes the H_i sequence of a plan (the object Lemmas 5
// and 6 reason about): peak location, rise/decay rates, and the share of
// the total carried by the peak.
//
// CoutSequenceCost is the C_out metric — the sum of intermediate result
// sizes — which much of the join-ordering literature (e.g. [2] in the
// paper, Cluet & Moerkotte) uses in place of the paper's access-cost-aware
// H model. Identity worth knowing: when every join is served by a perfect
// index (AccessCost(k, j) = t_j * s_kj, the default) along an edge of the
// query graph, H_i = N(X) * t_j * s_kj = N(X v_j): the H model *is* C_out.
// The two diverge exactly when scans (non-edges or overridden access
// costs) or multi-predicate selectivity stacking enter — which is what
// bench/cost_model_ablation measures. CoutOptimalCost computes its exact left-deep optimum (the
// extension cost N(S) depends only on the set, so the subset DP is
// order-free). bench/cost_model_ablation quantifies how much choosing one
// model and running under the other costs.

#include <string>
#include <vector>

#include "qo/optimizers.h"
#include "qo/qon.h"

namespace aqo {

struct CostProfile {
  std::vector<double> log2_h;  // H_1 .. H_{n-1}
  int peak_index = 0;          // 0-based into log2_h; paper position i+1
  double log2_total = 0.0;
  // max over i of lg(H_{i+1}) - lg(H_i) before/after the peak.
  double max_rise_violation = 0.0;   // > 0 means a dip before the peak
  double max_post_peak_rise = 0.0;   // > 0 means a rise after the peak
  // lg(total) - lg(H_peak): how much the sum exceeds its largest term
  // (Lemma 6 bounds this by lg(alpha) via the geometric-series argument).
  double log2_sum_over_peak = 0.0;
};

CostProfile ComputeCostProfile(const QonInstance& inst,
                               const JoinSequence& seq);

// ASCII rendering of the left-deep plan with per-join cost and
// intermediate size annotations. `names` is optional (defaults to R<i>).
std::string PlanToString(const QonInstance& inst, const JoinSequence& seq,
                         const std::vector<std::string>& names = {});

// C_out: sum over joins of the intermediate result size N(prefix).
LogDouble CoutSequenceCost(const QonInstance& inst, const JoinSequence& seq);

// Exact left-deep C_out optimum via subset DP (n <= 24). The optional
// budget/cancel pair (checked per subset) makes it anytime: a cut-short
// run returns the deterministic min-next-intermediate greedy sequence,
// costed under C_out, as its best-so-far plan.
OptimizerResult CoutOptimalJoinOrder(const QonInstance& inst,
                                     const Budget& budget = {},
                                     CancelToken* cancel = nullptr);

}  // namespace aqo

#endif  // AQO_QO_ANALYSIS_H_
