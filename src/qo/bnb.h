#ifndef AQO_QO_BNB_H_
#define AQO_QO_BNB_H_

// Branch & bound exact optimizer for QO_N.
//
// Depth-first search over left-deep prefixes with three prunes:
//   * cost prune: partial cost already >= incumbent (all H_i are positive);
//   * dominance prune: the same relation *set* was reached cheaper before
//     (extension cost depends on the set only, as in the subset DP);
//   * child ordering: extensions explored cheapest-next-join first, with a
//     greedy incumbent up front.
// Unlike the subset DP it does not materialize 2^n states — on benign
// instances the dominance table stays small and instances well beyond the
// DP's n <= 24 memory wall solve exactly. A node limit turns it into an
// anytime heuristic (proven_optimal = false).

#include <cstdint>

#include "qo/optimizers.h"
#include "qo/qon.h"

namespace aqo {

struct BnbResult {
  OptimizerResult result;
  bool proven_optimal = false;
  uint64_t nodes = 0;
};

BnbResult BranchAndBoundQonOptimizer(const QonInstance& inst,
                                     uint64_t node_limit = 0,
                                     const OptimizerOptions& options = {});

// Registry-uniform entry point: the node budget is read from
// options.bnb_node_limit (no positional knob).
BnbResult BranchAndBoundQonOptimizer(const QonInstance& inst,
                                     const OptimizerOptions& options);

}  // namespace aqo

#endif  // AQO_QO_BNB_H_
