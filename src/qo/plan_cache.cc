#include "qo/plan_cache.h"

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/runlog.h"
#include "util/check.h"
#include "util/fault_injection.h"

namespace aqo {

namespace {

obs::Counter& CounterRef(const char* name) {
  return obs::Registry::Get().GetCounter(name);
}

// Approximate resident size of one entry: the plan's heap payload plus a
// flat estimate of the list node + hash-map slot bookkeeping.
size_t PlanBytes(const CachedPlan& plan) {
  constexpr size_t kBookkeeping = 128;
  return kBookkeeping + sizeof(CachedPlan) +
         plan.sequence.capacity() * sizeof(int) +
         plan.pipeline_starts.capacity() * sizeof(int);
}

}  // namespace

PlanCache::PlanCache(const PlanCacheOptions& options) : options_(options) {
  AQO_CHECK(options_.shards >= 1);
  AQO_CHECK(options_.byte_budget > 0);
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_budget_ = options_.byte_budget / shards_.size();
  AQO_CHECK(shard_budget_ > 0) << "byte budget smaller than shard count";
}

bool PlanCache::Lookup(const Hash128& key, CachedPlan* out) {
  static obs::Counter& hits = CounterRef("qo.plan_cache.hits");
  static obs::Counter& misses = CounterRef("qo.plan_cache.misses");
  static obs::Histogram& probe_us =
      obs::Registry::Get().GetHistogram("qo.plan_cache.probe_us");
  obs::ScopedLatencyTimer timer(probe_us);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses.Increment();
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (out != nullptr) *out = it->second->plan;
  hits.Increment();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void PlanCache::Insert(const Hash128& key, const CachedPlan& plan) {
  static obs::Counter& inserts = CounterRef("qo.plan_cache.inserts");
  static obs::Counter& evictions = CounterRef("qo.plan_cache.evictions");
  static obs::Counter& dropped = CounterRef("qo.plan_cache.insert_dropped");
  static obs::Histogram& insert_us =
      obs::Registry::Get().GetHistogram("qo.plan_cache.insert_us");
  obs::ScopedLatencyTimer timer(insert_us);
  // Fault site "plan_cache.insert": the k-th insert *attempt* on this
  // cache instance is dropped. Dropping an insert is the cache's graceful
  // degradation — results stay correct, later probes just miss. The
  // attempt counter (not the success counter) keys the ordinal so refresh
  // and oversize paths count too; the service performs inserts serially
  // in representative order, keeping the ordinal deterministic.
  uint64_t attempt = insert_attempts_.fetch_add(1, std::memory_order_relaxed);
  if (FaultInjector::Get().ShouldFail("plan_cache.insert", attempt)) {
    dropped.Increment();
    return;
  }
  size_t bytes = PlanBytes(plan);
  if (bytes > shard_budget_) return;  // would evict an entire shard
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh: same key implies the same plan bits (the key folds in the
      // fingerprint, optimizer, knobs and seed), so only recency moves.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
      Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      evictions.Increment();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(Entry{key, plan, bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    inserts.Increment();
    inserts_.fetch_add(1, std::memory_order_relaxed);
  }
  // Write-through hook, outside the shard lock so the observer may do
  // I/O without serializing sibling shards (qo/persist.h).
  if (insert_observer_) insert_observer_(key, plan);
}

void PlanCache::SetInsertObserver(InsertObserver observer) {
  insert_observer_ = std::move(observer);
}

std::vector<std::pair<Hash128, CachedPlan>> PlanCache::Export() const {
  std::vector<std::pair<Hash128, CachedPlan>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Reverse LRU order: re-inserting front-to-back of `out` leaves the
    // most recently used entry at the front again.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      out.emplace_back(it->key, it->plan);
    }
  }
  return out;
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

void PlanCache::LogConfig() const {
  obs::RunLog* log = obs::RunLog::Global();
  if (log == nullptr) return;
  obs::JsonValue record = obs::JsonValue::Object();
  record["type"] = "plan_cache_config";
  record["byte_budget"] = static_cast<uint64_t>(options_.byte_budget);
  record["shards"] = static_cast<int64_t>(options_.shards);
  record["shard_budget"] = static_cast<uint64_t>(shard_budget_);
  log->Write(record);
}

void PlanCache::LogStats() const {
  obs::RunLog* log = obs::RunLog::Global();
  if (log == nullptr) return;
  Stats stats = GetStats();
  obs::JsonValue record = obs::JsonValue::Object();
  record["type"] = "plan_cache_stats";
  record["hits"] = stats.hits;
  record["misses"] = stats.misses;
  record["inserts"] = stats.inserts;
  record["evictions"] = stats.evictions;
  record["entries"] = stats.entries;
  record["bytes"] = stats.bytes;
  uint64_t probes = stats.hits + stats.misses;
  record["hit_rate"] =
      probes == 0 ? 0.0
                  : static_cast<double>(stats.hits) /
                        static_cast<double>(probes);
  log->Write(record);
}

}  // namespace aqo
