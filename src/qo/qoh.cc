#include "qo/qoh.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/check.h"

namespace aqo {

namespace {

// Memory floor for building a hash table on `pages`: ceil(pages^eta),
// in linear pages (exact whenever it fits; the log2 round-trip would
// otherwise smear the integer by an ulp and break exact budget checks).
double HjMinLinear(LogDouble pages, double eta) {
  double l = pages.Log2() * eta;
  if (l <= 52.0) return std::ceil(std::exp2(l));
  return std::exp2(l);  // may overflow to +inf: certainly above any budget
}

LogDouble HjMin(LogDouble pages, double eta) {
  double linear = HjMinLinear(pages, eta);
  if (std::isfinite(linear)) return LogDouble::FromLinear(linear);
  return LogDouble::FromLog2(pages.Log2() * eta);
}

struct JoinShape {
  LogDouble outer;        // stream size b_R (intermediate, possibly huge)
  LogDouble inner;        // base relation size b_S
  LogDouble hjmin;        // memory floor
  double hjmin_linear;    // same, in pages (fits double whenever <= M)
  double inner_linear;    // +inf when the inner does not fit a double
  // Cost-per-page slope of granting memory beyond hjmin, used to rank
  // joins in the greedy allocator: (b_R + b_S) / (b_S - hjmin).
  LogDouble slope;
  double extra_capacity;  // b_S - hjmin, extra memory that still helps
};

// g(m, b_S) for this join given `extra` pages above the floor.
double GFactor(const JoinShape& js, double extra) {
  if (js.extra_capacity <= 0.0) return 0.0;
  double g = 1.0 - extra / js.extra_capacity;
  return std::clamp(g, 0.0, 1.0);
}

PipelineCostResult PipelineCostImpl(const QohInstance& inst,
                                    const JoinSequence& seq,
                                    const std::vector<LogDouble>& prefix,
                                    int first_join, int last_join) {
  PipelineCostResult result;
  int total_joins = static_cast<int>(seq.size()) - 1;
  AQO_CHECK(1 <= first_join && first_join <= last_join &&
            last_join <= total_joins);

  const LogDouble memory = LogDouble::FromLinear(inst.memory());
  std::vector<JoinShape> joins;
  double floor_sum = 0.0;
  for (int j = first_join; j <= last_join; ++j) {
    JoinShape js;
    js.outer = prefix[static_cast<size_t>(j)];
    js.inner = inst.size(seq[static_cast<size_t>(j)]);
    js.hjmin = HjMin(js.inner, inst.eta());
    if (js.hjmin > memory) return result;  // cannot build this hash table
    js.hjmin_linear = HjMinLinear(js.inner, inst.eta());
    js.inner_linear = js.inner.Log2() <= 52.0
                          ? js.inner.ToLinear()
                          : std::numeric_limits<double>::infinity();
    js.extra_capacity = js.inner_linear - js.hjmin_linear;  // may be +inf
    if (js.extra_capacity > 0.0) {
      js.slope = (js.outer + js.inner) / (js.inner - js.hjmin);
    } else {
      js.slope = LogDouble::Zero();  // already at g == 0
    }
    floor_sum += js.hjmin_linear;
    joins.push_back(js);
  }
  if (floor_sum > inst.memory()) return result;  // floors exceed the budget

  // Greedy continuous allocation: hand the leftover budget to joins in
  // decreasing slope order (each join's cost is linear in its grant, so
  // this is the exact optimum of the LP).
  double budget = inst.memory() - floor_sum;
  std::vector<size_t> order(joins.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&joins](size_t a, size_t b) {
    // Equal slopes break toward the earlier join so the allocation (and
    // any cost ties downstream) is a pure function of the instance.
    if (joins[a].slope != joins[b].slope) {
      return joins[a].slope > joins[b].slope;
    }
    return a < b;
  });
  std::vector<double> extra(joins.size(), 0.0);
  for (size_t i : order) {
    if (budget <= 0.0) break;
    double want = std::min(budget, joins[i].extra_capacity);
    if (want <= 0.0) continue;
    extra[i] = want;
    budget -= want;
  }

  // Fragment cost: read the input, run the joins, write the output.
  LogDouble cost = prefix[static_cast<size_t>(first_join)] +
                   prefix[static_cast<size_t>(last_join) + 1];
  result.allocation.reserve(joins.size());
  for (size_t i = 0; i < joins.size(); ++i) {
    const JoinShape& js = joins[i];
    double g = GFactor(js, extra[i]);
    LogDouble h = (js.outer + js.inner) * LogDouble::FromLinear(g) + js.inner;
    cost += h;
    result.allocation.push_back(js.hjmin_linear + extra[i]);
  }
  result.feasible = true;
  result.cost = cost;
  return result;
}

}  // namespace

QohInstance::QohInstance(Graph graph, std::vector<LogDouble> sizes,
                         double memory, double eta)
    : graph_(std::move(graph)), sizes_(std::move(sizes)) {
  int n = graph_.NumVertices();
  AQO_CHECK_EQ(static_cast<int>(sizes_.size()), n);
  for (LogDouble t : sizes_) AQO_CHECK(t > LogDouble::Zero());
  AQO_CHECK(0.0 < eta && eta < 1.0);
  AQO_CHECK(memory > 0.0 && std::isfinite(memory));
  sel_.assign(static_cast<size_t>(n) * static_cast<size_t>(n),
              LogDouble::One());
  memory_ = memory;
  eta_ = eta;
}

void QohInstance::SetSelectivity(int i, int j, LogDouble s) {
  AQO_CHECK(graph_.HasEdge(i, j)) << "selectivity on non-edge " << i << "," << j;
  AQO_CHECK(s > LogDouble::Zero() && s <= LogDouble::One());
  sel_[Index(i, j)] = s;
  sel_[Index(j, i)] = s;
}

void QohInstance::SetMemory(double m) {
  AQO_CHECK(m > 0.0 && std::isfinite(m));
  memory_ = m;
}

LogDouble QohInstance::HashJoinMinMemory(LogDouble pages) const {
  return HjMin(pages, eta_);
}

double QohInstance::HashJoinMinMemoryLinear(LogDouble pages) const {
  return HjMinLinear(pages, eta_);
}

void QohInstance::Validate() const {
  int n = NumRelations();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      AQO_CHECK(sel_[Index(i, j)] == sel_[Index(j, i)]) << "asymmetric S";
      if (!graph_.HasEdge(i, j)) {
        AQO_CHECK(sel_[Index(i, j)] == LogDouble::One())
            << "selectivity != 1 on non-edge";
      }
    }
  }
}

std::vector<LogDouble> QohPrefixSizes(const QohInstance& inst,
                                      const JoinSequence& seq) {
  // Hot path (once per OptimalDecomposition call): debug-only check; the
  // release-build validation lives at the entry points below.
  AQO_DCHECK(IsPermutation(seq, inst.NumRelations()));
  std::vector<LogDouble> sizes(seq.size() + 1);
  sizes[0] = LogDouble::One();
  for (size_t i = 0; i < seq.size(); ++i) {
    int v = seq[i];
    LogDouble next = sizes[i] * inst.size(v);
    for (size_t j = 0; j < i; ++j) {
      if (inst.graph().HasEdge(seq[j], v)) next *= inst.selectivity(seq[j], v);
    }
    sizes[i + 1] = next;
  }
  return sizes;
}

std::pair<int, int> PipelineDecomposition::Fragment(int f,
                                                    int total_joins) const {
  AQO_CHECK(0 <= f && f < NumFragments());
  int first = starts[static_cast<size_t>(f)];
  int last = f + 1 < NumFragments() ? starts[static_cast<size_t>(f) + 1] - 1
                                    : total_joins;
  return {first, last};
}

PipelineCostResult OptimalPipelineCost(const QohInstance& inst,
                                       const JoinSequence& seq, int first_join,
                                       int last_join) {
  AQO_CHECK(IsPermutation(seq, inst.NumRelations()));
  std::vector<LogDouble> prefix = QohPrefixSizes(inst, seq);
  return PipelineCostImpl(inst, seq, prefix, first_join, last_join);
}

PipelineCostResult DecompositionCost(const QohInstance& inst,
                                     const JoinSequence& seq,
                                     const PipelineDecomposition& decomp) {
  PipelineCostResult total;
  int total_joins = static_cast<int>(seq.size()) - 1;
  AQO_CHECK(IsPermutation(seq, inst.NumRelations()));
  AQO_CHECK(!decomp.starts.empty() && decomp.starts[0] == 1)
      << "decomposition must start at join 1";
  for (size_t f = 1; f < decomp.starts.size(); ++f) {
    AQO_CHECK(decomp.starts[f] > decomp.starts[f - 1]);
    AQO_CHECK(decomp.starts[f] <= total_joins);
  }
  std::vector<LogDouble> prefix = QohPrefixSizes(inst, seq);
  LogDouble cost = LogDouble::Zero();
  for (int f = 0; f < decomp.NumFragments(); ++f) {
    auto [first, last] = decomp.Fragment(f, total_joins);
    PipelineCostResult fragment =
        PipelineCostImpl(inst, seq, prefix, first, last);
    if (!fragment.feasible) return total;
    cost += fragment.cost;
    total.allocation.insert(total.allocation.end(),
                            fragment.allocation.begin(),
                            fragment.allocation.end());
  }
  total.feasible = true;
  total.cost = cost;
  return total;
}

QohPlan OptimalDecomposition(const QohInstance& inst, const JoinSequence& seq) {
  static obs::Counter& calls =
      obs::Registry::Get().GetCounter("qoh.decomp.calls");
  static obs::Counter& pipeline_evals =
      obs::Registry::Get().GetCounter("qoh.decomp.pipeline_evals");
  static obs::Counter& fragments =
      obs::Registry::Get().GetCounter("qoh.decomp.fragments");
  calls.Increment();
  QohPlan plan;
  int total_joins = static_cast<int>(seq.size()) - 1;
  AQO_CHECK(total_joins >= 1) << "need at least two relations";
  AQO_CHECK(IsPermutation(seq, inst.NumRelations()));
  std::vector<LogDouble> prefix = QohPrefixSizes(inst, seq);

  // dp[k]: best cost of executing joins 1..k; parent[k]: start of the last
  // fragment in the best split.
  std::vector<bool> reachable(static_cast<size_t>(total_joins) + 1, false);
  std::vector<LogDouble> dp(static_cast<size_t>(total_joins) + 1);
  std::vector<int> parent(static_cast<size_t>(total_joins) + 1, 0);
  reachable[0] = true;
  dp[0] = LogDouble::Zero();
  for (int k = 1; k <= total_joins; ++k) {
    for (int i = 1; i <= k; ++i) {
      if (!reachable[static_cast<size_t>(i) - 1]) continue;
      pipeline_evals.Increment();
      PipelineCostResult frag = PipelineCostImpl(inst, seq, prefix, i, k);
      if (!frag.feasible) continue;
      LogDouble candidate = dp[static_cast<size_t>(i) - 1] + frag.cost;
      if (!reachable[static_cast<size_t>(k)] ||
          candidate < dp[static_cast<size_t>(k)]) {
        reachable[static_cast<size_t>(k)] = true;
        dp[static_cast<size_t>(k)] = candidate;
        parent[static_cast<size_t>(k)] = i;
      }
    }
  }
  if (!reachable[static_cast<size_t>(total_joins)]) return plan;

  std::vector<int> starts;
  for (int k = total_joins; k > 0; k = parent[static_cast<size_t>(k)] - 1) {
    starts.push_back(parent[static_cast<size_t>(k)]);
  }
  std::reverse(starts.begin(), starts.end());
  fragments.Add(starts.size());
  plan.feasible = true;
  plan.cost = dp[static_cast<size_t>(total_joins)];
  plan.decomposition.starts = std::move(starts);
  return plan;
}

}  // namespace aqo
