#include "qo/ikkbz.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "qo/cost_eval.h"
#include "util/check.h"

namespace aqo {

namespace {

// A module is a maximal merged run of relations that must stay contiguous.
// Appending a module after intermediate size N contributes N * C to the
// cost and scales the intermediate by T.
struct Module {
  std::vector<int> rels;
  LogDouble cost;   // C
  LogDouble scale;  // T
};

// rank(M) = (T - 1) / C, compared without materializing the (possibly
// negative, possibly astronomically large) value:
// rank(a) < rank(b)  <=>  (T_a - 1) * C_b < (T_b - 1) * C_a,
// valid because C > 0.
bool RankLess(const Module& a, const Module& b) {
  int sign_a = a.scale > LogDouble::One() ? 1
               : a.scale == LogDouble::One() ? 0
                                             : -1;
  int sign_b = b.scale > LogDouble::One() ? 1
               : b.scale == LogDouble::One() ? 0
                                             : -1;
  if (sign_a != sign_b) return sign_a < sign_b;
  if (sign_a == 0) return false;  // both ranks are exactly 0
  LogDouble mag_a = sign_a > 0 ? a.scale - LogDouble::One()
                               : LogDouble::One() - a.scale;
  LogDouble mag_b = sign_b > 0 ? b.scale - LogDouble::One()
                               : LogDouble::One() - b.scale;
  LogDouble lhs = mag_a * b.cost;
  LogDouble rhs = mag_b * a.cost;
  return sign_a > 0 ? lhs < rhs : lhs > rhs;
}

Module Merge(const Module& a, const Module& b) {
  static obs::Counter& merges =
      obs::Registry::Get().GetCounter("qon.ikkbz.module_merges");
  merges.Increment();
  Module m;
  m.rels = a.rels;
  m.rels.insert(m.rels.end(), b.rels.begin(), b.rels.end());
  m.cost = a.cost + a.scale * b.cost;
  m.scale = a.scale * b.scale;
  return m;
}

using Chain = std::vector<Module>;

// Merges two rank-sorted chains into one rank-sorted chain.
Chain MergeChains(const Chain& x, const Chain& y) {
  Chain out;
  out.reserve(x.size() + y.size());
  size_t i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    if (RankLess(y[j], x[i])) {
      out.push_back(y[j++]);
    } else {
      out.push_back(x[i++]);
    }
  }
  for (; i < x.size(); ++i) out.push_back(x[i]);
  for (; j < y.size(); ++j) out.push_back(y[j]);
  return out;
}

// Restores the invariant that ranks are non-decreasing along the chain by
// merging out-of-order prefixes (normalization). `head` must precede the
// chain; violations can only occur at the boundary and cascade.
Chain Normalize(Module head, Chain tail) {
  Chain out;
  out.push_back(std::move(head));
  for (Module& m : tail) {
    out.push_back(std::move(m));
    // Merge backwards while the predecessor outranks its successor.
    while (out.size() >= 2 &&
           RankLess(out[out.size() - 1], out[out.size() - 2])) {
      Module merged = Merge(out[out.size() - 2], out[out.size() - 1]);
      out.pop_back();
      out.pop_back();
      out.push_back(std::move(merged));
    }
  }
  return out;
}

class IkkbzSolver {
 public:
  IkkbzSolver(const QonInstance& inst, const Budget& budget,
              CancelToken* cancel)
      : inst_(inst), guard_(budget, cancel) {}

  OptimizerResult Solve() {
    static obs::Counter& roots =
        obs::Registry::Get().GetCounter("qon.ikkbz.roots");
    int n = inst_.NumRelations();
    OptimizerResult result;
    QonCostEvaluator evaluator(inst_);
    for (int root = 0; root < n; ++root) {
      // Between roots only — the first root always completes, so a
      // cut-short run still returns a full feasible sequence.
      if (guard_.ShouldStop(result.evaluations)) break;
      roots.Increment();
      JoinSequence seq = SolveForRoot(root);
      LogDouble cost = evaluator.Cost(seq);
      ++result.evaluations;
      if (!result.feasible || cost < result.cost) {
        result.feasible = true;
        result.cost = cost;
        result.sequence = std::move(seq);
      }
    }
    result.status = guard_.status();
    return result;
  }

 private:
  // Linearizes the subtree rooted at `v` (with parent `parent`; -1 for the
  // root) into a rank-sorted chain. For non-roots the chain starts with v's
  // own module and is normalized.
  Chain Linearize(int v, int parent) {
    Chain merged;
    inst_.graph().Neighbors(v).ForEachSetBit([&](int c) {
      if (c == parent) return;
      Chain child = Linearize(c, v);
      merged = MergeChains(merged, child);
    });
    if (parent < 0) return merged;
    Module self;
    self.rels = {v};
    self.cost = inst_.AccessCost(parent, v);
    self.scale = inst_.size(v) * inst_.selectivity(parent, v);
    return Normalize(std::move(self), std::move(merged));
  }

  JoinSequence SolveForRoot(int root) {
    Chain chain = Linearize(root, -1);
    JoinSequence seq = {root};
    for (const Module& m : chain) {
      seq.insert(seq.end(), m.rels.begin(), m.rels.end());
    }
    AQO_CHECK(IsPermutation(seq, inst_.NumRelations()));
    AQO_CHECK(!HasCartesianProduct(inst_.graph(), seq));
    return seq;
  }

  const QonInstance& inst_;
  RunGuard guard_;
};

}  // namespace

bool IsTreeQueryGraph(const Graph& g) {
  return g.NumVertices() >= 1 && g.NumEdges() == g.NumVertices() - 1 &&
         g.IsConnected();
}

OptimizerResult IkkbzOptimizer(const QonInstance& inst, const Budget& budget,
                               CancelToken* cancel) {
  AQO_CHECK(IsTreeQueryGraph(inst.graph())) << "IK/KBZ requires a tree query graph";
  AQO_CHECK(inst.NumRelations() >= 2);
  IkkbzSolver solver(inst, budget, cancel);
  return solver.Solve();
}

}  // namespace aqo
