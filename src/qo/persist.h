#ifndef AQO_QO_PERSIST_H_
#define AQO_QO_PERSIST_H_

// Durable plan-cache persistence: a versioned binary snapshot +
// append-log format so a PlanCache survives process restarts (the
// long-running `aqo_serve` daemon warms its cache from disk and re-pays
// no optimization cost it already paid in a previous life).
//
// On-disk layout (docs/persistence.md has the byte diagram). A state
// directory holds two files sharing one record format:
//
//   snapshot.bin — the full cache contents at the last rotation. Written
//     to snapshot.tmp, fsync'd, then atomically rename(2)d into place, so
//     a crash never leaves a half-written snapshot under the live name.
//   journal.log  — entries inserted since that snapshot, appended one
//     record per insert (write-through from PlanCache's insert observer).
//
// Both start with a 16-byte header (8-byte magic "AQOPLANC", u32 format
// version, u32 kind: snapshot|log) followed by length-prefixed records:
//
//   u32 payload_len | u32 crc32(payload) | payload
//
// The payload serializes one (Hash128 key, CachedPlan) pair — the key in
// canonical-fingerprint space, the plan in canonical labels, exactly the
// bits PlanCache holds in memory (LogDouble costs by bit pattern, so a
// recovered plan costs bitwise what the computed plan cost).
//
// Recovery contract:
//   * torn tail — a crash mid-append leaves a final record whose bytes
//     run out before payload_len; replay salvages every record before it
//     and reports torn_tail (a normal crash artifact, not corruption);
//   * corruption — a CRC mismatch or malformed payload stops replay at
//     the damage point, salvaging everything before it and reporting the
//     reason. The strict reader (ReadPersistFile) instead fails with a
//     ParseResult error carrying the same reason — tools use it to
//     distinguish "inspect this file" from "recover what you can";
//   * the snapshot is atomic by construction, so after any single crash
//     LoadAndRecover reconstructs exactly the successfully-persisted
//     prefix of the insert history (tests/persist_crash_test.cc sweeps
//     every injection ordinal and asserts service results stay
//     bit-identical to a cold cache).
//
// Crash-point testing rides util/fault_injection.h. Three sites, keyed by
// deterministic per-store counters:
//   "persist.append"   — the k-th AppendEntry tears mid-record (half the
//                        encoded bytes reach the file) and the store
//                        latches failed, as a crashed process would;
//   "persist.fsync"    — the k-th fsync is skipped and reported failed
//                        (data intact, durability not guaranteed);
//   "persist.snapshot" — the k-th SaveSnapshot dies after writing half of
//                        snapshot.tmp, before the rename.
//
// Telemetry: qo.persist.* counters (appends, append_bytes, fsyncs,
// snapshot_saves, snapshot_entries, recovered_entries, torn_tails,
// crc_failures, failures) plus qo.persist.{append_us,snapshot_us,
// recover_us} histograms; LoadAndRecover emits a `persist_recovery`
// run-log record with full provenance when a global run-log is attached.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "qo/plan_cache.h"
#include "util/hash.h"
#include "util/parse_result.h"

namespace aqo {

inline constexpr uint32_t kPersistFormatVersion = 1;

enum class PersistFileKind : uint32_t {
  kSnapshot = 1,
  kLog = 2,
  // Adaptive feedback-store records (qo/adaptive.h): same header and
  // framing, payload owned by the feedback store's codec.
  kFeedback = 3,
};

// Circuit-breaker configuration for PlanStore write failures
// (docs/robustness.md has the state machine). Backoff is counted in
// *refused write attempts*, not wall time, so the probe schedule is a
// pure function of the request stream — two runs with the same stream
// and fault schedule trip, probe, and reopen at identical points.
struct PersistBreakerOptions {
  // false = legacy latch: the first failure wedges the store permanently
  // (what a crashed process looks like; tests/persist_crash_test.cc pins
  // this mode because its faults *are* simulated process deaths).
  bool enabled = true;
  // Refused writes before the first probe after a trip.
  uint64_t backoff_base = 8;
  // Ceiling for the doubled backoff after repeated probe failures.
  uint64_t backoff_max = 1024;
  // Seeds the deterministic jitter added to each backoff window (spreads
  // probe points so a fleet of stores doesn't probe in lockstep while
  // staying reproducible per seed).
  uint64_t seed = 1;
};

struct PersistOptions {
  // Directory holding snapshot.bin / journal.log (created if absent).
  std::string dir;
  // fsync appended records and snapshot rotations. Turning this off keeps
  // crash *consistency* (the format tolerates torn tails regardless) but
  // trades durability of the last few records for append throughput.
  bool fsync = true;
  PersistBreakerOptions breaker;
};

// PlanStore health, exported as the qo.persist.health gauge (0/1/2) and
// the serve `health` verb:
//   kHealthy  — writes flow;
//   kReadOnly — first write failure: appends/snapshots are refused while
//               the breaker counts down to a probe; reads (the already-
//               recovered cache) are unaffected;
//   kOpen     — a probe failed too; same refusal, longer backoff.
enum class PersistHealth {
  kHealthy = 0,
  kReadOnly = 1,
  kOpen = 2,
};

const char* PersistHealthName(PersistHealth health);

// One persisted cache entry: canonical-fingerprint key + canonical-label
// plan, bit-for-bit what PlanCache stores.
struct PersistedEntry {
  Hash128 key;
  CachedPlan plan;
};

// Lenient per-file replay result (RecoverPersistFile).
struct PersistFileInfo {
  std::vector<PersistedEntry> entries;  // salvaged, in write order
  bool torn_tail = false;  // file ends mid-record (crash artifact)
  std::string damage;      // non-empty: reason replay stopped early
};

// What LoadAndRecover did, also emitted as the `persist_recovery` record.
struct RecoveryStats {
  bool had_snapshot = false;
  bool had_log = false;
  uint64_t snapshot_entries = 0;
  uint64_t log_entries = 0;
  uint64_t entries_loaded = 0;  // inserted into the cache
  bool torn_tail = false;       // journal ended mid-record
  std::string damage;           // first corruption reason, if any
  uint64_t recover_us = 0;      // wall time, also qo.persist.recover_us
};

// --- Record codec (exposed for tests and fixture generation) ---

// Serializes one entry as a framed record (length + CRC + payload).
std::string EncodePersistRecord(const PersistedEntry& entry);

// The 16-byte file header for `kind`.
std::string EncodePersistHeader(PersistFileKind kind);

// --- Generic framed-record layer ---
//
// The raw header + (u32 len | u32 crc | payload) framing, independent of
// what the payloads mean. The plan-cache codec above and the adaptive
// feedback store (qo/adaptive.h) both persist through this layer, so
// every AQO state file shares one torn-tail/corruption contract.

// Frames one opaque payload (length + CRC32 prefix).
std::string EncodeFramedRecord(std::string_view payload);

struct FramedFileInfo {
  std::vector<std::string> payloads;  // intact payloads, in write order
  std::vector<size_t> ends;  // ends[i]: file offset just past payload i
  bool header_ok = false;    // magic/version/kind checked out
  bool torn_tail = false;    // file ends mid-record (crash artifact)
  std::string damage;  // non-empty: header problem or first corruption
  // Header + all intact records: the byte count a repair truncates to.
  size_t valid_bytes = 0;
};

// Lenient raw scan: salvages every intact frame before the first damage
// point. Header problems come back with header_ok = false and the reason
// in `damage`.
FramedFileInfo ScanFramedFile(const std::string& bytes,
                              PersistFileKind expected_kind);

// --- Whole-file readers ---

// Strict: any damage — bad magic, unsupported version, wrong kind,
// truncated header, CRC mismatch, malformed payload, torn tail — is a
// ParseResult error with a precise reason. Use for inspection tools and
// fixture tests; recovery paths use RecoverPersistFile instead.
ParseResult<std::vector<PersistedEntry>> ReadPersistFile(
    std::istream& is, PersistFileKind expected_kind);

// Lenient: salvages every record before the first damage point. A
// header-level problem (file is not ours at all) still comes back as
// `damage` with zero entries. Torn tails are reported but are not damage.
PersistFileInfo RecoverPersistFile(std::istream& is,
                                   PersistFileKind expected_kind);

// --- The store ---

// Manages one state directory. Not thread-safe for concurrent Save/Append
// from multiple threads against the same store *except* AppendEntry,
// which takes an internal mutex (the PlanCache insert observer may fire
// from pool workers; the batch service appends serially regardless).
class PlanStore {
 public:
  explicit PlanStore(const PersistOptions& options);
  ~PlanStore();

  PlanStore(const PlanStore&) = delete;
  PlanStore& operator=(const PlanStore&) = delete;

  // Writes the full contents of `cache` as a new snapshot (tmp + fsync +
  // atomic rename + directory fsync), then truncates the journal. False
  // on failure (reason in error()); the previous snapshot and journal
  // stay intact in that case.
  bool SaveSnapshot(const PlanCache& cache);

  // Appends one record to the journal (fsync per options). False on
  // failure or while the breaker is refusing writes. A failure trips the
  // circuit breaker: the store goes read-only (kReadOnly; repeated probe
  // failures escalate to kOpen) and refuses writes — keeping a torn tail
  // a *tail*, never garbage mid-file — until the deterministic backoff
  // elapses and a probe write succeeds, which repairs the journal tail
  // and returns the store to healthy. With breaker.enabled = false the
  // first failure latches permanently (legacy crash semantics).
  bool AppendEntry(const Hash128& key, const CachedPlan& plan);

  // Loads snapshot.bin and replays journal.log into `cache` (which should
  // be empty; entries are Insert()ed in write order, oldest first, so LRU
  // recency survives). Tolerates a torn journal tail; salvages up to any
  // damage point. Returns a ParseResult error only when a file exists but
  // its header is unreadable (not our file / unsupported version) — the
  // caller should not silently ignore that. Emits a `persist_recovery`
  // run-log record and qo.persist.* counters either way.
  //
  // Call before AttachTo: recovery inserts must not be re-appended.
  ParseResult<RecoveryStats> LoadAndRecover(PlanCache* cache);

  // Write-through wiring: every successful new insert into `cache` is
  // appended to the journal (PlanCache::SetInsertObserver).
  void AttachTo(PlanCache* cache);

  // Current circuit-breaker state. Transitions are logged to stderr
  // (one-shot per store, on the first trip) and to the run log as
  // `persist_health` records; the qo.persist.health gauge mirrors it.
  PersistHealth health() const { return health_; }

  // True while unhealthy (read-only or open): writes are currently being
  // refused. With the breaker enabled this is *not* a permanent latch —
  // a later successful probe returns the store to healthy; with
  // breaker.enabled = false it is the legacy crash latch.
  bool failed() const { return health_ != PersistHealth::kHealthy; }
  // Reason for the most recent failure.
  const std::string& error() const { return error_; }

  // Breaker observability, deterministic given the write-attempt stream:
  uint64_t breaker_trips() const { return trips_; }
  uint64_t breaker_probes() const { return probes_; }
  uint64_t breaker_reopens() const { return reopens_; }

  std::string SnapshotPath() const;
  std::string JournalPath() const;
  const PersistOptions& options() const { return options_; }

 private:
  bool Fail(const std::string& reason);
  // fsyncs `fd`, observing the "persist.fsync" fault site; false on
  // (injected or real) failure.
  bool SyncFd(int fd, const char* what);
  bool OpenJournal(bool truncate);
  // Breaker gate, called with append_mu_ held at the top of every write
  // entry point. Healthy: proceed. Unhealthy: count a refused attempt,
  // and once the backoff window has elapsed let the write through as a
  // probe (forcing a journal reopen so the tail is repaired first) —
  // success reopens the breaker, failure escalates it.
  bool AllowWrite();
  // Probe success: back to healthy, reset the backoff ladder.
  void Reopen();
  void SetHealth(PersistHealth health, const std::string& reason);

  PersistOptions options_;
  int journal_fd_ = -1;
  PersistHealth health_ = PersistHealth::kHealthy;
  std::string error_;
  // Breaker state (all under append_mu_ on write paths).
  uint64_t trips_ = 0;
  uint64_t probes_ = 0;
  uint64_t reopens_ = 0;
  uint64_t refused_since_trip_ = 0;
  uint64_t backoff_current_ = 0;
  bool probe_in_flight_ = false;
  bool warned_ = false;
  // Deterministic fault-site ordinals (see header comment).
  uint64_t append_ordinal_ = 0;
  uint64_t fsync_ordinal_ = 0;
  uint64_t snapshot_ordinal_ = 0;
  std::mutex append_mu_;
};

}  // namespace aqo

#endif  // AQO_QO_PERSIST_H_
