#ifndef AQO_QO_CATALOG_H_
#define AQO_QO_CATALOG_H_

// A miniature statistics catalog, so QO_N instances can be derived from
// database-flavored metadata instead of hand-set selectivities — the front
// end a downstream user of this library would actually feed.
//
// Selectivity derivation for equi-joins follows System R's containment
// assumption, sel = 1 / max(ndv_a, ndv_b), refined by equi-width
// histograms when both columns carry them: the estimate restricts to the
// overlapping value range (fractions of each side's rows in the overlap,
// distinct values scaled by range coverage).

#include <cstdint>
#include <string>
#include <vector>

#include "qo/qon.h"
#include "util/random.h"

namespace aqo {

struct ColumnStats {
  std::string name;
  int64_t ndv = 1;              // number of distinct values
  double min_value = 0.0;       // value domain [min, max]
  double max_value = 0.0;
  // Optional equi-width histogram over [min_value, max_value]: fraction of
  // rows per bucket (sums to ~1). Empty = no histogram.
  std::vector<double> histogram;
};

struct TableStats {
  std::string name;
  int64_t rows = 1;
  std::vector<ColumnStats> columns;
};

class Catalog {
 public:
  // Adds a table; names must be unique.
  void AddTable(TableStats table);

  int NumTables() const { return static_cast<int>(tables_.size()); }
  const TableStats& table(int index) const;
  // Aborts when the name is unknown.
  int TableIndex(const std::string& name) const;
  const ColumnStats& Column(const std::string& table,
                            const std::string& column) const;

 private:
  std::vector<TableStats> tables_;
};

struct EquiJoin {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};

// Estimated selectivity of `join` under the containment assumption with
// histogram-overlap refinement; clamped to [kMinDerivedSelectivity, 1].
double EstimateJoinSelectivity(const Catalog& catalog, const EquiJoin& join);

inline constexpr double kMinDerivedSelectivity = 1e-12;

// Builds the QO_N instance for the catalog's tables joined by `joins`
// (relation i = catalog table i). Multiple predicates between the same
// table pair multiply (independence assumption).
QonInstance BuildQonInstance(const Catalog& catalog,
                             const std::vector<EquiJoin>& joins);

// A synthetic star schema: one fact table (relation 0, `fact_rows` rows)
// and `dimensions` dimension tables with log-uniform sizes, each joined to
// the fact on a key column with plausible ndv/histograms. Returns the
// catalog and fills `joins`.
Catalog RandomStarSchema(int dimensions, int64_t fact_rows, Rng* rng,
                         std::vector<EquiJoin>* joins);

}  // namespace aqo

#endif  // AQO_QO_CATALOG_H_
