#ifndef AQO_QO_ADAPTIVE_H_
#define AQO_QO_ADAPTIVE_H_

// The `adaptive` meta-optimizer: learned optimizer selection over a
// deterministic feedback store (docs/adaptive.md).
//
// Every run of any registry optimizer can be summarized as a
// FeedbackRecord: label-invariant instance features (extracted from the
// canonical form, qo/fingerprint.h) plus the observed outcome (cost,
// regret against the best sibling run of the same decision, evaluations,
// status). The FeedbackStore accumulates such records and answers: "which
// candidate optimizer is predicted to land within quality_target of the
// best, at the least evaluation effort?" via seeded k-nearest-neighbor
// regression over the features — the kNN-over-instance-features design of
// postgrespro/aqo, restricted to deterministic arithmetic.
//
// Determinism contract (enforced by tests/adaptive_differential_test.cc):
//
//   * Decisions read only the *committed* store state. Record() buffers
//     into a pending set; Commit() folds pending records in a sorted,
//     deduplicated order. The batch service commits once per batch (its
//     serial epilogue), so every decision inside a batch sees the same
//     state regardless of thread count, cache attachment, or duplicate
//     expansion — and batch N+1 learns from batch N.
//   * The adaptive optimizers never consume the caller's Rng (it may be
//     null). Exploration draws from Rng(MixSeed(knobs.seed,
//     fingerprint.lo)), so the decision is a pure function of (committed
//     store state, canonical instance, knobs).
//   * Adaptive always also runs its fallback entry and returns whichever
//     plan costs less (ties go to the fallback), so for any store state —
//     cold, warm, or corrupt-and-salvaged — the result is a valid plan
//     with cost <= the fallback's cost.
//   * Every decision emits an `adaptive_decision` run-log record carrying
//     the features, per-candidate predictions, the exploration seed, and
//     the inner outcomes; `adaptive_commit` records mark commit
//     boundaries. ReplayDecisionLog() re-derives every choice from those
//     records alone — the replay tool (tools/aqo_adaptive_replay.cc)
//     exits nonzero if any decision fails to reconstruct.
//
// Learning survives restarts through the qo/persist record format
// (PersistFileKind::kFeedback): SaveTo/LoadFrom write and recover framed
// record files with the same torn-tail tolerance as the plan cache, and
// AttachFile() makes every Commit() append write-through.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "qo/fingerprint.h"
#include "qo/optimizers.h"
#include "qo/qoh_optimizers.h"
#include "util/cancellation.h"
#include "util/hash.h"
#include "util/random.h"

namespace aqo {

enum class AdaptiveFamily : uint8_t { kQon = 0, kQoh = 1 };

const char* AdaptiveFamilyName(AdaptiveFamily family);

// Label-invariant instance features. All statistics are computed over the
// canonical instance in canonical index order, so every field is
// *bitwise* identical across 1-WL-equivalent relabelings (floating-point
// summation order included). Log-domain fields are clamped to
// [-1024, 1024] so degenerate inputs (zero sizes) cannot poison the
// arithmetic with infinities.
struct InstanceFeatures {
  int n = 0;
  int edges = 0;
  double edge_density = 0.0;    // 2E / (n(n-1)); 0 when n < 2
  double log_size_mean = 0.0;   // mean log2 relation size
  double log_size_min = 0.0;
  double log_size_max = 0.0;
  double sel_log_mean = 0.0;    // mean log2 selectivity over edges (<= 0)
  double sel_log_min = 0.0;
  double access_log_mean = 0.0;  // QO_N only: mean log2 access cost
  double access_log_max = 0.0;   // QO_N only
  double memory_log2 = 0.0;      // QO_H only: log2 of the memory budget
  double eta = 0.0;              // QO_H only
  uint64_t wl_class = 0;  // fingerprint.lo: the 1-WL canonical class id
};

InstanceFeatures ExtractQonFeatures(const CanonicalQon& canon);
InstanceFeatures ExtractQohFeatures(const CanonicalQoh& canon);

// One observed optimizer run, keyed by the instance's features.
struct FeedbackRecord {
  AdaptiveFamily family = AdaptiveFamily::kQon;
  std::string optimizer;   // canonical registry entry name
  uint64_t knob_hash = 0;  // AdaptiveKnobHash of the options it ran under
  InstanceFeatures features;
  bool feasible = false;
  double cost_log2 = 0.0;    // 0 when infeasible
  double regret_log2 = 0.0;  // cost_log2 - best sibling cost_log2 (>= 0)
  uint64_t evaluations = 0;
  PlanStatus status = PlanStatus::kComplete;
};

// --- Record codec (exposed for tests and the replay tool) ---

// Serializes `rec` as an opaque persist payload (frame it with
// EncodeFramedRecord for on-disk storage).
std::string EncodeFeedbackPayload(const FeedbackRecord& rec);

// Strict decode with pre-validation (family/status ranges, finite
// doubles, exact length); false with a reason on any malformed byte.
bool DecodeFeedbackPayload(std::string_view payload, FeedbackRecord* out,
                           std::string* error);

// Hash of every knob that shapes a candidate optimizer's result (the
// cache-key fields minus fingerprint and seed). Lets neighbor matching
// discount records obtained under different knob settings.
uint64_t AdaptiveKnobHash(const OptimizerOptions& options);
uint64_t AdaptiveKnobHash(const QohOptimizerOptions& options);

struct FeedbackLoadStats {
  bool existed = false;
  uint64_t records = 0;     // newly committed into the store
  uint64_t duplicates = 0;  // byte-identical records skipped
  bool torn_tail = false;   // file ended mid-record (crash artifact)
  std::string damage;       // non-empty: reason replay stopped early
};

// Per-candidate kNN prediction, reported in the decision log.
struct CandidatePrediction {
  std::string optimizer;
  uint64_t trials = 0;  // committed records for this (family, candidate)
  double predicted_regret_log2 = 0.0;
  double predicted_evaluations = 0.0;
  bool eligible = false;  // within quality_target of the predicted best
};

struct Recommendation {
  std::string optimizer;  // the chosen candidate
  bool explored = false;  // true: seeded draw over under-tried candidates
  std::vector<CandidatePrediction> candidates;  // in candidate order
};

// The feedback store. Thread-safe; decisions read committed state only.
class FeedbackStore {
 public:
  FeedbackStore() = default;
  FeedbackStore(const FeedbackStore&) = delete;
  FeedbackStore& operator=(const FeedbackStore&) = delete;

  // The process-wide store used when AdaptiveKnobs.store is null.
  static FeedbackStore& Default();

  // Buffers one record into the pending set (thread-safe; called from
  // pool workers inside a batch).
  void Record(const FeedbackRecord& rec);

  // Folds pending records into committed state: sorted by encoded bytes
  // (a deterministic total order independent of Record() arrival order)
  // and deduplicated against everything already committed, so cache-off
  // duplicate recomputation commits exactly what cache-on dedup would.
  // Appends each newly committed record to the attached file, if any.
  // Returns the number of newly committed records.
  uint64_t Commit();

  size_t CommittedSize() const;
  size_t PendingSize() const;

  // Drops all state (committed, pending, digests); keeps the attachment.
  void Clear();

  // The decision rule (docs/adaptive.md): per candidate, the k nearest
  // committed neighbors (by deterministic feature distance, ties broken
  // by commit order) predict regret and evaluation effort. Candidates
  // with fewer than min_trials committed records are explored first — a
  // seeded uniform draw via Rng(decision_seed). Otherwise the cheapest
  // candidate predicted within quality_target of the best is exploited
  // (ties toward candidate order).
  Recommendation Recommend(const InstanceFeatures& features,
                           AdaptiveFamily family,
                           const std::vector<std::string>& candidates,
                           uint64_t knob_hash, double quality_target,
                           int k_neighbors, int min_trials,
                           uint64_t decision_seed) const;

  // --- Persistence (qo/persist framing, PersistFileKind::kFeedback) ---

  // Writes the full committed state to `path`. False with a reason on
  // I/O failure.
  bool SaveTo(const std::string& path, std::string* error = nullptr) const;

  // Lenient load: salvages every intact record before any damage point
  // and commits it (deduplicated). A missing file is existed = false and
  // success; a header-level problem is reported in `damage` with zero
  // records.
  FeedbackLoadStats LoadFrom(const std::string& path);

  // Opens `path` for write-through appends from Commit(), creating it
  // (with a header) when absent and repairing a torn tail first. False
  // with a reason on failure.
  bool AttachFile(const std::string& path, std::string* error = nullptr);

 private:
  uint64_t CommitLocked();

  mutable std::mutex mu_;
  std::vector<FeedbackRecord> committed_;
  std::vector<FeedbackRecord> pending_;
  // Digests of committed records' encoded bytes, for dedup.
  std::unordered_set<Hash128, Hash128Hasher> digests_;
  std::string attached_path_;  // empty: no write-through
  bool attach_failed_ = false;
};

// Family default candidate sets (every name resolvable in the family's
// registry; never contains "adaptive").
std::vector<std::string> DefaultAdaptiveCandidates(AdaptiveFamily family);

// The meta-optimizers behind the `adaptive` registry entries. The Rng
// parameter is never consumed (may be null); see the determinism contract
// above. The returned plan is always at least as cheap as the fallback's,
// evaluations count the total inner effort, and both inner outcomes are
// recorded (pending) into the knobs' store.
OptimizerResult AdaptiveQonOptimizer(const QonInstance& inst,
                                     const OptimizerOptions& options,
                                     Rng* rng);
QohOptimizerResult AdaptiveQohOptimizer(const QohInstance& inst,
                                        const QohOptimizerOptions& options,
                                        Rng* rng);

// Commits the knobs' store (Default() when null), emits an
// `adaptive_commit` run-log record when a log is attached, and returns
// the newly committed record count. The batch service calls this in its
// serial epilogue after every adaptive batch.
uint64_t CommitAdaptiveFeedback(const AdaptiveKnobs& knobs);

// --- Decision-log replay ---

struct DecisionReplayStats {
  uint64_t decisions = 0;   // adaptive_decision records replayed
  uint64_t commits = 0;     // adaptive_commit records applied
  uint64_t mismatches = 0;  // decisions that failed to reconstruct
  std::string error;        // first mismatch / parse problem
};

// Replays a JSONL stream of adaptive_decision / adaptive_commit records
// against `store` (which must hold the same initial state the logged
// process started from — usually empty): re-derives every choice with
// Recommend() and verifies it matches the logged one, then applies the
// logged outcomes exactly as the original run did. Unrelated records are
// skipped.
DecisionReplayStats ReplayDecisionLog(std::istream& jsonl,
                                      FeedbackStore* store);

}  // namespace aqo

#endif  // AQO_QO_ADAPTIVE_H_
