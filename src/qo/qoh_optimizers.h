#ifndef AQO_QO_QOH_OPTIMIZERS_H_
#define AQO_QO_QOH_OPTIMIZERS_H_

// Heuristic optimizers for QO_H (sequence search on top of the optimal
// pipeline-decomposition DP). The exhaustive and greedy baselines live in
// optimizers.h; these add the sampling / local-search / annealing family,
// each costing candidate sequences with OptimalDecomposition — so every
// result is a *complete* executable plan (sequence + decomposition +
// memory allocation).

#include "qo/optimizers.h"
#include "qo/qoh.h"
#include "util/random.h"

namespace aqo {

// Best of `samples` random sequences. Sequences start from a random
// relation; when `sentinel_first` >= 0 every sample starts with that
// relation (the f_H instances admit nothing else).
QohOptimizerResult RandomSamplingQohOptimizer(const QohInstance& inst,
                                              Rng* rng, int samples,
                                              int sentinel_first = -1);

// First-improvement local search over adjacent transpositions and random
// relocations, from `restarts` random starts.
QohOptimizerResult IterativeImprovementQohOptimizer(const QohInstance& inst,
                                                    Rng* rng,
                                                    int restarts = 4,
                                                    int sentinel_first = -1);

struct QohAnnealingOptions {
  int iterations = 3000;
  double initial_temperature = 5.0;  // log2-cost units
  double cooling = 0.998;
  int restarts = 2;
  int sentinel_first = -1;
};

QohOptimizerResult SimulatedAnnealingQohOptimizer(
    const QohInstance& inst, Rng* rng, const QohAnnealingOptions& options = {});

}  // namespace aqo

#endif  // AQO_QO_QOH_OPTIMIZERS_H_
