#ifndef AQO_QO_QOH_OPTIMIZERS_H_
#define AQO_QO_QOH_OPTIMIZERS_H_

// Heuristic optimizers for QO_H (sequence search on top of the optimal
// pipeline-decomposition DP). The exhaustive and greedy baselines live in
// optimizers.h; these add the sampling / local-search / annealing family,
// each costing candidate sequences with OptimalDecomposition — so every
// result is a *complete* executable plan (sequence + decomposition +
// memory allocation).

#include "qo/optimizers.h"
#include "qo/qoh.h"
#include "util/random.h"

namespace aqo {

// QO_H simulated-annealing knobs, nested in QohOptimizerOptions.
struct QohSaKnobs {
  int iterations = 3000;
  double initial_temperature = 5.0;  // log2-cost units
  int restarts = 2;
  double cooling = 0.998;
};

// The full QO_H optimizer knob surface — the QO_H analogue of
// OptimizerOptions. Every QO_H heuristic reads the knobs it understands
// and ignores the rest, keeping the registry signature (see
// qo/registry.h) closed as knobs grow.
struct QohOptimizerOptions {
  // RandomSamplingQohOptimizer: number of random sequences drawn.
  int samples = 200;

  // IterativeImprovementQohOptimizer: number of random restarts.
  int restarts = 4;

  // When >= 0, every candidate sequence starts with this relation (the
  // f_H reduction instances admit nothing else as a first relation).
  int sentinel_first = -1;

  QohSaKnobs sa;

  // Anytime limits — same semantics as OptimizerOptions.budget/.cancel
  // (util/cancellation.h): a default Budget and an un-armed token change
  // nothing, bit for bit.
  Budget budget;
  CancelToken* cancel = nullptr;

  // Knobs for the `adaptive` registry entry (ignored by every other
  // optimizer). Shared struct with OptimizerOptions: the decision logic
  // is family-agnostic.
  AdaptiveKnobs adaptive;

  // Optional RunOutcome observer — same semantics as
  // OptimizerOptions.feedback. Not owned; may be null.
  FeedbackSink* feedback = nullptr;

  // Candidate-pricing tier for the local-search family (ii, sa) — same
  // semantics as OptimizerOptions.eval_tier: kFast ranks swap candidates
  // with the certified approximate evaluator and re-prices every possible
  // accept exactly, so results are bit-identical across tiers.
  EvalTier eval_tier = EvalTier::kExact;
};

// Best of `options.samples` random sequences. Sequences start from a
// random relation unless options.sentinel_first pins the first position.
QohOptimizerResult RandomSamplingQohOptimizer(
    const QohInstance& inst, Rng* rng, const QohOptimizerOptions& options = {});

// First-improvement local search over adjacent transpositions, from
// `options.restarts` random starts.
QohOptimizerResult IterativeImprovementQohOptimizer(
    const QohInstance& inst, Rng* rng, const QohOptimizerOptions& options = {});

// Simulated annealing over sequences (swap moves above the sentinel),
// each candidate costed with its optimal decomposition. Knobs: options.sa.
QohOptimizerResult SimulatedAnnealingQohOptimizer(
    const QohInstance& inst, Rng* rng, const QohOptimizerOptions& options = {});

}  // namespace aqo

#endif  // AQO_QO_QOH_OPTIMIZERS_H_
