#include "qo/genetic.h"

#include <algorithm>
#include <optional>

#include "obs/metrics.h"
#include "qo/cost_eval.h"
#include "qo/fast_eval.h"
#include "util/check.h"

namespace aqo {

namespace {

struct Individual {
  JoinSequence sequence;
  // Exact cost; meaningful only when has_exact. Mutable with has_exact
  // because the fast tier memoizes exact re-pricing lazily from inside
  // const comparator contexts (see `better` below) — the memoization
  // never changes a comparison outcome, only who pays for it.
  mutable LogDouble cost;
  bool valid = false;  // meets the cartesian-product restriction
  mutable bool has_exact = false;
  double fast_log2 = 0.0;  // certified approximate price (fast tier only)
};

// OX1 order crossover: copy a random slice from parent a, fill the rest in
// parent b's relative order.
JoinSequence OrderCrossover(const JoinSequence& a, const JoinSequence& b,
                            Rng* rng) {
  size_t n = a.size();
  size_t lo = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  size_t hi = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  if (lo > hi) std::swap(lo, hi);
  JoinSequence child(n, -1);
  std::vector<bool> used(n, false);
  for (size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    used[static_cast<size_t>(a[i])] = true;
  }
  size_t fill = (hi + 1) % n;
  for (size_t k = 0; k < n; ++k) {
    int v = b[(hi + 1 + k) % n];
    if (used[static_cast<size_t>(v)]) continue;
    child[fill] = v;
    fill = (fill + 1) % n;
    while (fill >= lo && fill <= hi) fill = (fill + 1) % n;
  }
  return child;
}

}  // namespace

OptimizerResult GeneticOptimizer(const QonInstance& inst, Rng* rng,
                                 const OptimizerOptions& options) {
  GeneticOptions legacy;
  legacy.population = options.ga.population;
  legacy.generations = options.ga.generations;
  legacy.crossover_rate = options.ga.crossover_rate;
  legacy.mutation_rate = options.ga.mutation_rate;
  legacy.tournament = options.ga.tournament;
  legacy.elites = options.ga.elites;
  legacy.base = options;
  return GeneticOptimizer(inst, rng, legacy);
}

OptimizerResult GeneticOptimizer(const QonInstance& inst, Rng* rng,
                                 const GeneticOptions& options) {
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  AQO_CHECK(options.population >= 4);
  AQO_CHECK(options.elites < options.population);

  static obs::Counter& generations =
      obs::Registry::Get().GetCounter("qon.ga.generations");
  static obs::Counter& crossovers =
      obs::Registry::Get().GetCounter("qon.ga.crossovers");
  static obs::Counter& mutations =
      obs::Registry::Get().GetCounter("qon.ga.mutations");
  static obs::Counter& invalid =
      obs::Registry::Get().GetCounter("qon.ga.invalid_offspring");

  OptimizerResult result;
  QonCostEvaluator evaluator(inst);
  // Fast tier: offspring are priced with the certified approximate
  // evaluator first. An individual provably worse than the incumbent is
  // not exactly evaluated up front (the exact tier's incumbent fold could
  // not fire for it); comparisons fall back to exact re-pricing only when
  // the certified error intervals overlap. Every comparison outcome — and
  // therefore the sort order, elite survival, tournament winners, and the
  // final (cost, sequence) — is bit-identical to the exact tier, and no
  // pricing path consumes RNG. See docs/performance.md.
  const bool use_fast = options.base.eval_tier == EvalTier::kFast &&
                        !cost_eval_internal::ForceNaive();
  std::optional<QonNeighborhoodEvaluator> fast;
  if (use_fast) fast.emplace(inst);
  static obs::Counter& certified =
      obs::Registry::Get().GetCounter("qo.fast_eval.certified_rejects");
  static obs::Counter& repricings =
      obs::Registry::Get().GetCounter("qo.fast_eval.exact_repricings");
  auto ensure_exact = [&](const Individual& ind) {
    if (ind.has_exact) return;
    ind.cost = evaluator.Cost(ind.sequence);
    ind.has_exact = true;
    repricings.Increment();
    ++result.evaluations;
  };
  auto evaluate = [&](Individual* ind) {
    ind->valid = !options.base.forbid_cartesian ||
                 !HasCartesianProduct(inst.graph(), ind->sequence);
    if (!ind->valid) {
      invalid.Increment();
      return;
    }
    if (!use_fast) {
      ind->cost = evaluator.Cost(ind->sequence);
      ind->has_exact = true;
      ++result.evaluations;
    } else {
      ind->fast_log2 = fast->SequenceCostLog2(ind->sequence);
      if (result.feasible &&
          ind->fast_log2 - fast->EpsLog2() > result.cost.Log2()) {
        // Certified: the exact cost is strictly above the incumbent, so
        // the exact tier's strict-< incumbent update could not fire.
        // Defer the exact evaluation until a comparison needs it.
        certified.Increment();
        return;
      }
      ensure_exact(*ind);
    }
    if (!result.feasible || ind->cost < result.cost) {
      result.feasible = true;
      result.cost = ind->cost;
      result.sequence = ind->sequence;
    }
  };
  // Infeasible individuals lose every comparison. Equal costs break
  // lexicographically on the sequence (lowest relation id first): a total
  // order, so the std::sort below — and therefore elite survival — cannot
  // depend on the unspecified order unstable sorting leaves ties in.
  //
  // Fast tier: when either side lacks an exact cost, the certified bounds
  // decide first — |fast - exact| <= eps per side, so a gap wider than the
  // summed slack proves the strict exact ordering. Overlapping intervals
  // fall back to exact re-pricing of both sides, so the relation computed
  // here *is* the exact tier's relation (a strict weak order) in every
  // case.
  auto better = [&](const Individual& x, const Individual& y) {
    if (x.valid != y.valid) return x.valid;
    if (!x.valid) return false;
    if (use_fast && !(x.has_exact && y.has_exact)) {
      double fx = x.has_exact ? x.cost.Log2() : x.fast_log2;
      double fy = y.has_exact ? y.cost.Log2() : y.fast_log2;
      double slack =
          (x.has_exact || y.has_exact ? 1.0 : 2.0) * fast->EpsLog2();
      if (fx + slack < fy) return true;
      if (fy + slack < fx) return false;
      ensure_exact(x);
      ensure_exact(y);
    }
    if (x.cost != y.cost) return x.cost < y.cost;
    return x.sequence < y.sequence;
  };

  std::vector<Individual> population(static_cast<size_t>(options.population));
  for (Individual& ind : population) {
    ind.sequence = IdentitySequence(n);
    rng->Shuffle(&ind.sequence);
    evaluate(&ind);
  }

  // Checked once per generation (after the initial population, so a capped
  // run always carries the best initial individual). `evaluate` folds the
  // best-so-far continuously, making the cut lossless.
  RunGuard guard(options.base.budget, options.base.cancel);
  for (int gen = 0; gen < options.generations; ++gen) {
    if (guard.ShouldStop(result.evaluations)) break;
    generations.Increment();
    std::sort(population.begin(), population.end(),
              [&](const Individual& x, const Individual& y) {
                return better(x, y);
              });
    std::vector<Individual> next(population.begin(),
                                 population.begin() + options.elites);
    auto tournament_pick = [&]() -> const Individual& {
      const Individual* best = &population[static_cast<size_t>(
          rng->UniformInt(0, options.population - 1))];
      for (int t = 1; t < options.tournament; ++t) {
        const Individual& cand = population[static_cast<size_t>(
            rng->UniformInt(0, options.population - 1))];
        if (better(cand, *best)) best = &cand;
      }
      return *best;
    };
    while (static_cast<int>(next.size()) < options.population) {
      Individual child;
      if (rng->Bernoulli(options.crossover_rate)) {
        crossovers.Increment();
        child.sequence =
            OrderCrossover(tournament_pick().sequence,
                           tournament_pick().sequence, rng);
      } else {
        child.sequence = tournament_pick().sequence;
      }
      if (rng->Bernoulli(options.mutation_rate)) {
        mutations.Increment();
        size_t a = static_cast<size_t>(rng->UniformInt(0, n - 1));
        size_t b = static_cast<size_t>(rng->UniformInt(0, n - 1));
        std::swap(child.sequence[a], child.sequence[b]);
      }
      evaluate(&child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }
  result.status = guard.status();
  return result;
}

}  // namespace aqo
