#include "qo/genetic.h"

#include <algorithm>

#include "obs/metrics.h"
#include "qo/cost_eval.h"
#include "util/check.h"

namespace aqo {

namespace {

struct Individual {
  JoinSequence sequence;
  LogDouble cost;
  bool valid = false;  // meets the cartesian-product restriction
};

// OX1 order crossover: copy a random slice from parent a, fill the rest in
// parent b's relative order.
JoinSequence OrderCrossover(const JoinSequence& a, const JoinSequence& b,
                            Rng* rng) {
  size_t n = a.size();
  size_t lo = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  size_t hi = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  if (lo > hi) std::swap(lo, hi);
  JoinSequence child(n, -1);
  std::vector<bool> used(n, false);
  for (size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    used[static_cast<size_t>(a[i])] = true;
  }
  size_t fill = (hi + 1) % n;
  for (size_t k = 0; k < n; ++k) {
    int v = b[(hi + 1 + k) % n];
    if (used[static_cast<size_t>(v)]) continue;
    child[fill] = v;
    fill = (fill + 1) % n;
    while (fill >= lo && fill <= hi) fill = (fill + 1) % n;
  }
  return child;
}

}  // namespace

OptimizerResult GeneticOptimizer(const QonInstance& inst, Rng* rng,
                                 const OptimizerOptions& options) {
  GeneticOptions legacy;
  legacy.population = options.ga.population;
  legacy.generations = options.ga.generations;
  legacy.crossover_rate = options.ga.crossover_rate;
  legacy.mutation_rate = options.ga.mutation_rate;
  legacy.tournament = options.ga.tournament;
  legacy.elites = options.ga.elites;
  legacy.base = options;
  return GeneticOptimizer(inst, rng, legacy);
}

OptimizerResult GeneticOptimizer(const QonInstance& inst, Rng* rng,
                                 const GeneticOptions& options) {
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  AQO_CHECK(options.population >= 4);
  AQO_CHECK(options.elites < options.population);

  static obs::Counter& generations =
      obs::Registry::Get().GetCounter("qon.ga.generations");
  static obs::Counter& crossovers =
      obs::Registry::Get().GetCounter("qon.ga.crossovers");
  static obs::Counter& mutations =
      obs::Registry::Get().GetCounter("qon.ga.mutations");
  static obs::Counter& invalid =
      obs::Registry::Get().GetCounter("qon.ga.invalid_offspring");

  OptimizerResult result;
  QonCostEvaluator evaluator(inst);
  auto evaluate = [&](Individual* ind) {
    ind->valid = !options.base.forbid_cartesian ||
                 !HasCartesianProduct(inst.graph(), ind->sequence);
    if (!ind->valid) invalid.Increment();
    if (ind->valid) {
      ind->cost = evaluator.Cost(ind->sequence);
      ++result.evaluations;
      if (!result.feasible || ind->cost < result.cost) {
        result.feasible = true;
        result.cost = ind->cost;
        result.sequence = ind->sequence;
      }
    }
  };
  // Infeasible individuals lose every comparison. Equal costs break
  // lexicographically on the sequence (lowest relation id first): a total
  // order, so the std::sort below — and therefore elite survival — cannot
  // depend on the unspecified order unstable sorting leaves ties in.
  auto better = [](const Individual& x, const Individual& y) {
    if (x.valid != y.valid) return x.valid;
    if (!x.valid) return false;
    if (x.cost != y.cost) return x.cost < y.cost;
    return x.sequence < y.sequence;
  };

  std::vector<Individual> population(static_cast<size_t>(options.population));
  for (Individual& ind : population) {
    ind.sequence = IdentitySequence(n);
    rng->Shuffle(&ind.sequence);
    evaluate(&ind);
  }

  // Checked once per generation (after the initial population, so a capped
  // run always carries the best initial individual). `evaluate` folds the
  // best-so-far continuously, making the cut lossless.
  RunGuard guard(options.base.budget, options.base.cancel);
  for (int gen = 0; gen < options.generations; ++gen) {
    if (guard.ShouldStop(result.evaluations)) break;
    generations.Increment();
    std::sort(population.begin(), population.end(),
              [&](const Individual& x, const Individual& y) {
                return better(x, y);
              });
    std::vector<Individual> next(population.begin(),
                                 population.begin() + options.elites);
    auto tournament_pick = [&]() -> const Individual& {
      const Individual* best = &population[static_cast<size_t>(
          rng->UniformInt(0, options.population - 1))];
      for (int t = 1; t < options.tournament; ++t) {
        const Individual& cand = population[static_cast<size_t>(
            rng->UniformInt(0, options.population - 1))];
        if (better(cand, *best)) best = &cand;
      }
      return *best;
    };
    while (static_cast<int>(next.size()) < options.population) {
      Individual child;
      if (rng->Bernoulli(options.crossover_rate)) {
        crossovers.Increment();
        child.sequence =
            OrderCrossover(tournament_pick().sequence,
                           tournament_pick().sequence, rng);
      } else {
        child.sequence = tournament_pick().sequence;
      }
      if (rng->Bernoulli(options.mutation_rate)) {
        mutations.Increment();
        size_t a = static_cast<size_t>(rng->UniformInt(0, n - 1));
        size_t b = static_cast<size_t>(rng->UniformInt(0, n - 1));
        std::swap(child.sequence[a], child.sequence[b]);
      }
      evaluate(&child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }
  result.status = guard.status();
  return result;
}

}  // namespace aqo
