#include "qo/registry.h"

#include <sstream>
#include <utility>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "qo/adaptive.h"
#include "qo/analysis.h"
#include "qo/bnb.h"
#include "qo/genetic.h"
#include "qo/ikkbz.h"
#include "util/check.h"

namespace aqo {

namespace {

// --- QO_N wrappers: adapt each optimizer to the uniform signature ---

OptimizerResult RunExhaustive(const QonInstance& inst,
                              const OptimizerOptions& options, Rng*) {
  return ExhaustiveQonOptimizer(inst, options);
}

OptimizerResult RunDp(const QonInstance& inst, const OptimizerOptions& options,
                      Rng*) {
  return DpQonOptimizer(inst, options);
}

OptimizerResult RunGreedy(const QonInstance& inst,
                          const OptimizerOptions& options, Rng*) {
  return GreedyQonOptimizer(inst, options);
}

OptimizerResult RunRandom(const QonInstance& inst,
                          const OptimizerOptions& options, Rng* rng) {
  return RandomSamplingOptimizer(inst, rng, options);
}

OptimizerResult RunIi(const QonInstance& inst, const OptimizerOptions& options,
                      Rng* rng) {
  return IterativeImprovementOptimizer(inst, rng, options);
}

OptimizerResult RunSa(const QonInstance& inst, const OptimizerOptions& options,
                      Rng* rng) {
  return SimulatedAnnealingOptimizer(inst, rng, options);
}

OptimizerResult RunGenetic(const QonInstance& inst,
                           const OptimizerOptions& options, Rng* rng) {
  return GeneticOptimizer(inst, rng, options);
}

OptimizerResult RunBnb(const QonInstance& inst,
                       const OptimizerOptions& options, Rng*) {
  return BranchAndBoundQonOptimizer(inst, options).result;
}

OptimizerResult RunCout(const QonInstance& inst,
                        const OptimizerOptions& options, Rng*) {
  return CoutOptimalJoinOrder(inst, options.budget, options.cancel);
}

OptimizerResult RunKbz(const QonInstance& inst,
                       const OptimizerOptions& options, Rng*) {
  // IK/KBZ only applies to tree query graphs; a non-tree instance is
  // infeasible for it, not an error (so it can ride in --optimizers=
  // lists over mixed workloads).
  if (!IsTreeQueryGraph(inst.graph())) return OptimizerResult{};
  return IkkbzOptimizer(inst, options.budget, options.cancel);
}

// --- QO_H wrappers ---

QohOptimizerResult RunQohExhaustive(const QohInstance& inst,
                                    const QohOptimizerOptions& options, Rng*) {
  return ExhaustiveQohOptimizer(inst, options.budget, options.cancel);
}

QohOptimizerResult RunQohGreedy(const QohInstance& inst,
                                const QohOptimizerOptions& options, Rng*) {
  return GreedyQohOptimizer(inst, options.budget, options.cancel);
}

QohOptimizerResult RunQohRandom(const QohInstance& inst,
                                const QohOptimizerOptions& options, Rng* rng) {
  return RandomSamplingQohOptimizer(inst, rng, options);
}

QohOptimizerResult RunQohIi(const QohInstance& inst,
                            const QohOptimizerOptions& options, Rng* rng) {
  return IterativeImprovementQohOptimizer(inst, rng, options);
}

QohOptimizerResult RunQohSa(const QohInstance& inst,
                            const QohOptimizerOptions& options, Rng* rng) {
  return SimulatedAnnealingQohOptimizer(inst, rng, options);
}

// The adaptive knob schema is family-independent (AdaptiveKnobs is shared
// between the options structs).
std::vector<KnobSpec> AdaptiveKnobSchema() {
  return {
      {"--fallback=", "safety-net entry; result never costs more than it"},
      {"--adaptive-candidates=", "CSV of candidate entries (default family"
       " set)"},
      {"--quality-target=", "allowed predicted cost ratio over the best"
       " candidate"},
      {"--knn-k=", "neighbors consulted per prediction"},
      {"--min-trials=", "explore candidates with fewer committed trials"},
      {"--adaptive-seed=", "extra seed for the exploration stream"},
  };
}

}  // namespace

namespace registry_internal {

template <typename Entry>
const Entry* RegistryT<Entry>::Find(std::string_view name) const {
  for (const auto& [alias, canonical] : aliases_) {
    if (alias == name) {
      name = canonical;
      break;
    }
  }
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

template <typename Entry>
std::vector<std::string> RegistryT<Entry>::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

template <typename Entry>
std::string RegistryT<Entry>::Describe() const {
  std::ostringstream out;
  out << family_ << " optimizers (--optimizers=<name>[,<name>...]):\n";
  for (const Entry& e : entries_) {
    out << "  " << e.name;
    for (size_t pad = e.name.size(); pad < 12; ++pad) out << ' ';
    out << ' ' << e.description;
    if (e.deterministic) out << " [deterministic]";
    if (!e.cacheable) out << " [stateful: never plan-cached]";
    out << '\n';
    for (const KnobSpec& k : e.knobs) {
      out << "      " << k.flag;
      for (size_t pad = k.flag.size(); pad < 24; ++pad) out << ' ';
      out << ' ' << k.description << '\n';
    }
  }
  if (!aliases_.empty()) {
    out << "aliases:";
    for (const auto& [alias, canonical] : aliases_) {
      out << ' ' << alias << " -> " << canonical;
    }
    out << '\n';
  }
  out << "common knobs: --budget-evals= (deterministic evaluation cap),"
         " --deadline-ms= (wall-clock deadline)\n";
  out << "eval tiers: --eval-tier=exact|fast — `fast` ranks local-search"
         " candidates with the certified vectorized evaluator"
         " (qo/fast_eval.h) and re-prices possible accepts exactly;"
         " final plans are bit-identical across tiers\n";
  return out.str();
}

template <typename Entry>
typename Entry::Result RegistryT<Entry>::Run(std::string_view name,
                                             const Instance& inst,
                                             const Options& options,
                                             Rng* rng) const {
  const Entry* entry = Find(name);
  AQO_CHECK(entry != nullptr)
      << "unknown " << (family_ == "qon" ? "QO_N" : "QO_H")
      << " optimizer: " << name;
  typename Entry::Result result;
  {
    // Per-optimizer invocation latency, keyed by canonical name (aliases
    // fold into their target's distribution). The GetHistogram lookup
    // costs one mutex acquire — noise next to the invocation itself.
    obs::ScopedLatencyTimer timer(obs::Registry::Get().GetHistogram(
        family_ + "." + entry->name + ".invoke_us"));
    result = entry->run(inst, options, rng);
  }
  if (options.feedback != nullptr) {
    options.feedback->ReportOutcome(
        MakeRunOutcome(family_, entry->name, inst, result));
  }
  return result;
}

template class RegistryT<QonOptimizerEntry>;
template class RegistryT<QohOptimizerEntry>;

}  // namespace registry_internal

const OptimizerRegistry& OptimizerRegistry::Qon() {
  static const OptimizerRegistry* registry = [] {
    std::vector<QonOptimizerEntry> entries = {
        {"exhaustive", "all n! permutations (n <= 10)", true, true, {},
         RunExhaustive},
        {"dp", "exact left-deep subset DP (n <= 24)", true, true, {}, RunDp},
        {"greedy", "cheapest-next-join from every start", true, true, {},
         RunGreedy},
        {"random", "best of options.samples random sequences", false, true,
         {{"--samples=", "random sequences drawn"}}, RunRandom},
        {"ii", "first-improvement local search, options.restarts starts",
         false, true,
         {{"--restarts=", "random restarts"},
          {"--eval-tier=", "candidate pricing: exact | fast (same results)"}},
         RunIi},
        {"sa", "simulated annealing (knobs: options.sa)", false, true,
         {{"--sa-iterations=", "moves per restart"},
          {"--sa-temperature=", "initial temperature (log2-cost units)"},
          {"--sa-cooling=", "geometric cooling factor"},
          {"--sa-restarts=", "independent annealing runs"},
          {"--eval-tier=", "candidate pricing: exact | fast (same results)"}},
         RunSa},
        {"genetic", "genetic algorithm (knobs: options.ga)", false, true,
         {{"--ga-population=", "individuals per generation"},
          {"--ga-generations=", "generations evolved"},
          {"--ga-crossover=", "crossover probability"},
          {"--ga-mutation=", "mutation probability"},
          {"--eval-tier=", "candidate pricing: exact | fast (same results)"}},
         RunGenetic},
        {"bnb", "branch & bound (options.bnb_node_limit, 0 = exact)", true,
         true, {{"--bnb-node-limit=", "node budget (0 = unlimited)"}},
         RunBnb},
        {"cout", "exact optimum under the C_out cost metric", true, true, {},
         RunCout},
        {"kbz", "IK/KBZ, exact on tree query graphs (else infeasible)", true,
         true, {}, RunKbz},
        {"adaptive", "learned selection over the feedback store"
         " (docs/adaptive.md)", false, false, AdaptiveKnobSchema(),
         AdaptiveQonOptimizer},
    };
    return new OptimizerRegistry(std::move(entries), {{"ga", "genetic"}});
  }();
  return *registry;
}

const QohOptimizerRegistry& QohOptimizerRegistry::Get() {
  static const QohOptimizerRegistry* registry = [] {
    std::vector<QohOptimizerEntry> entries = {
        {"exhaustive", "all n! permutations, optimal decomposition (n <= 9)",
         true, true, {}, RunQohExhaustive},
        {"greedy", "min-next-intermediate construction", true, true, {},
         RunQohGreedy},
        {"random", "best of options.samples random sequences", false, true,
         {{"--samples=", "random sequences drawn"}}, RunQohRandom},
        {"ii", "adjacent-transposition local search", false, true,
         {{"--restarts=", "random restarts"},
          {"--eval-tier=", "candidate pricing: exact | fast (same results)"}},
         RunQohIi},
        {"sa", "simulated annealing (knobs: options.sa)", false, true,
         {{"--sa-iterations=", "moves per restart"},
          {"--sa-temperature=", "initial temperature (log2-cost units)"},
          {"--sa-cooling=", "geometric cooling factor"},
          {"--sa-restarts=", "independent annealing runs"},
          {"--eval-tier=", "candidate pricing: exact | fast (same results)"}},
         RunQohSa},
        {"adaptive", "learned selection over the feedback store"
         " (docs/adaptive.md)", false, false, AdaptiveKnobSchema(),
         AdaptiveQohOptimizer},
    };
    return new QohOptimizerRegistry(std::move(entries),
                                    {{"sample", "random"}});
  }();
  return *registry;
}

std::vector<std::string> ParseOptimizerList(std::string_view csv) {
  std::vector<std::string> names;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string_view::npos) comma = csv.size();
    std::string_view piece = csv.substr(pos, comma - pos);
    while (!piece.empty() && (piece.front() == ' ' || piece.front() == '\t')) {
      piece.remove_prefix(1);
    }
    while (!piece.empty() && (piece.back() == ' ' || piece.back() == '\t')) {
      piece.remove_suffix(1);
    }
    if (!piece.empty()) names.emplace_back(piece);
    pos = comma + 1;
  }
  return names;
}

}  // namespace aqo
