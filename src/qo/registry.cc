#include "qo/registry.h"

#include <utility>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "qo/analysis.h"
#include "qo/bnb.h"
#include "qo/genetic.h"
#include "qo/ikkbz.h"
#include "util/check.h"

namespace aqo {

namespace {

// --- QO_N wrappers: adapt each optimizer to the uniform signature ---

OptimizerResult RunExhaustive(const QonInstance& inst,
                              const OptimizerOptions& options, Rng*) {
  return ExhaustiveQonOptimizer(inst, options);
}

OptimizerResult RunDp(const QonInstance& inst, const OptimizerOptions& options,
                      Rng*) {
  return DpQonOptimizer(inst, options);
}

OptimizerResult RunGreedy(const QonInstance& inst,
                          const OptimizerOptions& options, Rng*) {
  return GreedyQonOptimizer(inst, options);
}

OptimizerResult RunRandom(const QonInstance& inst,
                          const OptimizerOptions& options, Rng* rng) {
  return RandomSamplingOptimizer(inst, rng, options);
}

OptimizerResult RunIi(const QonInstance& inst, const OptimizerOptions& options,
                      Rng* rng) {
  return IterativeImprovementOptimizer(inst, rng, options);
}

OptimizerResult RunSa(const QonInstance& inst, const OptimizerOptions& options,
                      Rng* rng) {
  return SimulatedAnnealingOptimizer(inst, rng, options);
}

OptimizerResult RunGenetic(const QonInstance& inst,
                           const OptimizerOptions& options, Rng* rng) {
  return GeneticOptimizer(inst, rng, options);
}

OptimizerResult RunBnb(const QonInstance& inst,
                       const OptimizerOptions& options, Rng*) {
  return BranchAndBoundQonOptimizer(inst, options).result;
}

OptimizerResult RunCout(const QonInstance& inst,
                        const OptimizerOptions& options, Rng*) {
  return CoutOptimalJoinOrder(inst, options.budget, options.cancel);
}

OptimizerResult RunKbz(const QonInstance& inst,
                       const OptimizerOptions& options, Rng*) {
  // IK/KBZ only applies to tree query graphs; a non-tree instance is
  // infeasible for it, not an error (so it can ride in --optimizers=
  // lists over mixed workloads).
  if (!IsTreeQueryGraph(inst.graph())) return OptimizerResult{};
  return IkkbzOptimizer(inst, options.budget, options.cancel);
}

// --- QO_H wrappers ---

QohOptimizerResult RunQohExhaustive(const QohInstance& inst,
                                    const QohOptimizerOptions& options, Rng*) {
  return ExhaustiveQohOptimizer(inst, options.budget, options.cancel);
}

QohOptimizerResult RunQohGreedy(const QohInstance& inst,
                                const QohOptimizerOptions& options, Rng*) {
  return GreedyQohOptimizer(inst, options.budget, options.cancel);
}

QohOptimizerResult RunQohRandom(const QohInstance& inst,
                                const QohOptimizerOptions& options, Rng* rng) {
  return RandomSamplingQohOptimizer(inst, rng, options);
}

QohOptimizerResult RunQohIi(const QohInstance& inst,
                            const QohOptimizerOptions& options, Rng* rng) {
  return IterativeImprovementQohOptimizer(inst, rng, options);
}

QohOptimizerResult RunQohSa(const QohInstance& inst,
                            const QohOptimizerOptions& options, Rng* rng) {
  return SimulatedAnnealingQohOptimizer(inst, rng, options);
}

template <typename Entry>
const Entry* FindIn(const std::vector<Entry>& entries,
                    const std::vector<std::pair<std::string, std::string>>&
                        aliases,
                    std::string_view name) {
  for (const auto& [alias, canonical] : aliases) {
    if (alias == name) {
      name = canonical;
      break;
    }
  }
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

template <typename Entry>
std::vector<std::string> NamesOf(const std::vector<Entry>& entries) {
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const Entry& e : entries) names.push_back(e.name);
  return names;
}

}  // namespace

const OptimizerRegistry& OptimizerRegistry::Qon() {
  static const OptimizerRegistry* registry = [] {
    auto* r = new OptimizerRegistry();
    r->entries_ = {
        {"exhaustive", "all n! permutations (n <= 10)", true, RunExhaustive},
        {"dp", "exact left-deep subset DP (n <= 24)", true, RunDp},
        {"greedy", "cheapest-next-join from every start", true, RunGreedy},
        {"random", "best of options.samples random sequences", false,
         RunRandom},
        {"ii", "first-improvement local search, options.restarts starts",
         false, RunIi},
        {"sa", "simulated annealing (knobs: options.sa)", false, RunSa},
        {"genetic", "genetic algorithm (knobs: options.ga)", false,
         RunGenetic},
        {"bnb", "branch & bound (options.bnb_node_limit, 0 = exact)", true,
         RunBnb},
        {"cout", "exact optimum under the C_out cost metric", true, RunCout},
        {"kbz", "IK/KBZ, exact on tree query graphs (else infeasible)", true,
         RunKbz},
    };
    r->aliases_ = {{"ga", "genetic"}};
    return r;
  }();
  return *registry;
}

const QonOptimizerEntry* OptimizerRegistry::Find(std::string_view name) const {
  return FindIn(entries_, aliases_, name);
}

std::vector<std::string> OptimizerRegistry::Names() const {
  return NamesOf(entries_);
}

OptimizerResult OptimizerRegistry::Run(std::string_view name,
                                       const QonInstance& inst,
                                       const OptimizerOptions& options,
                                       Rng* rng) const {
  const QonOptimizerEntry* entry = Find(name);
  AQO_CHECK(entry != nullptr) << "unknown QO_N optimizer: " << name;
  // Per-optimizer invocation latency, keyed by canonical name (aliases
  // fold into their target's distribution). The GetHistogram lookup costs
  // one mutex acquire — noise next to the invocation itself.
  obs::ScopedLatencyTimer timer(obs::Registry::Get().GetHistogram(
      std::string("qon.") + entry->name + ".invoke_us"));
  return entry->run(inst, options, rng);
}

const QohOptimizerRegistry& QohOptimizerRegistry::Get() {
  static const QohOptimizerRegistry* registry = [] {
    auto* r = new QohOptimizerRegistry();
    r->entries_ = {
        {"exhaustive", "all n! permutations, optimal decomposition (n <= 9)",
         true, RunQohExhaustive},
        {"greedy", "min-next-intermediate construction", true, RunQohGreedy},
        {"random", "best of options.samples random sequences", false,
         RunQohRandom},
        {"ii", "adjacent-transposition local search", false, RunQohIi},
        {"sa", "simulated annealing (knobs: options.sa)", false, RunQohSa},
    };
    r->aliases_ = {{"sample", "random"}};
    return r;
  }();
  return *registry;
}

const QohOptimizerEntry* QohOptimizerRegistry::Find(
    std::string_view name) const {
  return FindIn(entries_, aliases_, name);
}

std::vector<std::string> QohOptimizerRegistry::Names() const {
  return NamesOf(entries_);
}

QohOptimizerResult QohOptimizerRegistry::Run(std::string_view name,
                                             const QohInstance& inst,
                                             const QohOptimizerOptions& options,
                                             Rng* rng) const {
  const QohOptimizerEntry* entry = Find(name);
  AQO_CHECK(entry != nullptr) << "unknown QO_H optimizer: " << name;
  obs::ScopedLatencyTimer timer(obs::Registry::Get().GetHistogram(
      std::string("qoh.") + entry->name + ".invoke_us"));
  return entry->run(inst, options, rng);
}

std::vector<std::string> ParseOptimizerList(std::string_view csv) {
  std::vector<std::string> names;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string_view::npos) comma = csv.size();
    std::string_view piece = csv.substr(pos, comma - pos);
    while (!piece.empty() && (piece.front() == ' ' || piece.front() == '\t')) {
      piece.remove_prefix(1);
    }
    while (!piece.empty() && (piece.back() == ' ' || piece.back() == '\t')) {
      piece.remove_suffix(1);
    }
    if (!piece.empty()) names.emplace_back(piece);
    pos = comma + 1;
  }
  return names;
}

}  // namespace aqo
