#ifndef AQO_QO_REGISTRY_H_
#define AQO_QO_REGISTRY_H_

// Name -> optimizer registries with one uniform call signature per
// problem family:
//
//   QO_N:  (const QonInstance&, const OptimizerOptions&, Rng*)
//              -> OptimizerResult
//   QO_H:  (const QohInstance&, const QohOptimizerOptions&, Rng*)
//              -> QohOptimizerResult
//
// Both families share one entry shape (OptimizerEntryT) and one registry
// implementation (registry_internal::RegistryT); only the instance /
// options / result types differ. An entry carries metadata — name,
// description, determinism, cacheability, and a knob schema naming the
// harness flags that feed it — so front-ends render `--optimizers=help`
// from Describe() instead of hand-maintaining flag docs.
//
// Benches and tools select optimizers by name (--optimizers=a,b,c)
// instead of hand-rolling call lists; the batch service (qo/service.h)
// resolves its optimizer the same way, so every optimizer is cacheable
// and batchable for free. Deterministic optimizers ignore the Rng (it
// may be null for them); stochastic ones consume it, and equal (instance,
// options, rng-state) triples produce bit-identical results — the
// registry wrappers add no randomness and no reordering of their own.
// The one exception to "pure function of (instance, options, seed)" is
// `adaptive` (qo/adaptive.h), whose result also depends on its feedback
// store's committed state: its entry carries cacheable = false and the
// batch service never probes or populates a PlanCache for it.
//
// The invoke path (Run) reports a RunOutcome to options.feedback when the
// caller set one — that is how the adaptive feedback loop observes every
// optimizer without the optimizers knowing about it. Reporting is
// observational only and never changes results.
//
// Unknown names are a contract violation: Find returns nullptr so
// front-ends can exit nonzero with the valid-name list (never a silent
// skip), while Run CHECK-fails for programmatic callers.

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qo/optimizers.h"
#include "qo/qoh_optimizers.h"
#include "util/random.h"

namespace aqo {

// One knob an entry reads, named by the harness flag that sets it (see
// bench/bench_common.h ReadQonKnobs/ReadQohKnobs) — purely descriptive
// metadata for Describe() listings.
struct KnobSpec {
  std::string flag;         // e.g. "--sa-iterations="
  std::string description;  // one line
};

// The unified registry entry: per-family only in its three type
// parameters, identical in shape and metadata otherwise.
template <typename InstanceT, typename OptionsT, typename ResultT>
struct OptimizerEntryT {
  using Instance = InstanceT;
  using Options = OptionsT;
  using Result = ResultT;

  std::string name;         // canonical registry name
  std::string description;  // one line, shown in --help style listings
  bool deterministic = false;  // true: ignores the Rng entirely
  // False when the result depends on mutable process state (adaptive's
  // feedback store) — such entries must never be served from or inserted
  // into a PlanCache, and the batch service enforces exactly that.
  bool cacheable = true;
  std::vector<KnobSpec> knobs;  // the flags this entry reads
  std::function<Result(const Instance&, const Options&, Rng*)> run;
};

using QonOptimizerEntry =
    OptimizerEntryT<QonInstance, OptimizerOptions, OptimizerResult>;
using QohOptimizerEntry =
    OptimizerEntryT<QohInstance, QohOptimizerOptions, QohOptimizerResult>;

namespace registry_internal {

// Shared registry implementation: alias resolution, name listing, the
// Describe() help text, and the instrumented + feedback-reporting invoke
// path. Instantiated once per family in registry.cc.
template <typename Entry>
class RegistryT {
 public:
  using Instance = typename Entry::Instance;
  using Options = typename Entry::Options;
  using Result = typename Entry::Result;

  // Resolves a name or alias; nullptr when unknown.
  const Entry* Find(std::string_view name) const;

  // Canonical names in registration order (aliases excluded).
  std::vector<std::string> Names() const;

  // (alias, canonical) pairs in registration order.
  const std::vector<std::pair<std::string, std::string>>& Aliases() const {
    return aliases_;
  }

  // Multi-line human-readable listing of every entry: name, description,
  // determinism/cacheability markers, knob schema, and the alias table.
  // This is what --optimizers=help prints.
  std::string Describe() const;

  // Runs a registered optimizer; CHECK-fails on unknown names. Records
  // the invocation latency into <family>.<name>.invoke_us and reports a
  // RunOutcome to options.feedback when set.
  Result Run(std::string_view name, const Instance& inst,
             const Options& options, Rng* rng) const;

 protected:
  RegistryT(std::string family, std::vector<Entry> entries,
            std::vector<std::pair<std::string, std::string>> aliases)
      : family_(std::move(family)),
        entries_(std::move(entries)),
        aliases_(std::move(aliases)) {}

 private:
  std::string family_;  // "qon" | "qoh": histogram prefix + RunOutcome tag
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, std::string>> aliases_;
};

}  // namespace registry_internal

// Fills a RunOutcome from a finished run — shared by the registry invoke
// path and qo/adaptive.cc (which reports its inner runs itself).
template <typename Instance, typename Result>
RunOutcome MakeRunOutcome(std::string_view family, std::string_view optimizer,
                          const Instance& inst, const Result& result) {
  RunOutcome out;
  out.family = std::string(family);
  out.optimizer = std::string(optimizer);
  out.n = inst.NumRelations();
  out.edges = inst.graph().NumEdges();
  out.feasible = result.feasible;
  out.cost_log2 = result.cost.Log2();
  out.evaluations = result.evaluations;
  out.status = result.status;
  return out;
}

class OptimizerRegistry
    : public registry_internal::RegistryT<QonOptimizerEntry> {
 public:
  // The built-in QO_N registry: exhaustive, dp, greedy, random, ii, sa,
  // genetic (alias: ga), bnb, cout, kbz, adaptive.
  static const OptimizerRegistry& Qon();

 private:
  OptimizerRegistry(std::vector<QonOptimizerEntry> entries,
                    std::vector<std::pair<std::string, std::string>> aliases)
      : RegistryT("qon", std::move(entries), std::move(aliases)) {}
};

class QohOptimizerRegistry
    : public registry_internal::RegistryT<QohOptimizerEntry> {
 public:
  // The built-in QO_H registry: exhaustive, greedy, random (alias:
  // sample), ii, sa, adaptive.
  static const QohOptimizerRegistry& Get();

 private:
  QohOptimizerRegistry(std::vector<QohOptimizerEntry> entries,
                       std::vector<std::pair<std::string, std::string>> aliases)
      : RegistryT("qoh", std::move(entries), std::move(aliases)) {}
};

// Splits a comma-separated --optimizers= value into trimmed, non-empty
// names ("greedy, ii" -> {"greedy", "ii"}).
std::vector<std::string> ParseOptimizerList(std::string_view csv);

}  // namespace aqo

#endif  // AQO_QO_REGISTRY_H_
