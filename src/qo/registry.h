#ifndef AQO_QO_REGISTRY_H_
#define AQO_QO_REGISTRY_H_

// Name -> optimizer registries with one uniform call signature per
// problem family:
//
//   QO_N:  (const QonInstance&, const OptimizerOptions&, Rng*)
//              -> OptimizerResult
//   QO_H:  (const QohInstance&, const QohOptimizerOptions&, Rng*)
//              -> QohOptimizerResult
//
// Benches and tools select optimizers by name (--optimizers=a,b,c)
// instead of hand-rolling call lists; the batch service (qo/service.h)
// resolves its optimizer the same way, so every optimizer is cacheable
// and batchable for free. Deterministic optimizers ignore the Rng (it
// may be null for them); stochastic ones consume it, and equal (instance,
// options, rng-state) triples produce bit-identical results — the
// registry wrappers add no randomness and no reordering of their own.
//
// Unknown names are a contract violation: Find returns nullptr so
// front-ends can exit nonzero with the valid-name list (never a silent
// skip), while Run CHECK-fails for programmatic callers.

#include <string>
#include <string_view>
#include <vector>

#include "qo/optimizers.h"
#include "qo/qoh_optimizers.h"
#include "util/random.h"

namespace aqo {

struct QonOptimizerEntry {
  std::string name;         // canonical registry name
  std::string description;  // one line, shown in --help style listings
  bool deterministic;       // true: ignores the Rng entirely
  OptimizerResult (*run)(const QonInstance&, const OptimizerOptions&, Rng*);
};

struct QohOptimizerEntry {
  std::string name;
  std::string description;
  bool deterministic;
  QohOptimizerResult (*run)(const QohInstance&, const QohOptimizerOptions&,
                            Rng*);
};

class OptimizerRegistry {
 public:
  // The built-in QO_N registry: exhaustive, dp, greedy, random, ii, sa,
  // genetic (alias: ga), bnb, cout, kbz.
  static const OptimizerRegistry& Qon();

  // Resolves a name or alias; nullptr when unknown.
  const QonOptimizerEntry* Find(std::string_view name) const;

  // Canonical names in registration order (aliases excluded).
  std::vector<std::string> Names() const;

  // Runs a registered optimizer; CHECK-fails on unknown names.
  OptimizerResult Run(std::string_view name, const QonInstance& inst,
                      const OptimizerOptions& options, Rng* rng) const;

 private:
  std::vector<QonOptimizerEntry> entries_;
  std::vector<std::pair<std::string, std::string>> aliases_;
};

class QohOptimizerRegistry {
 public:
  // The built-in QO_H registry: exhaustive, greedy, random (alias:
  // sample), ii, sa.
  static const QohOptimizerRegistry& Get();

  const QohOptimizerEntry* Find(std::string_view name) const;
  std::vector<std::string> Names() const;
  QohOptimizerResult Run(std::string_view name, const QohInstance& inst,
                         const QohOptimizerOptions& options, Rng* rng) const;

 private:
  std::vector<QohOptimizerEntry> entries_;
  std::vector<std::pair<std::string, std::string>> aliases_;
};

// Splits a comma-separated --optimizers= value into trimmed, non-empty
// names ("greedy, ii" -> {"greedy", "ii"}).
std::vector<std::string> ParseOptimizerList(std::string_view csv);

}  // namespace aqo

#endif  // AQO_QO_REGISTRY_H_
