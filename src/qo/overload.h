#ifndef AQO_QO_OVERLOAD_H_
#define AQO_QO_OVERLOAD_H_

// Deterministic load governor for the serve path (tools/aqo_serve.cc).
//
// The serve loop is serial, so real queue depth is invisible to it: by
// the time a frame is parsed the kernel pipe holds whatever backlog the
// clients built up, and peeking at it would make admission depend on
// scheduling. Instead the governor models pressure as a pair of leaky
// buckets indexed by *arrival slot*, which makes every decision a pure
// function of the request stream:
//
//   * a depth bucket counts admitted requests; it drains a fixed number
//     of request units per arrival (the capacity the server is assumed
//     to clear between arrivals);
//   * a cost bucket accumulates per-request work estimates
//     (EstimateCostUnits: a deterministic function of family, optimizer
//     name, and n — roughly "evaluations this request will burn"); it
//     drains a fixed number of cost units per arrival.
//
// Pressure is the fuller bucket's fill fraction, reported in permille.
// Two thresholds carve it into tiers:
//
//   tier 0 (admit)   pressure <  degrade threshold  — run as requested
//   tier 1 (degrade) pressure >= degrade threshold  — rewrite to the
//            declared cheap fallback (DegradeQon/DegradeQoh: dp → greedy,
//            SA/GA restart counts clamped, ...) and stamp the response
//            degraded=1
//   tier 2 (shed)    admitting would overflow a bucket — reject with
//            `err <id> shed: <reason>` before any optimization work
//
// Same request stream + same thresholds => byte-identical shed and
// degrade sets, across runs and thread counts (tests/overload_test.cc).
// A default-constructed (disarmed) governor admits everything and
// touches nothing — the serve path stays byte-identical to an ungoverned
// build.
//
// Telemetry: qo.overload.{admits,degrades,sheds} counters, the
// qo.overload.pressure_permille gauge, and an `overload_decision` JSONL
// record per shed/degrade when a run log is attached
// (docs/robustness.md).

#include <cstdint>
#include <string>

#include "qo/optimizers.h"
#include "qo/qoh_optimizers.h"

namespace aqo {

struct OverloadOptions {
  // Depth bucket: capacity in request units; 0 disables the dimension.
  double queue_capacity = 0.0;
  // Request units drained per arrival slot.
  double drain_requests = 1.0;

  // Cost bucket: capacity in cost units (see EstimateCostUnits); 0
  // disables the dimension.
  double cost_capacity = 0.0;
  // Cost units drained per arrival slot. 0 = cost_capacity / 16 (a
  // server assumed to clear 1/16th of its backlog ceiling per arrival).
  double drain_cost = 0.0;

  // Fill fraction at which tier 1 (degrade) starts, in [0, 1]. Admission
  // into a bucket past its capacity is tier 2 (shed) regardless.
  double degrade_threshold = 0.75;

  bool armed() const { return queue_capacity > 0.0 || cost_capacity > 0.0; }
};

enum class OverloadTier {
  kAdmit = 0,
  kDegrade = 1,
  kShed = 2,
};

const char* OverloadTierName(OverloadTier tier);

struct OverloadDecision {
  OverloadTier tier = OverloadTier::kAdmit;
  // Pressure *after* this arrival's drain, *before* admitting it, in
  // permille of the fuller armed bucket.
  uint64_t pressure_permille = 0;
  // Cost estimate the decision was based on (post-degrade estimate when
  // tier == kDegrade).
  double cost_units = 0.0;
  // Human-readable reason, non-empty for kDegrade/kShed (the shed reason
  // is what `err <id> shed: <reason>` carries).
  std::string reason;
};

// Deterministic per-request work estimate in "cost units" (roughly cost
// evaluations, clamped to 2^50). Unknown optimizer names estimate like
// the family's most expensive entry, so a typo can only over-throttle.
double EstimateQonCostUnits(std::string_view optimizer,
                            const OptimizerOptions& options, int n);
double EstimateQohCostUnits(std::string_view optimizer,
                            const QohOptimizerOptions& options, int n);

// The declared degradation rewrites. Both return the effective optimizer
// name and clamp `options` in place; when the entry is already at or
// below the fallback's cost the name passes through unchanged (greedy
// stays greedy). Deterministic: same inputs, same rewrite.
std::string DegradeQon(std::string_view optimizer, OptimizerOptions* options);
std::string DegradeQoh(std::string_view optimizer,
                       QohOptimizerOptions* options);

// The governor. Not thread-safe: the serve loop is the single caller,
// and determinism comes from arrival order.
class LoadGovernor {
 public:
  explicit LoadGovernor(const OverloadOptions& options = {});

  bool armed() const { return options_.armed(); }
  const OverloadOptions& options() const { return options_; }

  // One arrival: drains both buckets by one slot, then decides the tier
  // for a request estimated at `cost_units`. kAdmit/kDegrade add the
  // (possibly degraded) estimate to the buckets; kShed adds nothing.
  // `degraded_cost_units` is the estimate under the degrade rewrite —
  // the governor degrades rather than sheds whenever the cheap form
  // still fits. Disarmed governors return kAdmit with pressure 0.
  OverloadDecision OnArrival(double cost_units, double degraded_cost_units);

  // Control frames (ping/health/snapshot) drain but never shed; they
  // cost nothing. Keeps "pressure" meaning arrival slots, not verbs.
  void OnControlFrame();

  // Current fill fraction of the fuller armed bucket, in permille.
  uint64_t PressurePermille() const;

  uint64_t admits() const { return admits_; }
  uint64_t degrades() const { return degrades_; }
  uint64_t sheds() const { return sheds_; }

 private:
  void Drain();

  OverloadOptions options_;
  double pending_requests_ = 0.0;
  double pending_cost_ = 0.0;
  uint64_t admits_ = 0;
  uint64_t degrades_ = 0;
  uint64_t sheds_ = 0;
};

}  // namespace aqo

#endif  // AQO_QO_OVERLOAD_H_
