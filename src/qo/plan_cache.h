#ifndef AQO_QO_PLAN_CACHE_H_
#define AQO_QO_PLAN_CACHE_H_

// Sharded, thread-safe plan cache keyed by canonical instance
// fingerprints (qo/fingerprint.h).
//
// Entries live in canonical labels: a hit returns the plan for the
// *canonical* instance, and the caller maps the sequence back through its
// own relabeling permutation (MapSequenceFromCanonical). Keys must also
// fold in everything else the result depends on — optimizer name, knob
// values, and the RNG seed for stochastic optimizers — so that a hit is
// guaranteed to return exactly the bits a fresh computation would produce
// (see PlanCacheKey in qo/service.h). That guarantee is what lets the
// batch service treat the cache as a pure memo: results are bit-identical
// whether the cache is on, off, or shared across threads.
//
// Concurrency: keys are partitioned across shards by fingerprint bits;
// each shard is an independent LRU list + hash map under its own mutex.
// Byte accounting is per shard (budget divided evenly), so eviction
// decisions never need a global lock.
//
// Telemetry: qo.plan_cache.{hits,misses,inserts,evictions} counters fire
// on the corresponding events; LogConfig/LogStats emit
// `plan_cache_config` / `plan_cache_stats` records to the global run log
// so a JSONL consumer can recover the cache configuration and hit rate
// of any run (the CI smoke asserts on them).

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qo/join_sequence.h"
#include "util/cancellation.h"
#include "util/hash.h"
#include "util/log_double.h"

namespace aqo {

struct PlanCacheOptions {
  size_t byte_budget = 64ull << 20;  // 64 MiB
  int shards = 16;
};

// A cached optimization result, in canonical labels. `pipeline_starts`
// carries the QO_H decomposition (empty for QO_N); decompositions are
// positional, so they need no label mapping.
struct CachedPlan {
  bool feasible = false;
  JoinSequence sequence;
  std::vector<int> pipeline_starts;
  LogDouble cost;
  uint64_t evaluations = 0;
  // Cacheable statuses are kComplete and kBudgetExhausted only — both are
  // deterministic functions of (instance, options, seed). The service
  // never inserts kDeadlineExceeded (wall-clock dependent) or kFailed
  // plans (see qo/service.cc).
  PlanStatus status = PlanStatus::kComplete;
};

class PlanCache {
 public:
  explicit PlanCache(const PlanCacheOptions& options = {});

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // On hit copies the plan into *out, refreshes LRU recency, and returns
  // true. `out` may be null (probe only).
  bool Lookup(const Hash128& key, CachedPlan* out);

  // Inserts (or refreshes) `plan` under `key`, evicting least-recently
  // used entries of the same shard until the shard's byte share is
  // respected. Plans larger than a whole shard are not cached.
  void Insert(const Hash128& key, const CachedPlan& plan);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };
  Stats GetStats() const;

  const PlanCacheOptions& options() const { return options_; }

  // Called after every successful *new* insert (not refreshes, oversize
  // rejections, or fault-dropped inserts), outside the shard lock, with
  // the key and the plan as stored. This is the write-through hook the
  // persistence layer attaches (qo/persist.h: every insert is appended to
  // the journal). Set once, before concurrent use; pass nullptr to clear.
  using InsertObserver =
      std::function<void(const Hash128& key, const CachedPlan& plan)>;
  void SetInsertObserver(InsertObserver observer);

  // All entries in a deterministic order: shards by index, each shard's
  // LRU list from least to most recently used. Re-Insert()ing the result
  // into an empty cache in order therefore reproduces both the contents
  // and the recency structure — this is what SaveSnapshot persists.
  std::vector<std::pair<Hash128, CachedPlan>> Export() const;

  // Emits a `plan_cache_config` record to the global run log (no-op
  // without one).
  void LogConfig() const;
  // Emits a `plan_cache_stats` record with current totals and hit rate.
  void LogStats() const;

 private:
  struct Entry {
    Hash128 key;
    CachedPlan plan;
    size_t bytes = 0;
  };
  struct Shard {
    std::mutex mu;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<Hash128, std::list<Entry>::iterator, Hash128Hasher>
        index;
    size_t bytes = 0;
  };

  Shard& ShardFor(const Hash128& key) {
    return *shards_[static_cast<size_t>(key.hi) % shards_.size()];
  }

  PlanCacheOptions options_;
  size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  InsertObserver insert_observer_;

  // Per-instance totals (the qo.plan_cache.* obs counters are
  // process-wide and would alias across caches).
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  // Insert *attempts* (including refreshes and oversize rejections):
  // the deterministic ordinal for the "plan_cache.insert" fault site.
  std::atomic<uint64_t> insert_attempts_{0};
};

}  // namespace aqo

#endif  // AQO_QO_PLAN_CACHE_H_
