#include "qo/fingerprint.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace aqo {

namespace {

// Family tags keep a QO_N fingerprint from ever colliding with a QO_H one
// (the accumulators are seeded differently).
constexpr uint64_t kQonTag = 0x514f4e5f6e6f7461ULL;
constexpr uint64_t kQohTag = 0x514f485f68746167ULL;

// One round of key refinement: each relation's new key folds in the
// sorted multiset of its incident-edge summaries. All inputs are
// label-invariant, so the refined keys are too.
template <typename EdgeDataFn>
std::vector<uint64_t> RefineKeys(const Graph& g,
                                 const std::vector<uint64_t>& keys,
                                 const EdgeDataFn& edge_data) {
  int n = g.NumVertices();
  std::vector<uint64_t> next(static_cast<size_t>(n));
  std::vector<uint64_t> incident;
  for (int v = 0; v < n; ++v) {
    incident.clear();
    for (int u = 0; u < n; ++u) {
      if (u == v || !g.HasEdge(v, u)) continue;
      HashAccumulator edge(keys[static_cast<size_t>(u)]);
      edge_data(v, u, &edge);
      incident.push_back(edge.Digest().lo);
    }
    std::sort(incident.begin(), incident.end());
    HashAccumulator acc(keys[static_cast<size_t>(v)]);
    for (uint64_t h : incident) acc.Add(h);
    next[static_cast<size_t>(v)] = acc.Digest().lo;
  }
  return next;
}

// Number of distinct values in `keys`.
size_t DistinctCount(std::vector<uint64_t> keys) {
  std::sort(keys.begin(), keys.end());
  return static_cast<size_t>(
      std::unique(keys.begin(), keys.end()) - keys.begin());
}

// Refines until the partition stops getting finer (at most n rounds: each
// productive round adds a class), then returns the canonical order:
// relations sorted by (final key, original index).
template <typename EdgeDataFn>
std::vector<int> CanonicalOrder(const Graph& g, std::vector<uint64_t> keys,
                                const EdgeDataFn& edge_data) {
  int n = g.NumVertices();
  size_t classes = DistinctCount(keys);
  for (int round = 0; round < n; ++round) {
    std::vector<uint64_t> next = RefineKeys(g, keys, edge_data);
    size_t next_classes = DistinctCount(next);
    keys = std::move(next);
    if (next_classes <= classes) break;  // partition stable
    classes = next_classes;
  }
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    uint64_t ka = keys[static_cast<size_t>(a)];
    uint64_t kb = keys[static_cast<size_t>(b)];
    if (ka != kb) return ka < kb;
    return a < b;
  });
  return order;
}

// order[c] = original relation at canonical position c  →  perm maps
// original label to canonical label.
std::vector<int> InvertOrder(const std::vector<int>& order) {
  std::vector<int> perm(order.size());
  for (size_t c = 0; c < order.size(); ++c) {
    perm[static_cast<size_t>(order[c])] = static_cast<int>(c);
  }
  return perm;
}

}  // namespace

QonInstance PermuteQonInstance(const QonInstance& inst,
                               const std::vector<int>& perm) {
  int n = inst.NumRelations();
  AQO_CHECK(IsPermutation(perm, n));
  Graph g(n);
  for (const auto& [u, v] : inst.graph().Edges()) {
    g.AddEdge(perm[static_cast<size_t>(u)], perm[static_cast<size_t>(v)]);
  }
  std::vector<LogDouble> sizes(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    sizes[static_cast<size_t>(perm[static_cast<size_t>(i)])] = inst.size(i);
  }
  QonInstance out(std::move(g), std::move(sizes));
  for (const auto& [u, v] : inst.graph().Edges()) {
    int pu = perm[static_cast<size_t>(u)];
    int pv = perm[static_cast<size_t>(v)];
    out.SetSelectivity(pu, pv, inst.selectivity(u, v));
    // Preserve explicit access-path overrides (defaults re-derive to the
    // same values, so copying unconditionally is exact either way).
    out.SetAccessCost(pu, pv, inst.AccessCost(u, v));
    out.SetAccessCost(pv, pu, inst.AccessCost(v, u));
  }
  return out;
}

QohInstance PermuteQohInstance(const QohInstance& inst,
                               const std::vector<int>& perm) {
  int n = inst.NumRelations();
  AQO_CHECK(IsPermutation(perm, n));
  Graph g(n);
  for (const auto& [u, v] : inst.graph().Edges()) {
    g.AddEdge(perm[static_cast<size_t>(u)], perm[static_cast<size_t>(v)]);
  }
  std::vector<LogDouble> sizes(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    sizes[static_cast<size_t>(perm[static_cast<size_t>(i)])] = inst.size(i);
  }
  QohInstance out(std::move(g), std::move(sizes), inst.memory(), inst.eta());
  for (const auto& [u, v] : inst.graph().Edges()) {
    out.SetSelectivity(perm[static_cast<size_t>(u)],
                       perm[static_cast<size_t>(v)], inst.selectivity(u, v));
  }
  return out;
}

CanonicalQon CanonicalizeQon(const QonInstance& inst) {
  int n = inst.NumRelations();
  std::vector<uint64_t> keys(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys[static_cast<size_t>(i)] =
        Mix64(std::bit_cast<uint64_t>(inst.size(i).Log2()));
  }
  std::vector<int> order =
      CanonicalOrder(inst.graph(), std::move(keys),
                     [&](int v, int u, HashAccumulator* acc) {
                       acc->AddDouble(inst.selectivity(v, u).Log2());
                       acc->AddDouble(inst.AccessCost(v, u).Log2());
                       acc->AddDouble(inst.AccessCost(u, v).Log2());
                     });

  CanonicalQon canon;
  canon.from_canonical = order;
  canon.to_canonical = InvertOrder(order);
  canon.instance = PermuteQonInstance(inst, canon.to_canonical);

  // Fingerprint the full canonical instance: equal fingerprints imply
  // equal canonical instances (up to 128-bit hash collision).
  HashAccumulator acc(kQonTag);
  acc.Add(static_cast<uint64_t>(n));
  const QonInstance& ci = canon.instance;
  for (int i = 0; i < n; ++i) acc.AddDouble(ci.size(i).Log2());
  std::vector<std::pair<int, int>> edges = ci.graph().Edges();
  acc.Add(static_cast<uint64_t>(edges.size()));
  for (const auto& [u, v] : edges) {
    acc.Add(static_cast<uint64_t>(u));
    acc.Add(static_cast<uint64_t>(v));
    acc.AddDouble(ci.selectivity(u, v).Log2());
    acc.AddDouble(ci.AccessCost(u, v).Log2());
    acc.AddDouble(ci.AccessCost(v, u).Log2());
  }
  canon.fingerprint = acc.Digest();
  return canon;
}

CanonicalQoh CanonicalizeQoh(const QohInstance& inst) {
  int n = inst.NumRelations();
  std::vector<uint64_t> keys(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys[static_cast<size_t>(i)] =
        Mix64(std::bit_cast<uint64_t>(inst.size(i).Log2()));
  }
  std::vector<int> order =
      CanonicalOrder(inst.graph(), std::move(keys),
                     [&](int v, int u, HashAccumulator* acc) {
                       acc->AddDouble(inst.selectivity(v, u).Log2());
                     });

  CanonicalQoh canon;
  canon.from_canonical = order;
  canon.to_canonical = InvertOrder(order);
  canon.instance = PermuteQohInstance(inst, canon.to_canonical);

  HashAccumulator acc(kQohTag);
  acc.Add(static_cast<uint64_t>(n));
  acc.AddDouble(inst.memory());
  acc.AddDouble(inst.eta());
  const QohInstance& ci = canon.instance;
  for (int i = 0; i < n; ++i) acc.AddDouble(ci.size(i).Log2());
  std::vector<std::pair<int, int>> edges = ci.graph().Edges();
  acc.Add(static_cast<uint64_t>(edges.size()));
  for (const auto& [u, v] : edges) {
    acc.Add(static_cast<uint64_t>(u));
    acc.Add(static_cast<uint64_t>(v));
    acc.AddDouble(ci.selectivity(u, v).Log2());
  }
  canon.fingerprint = acc.Digest();
  return canon;
}

JoinSequence MapSequenceFromCanonical(const JoinSequence& seq,
                                      const std::vector<int>& from_canonical) {
  JoinSequence out;
  out.reserve(seq.size());
  for (int v : seq) out.push_back(from_canonical[static_cast<size_t>(v)]);
  return out;
}

}  // namespace aqo
