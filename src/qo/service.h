#ifndef AQO_QO_SERVICE_H_
#define AQO_QO_SERVICE_H_

// Batch optimization service: optimize many instances at once, fanning
// across a ThreadPool and consulting a PlanCache first.
//
// Determinism contract (the batch analogue of SweepRunner's):
//
//   * Every instance is optimized on its *canonical* form
//     (qo/fingerprint.h) with an Rng seeded Rng(MixSeed(options.seed,
//     fingerprint.lo)). Relabeled duplicates therefore share both the
//     exact problem bytes and the exact RNG stream, so they produce
//     bit-identical canonical results by construction — the cache merely
//     memoizes what recomputation would reproduce anyway. That is why
//     results are bit-identical (costs, sequences, evaluation counts)
//     whether the cache is on, off, cold, warm, or shared across
//     threads, and for every thread count (tests/service_differential_test.cc).
//   * Each computed instance runs under its own obs::RunLogBuffer; the
//     buffers are replayed in instance order afterwards, so the run-log
//     record stream is also independent of scheduling.
//   * Cache probes and inserts happen serially in instance order, so the
//     qo.plan_cache.* counter totals of a batch are deterministic too.
//
// Sequences returned to the caller are mapped back from canonical labels
// through the instance's own relabeling permutation; both cost models
// evaluate sequences in strict position order, so the mapped-back
// sequence costs bitwise the same as the canonical one.

#include <cstdint>
#include <string>
#include <vector>

#include "qo/fingerprint.h"
#include "qo/plan_cache.h"
#include "qo/registry.h"

namespace aqo {

class ThreadPool;

struct BatchOptions {
  // Registry name of the optimizer to run (qo/registry.h).
  std::string optimizer = "dp";

  // Knobs for the selected optimizer (family-appropriate struct).
  OptimizerOptions qon;
  QohOptimizerOptions qoh;

  // Base seed: instance i's stream is Rng(MixSeed(seed, fingerprint.lo)).
  uint64_t seed = 0;

  // Fan computation across this pool when set (null or 1 thread =
  // serial). Never changes any result bit.
  ThreadPool* pool = nullptr;

  // Consult/populate this cache when set. Never changes any result bit.
  PlanCache* cache = nullptr;

  // Wall-clock deadline for the whole batch (<= 0 = none). When armed, a
  // batch-wide CancelToken is threaded into every computed item: items
  // past the deadline return best-so-far plans with status
  // kDeadlineExceeded, and such plans are never inserted into the cache
  // (they are not deterministic). Deterministic per-item budgets belong on
  // qon.budget / qoh.budget instead.
  double deadline_ms = 0.0;
};

// Per-item fault isolation: an item whose optimizer throws (or trips an
// injected fault, util/fault_injection.h) is retried exactly once with
// the same RNG stream; a second failure yields an infeasible result with
// result.status == PlanStatus::kFailed for that item only — sibling
// items, the cache, and counter totals are unaffected.
struct QonBatchItem {
  OptimizerResult result;  // in the caller's labels
  bool from_cache = false;
  Hash128 fingerprint;
};

struct QohBatchItem {
  QohOptimizerResult result;
  bool from_cache = false;
  Hash128 fingerprint;
};

std::vector<QonBatchItem> OptimizeQonBatch(
    const std::vector<QonInstance>& instances, const BatchOptions& options);

std::vector<QohBatchItem> OptimizeQohBatch(
    const std::vector<QohInstance>& instances, const BatchOptions& options);

// The full cache key: instance fingerprint + problem family + optimizer
// name + every knob the result depends on + the seed (deterministic
// optimizers fold a fixed sentinel instead, so their entries are shared
// across seeds). CHECK-fails on unknown optimizer names.
Hash128 QonPlanCacheKey(const Hash128& fingerprint, std::string_view optimizer,
                        const OptimizerOptions& options, uint64_t seed);
Hash128 QohPlanCacheKey(const Hash128& fingerprint, std::string_view optimizer,
                        const QohOptimizerOptions& options, uint64_t seed);

}  // namespace aqo

#endif  // AQO_QO_SERVICE_H_
