#include "qo/catalog.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace aqo {

namespace {

// Fraction of a histogram's mass falling inside [lo, hi] (equi-width over
// the column's [min, max]); columns without histograms assume uniformity.
double MassInRange(const ColumnStats& column, double lo, double hi) {
  if (hi <= lo) return 0.0;
  double span = column.max_value - column.min_value;
  if (span <= 0.0) {
    // Single-point domain: in or out.
    return (lo <= column.min_value && column.min_value <= hi) ? 1.0 : 0.0;
  }
  lo = std::max(lo, column.min_value);
  hi = std::min(hi, column.max_value);
  if (hi <= lo) return 0.0;
  if (column.histogram.empty()) return (hi - lo) / span;
  double mass = 0.0;
  double bucket_width = span / static_cast<double>(column.histogram.size());
  for (size_t b = 0; b < column.histogram.size(); ++b) {
    double b_lo = column.min_value + bucket_width * static_cast<double>(b);
    double b_hi = b_lo + bucket_width;
    double overlap = std::min(hi, b_hi) - std::max(lo, b_lo);
    if (overlap > 0.0) mass += column.histogram[b] * overlap / bucket_width;
  }
  return mass;
}

}  // namespace

void Catalog::AddTable(TableStats table) {
  AQO_CHECK(!table.name.empty());
  AQO_CHECK(table.rows >= 1);
  for (const TableStats& existing : tables_) {
    AQO_CHECK(existing.name != table.name)
        << "duplicate table " << table.name;
  }
  for (const ColumnStats& column : table.columns) {
    AQO_CHECK(column.ndv >= 1) << table.name << "." << column.name;
    AQO_CHECK(column.max_value >= column.min_value);
    if (!column.histogram.empty()) {
      double total = 0.0;
      for (double f : column.histogram) {
        AQO_CHECK(f >= 0.0);
        total += f;
      }
      AQO_CHECK(std::fabs(total - 1.0) < 1e-6)
          << "histogram of " << table.name << "." << column.name
          << " must sum to 1";
    }
  }
  tables_.push_back(std::move(table));
}

const TableStats& Catalog::table(int index) const {
  AQO_CHECK(0 <= index && index < NumTables());
  return tables_[static_cast<size_t>(index)];
}

int Catalog::TableIndex(const std::string& name) const {
  for (int i = 0; i < NumTables(); ++i) {
    if (tables_[static_cast<size_t>(i)].name == name) return i;
  }
  AQO_CHECK(false) << "unknown table " << name;
  return -1;
}

const ColumnStats& Catalog::Column(const std::string& table,
                                   const std::string& column) const {
  const TableStats& t = tables_[static_cast<size_t>(TableIndex(table))];
  for (const ColumnStats& c : t.columns) {
    if (c.name == column) return c;
  }
  AQO_CHECK(false) << "unknown column " << table << "." << column;
  return t.columns.front();
}

double EstimateJoinSelectivity(const Catalog& catalog, const EquiJoin& join) {
  const ColumnStats& a = catalog.Column(join.left_table, join.left_column);
  const ColumnStats& b = catalog.Column(join.right_table, join.right_column);

  // Overlapping value range.
  double lo = std::max(a.min_value, b.min_value);
  double hi = std::min(a.max_value, b.max_value);
  double mass_a = MassInRange(a, lo, hi);
  double mass_b = MassInRange(b, lo, hi);
  if (mass_a <= 0.0 || mass_b <= 0.0) return kMinDerivedSelectivity;

  // Distinct values present in the overlap, assuming ndv spreads with the
  // range (floor of 1).
  auto ndv_in = [lo, hi](const ColumnStats& c) {
    double span = c.max_value - c.min_value;
    double fraction = span > 0.0 ? (hi - lo) / span : 1.0;
    return std::max(1.0, static_cast<double>(c.ndv) * fraction);
  };
  double sel = mass_a * mass_b / std::max(ndv_in(a), ndv_in(b));
  return std::clamp(sel, kMinDerivedSelectivity, 1.0);
}

QonInstance BuildQonInstance(const Catalog& catalog,
                             const std::vector<EquiJoin>& joins) {
  int n = catalog.NumTables();
  AQO_CHECK(n >= 1);
  Graph g(n);
  // Combined selectivity per table pair (independence across predicates).
  std::vector<double> combined(static_cast<size_t>(n) * static_cast<size_t>(n),
                               1.0);
  for (const EquiJoin& join : joins) {
    int a = catalog.TableIndex(join.left_table);
    int b = catalog.TableIndex(join.right_table);
    AQO_CHECK(a != b) << "self-joins are not modelled";
    g.AddEdge(a, b);
    double sel = EstimateJoinSelectivity(catalog, join);
    combined[static_cast<size_t>(a) * static_cast<size_t>(n) +
             static_cast<size_t>(b)] *= sel;
    combined[static_cast<size_t>(b) * static_cast<size_t>(n) +
             static_cast<size_t>(a)] *= sel;
  }

  std::vector<LogDouble> sizes;
  sizes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    sizes.push_back(
        LogDouble::FromLinear(static_cast<double>(catalog.table(i).rows)));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    double sel = std::clamp(
        combined[static_cast<size_t>(u) * static_cast<size_t>(n) +
                 static_cast<size_t>(v)],
        kMinDerivedSelectivity, 1.0);
    inst.SetSelectivity(u, v, LogDouble::FromLinear(sel));
  }
  inst.Validate();
  return inst;
}

Catalog RandomStarSchema(int dimensions, int64_t fact_rows, Rng* rng,
                         std::vector<EquiJoin>* joins) {
  AQO_CHECK(dimensions >= 1);
  AQO_CHECK(fact_rows >= 1);
  AQO_CHECK(joins != nullptr);
  joins->clear();

  Catalog catalog;
  TableStats fact;
  fact.name = "fact";
  fact.rows = fact_rows;
  for (int d = 0; d < dimensions; ++d) {
    int64_t dim_rows = rng->UniformInt(
        10, std::max<int64_t>(10, fact_rows / 100));
    ColumnStats fk;
    fk.name = "dim" + std::to_string(d) + "_key";
    fk.ndv = std::min(dim_rows, fact_rows);
    fk.min_value = 0.0;
    fk.max_value = static_cast<double>(dim_rows);
    // A mildly skewed 8-bucket histogram.
    std::vector<double> hist(8);
    double total = 0.0;
    for (double& h : hist) {
      h = rng->UniformReal(0.5, 2.0);
      total += h;
    }
    for (double& h : hist) h /= total;
    fk.histogram = std::move(hist);
    fact.columns.push_back(std::move(fk));

    TableStats dim;
    dim.name = "dim" + std::to_string(d);
    dim.rows = dim_rows;
    ColumnStats pk;
    pk.name = "key";
    pk.ndv = dim_rows;  // primary key
    pk.min_value = 0.0;
    pk.max_value = static_cast<double>(dim_rows);
    dim.columns.push_back(std::move(pk));
    catalog.AddTable(std::move(dim));

    joins->push_back(EquiJoin{"fact", "dim" + std::to_string(d) + "_key",
                              "dim" + std::to_string(d), "key"});
  }
  catalog.AddTable(std::move(fact));
  return catalog;
}

}  // namespace aqo
