#ifndef AQO_QO_FINGERPRINT_H_
#define AQO_QO_FINGERPRINT_H_

// Canonical relabeling and content fingerprints for QO_N / QO_H instances.
//
// Two instances that differ only by a permutation of relation labels are
// the *same* optimization problem: the cost models consult sizes,
// selectivities and access paths only through a relation's identity,
// never its numeric id (tests/property_test.cc proves this as a
// metamorphic invariant). The reductions of Sections 4-5 emit exactly
// such families — structurally identical instances under different
// labelings — so a plan cache keyed on raw labels would miss almost
// everything. Canonicalization fixes that:
//
//   * Relations are relabeled into a canonical order computed by
//     iterative key refinement (1-WL style): start each relation's key
//     from its cardinality, then repeatedly fold in the sorted multiset
//     of (neighbor key, selectivity, access costs) tuples until the
//     partition stabilizes. The refined keys are label-invariant by
//     construction, so relabeled duplicates sort into byte-identical
//     canonical instances. (Keys that remain tied are broken by original
//     index; for truly automorphic relations any choice yields the same
//     canonical bytes, and where refinement fails to separate
//     non-automorphic relations — possible on highly regular instances —
//     the result is only a missed cache hit, never a wrong one.)
//   * The fingerprint is a 128-bit hash of the *entire* canonical
//     instance (sizes, edges, selectivities, access costs, and for QO_H
//     the memory budget and eta), so equal fingerprints imply equal
//     canonical instances up to hash collision (~2^-64 per pair).
//   * The permutation is retained both ways, so cached sequences — which
//     live in canonical labels — map back to the caller's labels with
//     MapSequenceFromCanonical. Both cost models evaluate a sequence in
//     strict position order, so the mapped-back sequence costs bitwise
//     the same in the original instance as the canonical sequence does
//     in the canonical one (the property test asserts exact Log2 bits).

#include <vector>

#include "qo/qoh.h"
#include "qo/qon.h"
#include "util/hash.h"

namespace aqo {

// Relabels relation i as perm[i], copying sizes, selectivities and
// (for QO_N) explicit access-path costs. perm must be a permutation of
// 0..n-1.
QonInstance PermuteQonInstance(const QonInstance& inst,
                               const std::vector<int>& perm);
QohInstance PermuteQohInstance(const QohInstance& inst,
                               const std::vector<int>& perm);

struct CanonicalQon {
  QonInstance instance;             // canonically relabeled
  std::vector<int> to_canonical;    // to_canonical[original] = canonical
  std::vector<int> from_canonical;  // from_canonical[canonical] = original
  Hash128 fingerprint;              // hash of the full canonical instance
};

struct CanonicalQoh {
  QohInstance instance;
  std::vector<int> to_canonical;
  std::vector<int> from_canonical;
  Hash128 fingerprint;
};

CanonicalQon CanonicalizeQon(const QonInstance& inst);
CanonicalQoh CanonicalizeQoh(const QohInstance& inst);

// Maps a sequence over canonical labels back to the original labels:
// out[k] = from_canonical[seq[k]].
JoinSequence MapSequenceFromCanonical(const JoinSequence& seq,
                                      const std::vector<int>& from_canonical);

}  // namespace aqo

#endif  // AQO_QO_FINGERPRINT_H_
