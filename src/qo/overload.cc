#include "qo/overload.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.h"

namespace aqo {

namespace {

// Estimates saturate here: past 2^50 evaluations every request is "too
// expensive to matter how much", and the cap keeps bucket arithmetic far
// from double rounding trouble.
constexpr double kCostCap = 1125899906842624.0;  // 2^50

double Cap(double v) { return std::min(v, kCostCap); }

// n! via lgamma, saturating. Exact enough for an admission estimate.
double Factorial(int n) {
  if (n <= 1) return 1.0;
  double log_fact = std::lgamma(static_cast<double>(n) + 1.0);
  if (log_fact > 50.0 * 0.6931471805599453) return kCostCap;  // > 2^50
  return Cap(std::exp(log_fact));
}

double PowN(double base, int exp) {
  double v = std::pow(base, static_cast<double>(exp));
  return Cap(v);
}

double ApplyBudget(double estimate, const Budget& budget) {
  if (budget.max_evaluations > 0) {
    estimate =
        std::min(estimate, static_cast<double>(budget.max_evaluations));
  }
  return Cap(std::max(estimate, 1.0));
}

}  // namespace

const char* OverloadTierName(OverloadTier tier) {
  switch (tier) {
    case OverloadTier::kAdmit:
      return "admit";
    case OverloadTier::kDegrade:
      return "degrade";
    case OverloadTier::kShed:
      return "shed";
  }
  return "unknown";
}

double EstimateQonCostUnits(std::string_view optimizer,
                            const OptimizerOptions& options, int n) {
  double nd = static_cast<double>(std::max(n, 1));
  double estimate;
  if (optimizer == "greedy" || optimizer == "kbz") {
    estimate = nd * nd;
  } else if (optimizer == "random") {
    estimate = static_cast<double>(std::max(options.samples, 1)) * nd;
  } else if (optimizer == "ii") {
    estimate = static_cast<double>(std::max(options.restarts, 1)) * nd * nd *
               nd;
  } else if (optimizer == "sa") {
    estimate = static_cast<double>(std::max(options.sa.restarts, 1)) *
               static_cast<double>(std::max(options.sa.iterations, 1));
  } else if (optimizer == "genetic") {
    estimate = static_cast<double>(std::max(options.ga.population, 1)) *
               static_cast<double>(std::max(options.ga.generations, 1));
  } else if (optimizer == "dp" || optimizer == "cout" ||
             optimizer == "adaptive") {
    // adaptive may run anything up to the DP; budget for the worst.
    estimate = nd * PowN(2.0, n);
  } else if (optimizer == "bnb") {
    estimate = options.bnb_node_limit > 0
                   ? static_cast<double>(options.bnb_node_limit)
                   : PowN(2.0, n);
  } else {
    // Unknown names (including "exhaustive") estimate like the most
    // expensive entry — a typo can only over-throttle, never sneak work
    // past the governor.
    estimate = Factorial(n);
  }
  return ApplyBudget(estimate, options.budget);
}

double EstimateQohCostUnits(std::string_view optimizer,
                            const QohOptimizerOptions& options, int n) {
  double nd = static_cast<double>(std::max(n, 1));
  double estimate;
  if (optimizer == "greedy") {
    estimate = nd * nd;
  } else if (optimizer == "random") {
    estimate = static_cast<double>(std::max(options.samples, 1)) * nd;
  } else if (optimizer == "ii") {
    estimate = static_cast<double>(std::max(options.restarts, 1)) * nd * nd *
               nd;
  } else if (optimizer == "sa") {
    estimate = static_cast<double>(std::max(options.sa.restarts, 1)) *
               static_cast<double>(std::max(options.sa.iterations, 1));
  } else {
    // exhaustive, adaptive, unknown.
    estimate = Factorial(n);
  }
  return ApplyBudget(estimate, options.budget);
}

std::string DegradeQon(std::string_view optimizer, OptimizerOptions* options) {
  // Exact/exponential entries fall back to the declared cheap heuristic;
  // stochastic entries keep their identity with clamped effort.
  if (optimizer == "exhaustive" || optimizer == "dp" || optimizer == "bnb" ||
      optimizer == "cout" || optimizer == "adaptive") {
    return "greedy";
  }
  if (optimizer == "random") {
    options->samples = std::min(options->samples, 64);
  } else if (optimizer == "ii") {
    options->restarts = std::min(options->restarts, 2);
    options->eval_tier = EvalTier::kFast;
  } else if (optimizer == "sa") {
    options->sa.restarts = std::min(options->sa.restarts, 1);
    options->sa.iterations = std::min(options->sa.iterations, 2000);
    options->eval_tier = EvalTier::kFast;
  } else if (optimizer == "genetic") {
    options->ga.population = std::min(options->ga.population, 16);
    options->ga.generations = std::min(options->ga.generations, 16);
    options->eval_tier = EvalTier::kFast;
  }
  // greedy / kbz are already the floor. The fast tier never changes the
  // plan — it only cuts exact-evaluation work — so degraded local-search
  // responses stay bit-identical to undegraded ones with equal knobs.
  return std::string(optimizer);
}

std::string DegradeQoh(std::string_view optimizer,
                       QohOptimizerOptions* options) {
  if (optimizer == "exhaustive" || optimizer == "adaptive") {
    return "greedy";
  }
  if (optimizer == "random") {
    options->samples = std::min(options->samples, 64);
  } else if (optimizer == "ii") {
    options->restarts = std::min(options->restarts, 2);
    options->eval_tier = EvalTier::kFast;
  } else if (optimizer == "sa") {
    options->sa.restarts = std::min(options->sa.restarts, 1);
    options->sa.iterations = std::min(options->sa.iterations, 1000);
    options->eval_tier = EvalTier::kFast;
  }
  return std::string(optimizer);
}

LoadGovernor::LoadGovernor(const OverloadOptions& options)
    : options_(options) {
  if (options_.drain_cost <= 0.0 && options_.cost_capacity > 0.0) {
    options_.drain_cost = options_.cost_capacity / 16.0;
  }
  if (options_.drain_requests <= 0.0) options_.drain_requests = 1.0;
  options_.degrade_threshold =
      std::clamp(options_.degrade_threshold, 0.0, 1.0);
}

void LoadGovernor::Drain() {
  pending_requests_ =
      std::max(0.0, pending_requests_ - options_.drain_requests);
  pending_cost_ = std::max(0.0, pending_cost_ - options_.drain_cost);
}

uint64_t LoadGovernor::PressurePermille() const {
  double fill = 0.0;
  if (options_.queue_capacity > 0.0) {
    fill = std::max(fill, pending_requests_ / options_.queue_capacity);
  }
  if (options_.cost_capacity > 0.0) {
    fill = std::max(fill, pending_cost_ / options_.cost_capacity);
  }
  return static_cast<uint64_t>(std::min(fill, 1.0) * 1000.0);
}

void LoadGovernor::OnControlFrame() {
  if (!armed()) return;
  Drain();
}

OverloadDecision LoadGovernor::OnArrival(double cost_units,
                                         double degraded_cost_units) {
  static obs::Counter& admit_counter =
      obs::Registry::Get().GetCounter("qo.overload.admits");
  static obs::Counter& degrade_counter =
      obs::Registry::Get().GetCounter("qo.overload.degrades");
  static obs::Counter& shed_counter =
      obs::Registry::Get().GetCounter("qo.overload.sheds");
  static obs::Gauge& pressure_gauge =
      obs::Registry::Get().GetGauge("qo.overload.pressure_permille");

  OverloadDecision decision;
  decision.cost_units = cost_units;
  if (!armed()) {
    ++admits_;
    return decision;
  }
  Drain();
  decision.pressure_permille = PressurePermille();

  auto fits = [&](double c) {
    if (options_.queue_capacity > 0.0 &&
        pending_requests_ + 1.0 > options_.queue_capacity) {
      return false;
    }
    if (options_.cost_capacity > 0.0 &&
        pending_cost_ + c > options_.cost_capacity) {
      return false;
    }
    return true;
  };
  bool over_degrade =
      decision.pressure_permille >=
      static_cast<uint64_t>(options_.degrade_threshold * 1000.0);

  if (fits(cost_units) && !over_degrade) {
    decision.tier = OverloadTier::kAdmit;
    pending_requests_ += 1.0;
    pending_cost_ += cost_units;
    ++admits_;
    admit_counter.Increment();
  } else if (fits(degraded_cost_units)) {
    decision.tier = OverloadTier::kDegrade;
    decision.cost_units = degraded_cost_units;
    pending_requests_ += 1.0;
    pending_cost_ += degraded_cost_units;
    ++degrades_;
    degrade_counter.Increment();
    std::ostringstream why;
    why << "pressure " << decision.pressure_permille
        << " permille >= degrade threshold "
        << static_cast<uint64_t>(options_.degrade_threshold * 1000.0);
    decision.reason = why.str();
  } else {
    decision.tier = OverloadTier::kShed;
    ++sheds_;
    shed_counter.Increment();
    std::ostringstream why;
    why << "pending work over capacity (pressure "
        << decision.pressure_permille << " permille, request cost "
        << degraded_cost_units << " units)";
    decision.reason = why.str();
  }
  pressure_gauge.Set(static_cast<double>(PressurePermille()));
  return decision;
}

}  // namespace aqo
