#ifndef AQO_QO_WORKLOADS_H_
#define AQO_QO_WORKLOADS_H_

// Random workload generators: the "benign" instances that optimizers face
// in practice, as opposed to the adversarial gap instances from
// reductions/. Sizes are log-uniform, selectivities uniform in a
// configurable range; shapes cover the classical query-graph taxonomy
// (chain, star, tree, cycle, clique, random).

#include "graph/graph.h"
#include "qo/qoh.h"
#include "qo/qon.h"
#include "util/random.h"

namespace aqo {

enum class WorkloadShape {
  kChain,
  kStar,
  kTree,
  kCycle,
  kClique,
  kRandom,  // G(n, p)
};

struct WorkloadOptions {
  WorkloadShape shape = WorkloadShape::kRandom;
  double edge_probability = 0.5;  // kRandom only
  double min_size = 10.0;
  double max_size = 1e6;
  double min_selectivity = 1e-5;
  double max_selectivity = 1.0;
};

// A QO_N instance with the requested shape; default access costs.
QonInstance RandomQonWorkload(int n, Rng* rng,
                              const WorkloadOptions& options = {});

// A QO_H instance; `memory_fraction` scales the budget relative to the sum
// of all relation sizes (1.0 = everything fits).
QohInstance RandomQohWorkload(int n, Rng* rng, double memory_fraction = 0.3,
                              const WorkloadOptions& options = {});

// The shape's query graph alone.
Graph WorkloadGraph(int n, Rng* rng, const WorkloadOptions& options = {});

}  // namespace aqo

#endif  // AQO_QO_WORKLOADS_H_
