#ifndef AQO_QO_GENETIC_H_
#define AQO_QO_GENETIC_H_

// Genetic join-order optimizer: the third classical metaheuristic family
// (after iterative improvement and simulated annealing) used for
// large-join-query optimization. Permutation-encoded individuals, order
// crossover (OX1), swap mutation, tournament selection, elitism.

#include "qo/optimizers.h"
#include "qo/qon.h"
#include "util/random.h"

namespace aqo {

// DEPRECATED (one PR of grace): the GA knobs now live on
// OptimizerOptions.ga (see optimizers.h); this struct only feeds the
// legacy overload below.
struct GeneticOptions {
  int population = 64;
  int generations = 120;
  double crossover_rate = 0.9;
  double mutation_rate = 0.3;
  int tournament = 3;
  int elites = 2;
  OptimizerOptions base;
};

OptimizerResult GeneticOptimizer(const QonInstance& inst, Rng* rng,
                                 const GeneticOptions& options = {});

// Registry-uniform entry point: knobs read from options.ga. (No default
// argument — the two-argument call keeps resolving to the legacy overload
// until that one is removed.)
OptimizerResult GeneticOptimizer(const QonInstance& inst, Rng* rng,
                                 const OptimizerOptions& options);

}  // namespace aqo

#endif  // AQO_QO_GENETIC_H_
