#include "qo/bnb.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "qo/cost_eval.h"
#include "util/check.h"

namespace aqo {

namespace {

class BnbSearch {
 public:
  BnbSearch(const QonInstance& inst, uint64_t node_limit,
            const OptimizerOptions& options)
      : inst_(inst),
        node_limit_(node_limit),
        options_(options),
        evaluator_(inst),
        guard_(options.budget, options.cancel) {}

  BnbResult Run() {
    int n = inst_.NumRelations();
    AQO_CHECK(n >= 2);
    AQO_CHECK(n <= 62) << "mask-based search limited to 62 relations";

    // Greedy incumbent. Runs unbudgeted: it is the polynomial seed that
    // makes a budget-capped search anytime (the guard meters the
    // exponential part, nodes_, below).
    OptimizerOptions incumbent_options = options_;
    incumbent_options.budget = {};
    incumbent_options.cancel = nullptr;
    OptimizerResult greedy = GreedyQonOptimizer(inst_, incumbent_options);
    if (greedy.feasible) {
      best_ = greedy;
    }

    std::vector<int> prefix;
    for (int first = 0; first < n; ++first) {
      prefix = {first};
      Explore(uint64_t{1} << first, inst_.size(first), LogDouble::Zero(),
              &prefix);
      if (aborted_) break;
    }

    BnbResult out;
    out.result = best_;
    out.result.evaluations = nodes_;
    out.result.status = guard_.status();
    out.nodes = nodes_;
    out.proven_optimal = best_.feasible && !aborted_;
    return out;
  }

 private:
  void Explore(uint64_t mask, LogDouble intermediate, LogDouble cost,
               std::vector<int>* prefix) {
    static obs::Counter& nodes_counter =
        obs::Registry::Get().GetCounter("qon.bnb.nodes");
    static obs::Counter& pruned_bound =
        obs::Registry::Get().GetCounter("qon.bnb.pruned_bound");
    static obs::Counter& pruned_dominated =
        obs::Registry::Get().GetCounter("qon.bnb.pruned_dominated");
    static obs::Counter& aborts =
        obs::Registry::Get().GetCounter("qon.bnb.aborts");
    if (aborted_) return;
    ++nodes_;
    nodes_counter.Increment();
    if (node_limit_ > 0 && nodes_ > node_limit_) {
      aborted_ = true;
      aborts.Increment();
      return;
    }
    // Anytime budget/deadline (distinct from the legacy node_limit knob:
    // that one stays status-kComplete for bit-compatibility; the guard
    // reports its trip through result.status).
    if (guard_.ShouldStop(nodes_)) {
      aborted_ = true;
      return;
    }
    // Cost prune.
    if (best_.feasible && cost >= best_.cost) {
      pruned_bound.Increment();
      return;
    }
    // Dominance prune on the relation set.
    auto [it, inserted] = seen_.try_emplace(mask, cost);
    if (!inserted) {
      if (it->second <= cost) {
        pruned_dominated.Increment();
        return;
      }
      it->second = cost;
    }

    int n = inst_.NumRelations();
    if (static_cast<int>(prefix->size()) == n) {
      if (!best_.feasible || cost < best_.cost) {
        best_.feasible = true;
        best_.cost = cost;
        best_.sequence = *prefix;
      }
      return;
    }

    // Candidate extensions, cheapest next join first.
    struct Extension {
      int relation;
      LogDouble join_cost;
      LogDouble next_intermediate;
    };
    std::vector<Extension> extensions;
    for (int j = 0; j < n; ++j) {
      if (mask & (uint64_t{1} << j)) continue;
      if (options_.forbid_cartesian && !evaluator_.ConnectsTo(*prefix, j)) {
        continue;
      }
      Extension e;
      e.relation = j;
      // Same folds as before, over the evaluator's dense rows: seed with
      // t_j, then MinOf over the prefix in order (bit-identical).
      e.join_cost = intermediate *
                    evaluator_.MinAccessSeeded(inst_.size(j), *prefix, j);
      e.next_intermediate = evaluator_.ExtendSize(intermediate, *prefix, j);
      extensions.push_back(e);
    }
    std::sort(extensions.begin(), extensions.end(),
              [](const Extension& a, const Extension& b) {
                // Equal join costs explore the lowest relation id first,
                // so the anytime incumbent under a node budget is a pure
                // function of the instance (std::sort is unstable).
                if (a.join_cost != b.join_cost) {
                  return a.join_cost < b.join_cost;
                }
                return a.relation < b.relation;
              });
    for (const Extension& e : extensions) {
      prefix->push_back(e.relation);
      Explore(mask | (uint64_t{1} << e.relation), e.next_intermediate,
              cost + e.join_cost, prefix);
      prefix->pop_back();
      if (aborted_) return;
    }
  }

  const QonInstance& inst_;
  uint64_t node_limit_;
  OptimizerOptions options_;
  QonCostEvaluator evaluator_;
  RunGuard guard_;
  OptimizerResult best_;
  std::unordered_map<uint64_t, LogDouble> seen_;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

BnbResult BranchAndBoundQonOptimizer(const QonInstance& inst,
                                     const OptimizerOptions& options) {
  return BranchAndBoundQonOptimizer(inst, options.bnb_node_limit, options);
}

BnbResult BranchAndBoundQonOptimizer(const QonInstance& inst,
                                     uint64_t node_limit,
                                     const OptimizerOptions& options) {
  BnbSearch search(inst, node_limit, options);
  return search.Run();
}

}  // namespace aqo
