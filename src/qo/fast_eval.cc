#include "qo/fast_eval.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstring>
#include <limits>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/log_double.h"

#if defined(__AVX2__) && !defined(AQO_FAST_EVAL_FORCE_SCALAR)
#include <immintrin.h>
#define AQO_FAST_EVAL_AVX2 1
#endif

namespace aqo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
// Same constant LogDouble::operator+ divides by, so Lse2's rounding
// profile matches the exact fold's operation for operation.
constexpr double kLn2 = 0.6931471805599453;

obs::Counter& NeighborhoodsCounter() {
  static obs::Counter& c =
      obs::Registry::Get().GetCounter("qo.fast_eval.neighborhoods");
  return c;
}

obs::Counter& CandidatesCounter() {
  static obs::Counter& c =
      obs::Registry::Get().GetCounter("qo.fast_eval.candidates");
  return c;
}

}  // namespace

namespace fast_eval_internal {

const char* SimdPath() {
#ifdef AQO_FAST_EVAL_AVX2
  return "avx2";
#else
  return "scalar";
#endif
}

// The scalar bodies are the reference semantics: lanewise IEEE add and
// `a < b ? a : b` min — exactly what VADDPD/VMINPD compute per lane, so
// the AVX2 variants below are bit-identical, not merely close.

void RowAddScalar(double* AQO_RESTRICT dst, const double* AQO_RESTRICT a,
                  const double* AQO_RESTRICT b, int n) {
  for (int i = 0; i < n; ++i) dst[i] = a[i] + b[i];
}

void RowMinScalar(double* AQO_RESTRICT dst, const double* AQO_RESTRICT a,
                  const double* AQO_RESTRICT b, int n) {
  for (int i = 0; i < n; ++i) dst[i] = a[i] < b[i] ? a[i] : b[i];
}

void RowAddInPlaceScalar(double* AQO_RESTRICT dst,
                         const double* AQO_RESTRICT src, int n) {
  for (int i = 0; i < n; ++i) dst[i] += src[i];
}

void RowMinInPlaceScalar(double* AQO_RESTRICT dst,
                         const double* AQO_RESTRICT src, int n) {
  for (int i = 0; i < n; ++i) dst[i] = src[i] < dst[i] ? src[i] : dst[i];
}

#ifdef AQO_FAST_EVAL_AVX2

void RowAdd(double* AQO_RESTRICT dst, const double* AQO_RESTRICT a,
            const double* AQO_RESTRICT b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

void RowMin(double* AQO_RESTRICT dst, const double* AQO_RESTRICT a,
            const double* AQO_RESTRICT b, int n) {
  int i = 0;
  // VMINPD(x, y) returns y (the second operand) when x == y — including
  // ±0.0 ties — and our operands are never NaN, so min_pd(a, b) matches
  // the scalar `a < b ? a : b` bit for bit.
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_min_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] < b[i] ? a[i] : b[i];
}

void RowAddInPlace(double* AQO_RESTRICT dst, const double* AQO_RESTRICT src,
                   int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void RowMinInPlace(double* AQO_RESTRICT dst, const double* AQO_RESTRICT src,
                   int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_min_pd(_mm256_loadu_pd(src + i),
                                            _mm256_loadu_pd(dst + i)));
  }
  for (; i < n; ++i) dst[i] = src[i] < dst[i] ? src[i] : dst[i];
}

#else  // !AQO_FAST_EVAL_AVX2

void RowAdd(double* AQO_RESTRICT dst, const double* AQO_RESTRICT a,
            const double* AQO_RESTRICT b, int n) {
  RowAddScalar(dst, a, b, n);
}

void RowMin(double* AQO_RESTRICT dst, const double* AQO_RESTRICT a,
            const double* AQO_RESTRICT b, int n) {
  RowMinScalar(dst, a, b, n);
}

void RowAddInPlace(double* AQO_RESTRICT dst, const double* AQO_RESTRICT src,
                   int n) {
  RowAddInPlaceScalar(dst, src, n);
}

void RowMinInPlace(double* AQO_RESTRICT dst, const double* AQO_RESTRICT src,
                   int n) {
  RowMinInPlaceScalar(dst, src, n);
}

#endif  // AQO_FAST_EVAL_AVX2

double Lse2(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  double hi = a, lo = b;
  if (hi < lo) std::swap(hi, lo);
  return hi + std::log1p(std::exp2(lo - hi)) / kLn2;
}

}  // namespace fast_eval_internal

namespace {

using fast_eval_internal::Lse2;
using fast_eval_internal::RowAdd;
using fast_eval_internal::RowAddInPlace;
using fast_eval_internal::RowMin;
using fast_eval_internal::RowMinInPlace;

// The fused per-candidate arithmetic of PriceAdjacentAll: pure adds and
// mins over contiguous gathered operands, no branches, no transcendental
// calls — the part worth vectorizing. The log-sum-exp reduction stays
// scalar (see PriceAdjacentAll).
void BatchAdjacentScalar(double* AQO_RESTRICT h1, double* AQO_RESTRICT h2,
                         const double* AQO_RESTRICT lp,
                         const double* AQO_RESTRICT mpb,
                         const double* AQO_RESTRICT mpa,
                         const double* AQO_RESTRICT psb,
                         const double* AQO_RESTRICT ltb,
                         const double* AQO_RESTRICT lwab, int m) {
  for (int i = 0; i < m; ++i) {
    h1[i] = lp[i] + mpb[i];
    double lp1 = lp[i] + ltb[i] + psb[i];
    double mn = mpa[i] < lwab[i] ? mpa[i] : lwab[i];
    h2[i] = lp1 + mn;
  }
}

#ifdef AQO_FAST_EVAL_AVX2
void BatchAdjacent(double* AQO_RESTRICT h1, double* AQO_RESTRICT h2,
                   const double* AQO_RESTRICT lp,
                   const double* AQO_RESTRICT mpb,
                   const double* AQO_RESTRICT mpa,
                   const double* AQO_RESTRICT psb,
                   const double* AQO_RESTRICT ltb,
                   const double* AQO_RESTRICT lwab, int m) {
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    __m256d vlp = _mm256_loadu_pd(lp + i);
    _mm256_storeu_pd(h1 + i, _mm256_add_pd(vlp, _mm256_loadu_pd(mpb + i)));
    __m256d lp1 = _mm256_add_pd(_mm256_add_pd(vlp, _mm256_loadu_pd(ltb + i)),
                                _mm256_loadu_pd(psb + i));
    __m256d mn = _mm256_min_pd(_mm256_loadu_pd(mpa + i),
                               _mm256_loadu_pd(lwab + i));
    _mm256_storeu_pd(h2 + i, _mm256_add_pd(lp1, mn));
  }
  if (i < m) {
    BatchAdjacentScalar(h1 + i, h2 + i, lp + i, mpb + i, mpa + i, psb + i,
                        ltb + i, lwab + i, m - i);
  }
}
#else
void BatchAdjacent(double* AQO_RESTRICT h1, double* AQO_RESTRICT h2,
                   const double* AQO_RESTRICT lp,
                   const double* AQO_RESTRICT mpb,
                   const double* AQO_RESTRICT mpa,
                   const double* AQO_RESTRICT psb,
                   const double* AQO_RESTRICT ltb,
                   const double* AQO_RESTRICT lwab, int m) {
  BatchAdjacentScalar(h1, h2, lp, mpb, mpa, psb, ltb, lwab, m);
}
#endif

}  // namespace

// --- QO_N ---------------------------------------------------------------

QonNeighborhoodEvaluator::QonNeighborhoodEvaluator(const QonInstance& inst)
    : n_(inst.NumRelations()) {
  size_t n = static_cast<size_t>(n_);
  lt_.resize(n);
  lw_.resize(n * n);
  lwt_.resize(n * n);
  mselt_.resize(n * n);
  double max_lt = 0.0, max_ms = 0.0, max_lw = 0.0;
  for (int t = 0; t < n_; ++t) {
    size_t st = static_cast<size_t>(t);
    lt_[st] = inst.size(t).Log2();
    max_lt = std::max(max_lt, std::fabs(lt_[st]));
    double* AQO_RESTRICT wrow = lw_.data() + st * n;
    for (int k = 0; k < n_; ++k) {
      size_t sk = static_cast<size_t>(k);
      wrow[sk] = k == t ? kInf : inst.AccessCost(k, t).Log2();
      if (k != t) max_lw = std::max(max_lw, std::fabs(wrow[sk]));
      // mselt_ row u holds, for every target t, relation u's contribution
      // to the prefix-size fold when u joins the prefix: log2 sel(u, t)
      // when the join predicate exists, an exact +0.0 otherwise. Adding
      // the row is then branch-free; the no-edge lanes are additive
      // no-ops (-0.0 never occurs: log2 of a finite positive value is
      // never -0.0-producing here, and cancellation yields +0.0).
      double ms = inst.graph().HasEdge(t, k) ? inst.selectivity(k, t).Log2()
                                             : 0.0;
      mselt_[sk * n + st] = ms;
      max_ms = std::max(max_ms, std::fabs(ms));
    }
  }
  for (int t = 0; t < n_; ++t) {
    for (int k = 0; k < n_; ++k) {
      lwt_[static_cast<size_t>(k) * n + static_cast<size_t>(t)] =
          lw_[static_cast<size_t>(t) * n + static_cast<size_t>(k)];
    }
  }
  // Certified bound: the fast and naive folds each perform O(n^2)
  // floating-point operations on log2-domain values whose magnitude is
  // bounded by A (prefix exponents accumulate at most n sizes and n^2
  // masked selectivities; per-join terms add one access cost). Every
  // operation perturbs the running value by at most a few ulps of A, the
  // log-sum-exp steps are Lipschitz-1 in each operand, and re-association
  // is exact in real arithmetic — so the two results differ by at most
  // C * n^2 * u * A for a small C. 64 leaves an order-of-magnitude
  // cushion; tests/property_test.cc validates across 1000 seeds.
  double nn = static_cast<double>(n_);
  double a_bound = 1.0 + nn * max_lt + nn * nn * max_ms + max_lw;
  eps_log2_ = 64.0 * nn * nn * DBL_EPSILON * a_bound;
  seq_.resize(n);
  lp_.resize(n + 1);
  mp_.resize(n * n);
  ps_.resize(n * n);
  h_.resize(std::max<size_t>(n, 1));
  fwd_.resize(std::max<size_t>(n, 1));
  bwd_.resize(n + 1);
  size_t m = n > 0 ? n - 1 : 0;
  g_mpb_.resize(m);
  g_mpa_.resize(m);
  g_psb_.resize(m);
  g_ltb_.resize(m);
  g_lwab_.resize(m);
  b_h1_.resize(m);
  b_h2_.resize(m);
  out_.resize(m);
  cur_min_.resize(n);
  cur_ps_.resize(n);
}

void QonNeighborhoodEvaluator::Load(const JoinSequence& seq) {
  AQO_CHECK(static_cast<int>(seq.size()) == n_);
  AQO_DCHECK(IsPermutation(seq, n_));
  NeighborhoodsCounter().Increment();
  std::copy(seq.begin(), seq.end(), seq_.begin());
  loaded_ = true;
  if (n_ == 0) return;
  size_t n = static_cast<size_t>(n_);
  std::fill(mp_.begin(), mp_.begin() + static_cast<long>(n), kInf);
  std::fill(ps_.begin(), ps_.begin() + static_cast<long>(n), 0.0);
  lp_[0] = 0.0;
  for (size_t p = 1; p < n; ++p) {
    size_t u = static_cast<size_t>(seq_[p - 1]);
    RowMin(mp_.data() + p * n, mp_.data() + (p - 1) * n, lwt_.data() + u * n,
           n_);
    RowAdd(ps_.data() + p * n, ps_.data() + (p - 1) * n,
           mselt_.data() + u * n, n_);
    lp_[p] = lp_[p - 1] + lt_[u] + ps_[(p - 1) * n + u];
  }
  {
    size_t u = static_cast<size_t>(seq_[n - 1]);
    lp_[n] = lp_[n - 1] + lt_[u] + ps_[(n - 1) * n + u];
  }
  // Per-join log2 terms and their log-sum-exp partial folds. fwd_/bwd_
  // let any single-position change reuse the untouched joins: their real
  // values are unchanged, and the fast tier is free to re-associate.
  fwd_[0] = kNegInf;
  bwd_[n] = kNegInf;
  for (size_t p = 1; p < n; ++p) {
    h_[p] = lp_[p] + mp_[p * n + static_cast<size_t>(seq_[p])];
    fwd_[p] = Lse2(fwd_[p - 1], h_[p]);
  }
  for (size_t p = n; p-- > 1;) {
    bwd_[p] = Lse2(h_[p], bwd_[p + 1]);
  }
  if (n >= 1) bwd_[0] = n >= 2 ? bwd_[1] : kNegInf;
}

double QonNeighborhoodEvaluator::BaseCostLog2() const {
  AQO_CHECK(loaded_);
  if (n_ < 2) return kNegInf;
  return fwd_[static_cast<size_t>(n_) - 1];
}

const double* QonNeighborhoodEvaluator::PriceAdjacentAll() {
  AQO_CHECK(loaded_);
  AQO_CHECK(n_ >= 2);
  size_t n = static_cast<size_t>(n_);
  int m = n_ - 1;
  CandidatesCounter().Add(static_cast<uint64_t>(m));
  // Gather the per-candidate operands into contiguous arrays. For the
  // swap (i, i+1) with x = seq[i], y = seq[i+1]:
  //   mpb = min access to y over the first i relations  (new join i)
  //   mpa = min access to x over the first i relations  (part of join i+1)
  //   psb = masked selectivity sum of y toward the first i relations
  //   ltb = log2 t_y, lwab = log2 AccessCost(y, x)
  for (int i = 0; i < m; ++i) {
    size_t si = static_cast<size_t>(i);
    size_t x = static_cast<size_t>(seq_[si]);
    size_t y = static_cast<size_t>(seq_[si + 1]);
    g_mpb_[si] = mp_[si * n + y];
    g_mpa_[si] = mp_[si * n + x];
    g_psb_[si] = ps_[si * n + y];
    g_ltb_[si] = lt_[y];
    g_lwab_[si] = lw_[x * n + y];
  }
  // Branch-free batched pass: h1 = new join-i term, h2 = new join-(i+1)
  // term with y promoted into x's access set. Pure add/min — vectorized.
  BatchAdjacent(b_h1_.data(), b_h2_.data(), lp_.data(), g_mpb_.data(),
                g_mpa_.data(), g_psb_.data(), g_ltb_.data(), g_lwab_.data(),
                m);
  // Scalar log-sum-exp reduction: joins < i fold to fwd_[i-1], joins
  // >= i+2 to bwd_[i+2]. The i = 0 swap has no join at position 0 —
  // b_h1_[0] is +inf (mp_ row 0) and must stay out of the reduction.
  out_[0] = Lse2(b_h2_[0], bwd_[2]);
  for (int i = 1; i < m; ++i) {
    size_t si = static_cast<size_t>(i);
    out_[si] = Lse2(Lse2(fwd_[si - 1], b_h1_[si]),
                    Lse2(b_h2_[si], bwd_[si + 2]));
  }
  return out_.data();
}

double QonNeighborhoodEvaluator::PriceSwap(int i, int j) {
  AQO_CHECK(loaded_);
  AQO_CHECK(0 <= i && i < j && j < n_);
  CandidatesCounter().Increment();
  size_t n = static_cast<size_t>(n_);
  size_t si = static_cast<size_t>(i), sj = static_cast<size_t>(j);
  size_t x = static_cast<size_t>(seq_[si]);
  size_t y = static_cast<size_t>(seq_[sj]);
  // Joins before position i are untouched; joins after position j keep
  // their real value (same prefix multiset, same access-cost set), so the
  // fast fold reuses fwd_/bwd_ and only walks the changed span.
  double acc = i >= 1 ? fwd_[si - 1] : kNegInf;
  if (i >= 1) acc = Lse2(acc, lp_[si] + mp_[si * n + y]);
  // Running min-access row over {seq[0..i-1], y} and running candidate
  // prefix exponent; ps_ rows are corrected for the x -> y substitution
  // via the two masked-selectivity rows of x and y.
  RowMin(cur_min_.data(), mp_.data() + si * n, lwt_.data() + y * n, n_);
  const double* AQO_RESTRICT msx = mselt_.data() + x * n;
  const double* AQO_RESTRICT msy = mselt_.data() + y * n;
  double clp = lp_[si] + lt_[y] + ps_[si * n + y];
  for (size_t p = si + 1; p < sj; ++p) {
    size_t v = static_cast<size_t>(seq_[p]);
    acc = Lse2(acc, clp + cur_min_[v]);
    clp += lt_[v] + (ps_[p * n + v] - msx[v] + msy[v]);
    RowMinInPlace(cur_min_.data(), lwt_.data() + v * n, n_);
  }
  acc = Lse2(acc, clp + cur_min_[x]);
  return Lse2(acc, bwd_[sj + 1]);
}

double QonNeighborhoodEvaluator::SequenceCostLog2(const JoinSequence& seq) {
  AQO_CHECK(static_cast<int>(seq.size()) == n_);
  AQO_DCHECK(IsPermutation(seq, n_));
  CandidatesCounter().Increment();
  if (n_ < 2) return kNegInf;
  size_t n = static_cast<size_t>(n_);
  std::fill(cur_min_.begin(), cur_min_.end(), kInf);
  std::fill(cur_ps_.begin(), cur_ps_.end(), 0.0);
  double acc = kNegInf;
  double clp = 0.0;
  for (size_t p = 0; p < n; ++p) {
    size_t v = static_cast<size_t>(seq[p]);
    if (p >= 1) acc = Lse2(acc, clp + cur_min_[v]);
    clp += lt_[v] + cur_ps_[v];
    RowMinInPlace(cur_min_.data(), lwt_.data() + v * n, n_);
    RowAddInPlace(cur_ps_.data(), mselt_.data() + v * n, n_);
  }
  return acc;
}

// --- QO_H ---------------------------------------------------------------

QohNeighborhoodEvaluator::QohNeighborhoodEvaluator(const QohInstance& inst)
    : n_(inst.NumRelations()) {
  AQO_CHECK(n_ >= 2) << "need at least two relations";
  total_joins_ = n_ - 1;
  size_t n = static_cast<size_t>(n_);
  memory_linear_ = inst.memory();
  LogDouble memory = LogDouble::FromLinear(memory_linear_);
  lt_.resize(n);
  rel_hjmin_lin_.resize(n);
  rel_extra_cap_.resize(n);
  rel_denom_log2_.resize(n);
  rel_build_infeasible_.resize(n);
  mselt_.resize(n * n);
  double max_lt = 0.0, max_ms = 0.0, max_denom = 0.0;
  for (int t = 0; t < n_; ++t) {
    size_t st = static_cast<size_t>(t);
    // Per-relation hash-build shapes, computed through the exact same
    // LogDouble expressions QohCostEvaluator uses (cold path), then
    // stored as raw doubles — so the fast tier's *feasibility* inputs
    // (memory floors, build-infeasible bits) are bit-identical to the
    // exact tier's, and only the cost carries the eps bound.
    LogDouble inner = inst.size(t);
    lt_[st] = inner.Log2();
    max_lt = std::max(max_lt, std::fabs(lt_[st]));
    LogDouble hjmin = inst.HashJoinMinMemory(inner);
    rel_build_infeasible_[st] = hjmin > memory ? 1 : 0;
    rel_hjmin_lin_[st] = inst.HashJoinMinMemoryLinear(inner);
    double inner_lin = inner.Log2() <= 52.0
                           ? inner.ToLinear()
                           : std::numeric_limits<double>::infinity();
    rel_extra_cap_[st] = inner_lin - rel_hjmin_lin_[st];
    if (rel_extra_cap_[st] > 0.0) {
      rel_denom_log2_[st] = (inner - hjmin).Log2();
      if (std::isfinite(rel_denom_log2_[st])) {
        max_denom = std::max(max_denom, std::fabs(rel_denom_log2_[st]));
      }
    } else {
      rel_denom_log2_[st] = 0.0;
    }
    for (int k = 0; k < n_; ++k) {
      double ms = inst.graph().HasEdge(t, k) ? inst.selectivity(k, t).Log2()
                                             : 0.0;
      mselt_[static_cast<size_t>(k) * n + st] = ms;
      max_ms = std::max(max_ms, std::fabs(ms));
    }
  }
  // Same shape of bound as the QO_N evaluator, with extra headroom for
  // the DP: near-tied slopes may order the greedy allocator differently
  // across tiers, and the resulting grant perturbation is itself bounded
  // by the slope rounding error. Validated across 1000 seeds.
  double nn = static_cast<double>(n_);
  double mem_mag = std::fabs(std::log2(std::max(memory_linear_, 2.0)));
  double a_bound =
      1.0 + nn * max_lt + nn * nn * max_ms + max_denom + mem_mag + 8.0;
  eps_log2_ = 512.0 * nn * nn * DBL_EPSILON * a_bound;
  seq_.resize(n);
  lp_.resize(n + 1);
  ps_.resize(n * n);
  size_t joins = static_cast<size_t>(total_joins_) + 1;  // 1-based
  jopi_.resize(joins);
  jh1_.resize(joins);
  jslope_.resize(joins);
  jinner_.resize(joins);
  jhjmin_lin_.resize(joins);
  jextra_cap_.resize(joins);
  jinfeasible_.resize(joins);
  dp_.assign(joins, 0.0);
  reach_.assign(joins, 0);
  c_jlp_.resize(n + 1);
  c_jopi_.resize(joins);
  c_jh1_.resize(joins);
  c_jslope_.resize(joins);
  c_jinner_.resize(joins);
  c_jhjmin_lin_.resize(joins);
  c_jextra_cap_.resize(joins);
  c_jinfeasible_.resize(joins);
  c_dp_.resize(joins);
  c_reach_.resize(joins);
  sorted_.resize(n);
  extra_.resize(n);
}

bool QohNeighborhoodEvaluator::PipelineCostFast(
    int first, int last, bool bounded, double bound, const double* jlp,
    const double* jopi, const double* jh1, const double* jinner,
    const double* jhjmin_lin, const double* jextra_cap, double* cost) {
  // Memory floors: the exact same linear doubles folded in the exact same
  // join order as QohCostEvaluator::PipelineCost, so the feasibility
  // verdict is bit-identical (partial sums of non-negative addends are
  // monotone, making the early exit sound).
  double floor_sum = 0.0;
  for (int j = first; j <= last; ++j) {
    floor_sum += jhjmin_lin[static_cast<size_t>(j)];
    if (floor_sum > memory_linear_) return false;
  }
  // Greedy continuous allocation walking sorted_ (maintained by the DP
  // loop). Same linear-double arithmetic as the exact tier; when the fast
  // slope order matches the exact one — always, except on slopes tied to
  // within rounding — the grants are the identical doubles.
  double budget = memory_linear_ - floor_sum;
  size_t len = static_cast<size_t>(last - first + 1);
  std::fill(extra_.begin() + first, extra_.begin() + last + 1, 0.0);
  for (size_t i = 0; i < len; ++i) {
    if (budget <= 0.0) break;
    size_t idx = static_cast<size_t>(sorted_[i]);
    double want = std::min(budget, jextra_cap[idx]);
    if (want <= 0.0) continue;
    extra_[idx] = want;
    budget -= want;
  }
  // The cost fold in raw log2 doubles. Lse2 never rounds below its larger
  // operand, so partials are monotone and the bound exit only prunes
  // candidates that cannot beat the fast DP incumbent.
  double c = Lse2(jlp[static_cast<size_t>(first)],
                  jlp[static_cast<size_t>(last) + 1]);
  if (bounded && c > bound) return false;
  for (int j = first; j <= last; ++j) {
    size_t sj = static_cast<size_t>(j);
    double g = 0.0;
    if (jextra_cap[sj] > 0.0) {
      g = std::clamp(1.0 - extra_[sj] / jextra_cap[sj], 0.0, 1.0);
    }
    double term;
    if (g == 0.0) {
      term = jinner[sj];
    } else if (g == 1.0) {
      term = jh1[sj];
    } else {
      term = Lse2(jopi[sj] + std::log2(g), jinner[sj]);
    }
    c = Lse2(c, term);
    if (bounded && c > bound) return false;
  }
  *cost = c;
  return true;
}

void QohNeighborhoodEvaluator::RunDp(int first_join, const double* jlp,
                                     const double* jopi, const double* jh1,
                                     const double* jslope,
                                     const double* jinner,
                                     const double* jhjmin_lin,
                                     const double* jextra_cap,
                                     const unsigned char* jinfeasible,
                                     double* dp, unsigned char* reach) {
  // Structural mirror of QohCostEvaluator::EvaluateFrom's DP: i descends
  // so the pipeline grows at the front and sorted_ is maintained by
  // insertion; `<=` makes the smallest i win exact ties. Reachability is
  // decided by exactly the inputs the exact DP uses (floors, build bits,
  // reach recursion) — the cost-based prune and pipeline bound below only
  // fire once `any` is true, so they cannot flip a reachability verdict.
  for (int k = first_join; k <= total_joins_; ++k) {
    size_t sk = static_cast<size_t>(k);
    size_t sorted_len = 0;
    bool has_infeasible_join = false;
    bool any = false;
    double best = std::numeric_limits<double>::infinity();
    for (int i = k; i >= 1; --i) {
      size_t si = static_cast<size_t>(i);
      if (jinfeasible[si]) {
        has_infeasible_join = true;
      } else if (!has_infeasible_join) {
        int* begin = sorted_.data();
        int* pos =
            std::partition_point(begin, begin + sorted_len, [&](int j) {
              return jslope[static_cast<size_t>(j)] > jslope[si];
            });
        std::memmove(
            pos + 1, pos,
            static_cast<size_t>(begin + sorted_len - pos) * sizeof(int));
        *pos = i;
        ++sorted_len;
      }
      if (!reach[si - 1]) continue;
      if (has_infeasible_join) continue;
      if (any && dp[si - 1] > best) continue;
      double frag = 0.0;
      if (!PipelineCostFast(i, k, any, best, jlp, jopi, jh1, jinner,
                            jhjmin_lin, jextra_cap, &frag)) {
        continue;
      }
      double candidate = Lse2(dp[si - 1], frag);
      if (!any || candidate <= best) {
        any = true;
        best = candidate;
      }
    }
    reach[sk] = any ? 1 : 0;
    if (any) dp[sk] = best;
  }
}

void QohNeighborhoodEvaluator::Load(const JoinSequence& seq) {
  AQO_CHECK(static_cast<int>(seq.size()) == n_);
  AQO_DCHECK(IsPermutation(seq, n_));
  NeighborhoodsCounter().Increment();
  std::copy(seq.begin(), seq.end(), seq_.begin());
  size_t n = static_cast<size_t>(n_);
  std::fill(ps_.begin(), ps_.begin() + static_cast<long>(n), 0.0);
  lp_[0] = 0.0;
  for (size_t p = 1; p < n; ++p) {
    size_t u = static_cast<size_t>(seq_[p - 1]);
    RowAdd(ps_.data() + p * n, ps_.data() + (p - 1) * n,
           mselt_.data() + u * n, n_);
    lp_[p] = lp_[p - 1] + lt_[u] + ps_[(p - 1) * n + u];
  }
  {
    size_t u = static_cast<size_t>(seq_[n - 1]);
    lp_[n] = lp_[n - 1] + lt_[u] + ps_[(n - 1) * n + u];
  }
  for (int j = 1; j <= total_joins_; ++j) {
    size_t sj = static_cast<size_t>(j);
    size_t v = static_cast<size_t>(seq_[sj]);
    jinner_[sj] = lt_[v];
    jhjmin_lin_[sj] = rel_hjmin_lin_[v];
    jextra_cap_[sj] = rel_extra_cap_[v];
    jinfeasible_[sj] = rel_build_infeasible_[v];
    jopi_[sj] = Lse2(lp_[sj], lt_[v]);
    jh1_[sj] = Lse2(jopi_[sj], lt_[v]);
    // The no-capacity sentinel is -inf: the exact tier stores
    // LogDouble::Zero() (log2 -inf) there, and both sort last under the
    // strict `>` slope comparator, so the insertion order agrees.
    jslope_[sj] = rel_extra_cap_[v] > 0.0 ? jopi_[sj] - rel_denom_log2_[v]
                                          : kNegInf;
  }
  reach_[0] = 1;
  dp_[0] = kNegInf;
  RunDp(1, lp_.data(), jopi_.data(), jh1_.data(), jslope_.data(),
        jinner_.data(), jhjmin_lin_.data(), jextra_cap_.data(),
        jinfeasible_.data(), dp_.data(), reach_.data());
  size_t last = static_cast<size_t>(total_joins_);
  base_feasible_ = reach_[last] != 0;
  base_cost_log2_ = base_feasible_ ? dp_[last] : kNegInf;
  loaded_ = true;
}

double QohNeighborhoodEvaluator::PriceSwap(int i, int j, bool* feasible) {
  AQO_CHECK(loaded_);
  AQO_CHECK(0 <= i && i < j && j < n_);
  CandidatesCounter().Increment();
  size_t n = static_cast<size_t>(n_);
  size_t si = static_cast<size_t>(i), sj = static_cast<size_t>(j);
  size_t x = static_cast<size_t>(seq_[si]);
  size_t y = static_cast<size_t>(seq_[sj]);
  // Start from the base arrays: joins < max(i,1) and > j are unchanged
  // (for the latter, the prefix multiset is identical, so the fast tier
  // reuses the base values — the re-association freedom again), and the
  // DP below k0 is read from the base results.
  std::copy(lp_.begin(), lp_.end(), c_jlp_.begin());
  std::copy(jopi_.begin(), jopi_.end(), c_jopi_.begin());
  std::copy(jh1_.begin(), jh1_.end(), c_jh1_.begin());
  std::copy(jslope_.begin(), jslope_.end(), c_jslope_.begin());
  std::copy(jinner_.begin(), jinner_.end(), c_jinner_.begin());
  std::copy(jhjmin_lin_.begin(), jhjmin_lin_.end(), c_jhjmin_lin_.begin());
  std::copy(jextra_cap_.begin(), jextra_cap_.end(), c_jextra_cap_.begin());
  std::copy(jinfeasible_.begin(), jinfeasible_.end(), c_jinfeasible_.begin());
  std::copy(dp_.begin(), dp_.end(), c_dp_.begin());
  std::copy(reach_.begin(), reach_.end(), c_reach_.begin());
  // Candidate prefix exponents over (i, j]: position i places y, middle
  // positions correct their ps_ row for the x -> y substitution, position
  // j places x (whose ps_ row already counts x itself as +0.0).
  const double* AQO_RESTRICT msx = mselt_.data() + x * n;
  const double* AQO_RESTRICT msy = mselt_.data() + y * n;
  c_jlp_[si + 1] = lp_[si] + lt_[y] + ps_[si * n + y];
  for (size_t p = si + 1; p < sj; ++p) {
    size_t v = static_cast<size_t>(seq_[p]);
    c_jlp_[p + 1] = c_jlp_[p] + lt_[v] + (ps_[p * n + v] - msx[v] + msy[v]);
  }
  c_jlp_[sj + 1] = c_jlp_[sj] + lt_[x] + (ps_[sj * n + x] - msx[x] + msy[x]);
  int k0 = std::max(i, 1);
  for (int jj = k0; jj <= j; ++jj) {
    size_t sjj = static_cast<size_t>(jj);
    size_t v = jj == i ? y : jj == j ? x : static_cast<size_t>(seq_[sjj]);
    c_jinner_[sjj] = lt_[v];
    c_jhjmin_lin_[sjj] = rel_hjmin_lin_[v];
    c_jextra_cap_[sjj] = rel_extra_cap_[v];
    c_jinfeasible_[sjj] = rel_build_infeasible_[v];
    c_jopi_[sjj] = Lse2(c_jlp_[sjj], lt_[v]);
    c_jh1_[sjj] = Lse2(c_jopi_[sjj], lt_[v]);
    c_jslope_[sjj] = rel_extra_cap_[v] > 0.0
                         ? c_jopi_[sjj] - rel_denom_log2_[v]
                         : kNegInf;
  }
  RunDp(k0, c_jlp_.data(), c_jopi_.data(), c_jh1_.data(), c_jslope_.data(),
        c_jinner_.data(), c_jhjmin_lin_.data(), c_jextra_cap_.data(),
        c_jinfeasible_.data(), c_dp_.data(), c_reach_.data());
  size_t last = static_cast<size_t>(total_joins_);
  *feasible = c_reach_[last] != 0;
  return *feasible ? c_dp_[last] : kNegInf;
}

}  // namespace aqo
