#ifndef AQO_QO_OPTIMIZERS_H_
#define AQO_QO_OPTIMIZERS_H_

// Join-order optimizers for QO_N instances, and an exhaustive optimizer for
// QO_H. These are the algorithms the hardness theorems speak about: exact
// ones (exponential) establish ground truth on small instances; the
// polynomial heuristics are the "approximation algorithms" whose
// competitive ratio the paper proves cannot be polylogarithmic.

#include <cstdint>
#include <string>
#include <string_view>

#include "qo/qoh.h"
#include "qo/qon.h"
#include "util/cancellation.h"
#include "util/random.h"

namespace aqo {

class ThreadPool;
class FeedbackStore;  // qo/adaptive.h

// One finished optimizer invocation, as reported to a FeedbackSink by the
// registry invoke path (qo/registry.h). Carries exactly what an observer
// needs to attribute quality/effort to (family, optimizer) without a
// reference to the instance.
struct RunOutcome {
  std::string family;     // "qon" | "qoh"
  std::string optimizer;  // canonical registry entry name
  int n = 0;              // relations in the instance
  int edges = 0;          // query-graph edges
  bool feasible = false;
  double cost_log2 = 0.0;  // LogDouble::Log2() bits; meaningless if infeasible
  uint64_t evaluations = 0;
  PlanStatus status = PlanStatus::kComplete;
};

// Observer for RunOutcome reports. Implementations must tolerate calls
// from pool workers (the batch service invokes entries in parallel).
class FeedbackSink {
 public:
  virtual ~FeedbackSink() = default;
  virtual void ReportOutcome(const RunOutcome& outcome) = 0;
};

// Knobs for the `adaptive` meta-optimizer (qo/adaptive.h), nested in both
// options structs so the registry signature stays closed. All decisions
// are a pure function of (committed store state, canonical instance,
// these knobs, the caller's Rng state) — see docs/adaptive.md.
struct AdaptiveKnobs {
  // Feedback store consulted and recorded into; null = the process-wide
  // FeedbackStore::Default().
  FeedbackStore* store = nullptr;
  // Safety net: adaptive always also runs this entry and never returns a
  // plan worse than its result (ties go to the fallback).
  std::string fallback = "greedy";
  // Comma-separated candidate entry names; empty = the family default
  // (see docs/adaptive.md). "adaptive" itself is rejected.
  std::string candidates;
  // Allowed predicted cost ratio over the best candidate: a candidate
  // qualifies when its predicted regret is <= log2(quality_target).
  double quality_target = 1.1;
  // Neighbors consulted per prediction.
  int k_neighbors = 8;
  // A candidate with fewer committed trials than this is explored before
  // any exploitation happens.
  int min_trials = 1;
  // Extra seed folded into the exploration stream (on top of the
  // fingerprint-derived draw from the caller's Rng).
  uint64_t seed = 0;
};

struct OptimizerResult {
  bool feasible = false;    // false when constraints rule out every sequence
  JoinSequence sequence;
  LogDouble cost;
  uint64_t evaluations = 0;  // sequences (or DP states) costed
  // kComplete for a full run; kBudgetExhausted / kDeadlineExceeded when the
  // run was cut short (sequence/cost are then the best-so-far plan, still
  // cost-consistent: cost == QonSequenceCost(inst, sequence)). kFailed is
  // only produced by the batch service (qo/service.h) after a retry fails.
  PlanStatus status = PlanStatus::kComplete;
};

// Simulated-annealing knobs, nested in OptimizerOptions so the registry
// signature (instance, OptimizerOptions, Rng*) stays closed as knobs grow.
struct SaKnobs {
  int iterations = 20000;
  double initial_temperature = 5.0;  // in log2-cost units
  double cooling = 0.999;
  int restarts = 3;
};

// Genetic-optimizer knobs (see qo/genetic.h for the algorithm).
struct GaKnobs {
  int population = 64;
  int generations = 120;
  double crossover_rate = 0.9;
  double mutation_rate = 0.3;
  int tournament = 3;
  int elites = 2;
};

// Which evaluator tier a local-search optimizer prices candidates with.
//
//   kExact — every candidate goes through the exact incremental evaluator
//            (qo/cost_eval.h). The default.
//   kFast  — candidates are *ranked* by the vectorized approximate
//            evaluator (qo/fast_eval.h), which carries a certified log2
//            error bound; any candidate not provably worse than the
//            incumbent by more than that bound is re-priced exactly
//            before the accept/reject decision. Final (cost, sequence,
//            status) results are bit-identical to kExact — only the
//            amount of exact evaluation work changes. Constructive and
//            exact optimizers (dp, greedy, bnb, ...) ignore the knob.
//
// See docs/performance.md, "Evaluation tiers".
enum class EvalTier {
  kExact = 0,
  kFast = 1,
};

// "exact" / "fast".
const char* EvalTierName(EvalTier tier);
// Parses "exact" or "fast"; returns false (leaving *tier untouched) on
// anything else.
bool ParseEvalTier(std::string_view text, EvalTier* tier);

// The full QO_N optimizer knob surface. Every optimizer reads the knobs it
// understands and ignores the rest, so one options value drives any
// registry entry (see qo/registry.h) without per-algorithm positional
// parameters leaking into call sites.
struct OptimizerOptions {
  // Disallow cartesian products (every non-first relation must connect to
  // the prefix). The paper notes (end of Section 4) the gap persists under
  // this restriction.
  bool forbid_cartesian = false;

  // When set (and num_threads() > 1), DpQonOptimizer runs the
  // layer-synchronized parallel DP on this pool. The result — cost bits,
  // sequence, evaluation count — is identical to the serial DP; see
  // docs/parallelism.md and tests/parallel_differential_test.cc.
  ThreadPool* pool = nullptr;

  // RandomSamplingOptimizer: number of random sequences drawn.
  int samples = 1000;

  // IterativeImprovementOptimizer: number of random restarts.
  int restarts = 8;

  SaKnobs sa;
  GaKnobs ga;

  // BranchAndBoundQonOptimizer: node budget; 0 = unlimited (exact).
  uint64_t bnb_node_limit = 0;

  // Anytime limits (util/cancellation.h). budget.max_evaluations caps the
  // run deterministically at that many cost evaluations; budget.deadline_ms
  // adds a (nondeterministic) wall-clock limit. A default Budget changes
  // nothing: results, run-logs, and counters are bit-identical to an
  // unbudgeted build. Note: a capped DpQonOptimizer always takes the
  // serial path — mid-layer cutoffs in the parallel DP would not be
  // reproducible across thread counts.
  Budget budget;

  // Optional shared stop signal (e.g. a batch-wide deadline owned by
  // qo/service.h). Not owned; may be null. An un-armed token is inert.
  CancelToken* cancel = nullptr;

  // Knobs for the `adaptive` registry entry (ignored by every other
  // optimizer).
  AdaptiveKnobs adaptive;

  // When set, the registry invoke path reports a RunOutcome here after
  // every entry invocation. Observational only: never changes results.
  // Not owned; may be null.
  FeedbackSink* feedback = nullptr;

  // Candidate-pricing tier for the local-search family (ii, sa, genetic).
  // kFast never changes final results — see EvalTier above.
  EvalTier eval_tier = EvalTier::kExact;
};

// Tries all n! permutations. Guarded to n <= 10.
OptimizerResult ExhaustiveQonOptimizer(const QonInstance& inst,
                                       const OptimizerOptions& options = {});

// Exact left-deep optimum by dynamic programming over relation subsets.
// Correct because the QO_N extension cost depends on the prefix only
// through its *set*: N(X) and min_{k in X} AccessCost(k, j) are
// order-independent. O(2^n * n^2); guarded to n <= 24.
//
// Ties between equal-cost extensions break toward the lowest relation id
// (in every variant), so the returned sequence is a pure function of the
// instance — never of subset enumeration order or thread count.
// Dispatches to the parallel DP when options.pool is set, the serial DP
// otherwise; the two are interchangeable bit for bit.
OptimizerResult DpQonOptimizer(const QonInstance& inst,
                               const OptimizerOptions& options = {});

// The serial reference implementation (what DpQonOptimizer runs without a
// pool): one pass over subsets in numeric order.
OptimizerResult DpQonOptimizerSerial(const QonInstance& inst,
                                     const OptimizerOptions& options = {});

// Layer-synchronized parallel DP: subsets are processed one cardinality
// layer at a time, each layer's *destination* states partitioned across
// `pool` in deterministic static chunks. Every destination is written by
// exactly one thread (its transitions all come from the previous layer),
// so no merge step can reorder floating-point operations: the dp table,
// the reconstructed sequence, the evaluation count, and the telemetry
// counter totals are bit-identical to DpQonOptimizerSerial for every
// thread count. `pool` may be null (falls back to serial).
OptimizerResult DpQonOptimizerParallel(const QonInstance& inst,
                                       ThreadPool* pool,
                                       const OptimizerOptions& options = {});

// Greedy: tries every relation as the first, then repeatedly appends the
// relation with the cheapest next join. O(n^3). Polynomial baseline.
OptimizerResult GreedyQonOptimizer(const QonInstance& inst,
                                   const OptimizerOptions& options = {});

// Best of `options.samples` uniformly random (feasible) sequences.
OptimizerResult RandomSamplingOptimizer(const QonInstance& inst, Rng* rng,
                                        const OptimizerOptions& options = {});

// Simulated annealing over permutations (swap + relocate moves), with the
// standard accept rule applied to log2-cost differences. Knobs:
// options.sa.
OptimizerResult SimulatedAnnealingOptimizer(const QonInstance& inst, Rng* rng,
                                            const OptimizerOptions& options = {});

// Iterative improvement (first-improvement local search over swap moves)
// from random starts until a local optimum; keeps the best of
// `options.restarts` starts.
OptimizerResult IterativeImprovementOptimizer(
    const QonInstance& inst, Rng* rng, const OptimizerOptions& options = {});

// --- QO_H ---

struct QohOptimizerResult {
  bool feasible = false;
  JoinSequence sequence;
  PipelineDecomposition decomposition;
  LogDouble cost;
  uint64_t evaluations = 0;
  // Same semantics as OptimizerResult::status; best-so-far plans carry
  // their own optimal decomposition, so cost stays consistent.
  PlanStatus status = PlanStatus::kComplete;
};

// Exhaustive over permutations, each costed with its optimal decomposition.
// Guarded to n <= 9. The optional budget/cancel pair makes it anytime
// (checked once per permutation); the heuristics in qoh_optimizers.h take
// theirs through QohOptimizerOptions instead.
QohOptimizerResult ExhaustiveQohOptimizer(const QohInstance& inst,
                                          const Budget& budget = {},
                                          CancelToken* cancel = nullptr);

// Greedy sequence construction for QO_H (min next intermediate size), then
// optimal decomposition. Polynomial baseline. Budget checked between
// starts.
QohOptimizerResult GreedyQohOptimizer(const QohInstance& inst,
                                      const Budget& budget = {},
                                      CancelToken* cancel = nullptr);

}  // namespace aqo

#endif  // AQO_QO_OPTIMIZERS_H_
