#include "qo/persist.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <istream>
#include <limits>
#include <sstream>

#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/runlog.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/random.h"

namespace aqo {

namespace {

// 8-byte magic shared by both file kinds; the kind field tells them apart
// so a journal can never be mistaken for a snapshot.
constexpr char kMagic[8] = {'A', 'Q', 'O', 'P', 'L', 'A', 'N', 'C'};
constexpr size_t kHeaderBytes = 16;
// Fixed (non-array) portion of a record payload; see EncodePersistRecord.
constexpr size_t kFixedPayloadBytes = 44;
// Records larger than this are implausible for any real plan (a plan is
// two int vectors); a bigger stored length is corruption, not a big plan.
constexpr uint32_t kMaxRecordBytes = 16u << 20;

obs::Counter& CounterRef(const char* name) {
  return obs::Registry::Get().GetCounter(name);
}

obs::Histogram& HistogramRef(const char* name) {
  return obs::Registry::Get().GetHistogram(name);
}

// Explicit little-endian codec: persisted bytes must mean the same thing
// on every machine, so nothing here depends on host byte order.
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::string EncodePayload(const PersistedEntry& entry) {
  const CachedPlan& plan = entry.plan;
  std::string out;
  out.reserve(kFixedPayloadBytes +
              4 * (plan.sequence.size() + plan.pipeline_starts.size()));
  PutU64(&out, entry.key.lo);
  PutU64(&out, entry.key.hi);
  out.push_back(plan.feasible ? 1 : 0);
  out.push_back(static_cast<char>(plan.status));
  out.push_back(0);  // reserved
  out.push_back(0);  // reserved
  PutU32(&out, static_cast<uint32_t>(plan.sequence.size()));
  PutU32(&out, static_cast<uint32_t>(plan.pipeline_starts.size()));
  PutU64(&out, plan.evaluations);
  // The cost travels as the raw bit pattern of its log2 exponent: a
  // recovered plan must cost *bitwise* what the computed plan cost.
  PutU64(&out, std::bit_cast<uint64_t>(plan.cost.Log2()));
  for (int v : plan.sequence) {
    PutU32(&out, static_cast<uint32_t>(v));
  }
  for (int v : plan.pipeline_starts) {
    PutU32(&out, static_cast<uint32_t>(v));
  }
  AQO_DCHECK(out.size() ==
             kFixedPayloadBytes +
                 4 * (plan.sequence.size() + plan.pipeline_starts.size()));
  return out;
}

// Pre-validates everything a downstream AQO_CHECK would abort on
// (LogDouble::FromLog2 rejects NaN/+inf; negative relation ids would
// index out of bounds later). Untrusted bytes never reach those checks.
bool DecodePayload(const unsigned char* p, size_t len, PersistedEntry* out,
                   std::string* error) {
  std::ostringstream why;
  if (len < kFixedPayloadBytes) {
    why << "payload too short (" << len << " of " << kFixedPayloadBytes
        << " fixed bytes)";
    *error = why.str();
    return false;
  }
  out->key.lo = GetU64(p);
  out->key.hi = GetU64(p + 8);
  unsigned char feasible = p[16];
  unsigned char status = p[17];
  if (feasible > 1) {
    why << "invalid feasible flag " << static_cast<int>(feasible);
    *error = why.str();
    return false;
  }
  if (status > static_cast<unsigned char>(PlanStatus::kFailed)) {
    why << "invalid plan status " << static_cast<int>(status);
    *error = why.str();
    return false;
  }
  uint32_t seq_len = GetU32(p + 20);
  uint32_t starts_len = GetU32(p + 24);
  uint64_t expected =
      kFixedPayloadBytes + 4ull * seq_len + 4ull * starts_len;
  if (expected != len) {
    why << "length mismatch (payload " << len << " bytes, header implies "
        << expected << ")";
    *error = why.str();
    return false;
  }
  uint64_t evaluations = GetU64(p + 28);
  double cost_log2 = std::bit_cast<double>(GetU64(p + 36));
  if (std::isnan(cost_log2) ||
      cost_log2 == std::numeric_limits<double>::infinity()) {
    *error = "invalid cost bits (NaN or +inf log2 exponent)";
    return false;
  }
  CachedPlan& plan = out->plan;
  plan.feasible = feasible == 1;
  plan.status = static_cast<PlanStatus>(status);
  plan.evaluations = evaluations;
  plan.cost = LogDouble::FromLog2(cost_log2);
  plan.sequence.resize(seq_len);
  plan.pipeline_starts.resize(starts_len);
  const unsigned char* arr = p + kFixedPayloadBytes;
  for (uint32_t i = 0; i < seq_len; ++i, arr += 4) {
    int v = static_cast<int>(GetU32(arr));
    if (v < 0) {
      why << "negative relation id " << v << " in sequence";
      *error = why.str();
      return false;
    }
    plan.sequence[i] = v;
  }
  for (uint32_t i = 0; i < starts_len; ++i, arr += 4) {
    int v = static_cast<int>(GetU32(arr));
    if (v < 0) {
      why << "negative pipeline start " << v;
      *error = why.str();
      return false;
    }
    plan.pipeline_starts[i] = v;
  }
  return true;
}

const char* KindName(PersistFileKind kind) {
  switch (kind) {
    case PersistFileKind::kSnapshot:
      return "snapshot";
    case PersistFileKind::kLog:
      return "log";
    case PersistFileKind::kFeedback:
      return "feedback";
  }
  return "unknown";
}

// Header check shared by the strict and lenient readers. Returns true and
// fills nothing on success; false with a precise reason otherwise.
bool CheckHeader(const std::string& bytes, PersistFileKind expected_kind,
                 std::string* error) {
  std::ostringstream why;
  if (bytes.size() < kHeaderBytes) {
    why << "truncated header (" << bytes.size() << " of " << kHeaderBytes
        << " bytes)";
    *error = why.str();
    return false;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    *error = "bad magic (not an AQO plan-cache file)";
    return false;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  uint32_t version = GetU32(p + 8);
  if (version != kPersistFormatVersion) {
    why << "unsupported format version " << version << " (expected "
        << kPersistFormatVersion << ")";
    *error = why.str();
    return false;
  }
  uint32_t kind = GetU32(p + 12);
  if (kind != static_cast<uint32_t>(expected_kind)) {
    why << "wrong file kind " << kind << " (expected "
        << static_cast<uint32_t>(expected_kind) << " = "
        << KindName(expected_kind) << ")";
    *error = why.str();
    return false;
  }
  return true;
}

struct ScanResult {
  PersistFileInfo info;
  bool header_ok = false;
  // Header + all intact records: the byte count a repair truncates to.
  size_t valid_bytes = 0;
};

// The typed replay loop both readers share: the generic frame scan plus
// the plan-entry payload codec. Strictness is a presentation decision
// layered on top of this result.
ScanResult ScanPersistFile(const std::string& bytes,
                           PersistFileKind expected_kind) {
  FramedFileInfo raw = ScanFramedFile(bytes, expected_kind);
  ScanResult scan;
  scan.header_ok = raw.header_ok;
  scan.info.torn_tail = raw.torn_tail;
  scan.info.damage = raw.damage;
  scan.valid_bytes = raw.header_ok ? kHeaderBytes : 0;
  for (size_t index = 0; index < raw.payloads.size(); ++index) {
    const std::string& payload = raw.payloads[index];
    PersistedEntry entry;
    std::string decode_error;
    if (!DecodePayload(reinterpret_cast<const unsigned char*>(payload.data()),
                       payload.size(), &entry, &decode_error)) {
      // A decode failure earlier in the file supersedes whatever the raw
      // scan found after it (replay stops at the first bad record).
      std::ostringstream why;
      why << "record #" << index << ": " << decode_error;
      scan.info.damage = why.str();
      scan.info.torn_tail = false;
      return scan;
    }
    scan.info.entries.push_back(std::move(entry));
    scan.valid_bytes = raw.ends[index];
  }
  return scan;
}

std::string SlurpStream(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return std::move(buffer).str();
}

// Full, blocking write of `data` to `fd`; false on any error.
bool WriteAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string EncodePersistHeader(PersistFileKind kind) {
  std::string out(kMagic, sizeof(kMagic));
  PutU32(&out, kPersistFormatVersion);
  PutU32(&out, static_cast<uint32_t>(kind));
  AQO_DCHECK(out.size() == kHeaderBytes);
  return out;
}

std::string EncodePersistRecord(const PersistedEntry& entry) {
  return EncodeFramedRecord(EncodePayload(entry));
}

std::string EncodeFramedRecord(std::string_view payload) {
  std::string out;
  out.reserve(8 + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

FramedFileInfo ScanFramedFile(const std::string& bytes,
                              PersistFileKind expected_kind) {
  FramedFileInfo info;
  if (!CheckHeader(bytes, expected_kind, &info.damage)) {
    return info;
  }
  info.header_ok = true;
  info.valid_bytes = kHeaderBytes;
  const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
  size_t pos = kHeaderBytes;
  size_t index = 0;
  while (pos < bytes.size()) {
    size_t remaining = bytes.size() - pos;
    if (remaining < 8) {
      info.torn_tail = true;  // partial length/CRC prefix
      return info;
    }
    uint32_t payload_len = GetU32(base + pos);
    uint32_t stored_crc = GetU32(base + pos + 4);
    if (payload_len > kMaxRecordBytes) {
      std::ostringstream why;
      why << "record #" << index << ": implausible payload length "
          << payload_len;
      info.damage = why.str();
      return info;
    }
    if (remaining - 8 < payload_len) {
      info.torn_tail = true;  // record bytes run out: crash artifact
      return info;
    }
    const unsigned char* payload = base + pos + 8;
    uint32_t computed_crc = Crc32(payload, payload_len);
    if (computed_crc != stored_crc) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "record #%zu: CRC mismatch (stored 0x%08x, computed "
                    "0x%08x)",
                    index, stored_crc, computed_crc);
      info.damage = buf;
      return info;
    }
    info.payloads.emplace_back(reinterpret_cast<const char*>(payload),
                               payload_len);
    pos += 8 + payload_len;
    info.ends.push_back(pos);
    info.valid_bytes = pos;
    ++index;
  }
  return info;
}

ParseResult<std::vector<PersistedEntry>> ReadPersistFile(
    std::istream& is, PersistFileKind expected_kind) {
  ParseResult<std::vector<PersistedEntry>> result;
  std::string bytes = SlurpStream(is);
  ScanResult scan = ScanPersistFile(bytes, expected_kind);
  if (!scan.info.damage.empty()) {
    result.error = scan.info.damage;
    return result;
  }
  if (scan.info.torn_tail) {
    std::ostringstream why;
    why << "torn final record (" << (bytes.size() - scan.valid_bytes)
        << " trailing bytes after record #" << scan.info.entries.size()
        << "'s end)";
    result.error = why.str();
    return result;
  }
  result.value = std::move(scan.info.entries);
  return result;
}

PersistFileInfo RecoverPersistFile(std::istream& is,
                                   PersistFileKind expected_kind) {
  std::string bytes = SlurpStream(is);
  return ScanPersistFile(bytes, expected_kind).info;
}

// --- PlanStore ---

PlanStore::PlanStore(const PersistOptions& options) : options_(options) {
  AQO_CHECK(!options_.dir.empty()) << "PersistOptions.dir must be set";
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  // An unwritable directory surfaces on the first write, with errno.
}

PlanStore::~PlanStore() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

std::string PlanStore::SnapshotPath() const {
  return options_.dir + "/snapshot.bin";
}

std::string PlanStore::JournalPath() const {
  return options_.dir + "/journal.log";
}

const char* PersistHealthName(PersistHealth health) {
  switch (health) {
    case PersistHealth::kHealthy:
      return "healthy";
    case PersistHealth::kReadOnly:
      return "readonly";
    case PersistHealth::kOpen:
      return "open";
  }
  return "unknown";
}

void PlanStore::SetHealth(PersistHealth health, const std::string& reason) {
  static obs::Gauge& health_gauge =
      obs::Registry::Get().GetGauge("qo.persist.health");
  health_ = health;
  health_gauge.Set(static_cast<double>(health));
  if (obs::RunLog* log = obs::RunLog::Global()) {
    obs::JsonValue record = obs::JsonValue::Object();
    record["type"] = "persist_health";
    record["dir"] = options_.dir;
    record["health"] = PersistHealthName(health);
    if (!reason.empty()) record["reason"] = reason;
    record["trips"] = trips_;
    record["probes"] = probes_;
    record["reopens"] = reopens_;
    record["backoff"] = backoff_current_;
    log->Write(record);
  }
}

bool PlanStore::Fail(const std::string& reason) {
  static obs::Counter& failures = CounterRef("qo.persist.failures");
  static obs::Counter& trips = CounterRef("qo.persist.breaker_trips");
  failures.Increment();
  error_ = reason;
  probe_in_flight_ = false;
  // healthy -> read-only on the first failure; a failed probe (we were
  // already unhealthy) escalates to open.
  PersistHealth next = health_ == PersistHealth::kHealthy
                           ? PersistHealth::kReadOnly
                           : PersistHealth::kOpen;
  ++trips_;
  trips.Increment();
  refused_since_trip_ = 0;
  if (options_.breaker.enabled) {
    // Exponential backoff in refused-write units, deterministic jitter
    // from the breaker seed so probe points reproduce run to run.
    uint64_t shift = trips_ > 20 ? 20 : trips_ - 1;
    uint64_t base = options_.breaker.backoff_base << shift;
    if (base > options_.breaker.backoff_max) {
      base = options_.breaker.backoff_max;
    }
    Rng jitter(MixSeed(options_.breaker.seed, trips_));
    backoff_current_ =
        base + static_cast<uint64_t>(jitter.UniformInt(
                   0, static_cast<int64_t>(options_.breaker.backoff_base)));
  } else {
    backoff_current_ = ~0ull;  // legacy latch: the probe never comes
  }
  SetHealth(next, reason);
  // One-shot operator warning (the silent-latch fix): a tripped store is
  // an event a human should see once, not per refused write.
  if (!warned_) {
    warned_ = true;
    std::cerr << "warning: plan store '" << options_.dir
              << "' tripped: " << reason << " — entering "
              << PersistHealthName(next)
              << (options_.breaker.enabled
                      ? " (probe after " + std::to_string(backoff_current_) +
                            " refused writes)"
                      : " (breaker disabled: latched)")
              << "\n";
  }
  return false;
}

bool PlanStore::AllowWrite() {
  static obs::Counter& refusals = CounterRef("qo.persist.breaker_refusals");
  static obs::Counter& probes = CounterRef("qo.persist.breaker_probes");
  if (health_ == PersistHealth::kHealthy) return true;
  if (!options_.breaker.enabled) return false;
  ++refused_since_trip_;
  if (refused_since_trip_ < backoff_current_) {
    refusals.Increment();
    return false;
  }
  // Probe slot: let this write through. Force a journal reopen first so
  // the repair path truncates any torn tail the trip left behind —
  // re-appending after a tear must never create mid-file garbage.
  ++probes_;
  probes.Increment();
  probe_in_flight_ = true;
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
  return true;
}

void PlanStore::Reopen() {
  static obs::Counter& reopens = CounterRef("qo.persist.breaker_reopens");
  ++reopens_;
  reopens.Increment();
  probe_in_flight_ = false;
  refused_since_trip_ = 0;
  backoff_current_ = 0;
  error_.clear();
  SetHealth(PersistHealth::kHealthy, "probe write succeeded");
}

bool PlanStore::SyncFd(int fd, const char* what) {
  static obs::Counter& fsyncs = CounterRef("qo.persist.fsyncs");
  uint64_t ordinal = fsync_ordinal_++;
  // Crash point: the k-th fsync "fails". The bytes are in the page cache
  // (intact for any same-machine reader) but durability was not promised.
  if (FaultInjector::Get().ShouldFail("persist.fsync", ordinal)) {
    std::ostringstream why;
    why << "injected fsync failure (" << what << ", fsync #" << ordinal
        << ")";
    return Fail(why.str());
  }
  if (::fsync(fd) != 0) {
    std::ostringstream why;
    why << "fsync failed (" << what << "): " << std::strerror(errno);
    return Fail(why.str());
  }
  fsyncs.Increment();
  return true;
}

bool PlanStore::OpenJournal(bool truncate) {
  if (journal_fd_ >= 0 && !truncate) return true;
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
  std::string path = JournalPath();
  // A journal that was recovered (or never scanned) may carry a torn tail
  // or trailing damage; appending after it would turn a clean tail into
  // mid-file garbage. Repair first: truncate to the last intact record.
  if (!truncate) {
    std::ifstream in(path, std::ios::binary);
    if (in.is_open()) {
      std::string bytes = SlurpStream(in);
      if (!bytes.empty()) {
        ScanResult scan = ScanPersistFile(bytes, PersistFileKind::kLog);
        if (!scan.header_ok) {
          return Fail("journal.log: " + scan.info.damage);
        }
        if (scan.valid_bytes < bytes.size()) {
          static obs::Counter& repairs =
              CounterRef("qo.persist.journal_repairs");
          if (::truncate(path.c_str(),
                         static_cast<off_t>(scan.valid_bytes)) != 0) {
            return Fail(std::string("journal repair truncate failed: ") +
                        std::strerror(errno));
          }
          repairs.Increment();
        }
      }
    }
  }
  int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Fail("cannot open journal.log: " +
                std::string(std::strerror(errno)));
  }
  journal_fd_ = fd;
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size == 0) {
    std::string header = EncodePersistHeader(PersistFileKind::kLog);
    if (!WriteAll(fd, header.data(), header.size())) {
      return Fail(std::string("journal header write failed: ") +
                  std::strerror(errno));
    }
    if (options_.fsync && !SyncFd(fd, "journal header")) return false;
  }
  return true;
}

bool PlanStore::AppendEntry(const Hash128& key, const CachedPlan& plan) {
  static obs::Counter& appends = CounterRef("qo.persist.appends");
  static obs::Counter& append_bytes = CounterRef("qo.persist.append_bytes");
  static obs::Histogram& append_us = HistogramRef("qo.persist.append_us");
  std::lock_guard<std::mutex> lock(append_mu_);
  if (!AllowWrite()) return false;
  obs::ScopedLatencyTimer timer(append_us);
  if (!OpenJournal(/*truncate=*/false)) return false;
  std::string record = EncodePersistRecord(PersistedEntry{key, plan});
  uint64_t ordinal = append_ordinal_++;
  // Crash point: the k-th append dies mid-write. Half the record reaches
  // the file — exactly the torn tail a real crash leaves — and the store
  // stops writing, as the dead process would have.
  if (FaultInjector::Get().ShouldFail("persist.append", ordinal)) {
    WriteAll(journal_fd_, record.data(), record.size() / 2);
    std::ostringstream why;
    why << "injected crash during append #" << ordinal
        << " (record torn at byte " << record.size() / 2 << " of "
        << record.size() << ")";
    return Fail(why.str());
  }
  if (!WriteAll(journal_fd_, record.data(), record.size())) {
    return Fail(std::string("journal append failed: ") +
                std::strerror(errno));
  }
  if (options_.fsync && !SyncFd(journal_fd_, "journal append")) return false;
  appends.Increment();
  append_bytes.Add(record.size());
  if (probe_in_flight_) Reopen();
  return true;
}

bool PlanStore::SaveSnapshot(const PlanCache& cache) {
  static obs::Counter& saves = CounterRef("qo.persist.snapshot_saves");
  static obs::Counter& snapshot_entries =
      CounterRef("qo.persist.snapshot_entries");
  static obs::Histogram& snapshot_us =
      HistogramRef("qo.persist.snapshot_us");
  std::lock_guard<std::mutex> lock(append_mu_);
  if (!AllowWrite()) return false;
  obs::ScopedLatencyTimer timer(snapshot_us);

  std::vector<std::pair<Hash128, CachedPlan>> entries = cache.Export();
  std::string bytes = EncodePersistHeader(PersistFileKind::kSnapshot);
  for (const auto& [key, plan] : entries) {
    bytes += EncodePersistRecord(PersistedEntry{key, plan});
  }

  std::string tmp_path = SnapshotPath() + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Fail("cannot open snapshot.tmp: " +
                std::string(std::strerror(errno)));
  }
  uint64_t ordinal = snapshot_ordinal_++;
  // Crash point: the k-th snapshot rotation dies with snapshot.tmp half
  // written and no rename issued. The live snapshot and journal are
  // untouched, so recovery sees the pre-rotation state.
  if (FaultInjector::Get().ShouldFail("persist.snapshot", ordinal)) {
    WriteAll(fd, bytes.data(), bytes.size() / 2);
    ::close(fd);
    std::ostringstream why;
    why << "injected crash during snapshot rotation #" << ordinal
        << " (snapshot.tmp torn at byte " << bytes.size() / 2 << " of "
        << bytes.size() << ")";
    return Fail(why.str());
  }
  if (!WriteAll(fd, bytes.data(), bytes.size())) {
    ::close(fd);
    return Fail(std::string("snapshot write failed: ") +
                std::strerror(errno));
  }
  if (options_.fsync && !SyncFd(fd, "snapshot.tmp")) {
    ::close(fd);
    return false;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), SnapshotPath().c_str()) != 0) {
    return Fail(std::string("snapshot rename failed: ") +
                std::strerror(errno));
  }
  if (options_.fsync) {
    // Make the rename itself durable: fsync the containing directory.
    int dir_fd = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd >= 0) {
      bool ok = SyncFd(dir_fd, "state directory");
      ::close(dir_fd);
      if (!ok) return false;
    }
  }
  // The snapshot now holds everything, so the journal restarts empty. A
  // crash between rename and truncate leaves journal entries that are
  // also in the snapshot; replaying them is a harmless refresh (the key
  // determines the plan bits).
  if (!OpenJournal(/*truncate=*/true)) return false;
  saves.Increment();
  snapshot_entries.Add(entries.size());
  if (probe_in_flight_) Reopen();
  return true;
}

ParseResult<RecoveryStats> PlanStore::LoadAndRecover(PlanCache* cache) {
  static obs::Counter& recovered =
      CounterRef("qo.persist.recovered_entries");
  static obs::Counter& torn_tails = CounterRef("qo.persist.torn_tails");
  static obs::Counter& crc_failures = CounterRef("qo.persist.crc_failures");
  static obs::Histogram& recover_us =
      HistogramRef("qo.persist.recover_us");
  AQO_CHECK(cache != nullptr);
  ParseResult<RecoveryStats> result;
  RecoveryStats stats;
  auto start = std::chrono::steady_clock::now();

  // A leftover snapshot.tmp is a rotation that never committed; the live
  // snapshot supersedes it.
  std::error_code ec;
  std::filesystem::remove(SnapshotPath() + ".tmp", ec);

  auto load_file = [&](const std::string& path, PersistFileKind kind,
                       bool* existed, uint64_t* entry_count,
                       size_t* valid_bytes) -> bool {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      *existed = false;
      return true;
    }
    *existed = true;
    std::string bytes = SlurpStream(in);
    if (bytes.empty()) return true;  // freshly created, header not yet out
    ScanResult scan = ScanPersistFile(bytes, kind);
    if (!scan.header_ok) {
      // Not our file (or a future version): refusing beats silently
      // serving an empty cache over real state.
      result.error = path + ": " + scan.info.damage;
      return false;
    }
    if (!scan.info.damage.empty() && stats.damage.empty()) {
      stats.damage = path + ": " + scan.info.damage;
      if (scan.info.damage.find("CRC mismatch") != std::string::npos) {
        crc_failures.Increment();
      }
    }
    if (scan.info.torn_tail) {
      stats.torn_tail = true;
      torn_tails.Increment();
    }
    if (valid_bytes != nullptr) *valid_bytes = scan.valid_bytes;
    *entry_count = scan.info.entries.size();
    for (const PersistedEntry& entry : scan.info.entries) {
      cache->Insert(entry.key, entry.plan);
      ++stats.entries_loaded;
    }
    return true;
  };

  size_t journal_valid_bytes = 0;
  if (!load_file(SnapshotPath(), PersistFileKind::kSnapshot,
                 &stats.had_snapshot, &stats.snapshot_entries, nullptr)) {
    return result;
  }
  if (!load_file(JournalPath(), PersistFileKind::kLog, &stats.had_log,
                 &stats.log_entries, &journal_valid_bytes)) {
    return result;
  }
  // Repair a torn/damaged journal tail now, so later appends extend a
  // clean file (OpenJournal would do the same scan lazily; doing it here
  // makes the repair observable in the recovery stats).
  if (stats.had_log && (stats.torn_tail || !stats.damage.empty())) {
    static obs::Counter& repairs = CounterRef("qo.persist.journal_repairs");
    if (::truncate(JournalPath().c_str(),
                   static_cast<off_t>(journal_valid_bytes)) == 0) {
      repairs.Increment();
    }
  }

  stats.recover_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  recover_us.Record(stats.recover_us);
  recovered.Add(stats.entries_loaded);

  if (obs::RunLog* log = obs::RunLog::Global()) {
    obs::JsonValue record = obs::JsonValue::Object();
    record["type"] = "persist_recovery";
    record["dir"] = options_.dir;
    record["had_snapshot"] = stats.had_snapshot;
    record["had_log"] = stats.had_log;
    record["snapshot_entries"] = stats.snapshot_entries;
    record["log_entries"] = stats.log_entries;
    record["entries_loaded"] = stats.entries_loaded;
    record["torn_tail"] = stats.torn_tail;
    if (!stats.damage.empty()) record["damage"] = stats.damage;
    record["recover_us"] = stats.recover_us;
    log->Write(record);
  }
  result.value = std::move(stats);
  return result;
}

void PlanStore::AttachTo(PlanCache* cache) {
  AQO_CHECK(cache != nullptr);
  cache->SetInsertObserver([this](const Hash128& key, const CachedPlan& plan) {
    AppendEntry(key, plan);
  });
}

}  // namespace aqo
