#ifndef AQO_QO_JOIN_SEQUENCE_H_
#define AQO_QO_JOIN_SEQUENCE_H_

// A join sequence is a permutation of the relation indices {0, ..., n-1}
// (the paper's Z = v_{z1} ... v_{zn}): a left-deep plan that joins the
// running intermediate with one new relation per step.

#include <vector>

#include "graph/graph.h"

namespace aqo {

using JoinSequence = std::vector<int>;

// True when `seq` is a permutation of {0, ..., n-1}.
bool IsPermutation(const JoinSequence& seq, int n);

// {0, 1, ..., n-1}.
JoinSequence IdentitySequence(int n);

// Number of back-edges B_i of the vertex at (1-based paper) position i+1:
// edges from seq[i] to vertices at earlier positions. Entry 0 is 0 by
// convention.
std::vector<int> BackEdgeCounts(const Graph& g, const JoinSequence& seq);

// D_i: number of edges induced by the first i vertices of `seq`, for
// i = 0..n (entry 0 is 0).
std::vector<int> PrefixEdgeCounts(const Graph& g, const JoinSequence& seq);

// True when some join other than the first is a cartesian product, i.e.
// seq[i] (i >= 1) has no edge into {seq[0..i-1]}.
bool HasCartesianProduct(const Graph& g, const JoinSequence& seq);

}  // namespace aqo

#endif  // AQO_QO_JOIN_SEQUENCE_H_
