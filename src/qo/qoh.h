#ifndef AQO_QO_QOH_H_
#define AQO_QO_QOH_H_

// The QO_H problem (paper Section 2.2): join sequences executed as a chain
// of pipelined hash joins under a global memory budget M.
//
// Execution model. A join sequence Z is split into contiguous fragments
// (pipelines). Within a pipeline, each join builds a hash table on its
// *inner* base relation R_{z_{j+1}} and probes it with the stream arriving
// from the previous join; the fragment's input is read from disk and its
// output is materialized to disk.
//
// Cost model. The I/O cost of one hash join with outer size b_R, inner size
// b_S, and memory m is
//     h(m, b_R, b_S) = (b_R + b_S) * g(m, b_S) + b_S,    m >= hjmin(b_S),
// where hjmin(b) = ceil(b^eta) (eta in (0,1), paper: Theta(b^eta)) and g is
// the concrete instantiation
//     g(m, b) = (b - m) / (b - hjmin(b))   clamped to [0, 1]
// which satisfies the paper's axioms: linear decreasing on [hjmin, b], zero
// for m >= b, continuous, and g(hjmin, b) = 1 = Theta(1).
//
// The cost of executing pipeline P(Z, i, k) under a memory allocation is
//     N_{i-1}(Z) + sum_{j=i..k} h(m_j, N_{j-1}(Z), t_{z_{j+1}}) + N_k(Z),
// subject to sum_j m_j <= M and m_j >= hjmin(t_{z_{j+1}}).
//
// Numeric split. Intermediate sizes N_j are astronomically large and are
// carried as LogDouble. Memory amounts are *linear* doubles: the optimal
// allocator must distinguish budgets that differ by a single hjmin(t),
// which log-domain arithmetic cannot. Any relation whose hash table would
// need to fit in memory must therefore have size <= 2^52 pages; relations
// larger than that (like the paper's sentinel R_0 with t_0 = (n t)^12) can
// never be an inner relation of a feasible pipeline — which is exactly the
// role the construction gives them.

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "qo/join_sequence.h"
#include "util/log_double.h"

namespace aqo {

class QohInstance {
 public:
  QohInstance() = default;

  // `memory` is the budget M in pages; `eta` parameterizes hjmin.
  QohInstance(Graph graph, std::vector<LogDouble> sizes, double memory,
              double eta = 0.5);

  int NumRelations() const { return graph_.NumVertices(); }
  const Graph& graph() const { return graph_; }

  LogDouble size(int i) const { return sizes_[static_cast<size_t>(i)]; }
  LogDouble selectivity(int i, int j) const { return sel_[Index(i, j)]; }
  // Requires an edge and 0 < s <= 1.
  void SetSelectivity(int i, int j, LogDouble s);

  double memory() const { return memory_; }
  void SetMemory(double m);
  double eta() const { return eta_; }

  // hjmin(b) = ceil(b^eta).
  LogDouble HashJoinMinMemory(LogDouble pages) const;
  // Same, in linear pages (exact whenever it fits a double; +inf when the
  // exponent exceeds double range — certainly above any budget).
  double HashJoinMinMemoryLinear(LogDouble pages) const;

  void Validate() const;

 private:
  size_t Index(int i, int j) const {
    AQO_DCHECK(0 <= i && i < NumRelations());
    AQO_DCHECK(0 <= j && j < NumRelations());
    return static_cast<size_t>(i) * static_cast<size_t>(NumRelations()) +
           static_cast<size_t>(j);
  }

  Graph graph_;
  std::vector<LogDouble> sizes_;
  std::vector<LogDouble> sel_;
  double memory_ = 0.0;
  double eta_ = 0.5;
};

// N(prefix) for prefix lengths 0..n (entry 0 is 1), with the QO_H
// selectivity semantics (same formula as QO_N).
std::vector<LogDouble> QohPrefixSizes(const QohInstance& inst,
                                      const JoinSequence& seq);

// A pipeline decomposition of the n-1 joins of a sequence: fragment f
// covers joins [starts[f], starts[f+1]-1] in 1-based join indices;
// starts[0] == 1 and an implicit end at n-1.
struct PipelineDecomposition {
  std::vector<int> starts;  // increasing, first element 1

  int NumFragments() const { return static_cast<int>(starts.size()); }
  // [first_join, last_join] of fragment f, 1-based, given total join count.
  std::pair<int, int> Fragment(int f, int total_joins) const;
};

struct PipelineCostResult {
  bool feasible = false;
  LogDouble cost;  // meaningful only when feasible
  // Memory given to each join of the pipeline, aligned with join order.
  std::vector<double> allocation;
};

// Cost of executing joins [first_join, last_join] (1-based) of `seq` as one
// pipeline under the *optimal* memory allocation (continuous greedy, which
// is exact because each join's cost is linear in its memory grant).
// Infeasible when the minimum memory requirements alone exceed M or some
// inner hash table cannot be built at all.
PipelineCostResult OptimalPipelineCost(const QohInstance& inst,
                                       const JoinSequence& seq, int first_join,
                                       int last_join);

// Total cost of a given decomposition (sum of fragment costs), with
// optimal memory allocation inside every fragment.
PipelineCostResult DecompositionCost(const QohInstance& inst,
                                     const JoinSequence& seq,
                                     const PipelineDecomposition& decomp);

struct QohPlan {
  bool feasible = false;
  LogDouble cost;
  PipelineDecomposition decomposition;
};

// Optimal pipeline decomposition of `seq` by dynamic programming over
// break points (O(n^2) pipeline evaluations).
QohPlan OptimalDecomposition(const QohInstance& inst, const JoinSequence& seq);

// Convenience: cost of the best decomposition of `seq`; infeasible plans
// yield feasible=false.
inline QohPlan QohSequenceCost(const QohInstance& inst, const JoinSequence& seq) {
  return OptimalDecomposition(inst, seq);
}

}  // namespace aqo

#endif  // AQO_QO_QOH_H_
