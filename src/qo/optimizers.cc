#include "qo/optimizers.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <optional>

#include "obs/metrics.h"
#include "qo/cost_eval.h"
#include "qo/fast_eval.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace aqo {

const char* EvalTierName(EvalTier tier) {
  return tier == EvalTier::kFast ? "fast" : "exact";
}

bool ParseEvalTier(std::string_view text, EvalTier* tier) {
  if (text == "exact") {
    *tier = EvalTier::kExact;
    return true;
  }
  if (text == "fast") {
    *tier = EvalTier::kFast;
    return true;
  }
  return false;
}

namespace {

// Telemetry counters (see docs/observability.md for naming conventions).
// One registry lookup at first use, then a relaxed atomic add per event.
obs::Counter& CounterRef(const char* name) {
  return obs::Registry::Get().GetCounter(name);
}

// Generates a uniformly random sequence; when `forbid_cartesian`, grows a
// random connected order (falling back to an arbitrary vertex only when the
// graph is disconnected, in which case no cartesian-free order exists and
// the caller's feasibility check rejects).
JoinSequence RandomSequence(const QonInstance& inst, Rng* rng,
                            bool forbid_cartesian) {
  int n = inst.NumRelations();
  if (!forbid_cartesian) {
    JoinSequence seq = IdentitySequence(n);
    rng->Shuffle(&seq);
    return seq;
  }
  JoinSequence seq;
  DynamicBitset placed(n);
  seq.push_back(static_cast<int>(rng->UniformInt(0, n - 1)));
  placed.Set(seq[0]);
  while (static_cast<int>(seq.size()) < n) {
    std::vector<int> frontier;
    for (int v = 0; v < n; ++v) {
      if (!placed.Test(v) && inst.graph().Neighbors(v).Intersects(placed)) {
        frontier.push_back(v);
      }
    }
    int pick;
    if (frontier.empty()) {
      // Disconnected graph: forced cartesian product.
      std::vector<int> rest;
      for (int v = 0; v < n; ++v) {
        if (!placed.Test(v)) rest.push_back(v);
      }
      pick = rest[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(rest.size()) - 1))];
    } else {
      pick = frontier[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(frontier.size()) - 1))];
    }
    seq.push_back(pick);
    placed.Set(pick);
  }
  return seq;
}

bool SequenceAllowed(const QonInstance& inst, const JoinSequence& seq,
                     const OptimizerOptions& options) {
  return !options.forbid_cartesian || !HasCartesianProduct(inst.graph(), seq);
}

}  // namespace

OptimizerResult ExhaustiveQonOptimizer(const QonInstance& inst,
                                       const OptimizerOptions& options) {
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  AQO_CHECK(n <= 10) << "exhaustive search is n! — use DpQonOptimizer";
  static obs::Counter& permutations = CounterRef("qon.exhaustive.permutations");
  static obs::Counter& skipped = CounterRef("qon.exhaustive.skipped");
  RunGuard guard(options.budget, options.cancel);
  OptimizerResult result;
  // next_permutation changes a suffix per step, so the incremental
  // evaluator re-costs only that suffix (bit-identical to the full pass).
  QonCostEvaluator evaluator(inst);
  JoinSequence seq = IdentitySequence(n);
  do {
    if (guard.ShouldStop(result.evaluations)) break;
    permutations.Increment();
    if (!SequenceAllowed(inst, seq, options)) {
      skipped.Increment();
      continue;
    }
    LogDouble cost = evaluator.Cost(seq);
    ++result.evaluations;
    if (!result.feasible || cost < result.cost) {
      result.feasible = true;
      result.cost = cost;
      result.sequence = seq;
    }
  } while (std::next_permutation(seq.begin(), seq.end()));
  result.status = guard.status();
  return result;
}

// --- Subset DP (serial and layer-synchronized parallel) ---
//
// Both variants below must evaluate identical floating-point expression
// trees so their results agree bit for bit; the helpers here are the
// single source of truth for operand order. See docs/parallelism.md.

namespace dp_detail {

constexpr int kNoParent = -1;

// N[mask] from N[mask minus its lowest bit]: multiply in the relation,
// then the selectivities toward it in ascending-bit order.
LogDouble SubsetSizeOf(const QonInstance& inst,
                       const std::vector<LogDouble>& subset_size,
                       size_t mask) {
  int j = std::countr_zero(mask);
  size_t rest = mask & (mask - 1);
  LogDouble v = subset_size[rest] * inst.size(j);
  for (size_t m = rest; m != 0; m &= m - 1) {
    int k = std::countr_zero(m);
    if (inst.graph().HasEdge(k, j)) v *= inst.selectivity(k, j);
  }
  return v;
}

bool MaskConnectsTo(const Graph& g, size_t mask, int j) {
  for (size_t m = mask; m != 0; m &= m - 1) {
    if (g.HasEdge(std::countr_zero(m), j)) return true;
  }
  return false;
}

// Cost of the plan "src, then j": dp[src] + N(src) * min access cost,
// the min taken over src's bits in ascending order.
LogDouble CandidateCost(const QonInstance& inst,
                        const std::vector<LogDouble>& subset_size,
                        const std::vector<LogDouble>& dp, size_t src, int j) {
  LogDouble min_w = inst.size(j);  // upper bound; refined below
  for (size_t m = src; m != 0; m &= m - 1) {
    min_w = MinOf(min_w, inst.AccessCost(std::countr_zero(m), j));
  }
  return dp[src] + subset_size[src] * min_w;
}

// Appends the masks of popcount `k` over `n` bits in increasing numeric
// order (Gosper's hack).
void EnumerateLayer(int n, int k, std::vector<size_t>* out) {
  out->clear();
  if (k <= 0 || k > n) return;
  size_t mask = (static_cast<size_t>(1) << k) - 1;
  size_t limit = static_cast<size_t>(1) << n;
  while (mask < limit) {
    out->push_back(mask);
    size_t c = mask & (~mask + 1);
    size_t r = mask + c;
    if (r >= limit) break;  // top combination: the hack would wrap
    mask = (((r ^ mask) >> 2) / c) | r;
  }
}

// Peels the recorded last relations into the optimal sequence and
// cross-checks the reconstructed cost.
OptimizerResult FinishDp(const QonInstance& inst,
                         const std::vector<LogDouble>& dp,
                         const std::vector<int8_t>& last,
                         const std::vector<uint8_t>& reachable, size_t full,
                         uint64_t evaluations) {
  OptimizerResult result;
  result.evaluations = evaluations;
  if (!reachable[full]) return result;
  result.feasible = true;
  result.cost = dp[full];
  JoinSequence seq;
  size_t mask = full;
  while (mask != 0) {
    int j = last[mask];
    AQO_CHECK(j != kNoParent);
    seq.push_back(j);
    mask &= ~(static_cast<size_t>(1) << j);
  }
  std::reverse(seq.begin(), seq.end());
  result.sequence = seq;
  AQO_CHECK(QonSequenceCost(inst, seq).ApproxEquals(result.cost, 1e-6));
  return result;
}

// Best-so-far plan for a DP cut short mid-table: the partial dp table has
// no full-set plan yet, so the anytime answer is the greedy plan (run
// unbudgeted — it is polynomial and already the DP's quality floor).
// Deterministic: a pure function of the instance. `dp_evaluations` keeps
// the total evaluation count honest about the DP work already spent.
OptimizerResult FinishDpCutShort(const QonInstance& inst,
                                 const OptimizerOptions& options,
                                 PlanStatus status, uint64_t dp_evaluations) {
  OptimizerOptions fallback = options;
  fallback.budget = {};
  fallback.cancel = nullptr;
  fallback.pool = nullptr;
  OptimizerResult result = GreedyQonOptimizer(inst, fallback);
  result.evaluations += dp_evaluations;
  result.status = status;
  return result;
}

void FlushDpCounters(uint64_t states, uint64_t transitions, uint64_t pruned) {
  static obs::Counter& dp_states = CounterRef("qon.dp.states");
  static obs::Counter& dp_transitions = CounterRef("qon.dp.transitions");
  static obs::Counter& dp_pruned = CounterRef("qon.dp.pruned_cartesian");
  // Counted in locals and flushed once: even relaxed atomics are too hot
  // for the innermost DP loop (measurable % on BM_DpOptimizer). Flushing
  // happens on the invoking thread so per-thread counter attribution (see
  // obs/metrics.h) charges the whole DP to its run record.
  dp_states.Add(states);
  dp_transitions.Add(transitions);
  dp_pruned.Add(pruned);
}

}  // namespace dp_detail

OptimizerResult DpQonOptimizerSerial(const QonInstance& inst,
                                     const OptimizerOptions& options) {
  using namespace dp_detail;
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  AQO_CHECK(n <= 24) << "subset DP is 2^n — instance too large";
  size_t full = (static_cast<size_t>(1) << n) - 1;

  // N[mask]: intermediate size of the relation set `mask`.
  std::vector<LogDouble> subset_size(full + 1, LogDouble::One());
  for (size_t mask = 1; mask <= full; ++mask) {
    subset_size[mask] = SubsetSizeOf(inst, subset_size, mask);
  }

  std::vector<LogDouble> dp(full + 1);
  std::vector<int8_t> last(full + 1, kNoParent);  // last relation joined
  std::vector<uint8_t> reachable(full + 1, 0);
  for (int i = 0; i < n; ++i) {
    size_t mask = static_cast<size_t>(1) << i;
    reachable[mask] = 1;
    dp[mask] = LogDouble::Zero();
    last[mask] = static_cast<int8_t>(i);
  }

  RunGuard guard(options.budget, options.cancel);
  uint64_t local_states = 0, local_pruned = 0;
  uint64_t evaluations = 0;
  for (size_t mask = 1; mask <= full; ++mask) {
    if (guard.ShouldStop(evaluations)) {
      FlushDpCounters(local_states, evaluations, local_pruned);
      return FinishDpCutShort(inst, options, guard.status(), evaluations);
    }
    if (!reachable[mask]) continue;
    for (int j = 0; j < n; ++j) {
      size_t bit = static_cast<size_t>(1) << j;
      if (mask & bit) continue;
      if (options.forbid_cartesian &&
          !MaskConnectsTo(inst.graph(), mask, j)) {
        ++local_pruned;
        continue;
      }
      LogDouble candidate = CandidateCost(inst, subset_size, dp, mask, j);
      ++evaluations;
      size_t next = mask | bit;
      bool fresh = !reachable[next];
      local_states += fresh;
      // On exact cost ties the lowest last-relation id wins, making the
      // reconstructed sequence independent of subset enumeration order
      // (the parallel DP visits transitions destination-major).
      if (fresh || candidate < dp[next] ||
          (candidate == dp[next] && j < last[next])) {
        reachable[next] = 1;
        dp[next] = candidate;
        last[next] = static_cast<int8_t>(j);
      }
    }
  }

  FlushDpCounters(local_states, evaluations, local_pruned);
  return FinishDp(inst, dp, last, reachable, full, evaluations);
}

OptimizerResult DpQonOptimizerParallel(const QonInstance& inst,
                                       ThreadPool* pool,
                                       const OptimizerOptions& options) {
  using namespace dp_detail;
  if (pool == nullptr || pool->num_threads() <= 1) {
    return DpQonOptimizerSerial(inst, options);
  }
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  AQO_CHECK(n <= 24) << "subset DP is 2^n — instance too large";
  size_t full = (static_cast<size_t>(1) << n) - 1;

  // Layer-synchronized fill of N[mask]: each mask's value depends only on
  // the previous cardinality layer, so layers parallelize cleanly.
  std::vector<LogDouble> subset_size(full + 1, LogDouble::One());
  std::vector<size_t> layer;
  for (int k = 1; k <= n; ++k) {
    EnumerateLayer(n, k, &layer);
    pool->ParallelFor(layer.size(), [&](size_t idx) {
      size_t mask = layer[idx];
      subset_size[mask] = SubsetSizeOf(inst, subset_size, mask);
    });
  }

  std::vector<LogDouble> dp(full + 1);
  std::vector<int8_t> last(full + 1, kNoParent);
  std::vector<uint8_t> reachable(full + 1, 0);
  for (int i = 0; i < n; ++i) {
    size_t mask = static_cast<size_t>(1) << i;
    reachable[mask] = 1;
    dp[mask] = LogDouble::Zero();
    last[mask] = static_cast<int8_t>(i);
  }

  // Destination-major DP: every transition into a popcount-(k+1) state
  // comes from a popcount-k state, so after layer k is final each
  // destination of layer k+1 can be minimized independently — one writer
  // per state, no cross-thread merge of float values at all. Per-chunk
  // counter locals are summed (order-free uint64 adds) and flushed once on
  // this thread.
  // Cancellation is checked at layer boundaries only: each layer's
  // evaluation total is a pure function of the instance, so even the
  // budget path trips at the same point for every thread count. (The
  // dispatcher still routes budget-capped runs to the serial DP for the
  // tighter per-mask granularity.)
  RunGuard guard(options.budget, options.cancel);
  size_t chunk_count = static_cast<size_t>(pool->num_threads());
  std::vector<uint64_t> chunk_states(chunk_count), chunk_evals(chunk_count),
      chunk_pruned(chunk_count);
  uint64_t total_states = 0, total_evals = 0, total_pruned = 0;
  for (int k = 1; k < n; ++k) {
    if (guard.ShouldStop(total_evals)) {
      FlushDpCounters(total_states, total_evals, total_pruned);
      return FinishDpCutShort(inst, options, guard.status(), total_evals);
    }
    EnumerateLayer(n, k + 1, &layer);
    std::fill(chunk_states.begin(), chunk_states.end(), 0);
    std::fill(chunk_evals.begin(), chunk_evals.end(), 0);
    std::fill(chunk_pruned.begin(), chunk_pruned.end(), 0);
    pool->ParallelForChunks(
        layer.size(), [&](int chunk, size_t begin, size_t end) {
          uint64_t states = 0, evals = 0, pruned = 0;
          for (size_t idx = begin; idx < end; ++idx) {
            size_t next = layer[idx];
            int best_j = kNoParent;
            LogDouble best;
            for (size_t bits = next; bits != 0; bits &= bits - 1) {
              int j = std::countr_zero(bits);
              size_t src = next ^ (static_cast<size_t>(1) << j);
              if (!reachable[src]) continue;
              if (options.forbid_cartesian &&
                  !MaskConnectsTo(inst.graph(), src, j)) {
                ++pruned;
                continue;
              }
              LogDouble candidate =
                  CandidateCost(inst, subset_size, dp, src, j);
              ++evals;
              // Same tie-break as the serial DP: lowest j on equal cost
              // (j ascends here, so keeping the strict winner suffices,
              // but stay explicit).
              if (best_j == kNoParent || candidate < best ||
                  (candidate == best && j < best_j)) {
                best = candidate;
                best_j = j;
              }
            }
            if (best_j != kNoParent) {
              reachable[next] = 1;
              dp[next] = best;
              last[next] = static_cast<int8_t>(best_j);
              ++states;
            }
          }
          chunk_states[static_cast<size_t>(chunk)] = states;
          chunk_evals[static_cast<size_t>(chunk)] = evals;
          chunk_pruned[static_cast<size_t>(chunk)] = pruned;
        });
    for (size_t c = 0; c < chunk_count; ++c) {
      total_states += chunk_states[c];
      total_evals += chunk_evals[c];
      total_pruned += chunk_pruned[c];
    }
  }

  FlushDpCounters(total_states, total_evals, total_pruned);
  return FinishDp(inst, dp, last, reachable, full, total_evals);
}

OptimizerResult DpQonOptimizer(const QonInstance& inst,
                               const OptimizerOptions& options) {
  // Budget-capped runs always take the serial DP: its per-mask check
  // gives the cap real bite on small caps, and the capped trajectory is
  // trivially thread-count independent (see docs/robustness.md).
  if (options.budget.max_evaluations == 0 && options.pool != nullptr &&
      options.pool->num_threads() > 1) {
    return DpQonOptimizerParallel(inst, options.pool, options);
  }
  return DpQonOptimizerSerial(inst, options);
}

OptimizerResult GreedyQonOptimizer(const QonInstance& inst,
                                   const OptimizerOptions& options) {
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  static obs::Counter& starts = CounterRef("qon.greedy.starts");
  static obs::Counter& extensions = CounterRef("qon.greedy.extensions");
  static obs::Counter& dead_ends = CounterRef("qon.greedy.dead_ends");
  RunGuard guard(options.budget, options.cancel);
  OptimizerResult result;
  // Constructive search: the evaluator's dense primitives replace the
  // scattered AccessCost/HasEdge lookups (same folds, bit-identical).
  QonCostEvaluator evaluator(inst);
  for (int start = 0; start < n; ++start) {
    // Between starts only: a cut-short greedy still returns complete
    // constructions, never a partial prefix.
    if (guard.ShouldStop(result.evaluations)) break;
    starts.Increment();
    std::vector<int> prefix = {start};
    DynamicBitset placed(n);
    placed.Set(start);
    LogDouble intermediate = inst.size(start);
    LogDouble cost = LogDouble::Zero();
    bool dead = false;
    while (static_cast<int>(prefix.size()) < n && !dead) {
      int best_j = -1;
      LogDouble best_h;
      bool must_connect = options.forbid_cartesian;
      // Two passes: prefer connected candidates when required.
      for (int pass = 0; pass < 2 && best_j < 0; ++pass) {
        for (int j = 0; j < n; ++j) {
          if (placed.Test(j)) continue;
          if (pass == 0 && !evaluator.ConnectsTo(prefix, j)) continue;
          LogDouble h = intermediate * evaluator.MinAccess(prefix, j);
          ++result.evaluations;
          if (best_j < 0 || h < best_h) {
            best_j = j;
            best_h = h;
          }
        }
        if (must_connect) break;  // do not fall back to cartesian products
      }
      if (best_j < 0) {
        dead = true;  // no connected extension exists
        dead_ends.Increment();
        break;
      }
      extensions.Increment();
      cost += best_h;
      intermediate = evaluator.ExtendSize(intermediate, prefix, best_j);
      prefix.push_back(best_j);
      placed.Set(best_j);
    }
    if (dead) continue;
    if (!result.feasible || cost < result.cost) {
      result.feasible = true;
      result.cost = cost;
      result.sequence = prefix;
    }
  }
  result.status = guard.status();
  return result;
}

OptimizerResult RandomSamplingOptimizer(const QonInstance& inst, Rng* rng,
                                        const OptimizerOptions& options) {
  AQO_CHECK(options.samples >= 1);
  static obs::Counter& drawn = CounterRef("qon.random.samples");
  static obs::Counter& rejected = CounterRef("qon.random.rejected");
  RunGuard guard(options.budget, options.cancel);
  OptimizerResult result;
  QonCostEvaluator evaluator(inst);
  for (int s = 0; s < options.samples; ++s) {
    if (guard.ShouldStop(result.evaluations)) break;
    drawn.Increment();
    JoinSequence seq = RandomSequence(inst, rng, options.forbid_cartesian);
    if (!SequenceAllowed(inst, seq, options)) {
      rejected.Increment();
      continue;
    }
    LogDouble cost = evaluator.Cost(seq);
    ++result.evaluations;
    if (!result.feasible || cost < result.cost) {
      result.feasible = true;
      result.cost = cost;
      result.sequence = std::move(seq);
    }
  }
  result.status = guard.status();
  return result;
}

OptimizerResult SimulatedAnnealingOptimizer(const QonInstance& inst, Rng* rng,
                                            const OptimizerOptions& options) {
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  static obs::Counter& restarts = CounterRef("qon.sa.restarts");
  static obs::Counter& accepts = CounterRef("qon.sa.accepts");
  static obs::Counter& rejects = CounterRef("qon.sa.rejects");
  static obs::Counter& uphill = CounterRef("qon.sa.uphill_accepts");
  static obs::Counter& certified = CounterRef("qo.fast_eval.certified_rejects");
  static obs::Counter& repricings = CounterRef("qo.fast_eval.exact_repricings");
  static obs::Counter& ambiguous = CounterRef("qo.fast_eval.ambiguous");
  RunGuard guard(options.budget, options.cancel);
  OptimizerResult result;
  // Swap/relocate moves touch a suffix; the evaluator re-costs only from
  // the first changed position of each candidate.
  QonCostEvaluator evaluator(inst);
  // Fast tier (docs/performance.md, "Evaluation tiers"): swap candidates
  // are priced by the certified approximate evaluator first. A candidate
  // whose Boltzmann verdict is the same across the whole certified error
  // interval is decided without the exact evaluation; everything else —
  // including every accept, whose cost becomes the new current energy —
  // is re-priced exactly, so the accept/reject trajectory, the RNG
  // stream, and the final (cost, sequence, status) are bit-identical to
  // the exact tier. Only `evaluations` (and hence budget cutoff points)
  // reflects the skipped work.
  const bool use_fast = options.eval_tier == EvalTier::kFast &&
                        !cost_eval_internal::ForceNaive();
  std::optional<QonNeighborhoodEvaluator> fast;
  if (use_fast) fast.emplace(inst);
  for (int restart = 0; restart < options.sa.restarts; ++restart) {
    if (guard.ShouldStop(result.evaluations)) break;
    restarts.Increment();
    JoinSequence current = RandomSequence(inst, rng, options.forbid_cartesian);
    if (!SequenceAllowed(inst, current, options)) continue;
    LogDouble current_cost = evaluator.Cost(current);
    ++result.evaluations;
    bool fast_loaded = false;
    if (!result.feasible || current_cost < result.cost) {
      result.feasible = true;
      result.cost = current_cost;
      result.sequence = current;
    }
    double temperature = options.sa.initial_temperature;
    for (int it = 0; it < options.sa.iterations; ++it) {
      // Checked before the move draw, so a capped trajectory is an exact
      // prefix of the uncapped one (the guard never consumes RNG state).
      if (guard.ShouldStop(result.evaluations)) break;
      JoinSequence candidate = current;
      int swap_lo = -1, swap_hi = -1;
      if (rng->Bernoulli(0.5)) {
        // Swap two positions.
        size_t a = static_cast<size_t>(rng->UniformInt(0, n - 1));
        size_t b = static_cast<size_t>(rng->UniformInt(0, n - 1));
        std::swap(candidate[a], candidate[b]);
        if (a != b) {
          swap_lo = static_cast<int>(std::min(a, b));
          swap_hi = static_cast<int>(std::max(a, b));
        }
      } else {
        // Relocate one relation.
        size_t from = static_cast<size_t>(rng->UniformInt(0, n - 1));
        size_t to = static_cast<size_t>(rng->UniformInt(0, n - 1));
        int v = candidate[from];
        candidate.erase(candidate.begin() + static_cast<int64_t>(from));
        candidate.insert(candidate.begin() + static_cast<int64_t>(to), v);
      }
      temperature *= options.sa.cooling;
      if (!SequenceAllowed(inst, candidate, options)) continue;
      double tprime = std::max(temperature, 1e-9);
      // decided/accept carry a verdict certified from the fast price
      // alone; drew/u track the Boltzmann draw so the exact fallback
      // reuses it — the exact tier draws exactly once per uphill
      // candidate, and so does every path below.
      bool decided = false, accept = false, drew = false;
      double u = 0.0;
      if (use_fast && swap_lo >= 0) {
        if (!fast_loaded) {
          fast->Load(current);
          fast_loaded = true;
        }
        double eps = fast->EpsLog2();
        double fd = fast->PriceSwap(swap_lo, swap_hi) - current_cost.Log2();
        if (fd + eps < 0.0) {
          // Downhill across the whole interval: the exact tier accepts
          // without consuming a draw.
          decided = true;
          accept = true;
        } else if (fd - eps > 0.0) {
          // Uphill across the whole interval: the exact tier draws u and
          // compares against exp(-delta/t) with delta in
          // [fd - eps, fd + eps]. When u clears the interval's upper
          // threshold the rejection is certain — no exact evaluation.
          u = rng->UniformReal();
          drew = true;
          if (u >= std::exp(-(fd - eps) / tprime)) {
            certified.Increment();
            rejects.Increment();
            continue;
          }
          if (u < std::exp(-(fd + eps) / tprime)) {
            decided = true;
            accept = true;
          }
        }
      }
      LogDouble candidate_cost = evaluator.Cost(candidate);
      if (use_fast) repricings.Increment();
      ++result.evaluations;
      // Energy is log2 cost; accept uphill moves with the Boltzmann rule.
      double delta = candidate_cost.Log2() - current_cost.Log2();
      if (!decided) {
        if (use_fast && swap_lo >= 0) ambiguous.Increment();
        if (delta <= 0.0) {
          accept = true;
        } else {
          if (!drew) u = rng->UniformReal();
          accept = u < std::exp(-delta / tprime);
        }
      }
      if (accept) {
        accepts.Increment();
        if (delta > 0.0) uphill.Increment();
        current = std::move(candidate);
        current_cost = candidate_cost;
        fast_loaded = false;
        if (current_cost < result.cost) {
          result.cost = current_cost;
          result.sequence = current;
        }
      } else {
        rejects.Increment();
      }
    }
  }
  result.status = guard.status();
  return result;
}

OptimizerResult IterativeImprovementOptimizer(const QonInstance& inst,
                                              Rng* rng,
                                              const OptimizerOptions& options) {
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  static obs::Counter& restart_count = CounterRef("qon.ii.restarts");
  static obs::Counter& improvements = CounterRef("qon.ii.improvements");
  static obs::Counter& local_optima = CounterRef("qon.ii.local_optima");
  RunGuard guard(options.budget, options.cancel);
  OptimizerResult result;
  // The swap neighborhood is the evaluator's best case: each candidate
  // differs from the last evaluated one at two positions.
  QonCostEvaluator evaluator(inst);
  // Fast tier: rank each swap candidate with the certified approximate
  // price first. A candidate provably no better than `current` (fast
  // price at least current + eps) is exactly what the exact tier would
  // evaluate and reject, so it is skipped outright; everything else is
  // re-priced exactly before the accept decision. The accepted-swap
  // trajectory — and the final (cost, sequence, status) — is bit-identical
  // to the exact tier; only `evaluations` shrinks.
  const bool use_fast = options.eval_tier == EvalTier::kFast &&
                        !cost_eval_internal::ForceNaive();
  std::optional<QonNeighborhoodEvaluator> fast;
  if (use_fast) fast.emplace(inst);
  static obs::Counter& certified = CounterRef("qo.fast_eval.certified_rejects");
  static obs::Counter& repricings = CounterRef("qo.fast_eval.exact_repricings");
  for (int restart = 0; restart < options.restarts; ++restart) {
    if (guard.ShouldStop(result.evaluations)) break;
    restart_count.Increment();
    JoinSequence current = RandomSequence(inst, rng, options.forbid_cartesian);
    if (!SequenceAllowed(inst, current, options)) continue;
    LogDouble current_cost = evaluator.Cost(current);
    ++result.evaluations;
    bool fast_loaded = false;
    bool improved = true;
    bool cut_short = false;
    while (improved) {
      // A cut mid-descent still folds `current` into the result below, so
      // the best-so-far reflects every accepted improvement.
      if (guard.ShouldStop(result.evaluations)) {
        cut_short = true;
        break;
      }
      improved = false;
      for (size_t a = 0; a < current.size() && !improved; ++a) {
        for (size_t b = a + 1; b < current.size() && !improved; ++b) {
          if (use_fast) {
            if (!fast_loaded) {
              fast->Load(current);
              fast_loaded = true;
            }
            double fd = fast->PriceSwap(static_cast<int>(a),
                                        static_cast<int>(b));
            if (fd >= current_cost.Log2() + fast->EpsLog2()) {
              // Certified: the exact cost is at least current_cost, so
              // the exact tier would reject this swap too.
              certified.Increment();
              continue;
            }
          }
          std::swap(current[a], current[b]);
          bool ok = SequenceAllowed(inst, current, options);
          if (ok) {
            LogDouble cost = evaluator.Cost(current);
            if (use_fast) repricings.Increment();
            ++result.evaluations;
            if (cost < current_cost) {
              current_cost = cost;
              improved = true;
              improvements.Increment();
              fast_loaded = false;
              break;
            }
          }
          if (!improved) std::swap(current[a], current[b]);  // undo
        }
      }
    }
    if (!cut_short) local_optima.Increment();
    if (!result.feasible || current_cost < result.cost) {
      result.feasible = true;
      result.cost = current_cost;
      result.sequence = current;
    }
  }
  result.status = guard.status();
  return result;
}

QohOptimizerResult ExhaustiveQohOptimizer(const QohInstance& inst,
                                          const Budget& budget,
                                          CancelToken* cancel) {
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  AQO_CHECK(n <= 9) << "exhaustive QO_H search is n! * n^2";
  static obs::Counter& permutations = CounterRef("qoh.exhaustive.permutations");
  RunGuard guard(budget, cancel);
  QohOptimizerResult result;
  QohCostEvaluator evaluator(inst);
  JoinSequence seq = IdentitySequence(n);
  do {
    if (guard.ShouldStop(result.evaluations)) break;
    permutations.Increment();
    const QohPlan& plan = evaluator.Evaluate(seq);
    ++result.evaluations;
    if (plan.feasible && (!result.feasible || plan.cost < result.cost)) {
      result.feasible = true;
      result.cost = plan.cost;
      result.sequence = seq;
      result.decomposition = plan.decomposition;
    }
  } while (std::next_permutation(seq.begin(), seq.end()));
  result.status = guard.status();
  return result;
}

QohOptimizerResult GreedyQohOptimizer(const QohInstance& inst,
                                      const Budget& budget,
                                      CancelToken* cancel) {
  int n = inst.NumRelations();
  AQO_CHECK(n >= 2);
  static obs::Counter& starts = CounterRef("qoh.greedy.starts");
  RunGuard guard(budget, cancel);
  QohOptimizerResult result;
  QohCostEvaluator evaluator(inst);
  for (int start = 0; start < n; ++start) {
    if (guard.ShouldStop(result.evaluations)) break;
    starts.Increment();
    JoinSequence seq = {start};
    DynamicBitset placed(n);
    placed.Set(start);
    LogDouble intermediate = inst.size(start);
    while (static_cast<int>(seq.size()) < n) {
      int best_j = -1;
      LogDouble best_size;
      for (int j = 0; j < n; ++j) {
        if (placed.Test(j)) continue;
        LogDouble next = evaluator.ExtendSize(intermediate, seq, j);
        if (best_j < 0 || next < best_size) {
          best_j = j;
          best_size = next;
        }
      }
      seq.push_back(best_j);
      placed.Set(best_j);
      intermediate = best_size;
    }
    const QohPlan& plan = evaluator.Evaluate(seq);
    ++result.evaluations;
    if (plan.feasible && (!result.feasible || plan.cost < result.cost)) {
      result.feasible = true;
      result.cost = plan.cost;
      result.sequence = seq;
      result.decomposition = plan.decomposition;
    }
  }
  result.status = guard.status();
  return result;
}

}  // namespace aqo
