#include "qo/service.h"

#include <exception>
#include <unordered_map>
#include <utility>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/runlog.h"
#include "obs/trace.h"
#include "qo/adaptive.h"
#include "util/cancellation.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace aqo {

namespace {

void AddString(HashAccumulator* acc, std::string_view s) {
  acc->Add(s.size());
  for (char c : s) acc->Add(static_cast<uint64_t>(static_cast<uint8_t>(c)));
}

constexpr uint64_t kQonKeyTag = 0x716f6e5f6b657931ULL;
constexpr uint64_t kQohKeyTag = 0x716f685f6b657931ULL;
// Deterministic optimizers ignore the Rng; folding a fixed sentinel
// instead of the seed lets their entries hit across seeds.
constexpr uint64_t kDeterministicSeed = 0x64657465726d696eULL;

// Lowercase hex of a canonical fingerprint, for trace-slice annotation.
std::string FingerprintHex(const Hash128& h) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<size_t>(15 - i)] = kDigits[(h.hi >> (4 * i)) & 0xf];
    out[static_cast<size_t>(31 - i)] = kDigits[(h.lo >> (4 * i)) & 0xf];
  }
  return out;
}

// The outcome-split per-item latency histogram: batch items report into
// one of four distributions so a p99 regression in computed items is not
// drowned out by a sea of microsecond cache hits.
obs::Histogram& ItemHistogram(PlanStatus status, bool cache_hit) {
  static obs::Histogram& hit_us =
      obs::Registry::Get().GetHistogram("qo.service.item_cache_hit_us");
  static obs::Histogram& computed_us =
      obs::Registry::Get().GetHistogram("qo.service.item_computed_us");
  static obs::Histogram& failed_us =
      obs::Registry::Get().GetHistogram("qo.service.item_failed_us");
  static obs::Histogram& deadline_us =
      obs::Registry::Get().GetHistogram("qo.service.item_deadline_us");
  if (cache_hit) return hit_us;
  switch (status) {
    case PlanStatus::kFailed:
      return failed_us;
    case PlanStatus::kDeadlineExceeded:
      return deadline_us;
    default:
      return computed_us;
  }
}

// Runs items [0, count) through `fn`, on the pool when it helps. The pool
// never changes results: every fn(i) is a pure function of i.
template <typename Fn>
void ForEach(ThreadPool* pool, size_t count, const Fn& fn) {
  if (pool != nullptr && pool->num_threads() > 1 && count > 1) {
    pool->ParallelFor(count, fn);
  } else {
    for (size_t i = 0; i < count; ++i) fn(i);
  }
}

// Shared batch skeleton for both families. `Traits` supplies the
// family-specific pieces; the phase structure (canonicalize in parallel,
// probe serially, compute misses in parallel, replay logs + insert +
// resolve duplicates serially) is identical.
template <typename Traits>
std::vector<typename Traits::Item> RunBatch(
    const std::vector<typename Traits::Instance>& instances,
    const BatchOptions& options) {
  const auto* entry = Traits::Registry().Find(options.optimizer);
  AQO_CHECK(entry != nullptr)
      << "unknown " << Traits::kFamily << " optimizer: " << options.optimizer;

  // Stateful entries (adaptive) must never be served from or inserted
  // into a PlanCache: their results depend on feedback-store state, so a
  // cached plan could go stale the moment the store learns. Gating here
  // also disables in-batch dedup for them — every duplicate runs and
  // records its own outcome, exactly what the cache-off baseline does.
  PlanCache* cache = entry->cacheable ? options.cache : nullptr;

  size_t count = instances.size();
  std::vector<typename Traits::Canonical> canon(count);
  ForEach(options.pool, count,
          [&](size_t i) { canon[i] = Traits::Canonicalize(instances[i]); });

  std::vector<Hash128> keys(count);
  for (size_t i = 0; i < count; ++i) {
    keys[i] = Traits::Key(canon[i], *entry, options);
  }

  // One representative per distinct key, in first-occurrence order. With
  // no cache attached every instance is its own representative: the
  // cache-off path is the undeduplicated baseline the differential test
  // compares against (the results are bit-identical either way, since
  // duplicates share canonical bytes and RNG stream).
  std::vector<size_t> reps;
  std::vector<size_t> rep_slot(count);
  if (cache != nullptr) {
    std::unordered_map<Hash128, size_t, Hash128Hasher> slot_of;
    slot_of.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      auto [it, fresh] = slot_of.try_emplace(keys[i], reps.size());
      if (fresh) reps.push_back(i);
      rep_slot[i] = it->second;
    }
  } else {
    reps.resize(count);
    for (size_t i = 0; i < count; ++i) {
      reps[i] = i;
      rep_slot[i] = i;
    }
  }

  // Serial cache probes: deterministic hit/miss counter totals.
  std::vector<CachedPlan> plans(reps.size());
  std::vector<char> hit(reps.size(), 0);
  if (cache != nullptr) {
    for (size_t r = 0; r < reps.size(); ++r) {
      hit[r] = cache->Lookup(keys[reps[r]], &plans[r]) ? 1 : 0;
    }
  }

  // Batch-wide wall-clock deadline, observed cooperatively by every
  // computed item. Local to the batch; un-armed (deadline_ms <= 0) means
  // the token is never attached and nothing changes.
  CancelToken batch_cancel;
  if (options.deadline_ms > 0) batch_cancel.ArmDeadline(options.deadline_ms);

  // Compute the misses, each under its own run-log buffer and its own
  // fingerprint-derived RNG stream.
  //
  // Per-item isolation: a throwing item (real exception or the
  // "service.item" fault site, keyed by the item's instance index so the
  // ordinal is thread-schedule independent) is retried once with the same
  // RNG stream and a fresh run-log buffer; a second failure marks that
  // item kFailed (infeasible, no run record, never cached) and leaves
  // every sibling untouched. The pool propagates nothing: failures are
  // absorbed inside the lambda.
  static obs::Counter& retries =
      obs::Registry::Get().GetCounter("qo.service.retries");
  static obs::Counter& failures =
      obs::Registry::Get().GetCounter("qo.service.failures");
  std::vector<std::string> logs(reps.size());
  ForEach(options.pool, reps.size(), [&](size_t r) {
    if (hit[r]) return;
    const auto& c = canon[reps[r]];
    // One trace slice and one latency sample per computed item, covering
    // the whole attempt (retry included) — the latency a caller of this
    // item actually saw. Cache-hit and duplicate items get theirs in the
    // resolve loop, so slices sum to exactly the batch size.
    obs::TraceSpan slice("qo.service.item", "service");
    auto item_start = std::chrono::steady_clock::now();
    obs::InstanceShape shape{.family = std::string(Traits::kFamily),
                             .kind = "batch",
                             .side = "",
                             .source = "",
                             .n = c.instance.NumRelations(),
                             .edges = c.instance.graph().NumEdges()};
    auto knobs = Traits::Knobs(options, c);
    if (options.deadline_ms > 0) knobs.cancel = &batch_cancel;
    auto attempt = [&] {
      obs::RunLogBuffer buffer;
      Rng rng(MixSeed(options.seed, c.fingerprint.lo));
      FaultInjector::Get().MaybeThrow("service.item", reps[r]);
      auto result = obs::InstrumentedRun(
          std::string(Traits::kFamily) + "." + entry->name, shape,
          [&] { return entry->run(c.instance, knobs, &rng); });
      plans[r] = Traits::ToPlan(result);
      logs[r] = buffer.Take();
    };
    try {
      attempt();
    } catch (const std::exception&) {
      retries.Increment();
      try {
        attempt();
      } catch (const std::exception&) {
        failures.Increment();
        CachedPlan failed;
        failed.status = PlanStatus::kFailed;
        plans[r] = failed;
        logs[r].clear();
      }
    }
    uint64_t item_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - item_start)
            .count());
    ItemHistogram(plans[r].status, /*cache_hit=*/false).Record(item_us);
    if (slice.armed()) {
      slice.Annotate("fingerprint", FingerprintHex(c.fingerprint));
      slice.Annotate("cache_hit", false);
      slice.Annotate("status", PlanStatusName(plans[r].status));
    }
  });

  // Replay buffered records in representative (= first occurrence) order,
  // then populate the cache serially in the same order so LRU state and
  // eviction decisions are scheduling-independent.
  if (obs::RunLog::Global() != nullptr) {
    for (const std::string& text : logs) {
      if (!text.empty()) obs::RunLog::Global()->WriteRaw(text);
    }
  }
  // Adaptive epilogue: fold this batch's pending feedback into committed
  // state, serially and after the log replay, so (a) every decision in
  // the batch saw the same pre-batch store regardless of scheduling, and
  // (b) the adaptive_commit record lands after every decision record it
  // covers — the order the replay tool reconstructs.
  if (entry->name == "adaptive") {
    CommitAdaptiveFeedback(Traits::Adaptive(options));
  }
  if (cache != nullptr) {
    for (size_t r = 0; r < reps.size(); ++r) {
      if (hit[r]) continue;
      // Only deterministic outcomes are cacheable: complete and
      // budget-exhausted plans are pure functions of (instance, options,
      // seed). Deadline-cut plans depend on the wall clock and failed
      // items must stay retryable — neither may poison the cache.
      if (plans[r].status != PlanStatus::kComplete &&
          plans[r].status != PlanStatus::kBudgetExhausted) {
        continue;
      }
      cache->Insert(keys[reps[r]], plans[r]);
    }
  }

  // Resolve every instance from its representative's plan. In-batch
  // duplicates probe the cache (serially) so the hit counters reflect
  // the work the cache actually saved.
  std::vector<typename Traits::Item> out(count);
  for (size_t i = 0; i < count; ++i) {
    size_t r = rep_slot[i];
    // Computed misses already got their slice and latency sample in the
    // compute loop; everything else (probe hits and in-batch duplicates)
    // is served here, and its cost is the resolve itself.
    bool served_here = !(i == reps[r] && !hit[r]);
    obs::TraceSpan slice(served_here ? "qo.service.item" : "qo.service.resolve",
                         "service");
    auto item_start = std::chrono::steady_clock::now();
    bool from_cache = hit[r] != 0;
    if (cache != nullptr && i != reps[r]) {
      from_cache = cache->Lookup(keys[i], nullptr);
    }
    out[i].from_cache = from_cache;
    out[i].fingerprint = canon[i].fingerprint;
    Traits::FromPlan(plans[r], canon[i].from_canonical, &out[i].result);
    if (served_here) {
      uint64_t item_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - item_start)
              .count());
      ItemHistogram(plans[r].status, /*cache_hit=*/true).Record(item_us);
    }
    if (slice.armed()) {
      slice.Annotate("fingerprint", FingerprintHex(canon[i].fingerprint));
      slice.Annotate("cache_hit", from_cache);
      slice.Annotate("status", PlanStatusName(plans[r].status));
    }
  }
  return out;
}

struct QonTraits {
  using Instance = QonInstance;
  using Canonical = CanonicalQon;
  using Item = QonBatchItem;
  static constexpr std::string_view kFamily = "qon";

  static const OptimizerRegistry& Registry() {
    return OptimizerRegistry::Qon();
  }
  static CanonicalQon Canonicalize(const QonInstance& inst) {
    return CanonicalizeQon(inst);
  }
  static Hash128 Key(const CanonicalQon& canon,
                     const QonOptimizerEntry& entry,
                     const BatchOptions& options) {
    return QonPlanCacheKey(canon.fingerprint, entry.name, options.qon,
                           entry.deterministic ? kDeterministicSeed
                                               : options.seed);
  }
  static OptimizerOptions Knobs(const BatchOptions& options,
                                const CanonicalQon&) {
    return options.qon;
  }
  static const AdaptiveKnobs& Adaptive(const BatchOptions& options) {
    return options.qon.adaptive;
  }
  static CachedPlan ToPlan(const OptimizerResult& r) {
    return CachedPlan{r.feasible, r.sequence, {}, r.cost, r.evaluations,
                      r.status};
  }
  static void FromPlan(const CachedPlan& plan,
                       const std::vector<int>& from_canonical,
                       OptimizerResult* out) {
    out->feasible = plan.feasible;
    out->cost = plan.cost;
    out->evaluations = plan.evaluations;
    out->status = plan.status;
    out->sequence = MapSequenceFromCanonical(plan.sequence, from_canonical);
  }
};

struct QohTraits {
  using Instance = QohInstance;
  using Canonical = CanonicalQoh;
  using Item = QohBatchItem;
  static constexpr std::string_view kFamily = "qoh";

  static const QohOptimizerRegistry& Registry() {
    return QohOptimizerRegistry::Get();
  }
  static CanonicalQoh Canonicalize(const QohInstance& inst) {
    return CanonicalizeQoh(inst);
  }
  // The sentinel_first knob names a relation in *caller* labels; the
  // service runs on the canonical instance, so it is remapped per
  // instance — and folded into the cache key in canonical form, which is
  // exactly the form two relabeled duplicates agree on.
  static QohOptimizerOptions Knobs(const BatchOptions& options,
                                   const CanonicalQoh& canon) {
    QohOptimizerOptions knobs = options.qoh;
    if (knobs.sentinel_first >= 0) {
      knobs.sentinel_first =
          canon.to_canonical[static_cast<size_t>(knobs.sentinel_first)];
    }
    return knobs;
  }
  static Hash128 Key(const CanonicalQoh& canon,
                     const QohOptimizerEntry& entry,
                     const BatchOptions& options) {
    return QohPlanCacheKey(canon.fingerprint, entry.name,
                           Knobs(options, canon),
                           entry.deterministic ? kDeterministicSeed
                                               : options.seed);
  }
  static const AdaptiveKnobs& Adaptive(const BatchOptions& options) {
    return options.qoh.adaptive;
  }
  static CachedPlan ToPlan(const QohOptimizerResult& r) {
    return CachedPlan{r.feasible, r.sequence, r.decomposition.starts, r.cost,
                      r.evaluations, r.status};
  }
  static void FromPlan(const CachedPlan& plan,
                       const std::vector<int>& from_canonical,
                       QohOptimizerResult* out) {
    out->feasible = plan.feasible;
    out->cost = plan.cost;
    out->evaluations = plan.evaluations;
    out->status = plan.status;
    out->sequence = MapSequenceFromCanonical(plan.sequence, from_canonical);
    // Decompositions are positional (fragment boundaries by join index),
    // so they survive relabeling unchanged.
    out->decomposition.starts = plan.pipeline_starts;
  }
};

}  // namespace

std::vector<QonBatchItem> OptimizeQonBatch(
    const std::vector<QonInstance>& instances, const BatchOptions& options) {
  return RunBatch<QonTraits>(instances, options);
}

std::vector<QohBatchItem> OptimizeQohBatch(
    const std::vector<QohInstance>& instances, const BatchOptions& options) {
  return RunBatch<QohTraits>(instances, options);
}

Hash128 QonPlanCacheKey(const Hash128& fingerprint, std::string_view optimizer,
                        const OptimizerOptions& options, uint64_t seed) {
  const QonOptimizerEntry* entry = OptimizerRegistry::Qon().Find(optimizer);
  AQO_CHECK(entry != nullptr) << "unknown QO_N optimizer: " << optimizer;
  HashAccumulator acc(kQonKeyTag);
  acc.Add(fingerprint.lo);
  acc.Add(fingerprint.hi);
  AddString(&acc, entry->name);
  acc.Add(options.forbid_cartesian ? 1 : 0);
  acc.Add(static_cast<uint64_t>(options.samples));
  acc.Add(static_cast<uint64_t>(options.restarts));
  acc.Add(static_cast<uint64_t>(options.sa.iterations));
  acc.AddDouble(options.sa.initial_temperature);
  acc.AddDouble(options.sa.cooling);
  acc.Add(static_cast<uint64_t>(options.sa.restarts));
  acc.Add(static_cast<uint64_t>(options.ga.population));
  acc.Add(static_cast<uint64_t>(options.ga.generations));
  acc.AddDouble(options.ga.crossover_rate);
  acc.AddDouble(options.ga.mutation_rate);
  acc.Add(static_cast<uint64_t>(options.ga.tournament));
  acc.Add(static_cast<uint64_t>(options.ga.elites));
  acc.Add(options.bnb_node_limit);
  // Deterministic eval cap: different caps yield different (valid)
  // best-so-far plans, so they must not alias. Deadlines and cancel
  // tokens are deliberately absent — deadline-cut plans are never
  // inserted in the first place.
  acc.Add(options.budget.max_evaluations);
  // Adaptive knobs (the adaptive entry itself is never cached, but the
  // key must still be injective over everything that shapes a result).
  AddString(&acc, options.adaptive.fallback);
  AddString(&acc, options.adaptive.candidates);
  acc.AddDouble(options.adaptive.quality_target);
  acc.Add(static_cast<uint64_t>(options.adaptive.k_neighbors));
  acc.Add(static_cast<uint64_t>(options.adaptive.min_trials));
  acc.Add(options.adaptive.seed);
  acc.Add(seed);
  return acc.Digest();
}

Hash128 QohPlanCacheKey(const Hash128& fingerprint, std::string_view optimizer,
                        const QohOptimizerOptions& options, uint64_t seed) {
  const QohOptimizerEntry* entry = QohOptimizerRegistry::Get().Find(optimizer);
  AQO_CHECK(entry != nullptr) << "unknown QO_H optimizer: " << optimizer;
  HashAccumulator acc(kQohKeyTag);
  acc.Add(fingerprint.lo);
  acc.Add(fingerprint.hi);
  AddString(&acc, entry->name);
  acc.Add(static_cast<uint64_t>(options.samples));
  acc.Add(static_cast<uint64_t>(options.restarts));
  acc.Add(static_cast<uint64_t>(
      static_cast<int64_t>(options.sentinel_first)));
  acc.Add(static_cast<uint64_t>(options.sa.iterations));
  acc.AddDouble(options.sa.initial_temperature);
  acc.AddDouble(options.sa.cooling);
  acc.Add(static_cast<uint64_t>(options.sa.restarts));
  // See QonPlanCacheKey: the eval cap shapes the cached plan bits.
  acc.Add(options.budget.max_evaluations);
  // See QonPlanCacheKey on the adaptive knobs.
  AddString(&acc, options.adaptive.fallback);
  AddString(&acc, options.adaptive.candidates);
  acc.AddDouble(options.adaptive.quality_target);
  acc.Add(static_cast<uint64_t>(options.adaptive.k_neighbors));
  acc.Add(static_cast<uint64_t>(options.adaptive.min_trials));
  acc.Add(options.adaptive.seed);
  acc.Add(seed);
  return acc.Digest();
}

}  // namespace aqo
