#include "qo/qon.h"

namespace aqo {

QonInstance::QonInstance(Graph graph, std::vector<LogDouble> sizes)
    : graph_(std::move(graph)), sizes_(std::move(sizes)) {
  int n = graph_.NumVertices();
  AQO_CHECK_EQ(static_cast<int>(sizes_.size()), n);
  for (LogDouble t : sizes_) AQO_CHECK(t > LogDouble::Zero());
  sel_.assign(static_cast<size_t>(n) * static_cast<size_t>(n), LogDouble::One());
  w_.assign(static_cast<size_t>(n) * static_cast<size_t>(n), LogDouble::One());
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      if (k != j) ResetDefaultAccessCost(k, j);
    }
  }
}

void QonInstance::SetSize(int i, LogDouble t) {
  AQO_CHECK(t > LogDouble::Zero());
  sizes_[static_cast<size_t>(i)] = t;
  for (int k = 0; k < NumRelations(); ++k) {
    if (k != i) {
      ResetDefaultAccessCost(k, i);
      ResetDefaultAccessCost(i, k);
    }
  }
}

void QonInstance::SetSelectivity(int i, int j, LogDouble s) {
  AQO_CHECK(graph_.HasEdge(i, j)) << "selectivity on non-edge " << i << "," << j;
  AQO_CHECK(s > LogDouble::Zero() && s <= LogDouble::One());
  sel_[Index(i, j)] = s;
  sel_[Index(j, i)] = s;
  ResetDefaultAccessCost(i, j);
  ResetDefaultAccessCost(j, i);
}

void QonInstance::ResetDefaultAccessCost(int k, int j) {
  // Default: perfect index when a predicate exists (expected matching
  // tuples, the lower bound), full scan otherwise.
  w_[Index(k, j)] = sizes_[static_cast<size_t>(j)] * sel_[Index(k, j)];
}

void QonInstance::SetAccessCost(int k, int j, LogDouble w) {
  AQO_CHECK(k != j);
  LogDouble lo = sizes_[static_cast<size_t>(j)] * sel_[Index(k, j)];
  LogDouble hi = sizes_[static_cast<size_t>(j)];
  AQO_CHECK(lo <= w && w <= hi)
      << "access cost out of [t_j s, t_j]: w=" << w << " lo=" << lo
      << " hi=" << hi;
  w_[Index(k, j)] = w;
}

void QonInstance::Validate() const {
  int n = NumRelations();
  for (int i = 0; i < n; ++i) {
    AQO_CHECK(sizes_[static_cast<size_t>(i)] > LogDouble::Zero());
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      AQO_CHECK(sel_[Index(i, j)] == sel_[Index(j, i)]) << "asymmetric S";
      if (!graph_.HasEdge(i, j)) {
        AQO_CHECK(sel_[Index(i, j)] == LogDouble::One())
            << "selectivity != 1 on non-edge";
      }
      LogDouble lo = sizes_[static_cast<size_t>(j)] * sel_[Index(i, j)];
      LogDouble hi = sizes_[static_cast<size_t>(j)];
      AQO_CHECK(lo <= w_[Index(i, j)] && w_[Index(i, j)] <= hi)
          << "W out of range at (" << i << "," << j << ")";
    }
  }
}

std::vector<LogDouble> PrefixSizes(const QonInstance& inst,
                                   const JoinSequence& seq) {
  // Hot path (one call per candidate in the naive evaluators): the O(n)
  // permutation check plus its allocation stays debug-only here; release
  // builds validate at the entry points (QonSequenceCost, the evaluators).
  AQO_DCHECK(IsPermutation(seq, inst.NumRelations()));
  std::vector<LogDouble> sizes(seq.size() + 1);
  sizes[0] = LogDouble::One();
  for (size_t i = 0; i < seq.size(); ++i) {
    int v = seq[i];
    LogDouble next = sizes[i] * inst.size(v);
    for (size_t j = 0; j < i; ++j) {
      if (inst.graph().HasEdge(seq[j], v)) next *= inst.selectivity(seq[j], v);
    }
    sizes[i + 1] = next;
  }
  return sizes;
}

std::vector<LogDouble> QonJoinCosts(const QonInstance& inst,
                                    const JoinSequence& seq) {
  std::vector<LogDouble> costs;
  // n <= 1 has no joins; guarded explicitly because seq.size() - 1 below
  // underflows to SIZE_MAX for an empty sequence.
  if (seq.size() <= 1) return costs;
  std::vector<LogDouble> prefix = PrefixSizes(inst, seq);
  costs.reserve(seq.size() - 1);
  for (size_t i = 1; i < seq.size(); ++i) {
    int next = seq[i];
    LogDouble min_w = inst.AccessCost(seq[0], next);
    for (size_t j = 1; j < i; ++j) {
      min_w = MinOf(min_w, inst.AccessCost(seq[j], next));
    }
    costs.push_back(prefix[i] * min_w);
  }
  return costs;
}

LogDouble QonSequenceCost(const QonInstance& inst, const JoinSequence& seq) {
  AQO_CHECK(IsPermutation(seq, inst.NumRelations()));
  LogDouble total = LogDouble::Zero();
  for (LogDouble h : QonJoinCosts(inst, seq)) total += h;
  return total;
}

}  // namespace aqo
