#ifndef AQO_QO_IKKBZ_H_
#define AQO_QO_IKKBZ_H_

// The Ibaraki-Kameda / Krishnamurthy-Boral-Zaniolo (IK/KBZ) polynomial-time
// optimizer for *tree* query graphs ([1] and [6] in the paper). Section 6.3
// contrasts it with the hardness results: trees are optimizable in
// polynomial time, while adding Theta(m^tau) non-tree edges already makes
// polylog approximation NP-hard.
//
// Restricted to cartesian-product-free sequences on a tree query graph, the
// QO_N cost function has the adjacent-sequence-interchange (ASI) property:
// appending relation j (whose tree parent p is already placed) costs
// N(X) * C_j and scales the intermediate by T_j, with
//     C_j = AccessCost(p, j),      T_j = t_j * s_{pj},
// so C(Z) = t_root * sum_j (prod_{l before j} T_l) * C_j. IK/KBZ finds the
// optimal such sequence per root by rank-ordering with precedence
// constraints (chain merging + normalization), then takes the best root.
// O(n^2 log n) overall.

#include "qo/optimizers.h"
#include "qo/qon.h"

namespace aqo {

// Exact optimizer for tree query graphs (aborts when the graph is not a
// connected acyclic graph). Returns the optimal cartesian-product-free
// sequence. The optional budget/cancel pair is checked between roots: a
// cut-short run returns the best over the roots solved so far (always at
// least one, so the best-so-far plan is a complete sequence).
OptimizerResult IkkbzOptimizer(const QonInstance& inst,
                               const Budget& budget = {},
                               CancelToken* cancel = nullptr);

// True when the instance's query graph is a tree.
bool IsTreeQueryGraph(const Graph& g);

}  // namespace aqo

#endif  // AQO_QO_IKKBZ_H_
