#ifndef AQO_QO_QON_H_
#define AQO_QO_QON_H_

// The QO_N problem (paper Section 2.1): left-deep join-order optimization
// where every join is computed by the nested-loops method.
//
// An instance is (n, Q = (V,E), S, T, W):
//   * Q       — undirected query graph; an edge means a join predicate.
//   * S       — symmetric selectivity matrix; s_ij = 1 when {i,j} is not an
//               edge.
//   * T       — relation sizes t_i in tuples (one page per tuple).
//   * W       — access-path costs: AccessCost(k, j) is the least cost of
//               solving the predicate between R_k and R_j for one given
//               tuple of R_k using the best access path of R_j. It is
//               constrained to [t_j * s_kj, t_j], and equals t_j when there
//               is no predicate (every tuple of R_j qualifies).
//
// The cost of join sequence Z = v_{z1} ... v_{zn} is
//   C(Z) = sum_{i=1}^{n-1} H_i(Z),
//   H_i(Z) = N(X) * min_{v_k in X} AccessCost(k, z_{i+1}),  X = z_1..z_i,
// where N(X) is the estimated intermediate size: the product of the member
// relation sizes and all selectivities internal to X.
//
// All sizes/selectivities/costs are LogDouble: the hardness instances of
// Section 4 have costs around alpha^{Theta(n^2)}.

#include <vector>

#include "graph/graph.h"
#include "qo/join_sequence.h"
#include "util/log_double.h"

namespace aqo {

class QonInstance {
 public:
  QonInstance() = default;

  // Builds an instance with "default" access paths: AccessCost(k, j) is
  // t_j * s_kj for edges (a perfect index) and t_j for non-edges.
  // `selectivities` are given per edge via SetSelectivity afterwards, or
  // all 1 initially.
  QonInstance(Graph graph, std::vector<LogDouble> sizes);

  int NumRelations() const { return graph_.NumVertices(); }
  const Graph& graph() const { return graph_; }

  LogDouble size(int i) const { return sizes_[static_cast<size_t>(i)]; }
  void SetSize(int i, LogDouble t);

  LogDouble selectivity(int i, int j) const {
    return sel_[Index(i, j)];
  }
  // Sets s_ij = s_ji; requires {i,j} to be an edge of the query graph and
  // 0 < s <= 1. Re-derives the default access costs for this pair unless
  // they were explicitly overridden.
  void SetSelectivity(int i, int j, LogDouble s);

  // Per-outer-tuple cost of probing R_j given a tuple of R_k.
  LogDouble AccessCost(int k, int j) const { return w_[Index(k, j)]; }
  // Overrides the access cost; must satisfy t_j * s_kj <= w <= t_j.
  void SetAccessCost(int k, int j, LogDouble w);

  // Aborts if any invariant is violated (use after hand-building).
  void Validate() const;

 private:
  size_t Index(int i, int j) const {
    AQO_DCHECK(0 <= i && i < NumRelations());
    AQO_DCHECK(0 <= j && j < NumRelations());
    return static_cast<size_t>(i) * static_cast<size_t>(NumRelations()) +
           static_cast<size_t>(j);
  }

  void ResetDefaultAccessCost(int k, int j);

  Graph graph_;
  std::vector<LogDouble> sizes_;
  std::vector<LogDouble> sel_;  // n*n, symmetric, 1 on non-edges and diagonal
  std::vector<LogDouble> w_;    // n*n, w_[k*n+j] = AccessCost(k, j)
};

// N(prefix) for every prefix length 0..n; entry 0 is 1 (empty product).
std::vector<LogDouble> PrefixSizes(const QonInstance& inst,
                                   const JoinSequence& seq);

// H_1 .. H_{n-1}; entry i-1 holds H_i(Z).
std::vector<LogDouble> QonJoinCosts(const QonInstance& inst,
                                    const JoinSequence& seq);

// C(Z) = sum of join costs.
LogDouble QonSequenceCost(const QonInstance& inst, const JoinSequence& seq);

}  // namespace aqo

#endif  // AQO_QO_QON_H_
