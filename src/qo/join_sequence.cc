#include "qo/join_sequence.h"

#include "util/check.h"

namespace aqo {

bool IsPermutation(const JoinSequence& seq, int n) {
  if (static_cast<int>(seq.size()) != n) return false;
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (int v : seq) {
    if (v < 0 || v >= n || seen[static_cast<size_t>(v)]) return false;
    seen[static_cast<size_t>(v)] = true;
  }
  return true;
}

JoinSequence IdentitySequence(int n) {
  JoinSequence seq(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) seq[static_cast<size_t>(i)] = i;
  return seq;
}

std::vector<int> BackEdgeCounts(const Graph& g, const JoinSequence& seq) {
  AQO_CHECK(IsPermutation(seq, g.NumVertices()));
  int n = g.NumVertices();
  std::vector<int> counts(static_cast<size_t>(n), 0);
  DynamicBitset placed(n);
  for (size_t i = 0; i < seq.size(); ++i) {
    counts[i] = g.Neighbors(seq[i]).AndCount(placed);
    placed.Set(seq[i]);
  }
  return counts;
}

std::vector<int> PrefixEdgeCounts(const Graph& g, const JoinSequence& seq) {
  std::vector<int> back = BackEdgeCounts(g, seq);
  std::vector<int> d(seq.size() + 1, 0);
  for (size_t i = 0; i < seq.size(); ++i) d[i + 1] = d[i] + back[i];
  return d;
}

bool HasCartesianProduct(const Graph& g, const JoinSequence& seq) {
  std::vector<int> back = BackEdgeCounts(g, seq);
  for (size_t i = 1; i < back.size(); ++i) {
    if (back[i] == 0) return true;
  }
  return false;
}

}  // namespace aqo
