#ifndef AQO_QO_FAST_EVAL_H_
#define AQO_QO_FAST_EVAL_H_

// The fast (approximate, certified) evaluation tier for neighborhood
// pricing — the opt-in second tier behind OptimizerOptions::eval_tier.
//
// The exact evaluators in qo/cost_eval.h are pinned to the naive code's
// left-to-right expression tree: LogDouble addition is log-sum-exp and is
// not associative, so the bit-identity contract forbids re-associating the
// cost fold, and the exact tier's incremental speedup has a mathematical
// ceiling (BENCH_COST_EVAL.json). The evaluators below deliberately give
// that constraint up. They keep every per-target quantity as flat
// structure-of-arrays of raw log2-domain doubles (access costs,
// masked-selectivity rows where a non-edge contributes an exactly
// representable +0.0, running min/sum prefix matrices), accumulate in the
// log domain with free re-association, and price a whole swap neighborhood
// of a loaded sequence in one batched pass: all n-1 adjacent
// transpositions cost O(1) each after an O(n^2) Load, and an arbitrary
// swap (i, j) costs O((j-i) * n). The inner loops are contiguous,
// branch-free, and AQO_RESTRICT-qualified; an explicit AVX2 path (see
// fast_eval.cc) covers the elementwise min/add kernels and is guarded
// behind a scalar fallback that produces bit-identical kernel outputs —
// only IEEE-exact operations (add of disjoint rows, elementwise min) are
// vectorized, while the log-sum-exp reduction stays scalar in both paths.
//
// Correctness contract (docs/performance.md, "Evaluation tiers"):
//
//   |fast_log2(candidate) - naive_log2(candidate)| <= EpsLog2()
//
// where naive_log2 is LogDouble::Log2() of the exact fold. The bound is a
// worst-case interval/ulp argument over the fold length: in real
// arithmetic log-sum-exp *is* associative, so re-association contributes
// nothing and the error is pure rounding — at most O(n^2) floating-point
// operations on either side, each perturbing the running log2 value by at
// most a few ulps of its magnitude, which is bounded by the per-instance
// constant A = sum |log2 t_v| + sum |log2 masked selectivities| +
// max |log2 access cost| + 1. EpsLog2() = C * n^2 * DBL_EPSILON * A with a
// generous constant C; tests/fast_eval_test.cc and tests/property_test.cc
// assert the bound across 1000 seeded instances. Fast costs are only ever
// used to *rank* candidates: every candidate an optimizer might accept
// (anything not provably worse than the incumbent by more than EpsLog2())
// is re-priced through the exact evaluator before acceptance, so final
// (cost, sequence, status) triples are bit-identical to the exact tier.
//
// The QO_H evaluator prices pipeline-swap neighborhoods the same way. Its
// feasibility verdict is *exact*, not approximate: memory floors are
// folded in join order with the same linear-domain doubles the exact DP
// uses, and reachability in the decomposition DP is cost-independent, so
// the fast tier's feasible/infeasible answer is bit-identical to the
// naive DP's. Only the cost carries the eps bound (its DP prunes against
// the incumbent with an EpsLog2() slack so pruning cannot push the
// returned minimum outside the certified interval).
//
// Telemetry: qo.fast_eval.neighborhoods counts Load calls,
// qo.fast_eval.candidates counts priced candidates. The optimizer
// adoption sites add qo.fast_eval.certified_rejects,
// qo.fast_eval.exact_repricings, and qo.fast_eval.ambiguous.
//
// Thread safety: same model as qo/cost_eval.h — one evaluator per
// optimizer run; the instance must outlive it.

#include <vector>

#include "qo/qoh.h"
#include "qo/qon.h"

namespace aqo {

namespace fast_eval_internal {

// "avx2" when the vector kernels below were compiled with the AVX2
// intrinsic path, "scalar" otherwise. Recorded by tools/bench_snapshot so
// committed speedup curves are comparable across machines.
const char* SimdPath();

// Elementwise kernels over contiguous double rows. The AVX2 and scalar
// builds are bit-identical: vector min/add on doubles is the lanewise IEEE
// operation. The *Scalar variants are always compiled (they are the
// fallback bodies) so tests can assert SIMD/scalar parity on AVX2 builds.
void RowMin(double* AQO_RESTRICT dst, const double* AQO_RESTRICT a,
            const double* AQO_RESTRICT b, int n);
void RowAdd(double* AQO_RESTRICT dst, const double* AQO_RESTRICT a,
            const double* AQO_RESTRICT b, int n);
void RowMinScalar(double* AQO_RESTRICT dst, const double* AQO_RESTRICT a,
                  const double* AQO_RESTRICT b, int n);
void RowAddScalar(double* AQO_RESTRICT dst, const double* AQO_RESTRICT a,
                  const double* AQO_RESTRICT b, int n);
// In-place folds: dst = min(dst, src) / dst += src.
void RowMinInPlace(double* AQO_RESTRICT dst, const double* AQO_RESTRICT src,
                   int n);
void RowAddInPlace(double* AQO_RESTRICT dst, const double* AQO_RESTRICT src,
                   int n);
void RowMinInPlaceScalar(double* AQO_RESTRICT dst,
                         const double* AQO_RESTRICT src, int n);
void RowAddInPlaceScalar(double* AQO_RESTRICT dst,
                         const double* AQO_RESTRICT src, int n);

// log2(2^a + 2^b) with -infinity as the additive identity — the raw-double
// twin of LogDouble::operator+ (same hi + log1p(exp2(lo - hi)) / ln2
// form, so the per-operation rounding profile matches the exact fold's).
double Lse2(double a, double b);

}  // namespace fast_eval_internal

// --- QO_N ---------------------------------------------------------------

class QonNeighborhoodEvaluator {
 public:
  explicit QonNeighborhoodEvaluator(const QonInstance& inst);

  int NumRelations() const { return n_; }

  // Certified bound on |fast log2 cost - exact log2 cost| for any
  // candidate priced by this evaluator (see header comment).
  double EpsLog2() const { return eps_log2_; }

  // Lays out the swap-neighborhood state of `seq`: log2 prefix sizes,
  // running per-target min-access and selectivity-sum matrices, and
  // forward/backward log-sum-exp partials of the per-join terms. O(n^2),
  // row-vectorized. Must be called before the Price* methods; call again
  // whenever the base sequence changes.
  void Load(const JoinSequence& seq);
  bool loaded() const { return loaded_; }
  const JoinSequence& sequence() const { return seq_; }

  // Fast log2 cost of the loaded sequence itself.
  double BaseCostLog2() const;

  // Prices all n-1 adjacent transpositions (i, i+1) of the loaded
  // sequence in one batched pass: the returned array holds the fast log2
  // cost of each candidate at index i. One contiguous gather, one
  // branch-free batched add/min pass over all candidates, one scalar
  // log-sum-exp pass. Valid until the next Load. Requires n >= 2.
  const double* PriceAdjacentAll();

  // Fast log2 cost of the candidate obtained by swapping positions i < j
  // of the loaded sequence. O((j - i) * n): terms outside (i-1, j+1) reuse
  // the loaded partials (their real value is unchanged by the swap — the
  // re-association freedom the exact tier does not have).
  double PriceSwap(int i, int j);

  // Fast log2 cost of an arbitrary sequence, without touching the loaded
  // neighborhood state (scratch rows only). O(n^2), branch-free inner
  // loops. Used by population optimizers that price unrelated candidates.
  double SequenceCostLog2(const JoinSequence& seq);

 private:
  int n_ = 0;
  double eps_log2_ = 0.0;
  // Instance data as raw log2 doubles, structure-of-arrays.
  std::vector<double> lt_;     // lt_[v] = log2 t_v
  std::vector<double> lw_;     // lw_[t*n+k] = log2 AccessCost(k, t); +inf diag
  std::vector<double> lwt_;    // transpose: lwt_[k*n+t] = lw_[t*n+k]
  std::vector<double> mselt_;  // mselt_[u*n+t] = edge(t,u) ? log2 sel(u,t) : +0.0
  // Loaded neighborhood state.
  bool loaded_ = false;
  JoinSequence seq_;
  std::vector<double> lp_;    // lp_[p] = log2 N(first p relations), p in [0,n]
  std::vector<double> mp_;    // mp_[p*n+t] = min_{q<p} lw_[t*n+seq_[q]]
  std::vector<double> ps_;    // ps_[p*n+t] = sum_{q<p} msel_[t*n+seq_[q]]
  std::vector<double> h_;     // h_[p] = per-join log2 term, p in [1, n-1]
  std::vector<double> fwd_;   // fwd_[p] = lse(h_[1..p]); fwd_[0] = -inf
  std::vector<double> bwd_;   // bwd_[p] = lse(h_[p..n-1]); bwd_[n] = -inf
  // Adjacent-batch scratch (gathered per-candidate operands + outputs).
  std::vector<double> g_mpb_, g_mpa_, g_psb_, g_ltb_, g_lwab_;
  std::vector<double> b_h1_, b_h2_;
  std::vector<double> out_;
  // PriceSwap / SequenceCostLog2 scratch rows.
  std::vector<double> cur_min_, cur_ps_;
};

// --- QO_H ---------------------------------------------------------------

class QohNeighborhoodEvaluator {
 public:
  // Same n >= 2 contract as QohCostEvaluator; the memory budget is
  // captured at construction.
  explicit QohNeighborhoodEvaluator(const QohInstance& inst);

  int NumRelations() const { return n_; }
  double EpsLog2() const { return eps_log2_; }

  // Loads the base sequence: log2 prefix sizes via the masked selectivity
  // prefix-sum matrix, per-join hash-build shapes, and the full
  // decomposition DP in raw log2 doubles. O(n^2) rows + the DP.
  void Load(const JoinSequence& seq);
  bool loaded() const { return loaded_; }

  // Base verdicts for the loaded sequence. BaseFeasible() is bit-identical
  // to the exact DP's feasibility; BaseCostLog2() carries the eps bound.
  bool BaseFeasible() const { return base_feasible_; }
  double BaseCostLog2() const { return base_cost_log2_; }

  // Fast price of the candidate = loaded sequence with positions i < j
  // swapped. `*feasible` receives the exact feasibility verdict (memory
  // floors and DP reachability are replicated with the exact tier's own
  // linear-domain arithmetic); the returned log2 cost is within EpsLog2()
  // of the exact optimal-decomposition cost when feasible.
  double PriceSwap(int i, int j, bool* feasible);

 private:
  // Shared DP driver over the candidate join-shape arrays, starting at
  // join `first_join` (earlier DP rows are read from `dp`/`reach`).
  void RunDp(int first_join, const double* jlp, const double* jopi,
             const double* jh1, const double* jslope, const double* jinner,
             const double* jhjmin_lin, const double* jextra_cap,
             const unsigned char* jinfeasible, double* dp,
             unsigned char* reach);
  bool PipelineCostFast(int first, int last, bool bounded, double bound,
                        const double* jlp, const double* jopi,
                        const double* jh1, const double* jinner,
                        const double* jhjmin_lin, const double* jextra_cap,
                        double* cost);

  int n_ = 0;
  int total_joins_ = 0;
  double memory_linear_ = 0.0;
  double eps_log2_ = 0.0;
  // Per-relation shape scalars (computed once through the same LogDouble
  // expressions the exact evaluator uses, then stored as raw log2/linear
  // doubles — bit-identical inputs to both tiers).
  std::vector<double> lt_;              // log2 t_v
  std::vector<double> rel_hjmin_lin_;   // linear hjmin
  std::vector<double> rel_extra_cap_;   // linear b - hjmin
  std::vector<double> rel_denom_log2_;  // log2 (b - hjmin) when cap > 0
  std::vector<unsigned char> rel_build_infeasible_;
  std::vector<double> mselt_;  // mselt_[k*n+t] = edge ? log2 sel(k,t) : +0.0
  // Loaded base state.
  bool loaded_ = false;
  bool base_feasible_ = false;
  double base_cost_log2_ = 0.0;
  JoinSequence seq_;
  std::vector<double> lp_;  // log2 prefix sizes, [0, n]
  std::vector<double> ps_;  // ps_[p*n+t] masked selectivity prefix sums
  // Base per-join shapes (1-based join index; join j's inner is seq_[j]).
  std::vector<double> jopi_, jh1_, jslope_, jinner_, jhjmin_lin_, jextra_cap_;
  std::vector<unsigned char> jinfeasible_;
  std::vector<double> dp_;
  std::vector<unsigned char> reach_;
  // Candidate scratch (copies of the base arrays with the changed span
  // overwritten, plus the candidate DP tail).
  std::vector<double> c_jlp_, c_jopi_, c_jh1_, c_jslope_, c_jinner_,
      c_jhjmin_lin_, c_jextra_cap_;
  std::vector<unsigned char> c_jinfeasible_;
  std::vector<double> c_dp_;
  std::vector<unsigned char> c_reach_;
  // Pipeline scratch.
  std::vector<int> sorted_;
  std::vector<double> extra_;
};

}  // namespace aqo

#endif  // AQO_QO_FAST_EVAL_H_
