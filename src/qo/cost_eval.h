#ifndef AQO_QO_COST_EVAL_H_
#define AQO_QO_COST_EVAL_H_

// Zero-allocation incremental cost evaluators for QO_N and QO_H.
//
// The naive entry points (QonSequenceCost / OptimalDecomposition) allocate
// fresh vectors and re-validate the permutation on every call, and always
// recompute the whole sequence — even when a local-search optimizer only
// swapped two positions of the previous candidate. The evaluators below
// copy the instance into flat, cache-friendly rows once (dense access-cost
// and selectivity rows keyed by the *target* relation, adjacency bitsets as
// raw words), keep every per-evaluation buffer as reusable scratch, and
// re-evaluate only the suffix that starts at the first changed position.
//
// Bit-identity invariant. Every LogDouble the evaluators produce is the
// result of the exact floating-point expression tree the naive code
// evaluates: prefix sizes fold "size, then selectivities in position
// order", min access costs fold left to right from position 0, the total
// cost folds H_1 + H_2 + ... left to right, and the QO_H pipeline/DP code
// replicates the shape construction, greedy allocation, and transition
// order of OptimalDecomposition operand for operand. Because a change at
// position p leaves every prefix value with index <= p the bitwise-same
// double, resuming the fold at p yields *bit-identical* — never merely
// approximately equal — costs. tests/cost_eval_test.cc enforces this
// differentially against the naive code. See docs/performance.md.
//
// Thread safety: an evaluator is a mutable per-invocation object; create
// one per optimizer run (they are cheap: O(n^2) construction). The
// instance must stay alive and unmodified for the evaluator's lifetime.

#include <atomic>
#include <cstdint>
#include <vector>

#include "qo/qoh.h"
#include "qo/qon.h"

namespace aqo {

namespace cost_eval_internal {
// Test-only escape hatch: when set, evaluators delegate to the naive cost
// functions (and invalidate their incremental state). Lets differential
// tests prove that rewired optimizers produce bit-identical (cost,
// sequence, evaluations) triples with and without the fast path.
extern std::atomic<bool> g_force_naive;
inline bool ForceNaive() {
  return g_force_naive.load(std::memory_order_relaxed);
}
}  // namespace cost_eval_internal

// RAII toggle for tests; not for production use.
class ScopedNaiveCostEvaluation {
 public:
  ScopedNaiveCostEvaluation();
  ~ScopedNaiveCostEvaluation();
  ScopedNaiveCostEvaluation(const ScopedNaiveCostEvaluation&) = delete;
  ScopedNaiveCostEvaluation& operator=(const ScopedNaiveCostEvaluation&) =
      delete;

 private:
  bool previous_;
};

// --- QO_N ---------------------------------------------------------------

class QonCostEvaluator {
 public:
  explicit QonCostEvaluator(const QonInstance& inst);

  int NumRelations() const { return n_; }

  // C(seq), bit-identical to QonSequenceCost(inst, seq). Diffs `seq`
  // against the previously evaluated sequence and recomputes only from the
  // first position that changed. Zero allocations.
  LogDouble Cost(const JoinSequence& seq);

  // Swaps positions i and j of the last evaluated sequence and evaluates
  // the result, recomputing from min(i, j). Requires a prior Cost() call.
  LogDouble CostAfterSwap(int i, int j);

  // Evaluates `seq`, which must agree with the last evaluated sequence on
  // positions [0, first_changed); recomputes from `first_changed` onward.
  LogDouble CostWithPrefix(const JoinSequence& seq, int first_changed);

  // The last evaluated sequence (valid after a Cost* call).
  const JoinSequence& sequence() const { return seq_; }

  // Dense stateless primitives for constructive optimizers (greedy, branch
  // & bound). Each folds in exactly the order the naive loops do, so
  // results are bit-identical; they honor the test-only naive toggle.
  //
  // min_{k in prefix} AccessCost(k, target), folded left to right.
  LogDouble MinAccess(const std::vector<int>& prefix, int target) const;
  // Same fold but seeded with `init` (branch & bound seeds with t_target).
  LogDouble MinAccessSeeded(LogDouble init, const std::vector<int>& prefix,
                            int target) const;
  // intermediate * t_target * (selectivities toward prefix, in prefix
  // order) — one constructive extension of the running intermediate size.
  LogDouble ExtendSize(LogDouble intermediate, const std::vector<int>& prefix,
                       int target) const;
  // Whether `target` has a join predicate with any prefix relation.
  bool ConnectsTo(const std::vector<int>& prefix, int target) const;

 private:
  LogDouble EvaluateFrom(int first);
  bool AdjTest(int t, int u) const {
    return (adj_[static_cast<size_t>(t) * words_ +
                 static_cast<size_t>(u >> 6)] >>
            (u & 63)) &
           1;
  }

  const QonInstance* inst_;
  int n_ = 0;
  size_t words_ = 0;
  // Instance data, flattened. Rows are keyed by the target relation t so
  // the hot folds walk contiguous memory: wt_[t*n + k] = AccessCost(k, t),
  // selt_[t*n + k] = selectivity(k, t), adj_[t*words + w] = neighbor words.
  std::vector<LogDouble> sizes_;
  std::vector<LogDouble> wt_;
  std::vector<LogDouble> selt_;
  std::vector<uint64_t> adj_;
  // Raw log2 mirrors of the rows above, for the EvaluateFrom hot loops:
  // wlog_[t*n + k] = AccessCost(k, t).Log2() (+inf on the diagonal, never
  // selected since t is outside its own prefix); mslog_[t*n + k] =
  // selectivity(k, t).Log2() when (t, k) is a graph edge, else +0.0 so the
  // fold adds it unconditionally — x + 0.0 is exact, and no log2 value
  // here is -0.0, so the branch-free sum is bit-identical to the gated
  // LogDouble product. szlog_[t] = size(t).Log2().
  std::vector<double> wlog_;
  std::vector<double> mslog_;
  std::vector<double> szlog_;
  // Incremental state: last sequence, N(prefix) per position, and the
  // left-to-right running cost sum after each join.
  bool valid_ = false;
  JoinSequence seq_;
  std::vector<LogDouble> prefix_;    // size n+1; prefix_[p] = N(first p)
  std::vector<LogDouble> run_cost_;  // size n; run_cost_[p] = H_1+...+H_p
};

// --- QO_H ---------------------------------------------------------------

class QohCostEvaluator {
 public:
  // Requires n >= 2 (same contract as OptimalDecomposition). The
  // instance's memory budget is captured at construction; do not call
  // SetMemory on it while the evaluator is alive.
  explicit QohCostEvaluator(const QohInstance& inst);

  int NumRelations() const { return n_; }

  // Optimal pipeline decomposition of `seq`, bit-identical (feasibility,
  // cost, fragment starts, and qoh.decomp.* counter totals) to
  // OptimalDecomposition(inst, seq). The returned reference is owned by
  // the evaluator and invalidated by the next Evaluate call.
  const QohPlan& Evaluate(const JoinSequence& seq);

  // Dense constructive primitive (same semantics as the QO_N variant).
  LogDouble ExtendSize(LogDouble intermediate, const std::vector<int>& prefix,
                       int target) const;

 private:
  void EvaluateFrom(int first_pos);
  // Cost of joins [first, last] as one pipeline; false when the memory
  // floors exceed the budget, or when `bound` is non-null and the
  // (monotone) partial cost fold strictly exceeds it — in which case the
  // candidate cannot beat or tie the DP incumbent. Requires sorted_ to
  // hold exactly these joins in slope order and none of them to be
  // build-infeasible (both maintained by the DP loop in EvaluateFrom).
  bool PipelineCost(int first, int last, const LogDouble* bound,
                    LogDouble* cost);
  bool AdjTest(int t, int u) const {
    return (adj_[static_cast<size_t>(t) * words_ +
                 static_cast<size_t>(u >> 6)] >>
            (u & 63)) &
           1;
  }

  const QohInstance* inst_;
  int n_ = 0;
  int total_joins_ = 0;
  size_t words_ = 0;
  double memory_linear_ = 0.0;
  LogDouble memory_;
  // Instance data, flattened (rows keyed by target, as in QO_N).
  std::vector<LogDouble> sizes_;
  std::vector<LogDouble> selt_;
  std::vector<uint64_t> adj_;
  // Per-relation hash-build shape (pure functions of t_v and M, computed
  // once): hjmin, its linear form, the linear inner size, the extra memory
  // capacity b - hjmin, the slope denominator b - hjmin as LogDouble (only
  // when capacity > 0, exactly like the naive branch), and whether the
  // build can fit in memory at all.
  std::vector<LogDouble> rel_hjmin_;
  std::vector<double> rel_hjmin_lin_;
  std::vector<double> rel_inner_lin_;
  std::vector<double> rel_extra_cap_;
  std::vector<LogDouble> rel_denom_;
  std::vector<uint8_t> rel_build_infeasible_;
  // Incremental state.
  bool valid_ = false;
  JoinSequence seq_;
  std::vector<LogDouble> prefix_;  // size n+1 (QohPrefixSizes association)
  // Per-join shapes for the cached sequence, 1-based join index j: the
  // inner relation is seq_[j], the outer stream is prefix_[j].
  std::vector<LogDouble> join_opi_;    // outer + inner
  std::vector<LogDouble> join_h1_;     // (outer + inner) + inner: the g==1 term
  std::vector<LogDouble> join_slope_;  // (outer+inner)/(inner-hjmin), or 0
  std::vector<LogDouble> join_inner_;
  std::vector<double> join_hjmin_lin_;
  std::vector<double> join_extra_cap_;
  std::vector<uint8_t> join_infeasible_;
  // DP over break points, reusable across evaluations for the unchanged
  // prefix; evals_pre_[k] = reachable-gated pipeline evaluations performed
  // for transitions into joins 1..k (replicates qoh.decomp.pipeline_evals).
  std::vector<LogDouble> dp_;
  std::vector<int> parent_;
  std::vector<uint8_t> reachable_;
  std::vector<uint64_t> evals_pre_;
  // Pipeline scratch: sorted_ holds the current DP pipeline's joins in
  // decreasing-slope order (maintained by insertion as the pipeline grows
  // at the front — the comparator is a strict total order, so this is the
  // exact permutation PipelineCostImpl's std::sort produces); extra_ is
  // the greedy allocator's per-join grant, indexed by absolute join.
  std::vector<int> sorted_;
  std::vector<double> extra_;
  QohPlan plan_;
};

}  // namespace aqo

#endif  // AQO_QO_COST_EVAL_H_
