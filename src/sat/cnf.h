#ifndef AQO_SAT_CNF_H_
#define AQO_SAT_CNF_H_

// CNF formulas. Literals use the DIMACS convention: a literal is a nonzero
// int, +v meaning variable v is true and -v meaning it is false; variables
// are numbered 1..num_vars. The reduction chain of the paper starts from
// 3SAT(13): 3CNF formulas in which every variable occurs in at most 13
// clauses (Section 3).

#include <cstdlib>
#include <vector>

#include "util/check.h"

namespace aqo {

using Lit = int;
using Clause = std::vector<Lit>;

// An assignment maps variable v (1-based) to values[v - 1].
using Assignment = std::vector<bool>;

class CnfFormula {
 public:
  CnfFormula() = default;
  explicit CnfFormula(int num_vars) : num_vars_(num_vars) {
    AQO_CHECK(num_vars >= 0);
  }

  int num_vars() const { return num_vars_; }
  int NumClauses() const { return static_cast<int>(clauses_.size()); }
  const std::vector<Clause>& clauses() const { return clauses_; }
  const Clause& clause(int i) const { return clauses_[static_cast<size_t>(i)]; }

  // Adds a clause; literals must reference variables in [1, num_vars].
  // Duplicate literals within a clause are allowed (and harmless).
  void AddClause(Clause clause);

  // Convenience for 3-literal clauses.
  void AddClause3(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  bool ClauseSatisfied(const Clause& clause, const Assignment& a) const;

  // Number of clauses satisfied by `a`.
  int CountSatisfied(const Assignment& a) const;

  bool IsSatisfiedBy(const Assignment& a) const {
    return CountSatisfied(a) == NumClauses();
  }

  // True when every clause has at most 3 literals.
  bool IsThreeCnf() const;

  // Number of clauses the most frequent variable occurs in (counting each
  // clause once even if the variable appears twice in it).
  int MaxVariableOccurrence() const;

  // Per-variable clause-occurrence counts, index v-1.
  std::vector<int> VariableOccurrences() const;

 private:
  int num_vars_ = 0;
  std::vector<Clause> clauses_;
};

}  // namespace aqo

#endif  // AQO_SAT_CNF_H_
