#include "sat/gen.h"

#include <cstdlib>
#include <vector>

#include "util/check.h"

namespace aqo {

CnfFormula RandomThreeSat(int num_vars, int num_clauses, Rng* rng) {
  AQO_CHECK(num_vars >= 3);
  CnfFormula f(num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> vars = rng->SampleWithoutReplacement(num_vars, 3);
    Clause clause;
    for (int v : vars) {
      Lit l = v + 1;
      clause.push_back(rng->Bernoulli(0.5) ? l : -l);
    }
    f.AddClause(std::move(clause));
  }
  return f;
}

CnfFormula PlantedSatisfiableThreeSat(int num_vars, int num_clauses, Rng* rng,
                                      Assignment* hidden) {
  AQO_CHECK(num_vars >= 3);
  Assignment a(static_cast<size_t>(num_vars));
  for (int v = 0; v < num_vars; ++v) a[static_cast<size_t>(v)] = rng->Bernoulli(0.5);

  CnfFormula f(num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> vars = rng->SampleWithoutReplacement(num_vars, 3);
    Clause clause;
    bool satisfied = false;
    for (int v : vars) {
      bool polarity = rng->Bernoulli(0.5);
      if (polarity == a[static_cast<size_t>(v)]) satisfied = true;
      clause.push_back(polarity ? v + 1 : -(v + 1));
    }
    if (!satisfied) {
      // Force one literal to agree with the hidden assignment.
      size_t i = static_cast<size_t>(rng->UniformInt(0, 2));
      int v = vars[i];
      clause[i] = a[static_cast<size_t>(v)] ? v + 1 : -(v + 1);
    }
    f.AddClause(std::move(clause));
  }
  AQO_CHECK(f.IsSatisfiedBy(a));
  if (hidden != nullptr) *hidden = std::move(a);
  return f;
}

CnfFormula PigeonholeFormula(int holes) {
  AQO_CHECK(holes >= 1);
  int pigeons = holes + 1;
  auto var = [holes](int p, int h) { return p * holes + h + 1; };
  CnfFormula f(pigeons * holes);
  // Every pigeon sits somewhere.
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(var(p, h));
    f.AddClause(std::move(c));
  }
  // No two pigeons share a hole.
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        f.AddClause({-var(p, h), -var(q, h)});
      }
    }
  }
  return f;
}

CnfFormula XorChainFormula(int k, bool parity) {
  AQO_CHECK(k >= 2);
  // Variables 1..k are the chain inputs; k-1 auxiliaries t_i encode
  // prefix parities: t_1 = x_1 xor x_2, t_i = t_{i-1} xor x_{i+1}; the
  // last auxiliary is constrained to `parity`.
  int aux_base = k;
  CnfFormula f(k + (k - 1));
  auto emit_xor = [&f](int a, int b, int out) {
    // out <-> a xor b.
    f.AddClause({-a, -b, -out});
    f.AddClause({a, b, -out});
    f.AddClause({a, -b, out});
    f.AddClause({-a, b, out});
  };
  emit_xor(1, 2, aux_base + 1);
  for (int i = 2; i < k; ++i) {
    emit_xor(aux_base + i - 1, i + 1, aux_base + i);
  }
  int last = aux_base + k - 1;
  f.AddClause({parity ? last : -last});
  return f;
}

CnfFormula BoundOccurrences(const CnfFormula& formula, int max_occurrence) {
  AQO_CHECK(max_occurrence >= 3);
  std::vector<int> occ = formula.VariableOccurrences();

  // Assign new variable ids: split variables get one copy per occurrence.
  int next_var = 1;
  std::vector<int> first_copy(static_cast<size_t>(formula.num_vars()) + 1, 0);
  std::vector<int> num_copies(static_cast<size_t>(formula.num_vars()) + 1, 0);
  for (int v = 1; v <= formula.num_vars(); ++v) {
    int k = occ[static_cast<size_t>(v - 1)];
    int copies = k > max_occurrence ? k : 1;
    first_copy[static_cast<size_t>(v)] = next_var;
    num_copies[static_cast<size_t>(v)] = copies;
    next_var += copies;
  }

  CnfFormula out(next_var - 1);
  // Rewrite clauses, consuming one copy per occurrence of a split variable.
  std::vector<int> used(static_cast<size_t>(formula.num_vars()) + 1, 0);
  for (const Clause& c : formula.clauses()) {
    Clause rewritten;
    // A clause counts as a single occurrence even if the variable appears
    // twice in it; track which variables were consumed in this clause.
    std::vector<int> consumed_this_clause;
    for (Lit l : c) {
      int v = std::abs(l);
      int copy_index = 0;
      if (num_copies[static_cast<size_t>(v)] > 1) {
        bool already = false;
        for (int seen : consumed_this_clause) already = already || seen == v;
        if (!already) {
          consumed_this_clause.push_back(v);
          ++used[static_cast<size_t>(v)];
        }
        copy_index = used[static_cast<size_t>(v)] - 1;
      }
      int new_var = first_copy[static_cast<size_t>(v)] + copy_index;
      rewritten.push_back(l > 0 ? new_var : -new_var);
    }
    out.AddClause(std::move(rewritten));
  }

  // Equality cycles: (!x_i v x_{i+1}) for i = 1..k (indices mod k) force all
  // copies of a split variable to take the same value.
  for (int v = 1; v <= formula.num_vars(); ++v) {
    int k = num_copies[static_cast<size_t>(v)];
    if (k <= 1) continue;
    AQO_CHECK_EQ(used[static_cast<size_t>(v)], k);
    int base = first_copy[static_cast<size_t>(v)];
    for (int i = 0; i < k; ++i) {
      int from = base + i;
      int to = base + (i + 1) % k;
      out.AddClause({-from, to});
    }
  }

  AQO_CHECK(out.MaxVariableOccurrence() <= max_occurrence);
  AQO_CHECK(out.IsThreeCnf() || !formula.IsThreeCnf());
  return out;
}

}  // namespace aqo
