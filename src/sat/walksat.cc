#include "sat/walksat.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "util/check.h"

namespace aqo {

WalkSatResult RunWalkSat(const CnfFormula& formula, Rng* rng,
                         uint64_t max_flips, double noise, int restarts) {
  AQO_CHECK(restarts >= 1);
  int num_vars = formula.num_vars();
  int num_clauses = formula.NumClauses();
  WalkSatResult best;
  best.assignment.assign(static_cast<size_t>(num_vars), false);
  best.satisfied = -1;

  uint64_t flips_per_restart = std::max<uint64_t>(1, max_flips / static_cast<uint64_t>(restarts));
  for (int r = 0; r < restarts && !best.found_model; ++r) {
    Assignment a(static_cast<size_t>(num_vars));
    for (int v = 0; v < num_vars; ++v) a[static_cast<size_t>(v)] = rng->Bernoulli(0.5);

    auto satisfied_count = [&]() { return formula.CountSatisfied(a); };
    int current = satisfied_count();
    if (current > best.satisfied) {
      best.satisfied = current;
      best.assignment = a;
    }

    for (uint64_t flip = 0; flip < flips_per_restart; ++flip) {
      if (current == num_clauses) break;
      // Pick a random unsatisfied clause.
      std::vector<int> unsat;
      for (int i = 0; i < num_clauses; ++i) {
        if (!formula.ClauseSatisfied(formula.clause(i), a)) unsat.push_back(i);
      }
      AQO_CHECK(!unsat.empty());
      const Clause& c = formula.clause(
          unsat[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(unsat.size()) - 1))]);

      int flip_var;
      if (rng->Bernoulli(noise)) {
        Lit l = c[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(c.size()) - 1))];
        flip_var = std::abs(l);
      } else {
        // Greedy: flip the clause variable giving the highest resulting
        // satisfied count.
        flip_var = std::abs(c[0]);
        int best_after = -1;
        for (Lit l : c) {
          int v = std::abs(l);
          a[static_cast<size_t>(v - 1)] = !a[static_cast<size_t>(v - 1)];
          int after = satisfied_count();
          a[static_cast<size_t>(v - 1)] = !a[static_cast<size_t>(v - 1)];
          if (after > best_after) {
            best_after = after;
            flip_var = v;
          }
        }
      }
      a[static_cast<size_t>(flip_var - 1)] = !a[static_cast<size_t>(flip_var - 1)];
      current = satisfied_count();
      ++best.flips;
      if (current > best.satisfied) {
        best.satisfied = current;
        best.assignment = a;
      }
    }
    if (best.satisfied == num_clauses) best.found_model = true;
  }
  if (best.satisfied < 0) best.satisfied = formula.CountSatisfied(best.assignment);
  return best;
}

}  // namespace aqo
