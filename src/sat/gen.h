#ifndef AQO_SAT_GEN_H_
#define AQO_SAT_GEN_H_

// 3SAT instance generators and the occurrence-bounding transform.
//
// The paper's pipeline starts from 3SAT(13) (Section 3): 3CNF with every
// variable in at most 13 clauses. The PCP machinery that produces the gap
// version of 3SAT(13) (Theorem 1) is not an implementable artifact; these
// generators produce the YES side (planted satisfiable) and candidate NO
// side (random over-constrained formulas, certified by the DPLL/MaxSAT
// solvers) that exercise everything downstream of Theorem 1.

#include "sat/cnf.h"
#include "util/random.h"

namespace aqo {

// Uniform random 3SAT: `num_clauses` clauses over `num_vars` variables,
// each with three distinct variables and random polarities.
CnfFormula RandomThreeSat(int num_vars, int num_clauses, Rng* rng);

// Random 3SAT guaranteed satisfiable: a hidden assignment is sampled and
// every generated clause is forced to contain at least one literal it
// satisfies. The hidden assignment is returned through `hidden` (optional).
CnfFormula PlantedSatisfiableThreeSat(int num_vars, int num_clauses, Rng* rng,
                                      Assignment* hidden = nullptr);

// Pigeonhole principle PHP(holes+1, holes): provably unsatisfiable and
// exponentially hard for resolution-style solvers (DPLL included) — the
// classic stress family for the NO side of the pipeline.
// Variables: x_{p,h} = pigeon p sits in hole h ((holes+1)*holes of them).
CnfFormula PigeonholeFormula(int holes);

// XOR chain ("parity") formula: x_1 xor x_2 xor ... xor x_k = parity,
// CNF-encoded per adjacent pair with auxiliary chain variables.
// Satisfiable iff `parity` is achievable (always, unless k == 0 and
// parity == true); with both parities emitted over the same variables the
// conjunction is unsatisfiable. Hard for solvers without XOR reasoning.
CnfFormula XorChainFormula(int k, bool parity);

// Equisatisfiable transform bounding variable occurrences by
// `max_occurrence` (>= 3): each over-occurring variable x is split into
// copies x_1..x_k, one per occurrence, chained by implication clauses
// (!x_i v x_{i+1}) forming a cycle, which forces all copies equal.
// The result of bounding to 13 is a 3SAT(13) instance.
CnfFormula BoundOccurrences(const CnfFormula& formula, int max_occurrence = 13);

}  // namespace aqo

#endif  // AQO_SAT_GEN_H_
