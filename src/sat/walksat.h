#ifndef AQO_SAT_WALKSAT_H_
#define AQO_SAT_WALKSAT_H_

// WalkSAT local search: an incomplete solver used as a cheap baseline and
// to find near-satisfying assignments of NO-side gap formulas.

#include <cstdint>

#include "sat/cnf.h"
#include "util/random.h"

namespace aqo {

struct WalkSatResult {
  Assignment assignment;   // best assignment encountered
  int satisfied = 0;       // clauses satisfied by `assignment`
  bool found_model = false;  // true when all clauses were satisfied
  uint64_t flips = 0;
};

// Runs WalkSAT with noise probability `noise` for at most `max_flips` flips
// (split over `restarts` random restarts).
WalkSatResult RunWalkSat(const CnfFormula& formula, Rng* rng,
                         uint64_t max_flips = 100000, double noise = 0.5,
                         int restarts = 4);

}  // namespace aqo

#endif  // AQO_SAT_WALKSAT_H_
