#include "sat/dpll.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "util/check.h"

namespace aqo {

namespace {

constexpr int8_t kUnassigned = 0;
constexpr int8_t kTrue = 1;
constexpr int8_t kFalse = -1;

class DpllSolver {
 public:
  DpllSolver(const CnfFormula& formula, uint64_t decision_limit)
      : formula_(formula),
        decision_limit_(decision_limit),
        values_(static_cast<size_t>(formula.num_vars()), kUnassigned) {}

  DpllResult Solve() {
    DpllResult result;
    bool sat = Search();
    result.decisions = decisions_;
    result.complete = !aborted_;
    if (sat) {
      Assignment a(static_cast<size_t>(formula_.num_vars()));
      for (int v = 1; v <= formula_.num_vars(); ++v) {
        a[static_cast<size_t>(v - 1)] = values_[static_cast<size_t>(v - 1)] == kTrue;
      }
      AQO_CHECK(formula_.IsSatisfiedBy(a));
      result.assignment = std::move(a);
    }
    return result;
  }

 private:
  int8_t LitValue(Lit l) const {
    int8_t v = values_[static_cast<size_t>(std::abs(l) - 1)];
    return l > 0 ? v : static_cast<int8_t>(-v);
  }

  void Assign(Lit l, std::vector<Lit>* trail) {
    values_[static_cast<size_t>(std::abs(l) - 1)] = l > 0 ? kTrue : kFalse;
    trail->push_back(l);
  }

  void Undo(const std::vector<Lit>& trail) {
    for (Lit l : trail) values_[static_cast<size_t>(std::abs(l) - 1)] = kUnassigned;
  }

  // Unit propagation over all clauses until fixpoint. Returns false on
  // conflict. Assignments are recorded on `trail`.
  bool Propagate(std::vector<Lit>* trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& c : formula_.clauses()) {
        Lit unit = 0;
        int unassigned = 0;
        bool satisfied = false;
        for (Lit l : c) {
          int8_t v = LitValue(l);
          if (v == kTrue) {
            satisfied = true;
            break;
          }
          if (v == kUnassigned) {
            ++unassigned;
            unit = l;
          }
        }
        if (satisfied) continue;
        if (unassigned == 0) return false;  // conflict
        if (unassigned == 1) {
          Assign(unit, trail);
          changed = true;
        }
      }
    }
    return true;
  }

  // Pure-literal elimination: assigns literals whose negation never occurs
  // in an unsatisfied clause.
  void AssignPureLiterals(std::vector<Lit>* trail) {
    int n = formula_.num_vars();
    std::vector<uint8_t> pos(static_cast<size_t>(n), 0), neg(static_cast<size_t>(n), 0);
    for (const Clause& c : formula_.clauses()) {
      bool satisfied = false;
      for (Lit l : c) {
        if (LitValue(l) == kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (Lit l : c) {
        if (LitValue(l) == kUnassigned) {
          (l > 0 ? pos : neg)[static_cast<size_t>(std::abs(l) - 1)] = 1;
        }
      }
    }
    for (int v = 1; v <= n; ++v) {
      size_t i = static_cast<size_t>(v - 1);
      if (values_[i] != kUnassigned) continue;
      if (pos[i] != 0 && neg[i] == 0) Assign(v, trail);
      if (neg[i] != 0 && pos[i] == 0) Assign(-v, trail);
    }
  }

  // MOMS: pick the literal occurring most often among the shortest
  // unsatisfied clauses. Returns 0 when every clause is satisfied.
  Lit PickBranchLiteral() const {
    size_t shortest = SIZE_MAX;
    for (const Clause& c : formula_.clauses()) {
      size_t open = 0;
      bool satisfied = false;
      for (Lit l : c) {
        int8_t v = LitValue(l);
        if (v == kTrue) {
          satisfied = true;
          break;
        }
        if (v == kUnassigned) ++open;
      }
      if (!satisfied && open > 0) shortest = std::min(shortest, open);
    }
    if (shortest == SIZE_MAX) return 0;

    std::vector<int> score(2 * static_cast<size_t>(formula_.num_vars()) + 2, 0);
    auto index = [](Lit l) {
      return static_cast<size_t>(2 * std::abs(l)) + (l > 0 ? 0 : 1);
    };
    for (const Clause& c : formula_.clauses()) {
      size_t open = 0;
      bool satisfied = false;
      for (Lit l : c) {
        int8_t v = LitValue(l);
        if (v == kTrue) {
          satisfied = true;
          break;
        }
        if (v == kUnassigned) ++open;
      }
      if (satisfied || open != shortest) continue;
      for (Lit l : c) {
        if (LitValue(l) == kUnassigned) ++score[index(l)];
      }
    }
    Lit best = 0;
    int best_score = -1;
    for (int v = 1; v <= formula_.num_vars(); ++v) {
      for (Lit l : {v, -v}) {
        if (values_[static_cast<size_t>(v - 1)] == kUnassigned &&
            score[index(l)] > best_score) {
          best_score = score[index(l)];
          best = l;
        }
      }
    }
    return best;
  }

  bool Search() {
    if (aborted_) return false;
    std::vector<Lit> trail;
    if (!Propagate(&trail)) {
      Undo(trail);
      return false;
    }
    AssignPureLiterals(&trail);
    if (!Propagate(&trail)) {
      Undo(trail);
      return false;
    }
    Lit branch = PickBranchLiteral();
    if (branch == 0) return true;  // all clauses satisfied

    ++decisions_;
    if (decision_limit_ > 0 && decisions_ > decision_limit_) {
      aborted_ = true;
      Undo(trail);
      return false;
    }

    for (Lit l : {branch, -branch}) {
      std::vector<Lit> branch_trail;
      Assign(l, &branch_trail);
      if (Search()) return true;
      Undo(branch_trail);
      if (aborted_) break;
    }
    Undo(trail);
    return false;
  }

  const CnfFormula& formula_;
  uint64_t decision_limit_;
  std::vector<int8_t> values_;
  uint64_t decisions_ = 0;
  bool aborted_ = false;
};

// Branch & bound for MaxSAT: branch on variables in order; bound by the
// number of clauses already falsified.
class MaxSatSolver {
 public:
  explicit MaxSatSolver(const CnfFormula& formula)
      : formula_(formula),
        values_(static_cast<size_t>(formula.num_vars()), kUnassigned) {}

  int Solve() {
    best_falsified_ = formula_.NumClauses();
    Search(1, 0);
    return formula_.NumClauses() - best_falsified_;
  }

 private:
  // A clause is decided-false when all its literals are assigned false.
  int CountFalsified() const {
    int falsified = 0;
    for (const Clause& c : formula_.clauses()) {
      bool maybe = false;
      for (Lit l : c) {
        int8_t v = values_[static_cast<size_t>(std::abs(l) - 1)];
        int8_t lv = l > 0 ? v : static_cast<int8_t>(-v);
        if (lv != kFalse) {
          maybe = true;
          break;
        }
      }
      if (!maybe) ++falsified;
    }
    return falsified;
  }

  void Search(int var, int falsified_lb) {
    if (falsified_lb >= best_falsified_) return;
    if (var > formula_.num_vars()) {
      best_falsified_ = std::min(best_falsified_, falsified_lb);
      return;
    }
    for (int8_t value : {kTrue, kFalse}) {
      values_[static_cast<size_t>(var - 1)] = value;
      Search(var + 1, CountFalsified());
      values_[static_cast<size_t>(var - 1)] = kUnassigned;
    }
  }

  const CnfFormula& formula_;
  std::vector<int8_t> values_;
  int best_falsified_ = 0;
};

}  // namespace

DpllResult SolveDpll(const CnfFormula& formula, uint64_t decision_limit) {
  DpllSolver solver(formula, decision_limit);
  return solver.Solve();
}

int MaxSatisfiableClauses(const CnfFormula& formula) {
  if (formula.NumClauses() == 0) return 0;
  MaxSatSolver solver(formula);
  return solver.Solve();
}

}  // namespace aqo
