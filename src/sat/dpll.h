#ifndef AQO_SAT_DPLL_H_
#define AQO_SAT_DPLL_H_

// DPLL satisfiability solver with unit propagation, pure-literal
// elimination, and a MOMS-style branching heuristic. It decides the small
// 3SAT(13) instances at the head of the reduction pipeline, labelling them
// YES/NO so the end-to-end gap experiments know the ground truth.

#include <cstdint>
#include <optional>

#include "sat/cnf.h"

namespace aqo {

struct DpllResult {
  // Engaged iff the formula is satisfiable; holds a satisfying assignment.
  std::optional<Assignment> assignment;
  uint64_t decisions = 0;  // branching nodes explored
  bool complete = true;    // false when the decision limit stopped the search
};

// Decides satisfiability. When `decision_limit` > 0 the search gives up
// after that many branching decisions (complete=false, assignment empty).
DpllResult SolveDpll(const CnfFormula& formula, uint64_t decision_limit = 0);

// Exact maximum number of simultaneously satisfiable clauses, by branch &
// bound over assignments. Exponential; use on small formulas only.
int MaxSatisfiableClauses(const CnfFormula& formula);

}  // namespace aqo

#endif  // AQO_SAT_DPLL_H_
