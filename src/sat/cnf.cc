#include "sat/cnf.h"

#include <algorithm>

namespace aqo {

void CnfFormula::AddClause(Clause clause) {
  AQO_CHECK(!clause.empty()) << "empty clause";
  for (Lit l : clause) {
    AQO_CHECK(l != 0);
    AQO_CHECK(std::abs(l) <= num_vars_)
        << "literal " << l << " out of range for " << num_vars_ << " vars";
  }
  clauses_.push_back(std::move(clause));
}

bool CnfFormula::ClauseSatisfied(const Clause& clause, const Assignment& a) const {
  AQO_CHECK(static_cast<int>(a.size()) == num_vars_);
  for (Lit l : clause) {
    bool value = a[static_cast<size_t>(std::abs(l) - 1)];
    if ((l > 0) == value) return true;
  }
  return false;
}

int CnfFormula::CountSatisfied(const Assignment& a) const {
  int count = 0;
  for (const Clause& c : clauses_) {
    if (ClauseSatisfied(c, a)) ++count;
  }
  return count;
}

bool CnfFormula::IsThreeCnf() const {
  return std::all_of(clauses_.begin(), clauses_.end(),
                     [](const Clause& c) { return c.size() <= 3; });
}

std::vector<int> CnfFormula::VariableOccurrences() const {
  std::vector<int> occ(static_cast<size_t>(num_vars_), 0);
  std::vector<bool> seen(static_cast<size_t>(num_vars_), false);
  for (const Clause& c : clauses_) {
    for (Lit l : c) seen[static_cast<size_t>(std::abs(l) - 1)] = false;
    for (Lit l : c) {
      size_t v = static_cast<size_t>(std::abs(l) - 1);
      if (!seen[v]) {
        seen[v] = true;
        ++occ[v];
      }
    }
  }
  return occ;
}

int CnfFormula::MaxVariableOccurrence() const {
  std::vector<int> occ = VariableOccurrences();
  return occ.empty() ? 0 : *std::max_element(occ.begin(), occ.end());
}

}  // namespace aqo
