#include "sat/cdcl.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "util/check.h"

namespace aqo {

namespace {

// Literal encoding: variable v (1-based), positive -> 2v, negative -> 2v+1.
int LitIndex(Lit l) {
  return 2 * std::abs(l) + (l > 0 ? 0 : 1);
}

Lit Negate(Lit l) { return -l; }

constexpr int kUndef = -1;

class CdclSolver {
 public:
  CdclSolver(const CnfFormula& formula, uint64_t conflict_limit)
      : formula_(formula),
        num_vars_(formula.num_vars()),
        conflict_limit_(conflict_limit),
        value_(static_cast<size_t>(num_vars_) + 1, 0),
        level_(static_cast<size_t>(num_vars_) + 1, 0),
        reason_(static_cast<size_t>(num_vars_) + 1, kUndef),
        activity_(static_cast<size_t>(num_vars_) + 1, 0.0),
        phase_(static_cast<size_t>(num_vars_) + 1, false),
        seen_(static_cast<size_t>(num_vars_) + 1, 0),
        watches_(2 * static_cast<size_t>(num_vars_) + 2) {}

  CdclResult Solve() {
    CdclResult result;
    // Load the problem clauses; unit clauses enqueue directly, empty or
    // conflicting units mean UNSAT immediately.
    for (const Clause& c : formula_.clauses()) {
      Clause clause = c;
      // Remove duplicate literals; detect tautologies. Sorting by
      // (variable, sign) puts x and -x adjacent.
      std::sort(clause.begin(), clause.end(), [](Lit a, Lit b) {
        int va = std::abs(a), vb = std::abs(b);
        return va != vb ? va < vb : a < b;
      });
      clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
      bool tautology = false;
      for (size_t i = 0; i + 1 < clause.size(); ++i) {
        if (clause[i] == -clause[i + 1]) tautology = true;
      }
      if (tautology) continue;
      if (clause.size() == 1) {
        Lit unit = clause[0];
        int8_t v = LitValue(unit);
        if (v == -1) return Finish(&result, false);  // conflicting units
        if (v == 0) Enqueue(unit, kUndef);
        continue;
      }
      AddClause(std::move(clause));
    }

    if (Propagate() != kUndef) return Finish(&result, false);

    uint64_t luby_index = 1;
    uint64_t restart_limit = 32 * Luby(luby_index);
    uint64_t conflicts_at_restart = 0;

    while (true) {
      int conflict = Propagate();
      if (conflict != kUndef) {
        ++conflicts_;
        if (conflict_limit_ > 0 && conflicts_ > conflict_limit_) {
          result.complete = false;
          return Finish(&result, false);
        }
        if (DecisionLevel() == 0) return Finish(&result, false);  // UNSAT
        Clause learned;
        int back_level = Analyze(conflict, &learned);
        Backtrack(back_level);
        if (learned.size() == 1) {
          Enqueue(learned[0], kUndef);
        } else {
          int id = AddClause(learned);
          Enqueue(learned[0], id);
        }
        ++learned_count_;
        DecayActivities();
        ++conflicts_at_restart;
        if (conflicts_at_restart >= restart_limit) {
          conflicts_at_restart = 0;
          restart_limit = 32 * Luby(++luby_index);
          Backtrack(0);
        }
      } else {
        Lit branch = PickBranch();
        if (branch == 0) return Finish(&result, true);  // all assigned: SAT
        ++decisions_;
        trail_lim_.push_back(trail_.size());
        Enqueue(branch, kUndef);
      }
    }
  }

 private:
  // --- clause storage & watches ---

  int AddClause(Clause clause) {
    AQO_CHECK(clause.size() >= 2);
    int id = static_cast<int>(clauses_.size());
    // Watch the first two literals.
    watches_[static_cast<size_t>(LitIndex(clause[0]))].push_back(id);
    watches_[static_cast<size_t>(LitIndex(clause[1]))].push_back(id);
    clauses_.push_back(std::move(clause));
    return id;
  }

  int8_t LitValue(Lit l) const {
    int8_t v = value_[static_cast<size_t>(std::abs(l))];
    return l > 0 ? v : static_cast<int8_t>(-v);
  }

  void Enqueue(Lit l, int reason) {
    AQO_DCHECK(LitValue(l) == 0);
    int var = std::abs(l);
    value_[static_cast<size_t>(var)] = l > 0 ? 1 : -1;
    level_[static_cast<size_t>(var)] = DecisionLevel();
    reason_[static_cast<size_t>(var)] = reason;
    phase_[static_cast<size_t>(var)] = l > 0;
    trail_.push_back(l);
  }

  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }

  // Two-watched-literal unit propagation; returns the conflicting clause
  // id, or kUndef.
  int Propagate() {
    while (head_ < trail_.size()) {
      Lit assigned = trail_[head_++];
      ++propagations_;
      Lit falsified = Negate(assigned);
      std::vector<int>& watch_list =
          watches_[static_cast<size_t>(LitIndex(falsified))];
      size_t keep = 0;
      for (size_t wi = 0; wi < watch_list.size(); ++wi) {
        int id = watch_list[wi];
        Clause& c = clauses_[static_cast<size_t>(id)];
        // Normalize: the falsified literal sits at c[1].
        if (c[0] == falsified) std::swap(c[0], c[1]);
        AQO_DCHECK(c[1] == falsified);
        // Satisfied already?
        if (LitValue(c[0]) == 1) {
          watch_list[keep++] = id;
          continue;
        }
        // Find a replacement watch.
        bool moved = false;
        for (size_t k = 2; k < c.size(); ++k) {
          if (LitValue(c[k]) != -1) {
            std::swap(c[1], c[k]);
            watches_[static_cast<size_t>(LitIndex(c[1]))].push_back(id);
            moved = true;
            break;
          }
        }
        if (moved) continue;  // dropped from this watch list
        // Unit or conflict.
        watch_list[keep++] = id;
        if (LitValue(c[0]) == -1) {
          // Conflict: restore untouched tail of the watch list.
          for (size_t rest = wi + 1; rest < watch_list.size(); ++rest) {
            watch_list[keep++] = watch_list[rest];
          }
          watch_list.resize(keep);
          head_ = trail_.size();
          return id;
        }
        Enqueue(c[0], id);
      }
      watch_list.resize(keep);
    }
    return kUndef;
  }

  // First-UIP conflict analysis. Fills `learned` (asserting literal first)
  // and returns the backtrack level.
  int Analyze(int conflict, Clause* learned) {
    learned->clear();
    learned->push_back(0);  // placeholder for the asserting literal
    int counter = 0;        // literals of the current level still to resolve
    Lit uip = 0;
    size_t trail_index = trail_.size();
    int id = conflict;

    while (true) {
      const Clause& c = clauses_[static_cast<size_t>(id)];
      // Skip c[0] on reason clauses: it is the propagated literal itself.
      size_t start = id == conflict ? 0 : 1;
      for (size_t k = start; k < c.size(); ++k) {
        Lit q = c[k];
        int var = std::abs(q);
        if (seen_[static_cast<size_t>(var)] ||
            level_[static_cast<size_t>(var)] == 0) {
          continue;
        }
        seen_[static_cast<size_t>(var)] = 1;
        BumpActivity(var);
        if (level_[static_cast<size_t>(var)] == DecisionLevel()) {
          ++counter;
        } else {
          learned->push_back(q);
        }
      }
      // Walk the trail back to the next marked literal of this level.
      do {
        --trail_index;
        uip = trail_[trail_index];
      } while (!seen_[static_cast<size_t>(std::abs(uip))]);
      seen_[static_cast<size_t>(std::abs(uip))] = 0;
      --counter;
      if (counter == 0) break;
      id = reason_[static_cast<size_t>(std::abs(uip))];
      AQO_DCHECK(id != kUndef);
    }
    (*learned)[0] = Negate(uip);

    // Backtrack level: the second-highest level in the learned clause.
    int back = 0;
    size_t second = 1;
    for (size_t k = 1; k < learned->size(); ++k) {
      int lvl = level_[static_cast<size_t>(std::abs((*learned)[k]))];
      if (lvl > back) {
        back = lvl;
        second = k;
      }
    }
    if (learned->size() > 1) {
      std::swap((*learned)[1], (*learned)[second]);  // watch a top literal
    }
    // Clear remaining marks.
    for (size_t k = 1; k < learned->size(); ++k) {
      seen_[static_cast<size_t>(std::abs((*learned)[k]))] = 0;
    }
    return back;
  }

  void Backtrack(int target_level) {
    if (DecisionLevel() <= target_level) return;
    size_t keep = trail_lim_[static_cast<size_t>(target_level)];
    for (size_t i = trail_.size(); i-- > keep;) {
      int var = std::abs(trail_[i]);
      value_[static_cast<size_t>(var)] = 0;
      reason_[static_cast<size_t>(var)] = kUndef;
    }
    trail_.resize(keep);
    trail_lim_.resize(static_cast<size_t>(target_level));
    head_ = keep;
  }

  // --- branching ---

  void BumpActivity(int var) {
    activity_[static_cast<size_t>(var)] += activity_inc_;
    if (activity_[static_cast<size_t>(var)] > 1e100) {
      for (double& a : activity_) a *= 1e-100;
      activity_inc_ *= 1e-100;
    }
  }

  void DecayActivities() { activity_inc_ /= 0.95; }

  Lit PickBranch() {
    int best = 0;
    double best_activity = -1.0;
    for (int v = 1; v <= num_vars_; ++v) {
      if (value_[static_cast<size_t>(v)] == 0 &&
          activity_[static_cast<size_t>(v)] > best_activity) {
        best_activity = activity_[static_cast<size_t>(v)];
        best = v;
      }
    }
    if (best == 0) return 0;
    return phase_[static_cast<size_t>(best)] ? best : -best;  // phase saving
  }

  // The Luby sequence 1 1 2 1 1 2 4 1 1 2 ... (1-based):
  // luby(2^k - 1) = 2^{k-1}; otherwise recurse on i - (2^{k-1} - 1) where
  // k is minimal with 2^k - 1 >= i.
  static uint64_t Luby(uint64_t i) {
    AQO_DCHECK(i >= 1);
    uint64_t k = 1;
    while ((uint64_t{1} << k) - 1 < i) ++k;
    while ((uint64_t{1} << k) - 1 != i) {
      i -= (uint64_t{1} << (k - 1)) - 1;
      k = 1;
      while ((uint64_t{1} << k) - 1 < i) ++k;
    }
    return uint64_t{1} << (k - 1);
  }

  CdclResult Finish(CdclResult* result, bool sat) {
    result->conflicts = conflicts_;
    result->decisions = decisions_;
    result->propagations = propagations_;
    result->learned_clauses = learned_count_;
    if (sat) {
      Assignment a(static_cast<size_t>(num_vars_));
      for (int v = 1; v <= num_vars_; ++v) {
        a[static_cast<size_t>(v - 1)] = value_[static_cast<size_t>(v)] == 1;
      }
      AQO_CHECK(formula_.IsSatisfiedBy(a)) << "CDCL model fails verification";
      result->assignment = std::move(a);
    }
    return *result;
  }

  const CnfFormula& formula_;
  int num_vars_;
  uint64_t conflict_limit_;

  std::vector<Clause> clauses_;  // problem + learned
  std::vector<int8_t> value_;    // per var: 0 unassigned, +1 true, -1 false
  std::vector<int> level_;
  std::vector<int> reason_;
  std::vector<double> activity_;
  std::vector<bool> phase_;
  std::vector<uint8_t> seen_;
  std::vector<std::vector<int>> watches_;  // per literal index

  std::vector<Lit> trail_;
  std::vector<size_t> trail_lim_;
  size_t head_ = 0;

  double activity_inc_ = 1.0;
  uint64_t conflicts_ = 0;
  uint64_t decisions_ = 0;
  uint64_t propagations_ = 0;
  uint64_t learned_count_ = 0;
};

}  // namespace

CdclResult SolveCdcl(const CnfFormula& formula, uint64_t conflict_limit) {
  CdclSolver solver(formula, conflict_limit);
  return solver.Solve();
}

}  // namespace aqo
