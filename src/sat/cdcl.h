#ifndef AQO_SAT_CDCL_H_
#define AQO_SAT_CDCL_H_

// CDCL satisfiability solver: two-watched-literal propagation, first-UIP
// conflict analysis with clause learning, VSIDS-style activity branching
// with phase saving, and Luby restarts. The modern counterpart to the
// DPLL solver in dpll.h — same interface, orders of magnitude faster on
// structured instances (and the solver of choice for labelling the larger
// composed-reduction sources).

#include <cstdint>
#include <optional>

#include "sat/cnf.h"

namespace aqo {

struct CdclResult {
  // Engaged iff satisfiable; holds a verified satisfying assignment.
  std::optional<Assignment> assignment;
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t learned_clauses = 0;
  bool complete = true;  // false when the conflict limit stopped the search
};

// Decides satisfiability. When `conflict_limit` > 0 the search gives up
// after that many conflicts (complete = false).
CdclResult SolveCdcl(const CnfFormula& formula, uint64_t conflict_limit = 0);

}  // namespace aqo

#endif  // AQO_SAT_CDCL_H_
