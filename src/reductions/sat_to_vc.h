#ifndef AQO_REDUCTIONS_SAT_TO_VC_H_
#define AQO_REDUCTIONS_SAT_TO_VC_H_

// The classical Garey-Johnson gadget reduction 3SAT -> VERTEX COVER
// (paper Theorem 2, citing [5]), the first hop of the reduction chain:
//
//   * per variable x: vertices <x> and <!x> joined by an edge
//     (any cover takes at least one);
//   * per clause: a triangle on three slot vertices
//     (any cover takes at least two);
//   * each clause slot is wired to the literal vertex it carries.
//
// For a formula with v variables and m clauses the graph has 2v + 3m
// vertices and v + 3m + 3m edges, and:
//     min-VC = v + 2m + u*,
// where u* is the minimum number of clauses any assignment leaves
// unsatisfied (0 iff satisfiable). Clauses with fewer than three literals
// are padded by repeating a literal (the triangle argument is unaffected).

#include <vector>

#include "graph/graph.h"
#include "sat/cnf.h"

namespace aqo {

struct SatToVcResult {
  Graph graph;
  int num_vars = 0;
  int num_clauses = 0;
  // Vertex ids: PositiveLiteralVertex/NegativeLiteralVertex give the
  // variable-gadget endpoints; clause slot s of clause c is
  // ClauseVertex(c, s).
  int PositiveLiteralVertex(int var) const { return 2 * (var - 1); }
  int NegativeLiteralVertex(int var) const { return 2 * (var - 1) + 1; }
  int ClauseVertex(int clause, int slot) const {
    return 2 * num_vars + 3 * clause + slot;
  }
  // min-VC when u_star clauses must stay unsatisfied.
  int CoverSizeForUnsat(int u_star) const {
    return num_vars + 2 * num_clauses + u_star;
  }

  // The cover induced by an assignment: true literals' vertices plus, per
  // clause, the slots not certifying satisfaction (all three for
  // unsatisfied clauses).
  std::vector<int> CoverFromAssignment(const CnfFormula& formula,
                                       const Assignment& a) const;
};

// Builds the gadget graph; formula clauses must have 1..3 literals.
SatToVcResult ReduceSatToVertexCover(const CnfFormula& formula);

}  // namespace aqo

#endif  // AQO_REDUCTIONS_SAT_TO_VC_H_
