#ifndef AQO_REDUCTIONS_CLIQUE_TO_QON_H_
#define AQO_REDUCTIONS_CLIQUE_TO_QON_H_

// The reduction f_N of Section 4: CLIQUE -> QO_N.
//
// Given a graph G with n vertices and parameters (c, d, alpha) with
// alpha >= 4, the QO_N instance is:
//   * query graph Q = G;
//   * selectivity 1/alpha on every edge;
//   * every relation size t = alpha^{(c - d/2) n};
//   * access costs w = t/alpha on edges and t on non-edges (the defaults).
//
// With p = (c - d/2) n, define K_{c,d}(alpha, n) = w * alpha^{p(p+1)/2 + 1}.
// The paper proves:
//   * Lemma 6 (YES): if omega(G) >= c n, the clique-first sequence costs
//     at most K_{c,d}(alpha, n);
//   * Lemma 8 (NO): if omega(G) <= (c-d) n, every sequence costs at least
//     K_{c,d}(alpha, n) * alpha^{(d/2) n - 1}.
// Composed with Lemma 3 this yields Theorem 9: approximating QO_N within
// 2^{log^{1-delta} K} is NP-hard (set alpha = 4^{n^{1/delta}}).
//
// alpha is passed as log2(alpha): the paper's asymptotic setting makes it
// astronomically large, and every derived quantity lives in LogDouble.

#include <vector>

#include "graph/graph.h"
#include "qo/qon.h"
#include "util/log_double.h"

namespace aqo {

struct QonGapParams {
  double c = 0.75;          // YES threshold: omega >= c*n
  double d = 0.25;          // NO promise: omega <= (c-d)*n
  double log2_alpha = 8.0;  // alpha = 2^log2_alpha; must give alpha >= 4
};

struct QonGapInstance {
  QonInstance instance;
  QonGapParams params;
  int n = 0;     // number of relations / vertices
  LogDouble t;   // relation size
  LogDouble w;   // edge access cost t/alpha
  LogDouble alpha;

  // p = (c - d/2) n, the position where H_i peaks along a clique prefix.
  double PeakPosition() const;

  // K_{c,d}(alpha, n) = w * alpha^{p(p+1)/2 + 1}.
  LogDouble KBound() const;

  // The paper's NO-side bound K * alpha^{(d/2) n - 1} (Lemma 8).
  LogDouble NoSideBound() const;

  // A certified lower bound on C(Z) over *all* join sequences given an
  // upper bound on omega(G): max over positions i of
  //   w * alpha^{p*i - Dmax(i)},    Dmax(i) = i(i-1)/2 - i + min(omega, i)
  // (Lemma 7 bounds the edges of any i-vertex induced subgraph). This is
  // the inequality chain of Lemma 8 evaluated exactly.
  LogDouble CertifiedLowerBound(int omega_upper) const;
};

// Applies f_N. Aborts when log2_alpha < 2 (alpha >= 4 is needed by the
// geometric-sum argument of Lemma 6).
QonGapInstance ReduceCliqueToQon(const Graph& g, const QonGapParams& params);

// Lemma 6's witness: `clique` first (any order), then the remaining
// vertices in a connectivity-greedy order (no cartesian products whenever
// the graph is connected).
JoinSequence CliqueFirstWitness(const Graph& g, const std::vector<int>& clique);

// Cost-aware variant: same clique prefix, but the tail appends whichever
// relation has the cheapest next join. Still a valid Lemma 6 witness, and
// much tighter on instances whose tail degrees are irregular (e.g. the
// composed Theorem 9 instances at small n).
JoinSequence CliqueFirstWitnessGreedy(const QonInstance& inst,
                                      const std::vector<int>& clique);

}  // namespace aqo

#endif  // AQO_REDUCTIONS_CLIQUE_TO_QON_H_
