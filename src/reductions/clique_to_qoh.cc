#include "reductions/clique_to_qoh.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/check.h"

namespace aqo {

LogDouble QohGapInstance::LBound() const {
  double dn = static_cast<double>(n);
  return t0 * alpha.Pow(dn * dn / 9.0);
}

LogDouble QohGapInstance::GBound(double epsilon) const {
  AQO_CHECK(0.0 < epsilon && epsilon <= 2.0);
  double dn = static_cast<double>(n);
  return LBound() * alpha.Pow(dn * epsilon / 3.0 - 1.0);
}

QohGapInstance ReduceTwoThirdsCliqueToQoh(const Graph& g,
                                          const QohGapParams& params) {
  obs::Span span("reduce.clique_to_qoh");
  static obs::Counter& calls =
      obs::Registry::Get().GetCounter("reduce.clique_to_qoh.calls");
  static obs::Counter& relations =
      obs::Registry::Get().GetCounter("reduce.clique_to_qoh.relations");
  calls.Increment();
  relations.Add(static_cast<uint64_t>(g.NumVertices()) + 1);  // + sentinel R_0
  int n = g.NumVertices();
  AQO_CHECK(n >= 9 && n % 3 == 0) << "f_H needs n >= 9 divisible by 3";
  AQO_CHECK(params.log2_alpha >= 2.0) << "need alpha >= 4";
  AQO_CHECK(params.log2_alpha * (n - 1) / 2.0 <= 52.0)
      << "t = alpha^{(n-1)/2} must stay exact in double; lower alpha or n";
  AQO_CHECK(params.t0_exponent * params.eta > 1.0)
      << "t0 must satisfy hjmin(t0) > M";

  QohGapInstance gap;
  gap.params = params;
  gap.n = n;
  gap.alpha = LogDouble::FromLog2(params.log2_alpha);
  gap.t = gap.alpha.Pow((static_cast<double>(n) - 1.0) / 2.0);
  LogDouble nt = LogDouble::FromLinear(static_cast<double>(n)) * gap.t;
  gap.t0 = nt.Pow(params.t0_exponent);

  // Query graph: relation 0 is R_0, joined to every source vertex; source
  // vertex v becomes relation v + 1.
  Graph q(n + 1);
  for (int v = 0; v < n; ++v) q.AddEdge(0, v + 1);
  for (const auto& [u, v] : g.Edges()) q.AddEdge(u + 1, v + 1);

  std::vector<LogDouble> sizes(static_cast<size_t>(n) + 1, gap.t);
  sizes[0] = gap.t0;

  double t_linear = gap.t.ToLinear();
  double hjmin_t = std::ceil(std::pow(t_linear, params.eta));
  double memory =
      (static_cast<double>(n) / 3.0 - 1.0) * t_linear + 2.0 * hjmin_t;

  QohInstance inst(std::move(q), std::move(sizes), memory, params.eta);
  LogDouble inv_alpha = LogDouble::One() / gap.alpha;
  LogDouble half = LogDouble::FromLinear(0.5);
  for (int v = 0; v < n; ++v) inst.SetSelectivity(0, v + 1, half);
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u + 1, v + 1, inv_alpha);
  }
  inst.Validate();

  // The construction's point: R_0 can never be hashed.
  AQO_CHECK(inst.HashJoinMinMemory(gap.t0) > LogDouble::FromLinear(memory))
      << "hjmin(t0) must exceed M";

  gap.instance = std::move(inst);
  return gap;
}

QohWitnessPlan QohYesWitness(const QohGapInstance& gap,
                             const std::vector<int>& clique_in_source) {
  int n = gap.n;
  int third = n / 3;
  AQO_CHECK_EQ(static_cast<int>(clique_in_source.size()), 2 * third)
      << "Lemma 12 witness needs a clique of exactly 2n/3 source vertices";

  QohWitnessPlan plan;
  plan.sequence.push_back(0);  // R_0 first (forced)
  DynamicBitset used(n);
  for (int v : clique_in_source) {
    plan.sequence.push_back(gap.RelationOf(v));
    used.Set(v);
  }
  for (int v = 0; v < n; ++v) {
    if (!used.Test(v)) plan.sequence.push_back(gap.RelationOf(v));
  }
  AQO_CHECK(IsPermutation(plan.sequence, n + 1));

  // Pipelines P(1,1), P(2, n/3), P(n/3+1, 2n/3), P(2n/3+1, n-1), P(n, n)
  // over the n joins of the sequence.
  plan.decomposition.starts = {1, 2, third + 1, 2 * third + 1, n};
  return plan;
}

}  // namespace aqo
