#include "reductions/pipeline.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/span.h"
#include "sat/dpll.h"
#include "util/check.h"

namespace aqo {

SatToQonComposition ComposeSatToQon(const CnfFormula& formula,
                                    const SatToQonOptions& options) {
  obs::Span span("compose.sat_to_qon");
  static obs::Counter& calls =
      obs::Registry::Get().GetCounter("compose.sat_to_qon.calls");
  calls.Increment();
  AQO_CHECK(formula.IsThreeCnf());
  AQO_CHECK(formula.NumClauses() >= 1);
  SatToQonComposition out;

  DpllResult sat;
  {
    obs::Span solve_span("compose.solve_sat");
    sat = SolveDpll(formula);
  }
  AQO_CHECK(sat.complete);
  out.satisfiable = sat.assignment.has_value();
  if (options.exact_maxsat) {
    obs::Span maxsat_span("compose.maxsat");
    out.min_unsat = formula.NumClauses() - MaxSatisfiableClauses(formula);
    AQO_CHECK((out.min_unsat == 0) == out.satisfiable);
  } else if (out.satisfiable) {
    out.min_unsat = 0;
  }

  out.clique_reduction = ReduceSatToClique(formula);
  const SatToCliqueResult& cl = out.clique_reduction;

  QonGapParams params;
  params.log2_alpha = options.log2_alpha;
  params.c = cl.EffectiveC();
  params.d = params.c - cl.EffectiveCMinusD(options.theta);
  out.gap = ReduceCliqueToQon(cl.graph, params);

  if (out.satisfiable) {
    std::vector<int> clique =
        cl.CliqueFromAssignment(formula, *sat.assignment);
    JoinSequence seq = CliqueFirstWitnessGreedy(out.gap.instance, clique);
    out.witness_cost = QonSequenceCost(out.gap.instance, seq);
    out.witness = std::move(seq);
  } else if (out.min_unsat > 0) {
    int omega_upper = cl.CliqueSizeForUnsat(out.min_unsat);
    out.certified_floor = out.gap.CertifiedLowerBound(omega_upper);
  }
  return out;
}

SatToQohComposition ComposeSatToQoh(const CnfFormula& formula,
                                    const SatToQohOptions& options) {
  obs::Span span("compose.sat_to_qoh");
  static obs::Counter& calls =
      obs::Registry::Get().GetCounter("compose.sat_to_qoh.calls");
  calls.Increment();
  AQO_CHECK(formula.IsThreeCnf());
  AQO_CHECK(formula.NumClauses() >= 1);
  SatToQohComposition out;

  DpllResult sat;
  {
    obs::Span solve_span("compose.solve_sat");
    sat = SolveDpll(formula);
  }
  AQO_CHECK(sat.complete);
  out.satisfiable = sat.assignment.has_value();
  if (options.exact_maxsat) {
    obs::Span maxsat_span("compose.maxsat");
    out.min_unsat = formula.NumClauses() - MaxSatisfiableClauses(formula);
    AQO_CHECK((out.min_unsat == 0) == out.satisfiable);
  } else if (out.satisfiable) {
    out.min_unsat = 0;
  }

  out.clique_reduction = ReduceSatToTwoThirdsClique(formula);
  const SatToCliqueResult& cl = out.clique_reduction;
  int n = cl.graph.NumVertices();
  AQO_CHECK(n % 3 == 0);

  QohGapParams params;
  params.log2_alpha = options.log2_alpha;
  params.eta = options.eta;
  out.gap = ReduceTwoThirdsCliqueToQoh(cl.graph, params);
  out.l_bound = out.gap.LBound();

  if (out.satisfiable) {
    std::vector<int> clique =
        cl.CliqueFromAssignment(formula, *sat.assignment);
    AQO_CHECK_EQ(static_cast<int>(clique.size()), 2 * n / 3);
    QohWitnessPlan plan = QohYesWitness(out.gap, clique);
    PipelineCostResult cost =
        DecompositionCost(out.gap.instance, plan.sequence, plan.decomposition);
    AQO_CHECK(cost.feasible) << "Lemma 12 witness must be feasible";
    out.witness_cost = cost.cost;
    out.witness = std::move(plan);
  } else if (out.min_unsat > 0) {
    // omega <= 2n/3 - u*  <=>  epsilon = 3 u* / n.
    double epsilon = 3.0 * static_cast<double>(out.min_unsat) /
                     static_cast<double>(n);
    out.no_floor = out.gap.GBound(std::min(epsilon, 2.0));
  }
  return out;
}

}  // namespace aqo
