#ifndef AQO_REDUCTIONS_SAT_TO_CLIQUE_H_
#define AQO_REDUCTIONS_SAT_TO_CLIQUE_H_

// Lemmas 3 and 4 of the paper: gap-preserving reductions 3SAT -> CLIQUE
// and 3SAT -> (2/3)CLIQUE.
//
// Both start from the Garey-Johnson VERTEX COVER gadget graph G on
// n0 = 2v + 3m vertices (min-VC = v + 2m + u*, u* = min unsatisfied
// clauses), take its complement G^c (max clique = independent set of G =
// n0 - minVC = v + m - u*), and pad with a set of *universal* vertices
// (complete among themselves and adjacent to everything) to position the
// clique threshold:
//
//   * Lemma 3 (CLIQUE):        add 4v + 3m universal vertices.
//       |V| = 6v + 6m, omega = 5v + 4m - u*.
//   * Lemma 4 ((2/3)CLIQUE):   add v + 3m universal vertices.
//       |V| = 3v + 6m = 3(v + 2m), omega = 2v + 4m - u* = (2/3)|V| - u*.
//
// Satisfiable formulas (u* = 0) hit the YES threshold exactly;
// gap-3SAT NO formulas (u* >= theta*m) fall short by Theta(m) = Theta(|V|).
//
// The universal padding keeps the complement's maximum degree equal to the
// gadget graph's maximum degree, which for 3SAT(13) sources is at most 14
// (one variable-gadget edge plus <= 13 clause occurrences) — the "degree
// >= |V| - O(1)" CLIQUE instance class of Section 3.

#include <vector>

#include "graph/graph.h"
#include "reductions/sat_to_vc.h"
#include "sat/cnf.h"

namespace aqo {

struct SatToCliqueResult {
  Graph graph;
  int num_vars = 0;
  int num_clauses = 0;
  int num_universal = 0;  // padding vertices (the last ids)
  // omega(graph) when u_star clauses must remain unsatisfied.
  int CliqueSizeForUnsat(int u_star) const;
  // The YES-side threshold (u_star = 0). For Lemma 4 this is
  // (2/3)|V| exactly.
  int YesCliqueSize() const { return CliqueSizeForUnsat(0); }

  // A clique witness of size YesCliqueSize() from a satisfying assignment:
  // the universal vertices plus the complement of the assignment's cover.
  std::vector<int> CliqueFromAssignment(const CnfFormula& formula,
                                        const Assignment& a) const;

  // Effective constants of the instance: c = YesCliqueSize()/|V| and, given
  // the gap-3SAT promise "u* >= theta*m on NO instances",
  // (c - d) = (YesCliqueSize() - theta*m)/|V|.
  double EffectiveC() const;
  double EffectiveCMinusD(double theta) const;

  // The embedded VERTEX COVER reduction (exposed for inspection/tests).
  SatToVcResult vc;
};

// Lemma 3.
SatToCliqueResult ReduceSatToClique(const CnfFormula& formula);

// Lemma 4.
SatToCliqueResult ReduceSatToTwoThirdsClique(const CnfFormula& formula);

}  // namespace aqo

#endif  // AQO_REDUCTIONS_SAT_TO_CLIQUE_H_
