#include "reductions/sat_to_vc.h"

#include <cstdlib>

#include "util/check.h"

namespace aqo {

namespace {

// Pads a clause to exactly three literals by repeating its last literal.
Clause PadToThree(const Clause& c) {
  AQO_CHECK(!c.empty() && c.size() <= 3) << "clause size " << c.size();
  Clause padded = c;
  while (padded.size() < 3) padded.push_back(padded.back());
  return padded;
}

}  // namespace

SatToVcResult ReduceSatToVertexCover(const CnfFormula& formula) {
  SatToVcResult result;
  result.num_vars = formula.num_vars();
  result.num_clauses = formula.NumClauses();
  int n = 2 * result.num_vars + 3 * result.num_clauses;
  Graph g(n);

  for (int var = 1; var <= result.num_vars; ++var) {
    g.AddEdge(result.PositiveLiteralVertex(var),
              result.NegativeLiteralVertex(var));
  }
  for (int c = 0; c < result.num_clauses; ++c) {
    Clause clause = PadToThree(formula.clause(c));
    // Triangle.
    g.AddEdge(result.ClauseVertex(c, 0), result.ClauseVertex(c, 1));
    g.AddEdge(result.ClauseVertex(c, 1), result.ClauseVertex(c, 2));
    g.AddEdge(result.ClauseVertex(c, 0), result.ClauseVertex(c, 2));
    // Slot-to-literal wiring.
    for (int s = 0; s < 3; ++s) {
      Lit l = clause[static_cast<size_t>(s)];
      int lit_vertex = l > 0 ? result.PositiveLiteralVertex(l)
                             : result.NegativeLiteralVertex(-l);
      g.AddEdge(result.ClauseVertex(c, s), lit_vertex);
    }
  }
  result.graph = std::move(g);
  return result;
}

std::vector<int> SatToVcResult::CoverFromAssignment(const CnfFormula& formula,
                                                    const Assignment& a) const {
  AQO_CHECK_EQ(static_cast<int>(a.size()), num_vars);
  std::vector<int> cover;
  for (int var = 1; var <= num_vars; ++var) {
    cover.push_back(a[static_cast<size_t>(var - 1)]
                        ? PositiveLiteralVertex(var)
                        : NegativeLiteralVertex(var));
  }
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause = PadToThree(formula.clause(c));
    // Keep one satisfied slot (if any) out of the cover; the other two (or
    // all three if the clause is unsatisfied) go in.
    int satisfied_slot = -1;
    for (int s = 0; s < 3; ++s) {
      Lit l = clause[static_cast<size_t>(s)];
      bool value = a[static_cast<size_t>(std::abs(l) - 1)];
      if ((l > 0) == value) {
        satisfied_slot = s;
        break;
      }
    }
    for (int s = 0; s < 3; ++s) {
      if (s != satisfied_slot) cover.push_back(ClauseVertex(c, s));
    }
  }
  return cover;
}

}  // namespace aqo
