#ifndef AQO_REDUCTIONS_SPARSE_H_
#define AQO_REDUCTIONS_SPARSE_H_

// Section 6: the reductions f_{N,e} and f_{H,e} that re-prove the QO_N and
// QO_H gaps for query graphs with a *prescribed* edge count e(m),
// m + Theta(m^tau) <= e(m) <= m(m-1)/2 - Theta(m^tau).
//
// Both reductions embed the dense source construction into a larger query
// graph: the n source vertices V1 keep the Section 4/5 construction; an
// auxiliary *connected* graph G2 on m - n (resp. m - n - 1) fresh vertices
// absorbs the edge budget, and a single bridge edge {v1, v2} connects the
// two parts. Relations in V2 are tiny (u = beta^n resp. 2^n) and their
// selectivities mild (1/beta resp. 1/2), so — provided alpha is large
// enough relative to beta^{m} — everything V2 contributes to any join
// sequence's cost is a factor alpha^{o(1)}: the gap survives untouched.

#include <cstdint>

#include "graph/graph.h"
#include "reductions/clique_to_qoh.h"
#include "reductions/clique_to_qon.h"
#include "util/random.h"

namespace aqo {

// Edge budgets for query graphs on m vertices at sparsity exponent tau.
// Sparse end: m + ceil(m^tau); dense end: m(m-1)/2 - ceil(m^tau).
int64_t SparseEdgeBudget(int64_t m, double tau);
int64_t DenseEdgeBudget(int64_t m, double tau);

struct SparseQonParams {
  QonGapParams base;        // c, d, log2_alpha for the embedded f_N
  double log2_beta = 2.0;   // beta = 4 (paper)
  int k = 3;                // blow-up: m = n^k  (k = Theta(2/tau))
  int64_t edge_budget = 0;  // e(m); must fit [m-1 + |E1|.., complete]
};

struct SparseQonGapInstance {
  QonInstance instance;  // m relations; source vertex v is relation v
  SparseQonParams params;
  int n = 0;  // source vertices (V1 = relations 0..n-1)
  int m = 0;  // total relations
  LogDouble t, u, alpha, beta;

  // Bounds are those of the embedded f_N (Theorem 16 statements).
  LogDouble KBound() const;
  LogDouble NoSideBound() const;
  // The slack factor alpha^{o(1)} contributed by V2: an upper bound on
  // the product of all V2 relation sizes (beta^{n(m-n)}) used to budget
  // witness-cost comparisons.
  LogDouble AuxiliarySlack() const;
};

// f_{N,e}. The auxiliary graph is randomized (its exact shape is
// irrelevant to the bounds); pass the source CLIQUE-class graph as g1.
SparseQonGapInstance ReduceCliqueToSparseQon(const Graph& g1,
                                             const SparseQonParams& params,
                                             Rng* rng);

// Witness for the YES side: clique-first inside V1, then the rest of V1,
// then the bridge and a connected traversal of V2.
JoinSequence SparseQonWitness(const SparseQonGapInstance& gap,
                              const Graph& g1,
                              const std::vector<int>& clique);

struct SparseQohParams {
  QohGapParams base;       // log2_alpha, eta, t0_exponent
  int k = 3;               // m = n^k
  int64_t edge_budget = 0; // e(m)
};

struct SparseQohGapInstance {
  QohInstance instance;  // m relations; 0 = R_0, 1..n = V1, rest = V2
  SparseQohParams params;
  int n = 0;
  int m = 0;
  LogDouble t, t0, alpha;

  LogDouble LBound() const;
  LogDouble GBound(double epsilon) const;
  int RelationOf(int source_vertex) const { return source_vertex + 1; }
};

// f_{H,e}.
SparseQohGapInstance ReduceTwoThirdsCliqueToSparseQoh(
    const Graph& g1, const SparseQohParams& params, Rng* rng);

// Witness: R_0, clique (2n/3), rest of V1, bridge + V2 traversal; the five
// Lemma 12 pipelines followed by one pipeline per n/3-sized chunk of V2.
QohWitnessPlan SparseQohWitness(const SparseQohGapInstance& gap,
                                const Graph& g1,
                                const std::vector<int>& clique);

}  // namespace aqo

#endif  // AQO_REDUCTIONS_SPARSE_H_
