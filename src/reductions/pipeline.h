#ifndef AQO_REDUCTIONS_PIPELINE_H_
#define AQO_REDUCTIONS_PIPELINE_H_

// End-to-end composition of the paper's reduction chains:
//
//   Theorem 9:  3SAT --(Lemma 3)--> CLIQUE --(f_N)--> QO_N
//   Theorem 15: 3SAT --(Lemma 4)--> (2/3)CLIQUE --(f_H)--> QO_H
//
// The composed functions also produce *certificates* on both sides:
// satisfiable formulas yield an explicit witness plan whose cost is checked
// against K (resp. L); formulas with u* > 0 minimum unsatisfied clauses
// yield omega(G) = YesCliqueSize - u* and hence a certified cost floor.
// (The PCP amplification of Theorem 1 — which manufactures the constant
// gap in u* — is the one non-implementable ingredient; the ground truth u*
// here comes from exact solvers on small formulas instead.)

#include <optional>

#include "reductions/clique_to_qoh.h"
#include "reductions/clique_to_qon.h"
#include "reductions/sat_to_clique.h"
#include "sat/cnf.h"

namespace aqo {

struct SatToQonComposition {
  bool satisfiable = false;
  int min_unsat = -1;  // u*; exact when computed, -1 when skipped
  SatToCliqueResult clique_reduction;
  QonGapInstance gap;
  // YES side (satisfiable only): Lemma 6 witness and its exact cost.
  std::optional<JoinSequence> witness;
  LogDouble witness_cost;
  // NO side (unsatisfiable with known u* only): certified floor on C(Z).
  LogDouble certified_floor;
};

struct SatToQonOptions {
  double log2_alpha = 8.0;
  // Gap promise used to fix (c, d) at construction time: NO instances are
  // assumed to leave at least theta * m clauses unsatisfied.
  double theta = 0.05;
  // Compute u* exactly via branch & bound MaxSAT (exponential in v).
  bool exact_maxsat = true;
};

// Runs the full Theorem 9 chain on `formula` (must be 3CNF).
SatToQonComposition ComposeSatToQon(const CnfFormula& formula,
                                    const SatToQonOptions& options);

struct SatToQohComposition {
  bool satisfiable = false;
  int min_unsat = -1;
  SatToCliqueResult clique_reduction;
  QohGapInstance gap;
  std::optional<QohWitnessPlan> witness;
  LogDouble witness_cost;   // exact cost of the witness plan (YES side)
  LogDouble l_bound;        // L(alpha, n)
  LogDouble no_floor;       // G(alpha, n) at the instance's epsilon (NO side)
};

struct SatToQohOptions {
  double log2_alpha = 2.0;
  double eta = 0.5;
  bool exact_maxsat = true;
};

// Runs the full Theorem 15 chain on `formula` (must be 3CNF).
SatToQohComposition ComposeSatToQoh(const CnfFormula& formula,
                                    const SatToQohOptions& options);

}  // namespace aqo

#endif  // AQO_REDUCTIONS_PIPELINE_H_
