#include "reductions/sat_to_clique.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/check.h"

namespace aqo {

namespace {

SatToCliqueResult BuildWithPadding(const CnfFormula& formula,
                                   int num_universal) {
  obs::Span span("reduce.sat_to_clique");
  static obs::Counter& calls =
      obs::Registry::Get().GetCounter("reduce.sat_to_clique.calls");
  calls.Increment();
  SatToCliqueResult result;
  result.num_vars = formula.num_vars();
  result.num_clauses = formula.NumClauses();
  result.num_universal = num_universal;

  SatToVcResult vc = ReduceSatToVertexCover(formula);
  Graph core = vc.graph.Complement();
  int n0 = core.NumVertices();
  Graph g(n0 + num_universal);
  for (const auto& [u, v] : core.Edges()) g.AddEdge(u, v);
  for (int p = 0; p < num_universal; ++p) {
    for (int v = 0; v < n0 + p; ++v) g.AddEdge(n0 + p, v);
  }
  static obs::Counter& vertices =
      obs::Registry::Get().GetCounter("reduce.sat_to_clique.vertices");
  static obs::Counter& edges =
      obs::Registry::Get().GetCounter("reduce.sat_to_clique.edges");
  vertices.Add(static_cast<uint64_t>(g.NumVertices()));
  edges.Add(static_cast<uint64_t>(g.NumEdges()));
  result.graph = std::move(g);
  result.vc = std::move(vc);
  return result;
}

}  // namespace

int SatToCliqueResult::CliqueSizeForUnsat(int u_star) const {
  // Independent set of the gadget graph = n0 - (v + 2m + u*)
  //                                     = v + m - u*; plus the padding.
  return num_universal + num_vars + num_clauses - u_star;
}

std::vector<int> SatToCliqueResult::CliqueFromAssignment(
    const CnfFormula& formula, const Assignment& a) const {
  AQO_CHECK(formula.IsSatisfiedBy(a)) << "witness needs a satisfying assignment";
  std::vector<int> cover = vc.CoverFromAssignment(formula, a);
  int n0 = vc.graph.NumVertices();
  std::vector<bool> in_cover(static_cast<size_t>(n0), false);
  for (int v : cover) in_cover[static_cast<size_t>(v)] = true;
  std::vector<int> clique;
  for (int v = 0; v < n0; ++v) {
    if (!in_cover[static_cast<size_t>(v)]) clique.push_back(v);
  }
  for (int p = 0; p < num_universal; ++p) clique.push_back(n0 + p);
  AQO_CHECK_EQ(static_cast<int>(clique.size()), YesCliqueSize());
  AQO_CHECK(graph.IsClique(clique));
  return clique;
}

double SatToCliqueResult::EffectiveC() const {
  return static_cast<double>(YesCliqueSize()) /
         static_cast<double>(graph.NumVertices());
}

double SatToCliqueResult::EffectiveCMinusD(double theta) const {
  return (static_cast<double>(YesCliqueSize()) -
          theta * static_cast<double>(num_clauses)) /
         static_cast<double>(graph.NumVertices());
}

SatToCliqueResult ReduceSatToClique(const CnfFormula& formula) {
  int v = formula.num_vars();
  int m = formula.NumClauses();
  SatToCliqueResult result = BuildWithPadding(formula, 4 * v + 3 * m);
  AQO_CHECK_EQ(result.graph.NumVertices(), 6 * v + 6 * m);
  return result;
}

SatToCliqueResult ReduceSatToTwoThirdsClique(const CnfFormula& formula) {
  int v = formula.num_vars();
  int m = formula.NumClauses();
  SatToCliqueResult result = BuildWithPadding(formula, v + 3 * m);
  AQO_CHECK_EQ(result.graph.NumVertices(), 3 * (v + 2 * m));
  AQO_CHECK_EQ(3 * result.YesCliqueSize(), 2 * result.graph.NumVertices());
  return result;
}

}  // namespace aqo
