#ifndef AQO_REDUCTIONS_CLIQUE_TO_QOH_H_
#define AQO_REDUCTIONS_CLIQUE_TO_QOH_H_

// The reduction f_H of Section 5: (2/3)CLIQUE -> QO_H.
//
// Given a graph G on n vertices (n divisible by 3), the QO_H instance adds
// a sentinel relation R_0 joined to every vertex:
//   * relations in V have t = alpha^{(n-1)/2} tuples; R_0 has
//     t_0 = (n t)^{12} tuples, so large that hjmin(t_0) > M — no feasible
//     plan can hash R_0, forcing every feasible sequence to start with it;
//   * selectivities: 1/alpha on E, 1/2 on the R_0 spokes;
//   * memory M = (n/3 - 1) t + 2 hjmin(t): a pipeline of n/3 - 1 joins runs
//     fully in memory, one of n/3 (or n/3 + 1) joins must starve one (two)
//     hash tables down to hjmin, re-reading their outer streams.
//
// Bounds (with L(alpha,n) = t_0 alpha^{n^2/9}):
//   * Lemma 12 (YES): omega(G) >= 2n/3 gives a 5-pipeline plan of cost
//     O(L(alpha, n)) — the clique prefix keeps every materialized
//     intermediate (N_1, N_{n/3}, N_{2n/3}, N_{n-1}, N_n) small;
//   * Lemmas 13/14 (NO): omega(G) <= (2-eps)n/3 forces joins
//     J_{n/3+1} .. J_{2n/3+1} — all with Omega(G(alpha,n)) outputs, where
//     G(alpha,n) = L * alpha^{n eps/3 - 1} — into one pipeline that cannot
//     be fed enough memory, costing Omega(G(alpha, n)).
//
// Numeric constraint: t is an *inner* hash-table size and must be exact in
// linear double arithmetic, so log2(alpha) * (n-1)/2 <= 52 is enforced
// (pick alpha accordingly; the gap is alpha^{Theta(n)} for every alpha >= 4).

#include <vector>

#include "graph/graph.h"
#include "qo/qoh.h"
#include "util/log_double.h"

namespace aqo {

struct QohGapParams {
  double log2_alpha = 2.0;   // alpha = 2^log2_alpha >= 4
  double eta = 0.5;          // hjmin(b) = ceil(b^eta)
  double t0_exponent = 12.0; // t_0 = (n t)^{t0_exponent}
};

struct QohGapInstance {
  QohInstance instance;  // n+1 relations; relation 0 is the sentinel R_0
  QohGapParams params;
  int n = 0;             // |V(G)|; instance has n+1 relations
  LogDouble t;
  LogDouble t0;
  LogDouble alpha;

  // L(alpha, n) = t_0 * alpha^{n^2/9}.
  LogDouble LBound() const;
  // G(alpha, n) = L * alpha^{n*epsilon/3 - 1}, the NO-side floor when
  // omega(G) <= (2 - epsilon) n / 3.
  LogDouble GBound(double epsilon) const;

  // Maps a vertex of the source graph to its relation index (v + 1).
  int RelationOf(int source_vertex) const { return source_vertex + 1; }
};

// Applies f_H. Requires n >= 9, n % 3 == 0, and the double-exactness
// constraint above; validates hjmin(t_0) > M.
QohGapInstance ReduceTwoThirdsCliqueToQoh(const Graph& g,
                                          const QohGapParams& params);

struct QohWitnessPlan {
  JoinSequence sequence;
  PipelineDecomposition decomposition;
};

// Lemma 12's witness: R_0, then the 2n/3 clique vertices, then the rest;
// pipelines P(1,1), P(2,n/3), P(n/3+1,2n/3), P(2n/3+1,n-1), P(n,n).
QohWitnessPlan QohYesWitness(const QohGapInstance& gap,
                             const std::vector<int>& clique_in_source);

}  // namespace aqo

#endif  // AQO_REDUCTIONS_CLIQUE_TO_QOH_H_
