#include "reductions/clique_to_qon.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/check.h"

namespace aqo {

double QonGapInstance::PeakPosition() const {
  return (params.c - params.d / 2.0) * static_cast<double>(n);
}

LogDouble QonGapInstance::KBound() const {
  double p = PeakPosition();
  return w * alpha.Pow(p * (p + 1.0) / 2.0 + 1.0);
}

LogDouble QonGapInstance::NoSideBound() const {
  return KBound() *
         alpha.Pow(params.d / 2.0 * static_cast<double>(n) - 1.0);
}

LogDouble QonGapInstance::CertifiedLowerBound(int omega_upper) const {
  AQO_CHECK(omega_upper >= 1);
  double p = PeakPosition();
  LogDouble best = LogDouble::Zero();
  for (int i = 1; i <= n - 1; ++i) {
    double di = static_cast<double>(i);
    double dmax = di * (di - 1.0) / 2.0 - di +
                  static_cast<double>(std::min(omega_upper, i));
    dmax = std::max(dmax, 0.0);
    // Dmax can never exceed the complete graph on i vertices.
    dmax = std::min(dmax, di * (di - 1.0) / 2.0);
    LogDouble h_floor = w * alpha.Pow(p * di - dmax);
    best = MaxOf(best, h_floor);
  }
  return best;
}

QonGapInstance ReduceCliqueToQon(const Graph& g, const QonGapParams& params) {
  obs::Span span("reduce.clique_to_qon");
  static obs::Counter& calls =
      obs::Registry::Get().GetCounter("reduce.clique_to_qon.calls");
  static obs::Counter& relations =
      obs::Registry::Get().GetCounter("reduce.clique_to_qon.relations");
  calls.Increment();
  relations.Add(static_cast<uint64_t>(g.NumVertices()));
  AQO_CHECK(params.log2_alpha >= 2.0) << "need alpha >= 4";
  AQO_CHECK(0.0 < params.d && params.d < params.c && params.c <= 1.0);
  int n = g.NumVertices();
  AQO_CHECK(n >= 2);

  QonGapInstance gap;
  gap.params = params;
  gap.n = n;
  gap.alpha = LogDouble::FromLog2(params.log2_alpha);
  double p = (params.c - params.d / 2.0) * static_cast<double>(n);
  gap.t = gap.alpha.Pow(p);
  gap.w = gap.t / gap.alpha;

  std::vector<LogDouble> sizes(static_cast<size_t>(n), gap.t);
  QonInstance inst(g, std::move(sizes));
  LogDouble inv_alpha = LogDouble::One() / gap.alpha;
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, inv_alpha);
    // Defaults already give w = t * (1/alpha) on edges and t on non-edges,
    // exactly the paper's W matrix.
  }
  inst.Validate();
  gap.instance = std::move(inst);
  return gap;
}

JoinSequence CliqueFirstWitnessGreedy(const QonInstance& inst,
                                      const std::vector<int>& clique) {
  const Graph& g = inst.graph();
  AQO_CHECK(g.IsClique(clique));
  AQO_CHECK(!clique.empty());
  int n = g.NumVertices();
  JoinSequence seq = clique;
  DynamicBitset placed(n);
  for (int v : clique) placed.Set(v);
  // Intermediate size of the clique prefix.
  LogDouble intermediate = LogDouble::One();
  for (size_t i = 0; i < clique.size(); ++i) {
    LogDouble next = intermediate * inst.size(clique[i]);
    for (size_t j = 0; j < i; ++j) {
      if (g.HasEdge(clique[j], clique[i]))
        next *= inst.selectivity(clique[j], clique[i]);
    }
    intermediate = next;
  }
  while (static_cast<int>(seq.size()) < n) {
    int best = -1;
    LogDouble best_h;
    LogDouble best_next;
    for (int v = 0; v < n; ++v) {
      if (placed.Test(v)) continue;
      LogDouble min_w = inst.size(v);
      for (int k : seq) min_w = MinOf(min_w, inst.AccessCost(k, v));
      LogDouble h = intermediate * min_w;
      LogDouble next = intermediate * inst.size(v);
      for (int k : seq) {
        if (g.HasEdge(k, v)) next *= inst.selectivity(k, v);
      }
      // Rank by the immediate join cost, then by the resulting
      // intermediate size (the quantity that multiplies all later costs).
      bool better = best < 0 || h < best_h ||
                    (h.ApproxEquals(best_h, 1e-9) && next < best_next);
      if (better) {
        best = v;
        best_h = h;
        best_next = next;
      }
    }
    intermediate = best_next;
    seq.push_back(best);
    placed.Set(best);
  }
  AQO_CHECK(IsPermutation(seq, n));
  return seq;
}

JoinSequence CliqueFirstWitness(const Graph& g,
                                const std::vector<int>& clique) {
  AQO_CHECK(g.IsClique(clique)) << "witness vertices are not a clique";
  AQO_CHECK(!clique.empty());
  int n = g.NumVertices();
  JoinSequence seq = clique;
  DynamicBitset placed(n);
  for (int v : clique) placed.Set(v);
  while (static_cast<int>(seq.size()) < n) {
    // Prefer a vertex adjacent to the prefix (avoids cartesian products).
    int pick = -1;
    for (int v = 0; v < n && pick < 0; ++v) {
      if (!placed.Test(v) && g.Neighbors(v).Intersects(placed)) pick = v;
    }
    if (pick < 0) {
      // Disconnected graph: fall back to an arbitrary leftover vertex.
      for (int v = 0; v < n && pick < 0; ++v) {
        if (!placed.Test(v)) pick = v;
      }
    }
    seq.push_back(pick);
    placed.Set(pick);
  }
  AQO_CHECK(IsPermutation(seq, n));
  return seq;
}

}  // namespace aqo
