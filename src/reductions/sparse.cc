#include "reductions/sparse.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "util/check.h"

namespace aqo {

namespace {

int64_t IntPow(int64_t base, int exp) {
  int64_t r = 1;
  for (int i = 0; i < exp; ++i) {
    AQO_CHECK(r <= (int64_t{1} << 40) / base) << "blow-up m = n^k too large";
    r *= base;
  }
  return r;
}

// Builds the auxiliary connected graph G2 and splices it after the
// vertices of `g1`, bridging g1's vertex `bridge_from` to G2's first
// vertex. When the budget exceeds the complete graph on V2, the overflow
// is absorbed by V1-V2 cross edges (they carry the same mild auxiliary
// selectivity, never create cheaper access paths into V1 than the E1
// edges, and only shrink witness intermediates — the gap bounds are
// unaffected). V1-V1 non-edges stay non-edges: the embedded CLIQUE
// structure is untouched. Returns the combined graph on m vertices.
Graph SpliceAuxiliary(const Graph& g1, int m, int bridge_from,
                      int64_t aux_edges, Rng* rng) {
  int n1 = g1.NumVertices();
  int n2 = m - n1;
  AQO_CHECK(n2 >= 1);
  AQO_CHECK(aux_edges >= n2 - 1) << "auxiliary graph cannot be connected";
  int64_t v2_capacity = static_cast<int64_t>(n2) * (n2 - 1) / 2;
  // One cross edge (the bridge) is always present and accounted by the
  // caller; overflow may use the remaining n1*n2 - 1 cross slots.
  int64_t overflow = std::max<int64_t>(0, aux_edges - v2_capacity);
  AQO_CHECK(overflow <= static_cast<int64_t>(n1) * n2 - 1)
      << "edge budget exceeds V2-complete plus all cross edges";
  int64_t within_v2 = aux_edges - overflow;
  Graph g2 = ConnectedWithEdgeBudget(n2, static_cast<int>(within_v2), rng);
  Graph g = DisjointUnion(g1, g2);
  g.AddEdge(bridge_from, n1);
  // Distribute the overflow over cross pairs (excluding the bridge pair).
  if (overflow > 0) {
    std::vector<std::pair<int, int>> cross;
    cross.reserve(static_cast<size_t>(n1) * static_cast<size_t>(n2));
    for (int a = 0; a < n1; ++a) {
      for (int b = n1; b < m; ++b) {
        if (a == bridge_from && b == n1) continue;
        cross.emplace_back(a, b);
      }
    }
    rng->Shuffle(&cross);
    for (int64_t e = 0; e < overflow; ++e) {
      g.AddEdge(cross[static_cast<size_t>(e)].first,
                cross[static_cast<size_t>(e)].second);
    }
  }
  return g;
}

}  // namespace

int64_t SparseEdgeBudget(int64_t m, double tau) {
  AQO_CHECK(0.0 < tau && tau < 1.0);
  return m + static_cast<int64_t>(
                 std::ceil(std::pow(static_cast<double>(m), tau)));
}

int64_t DenseEdgeBudget(int64_t m, double tau) {
  AQO_CHECK(0.0 < tau && tau < 1.0);
  return m * (m - 1) / 2 -
         static_cast<int64_t>(
             std::ceil(std::pow(static_cast<double>(m), tau)));
}

LogDouble SparseQonGapInstance::KBound() const {
  double p = (params.base.c - params.base.d / 2.0) * static_cast<double>(n);
  LogDouble w = t / alpha;
  return w * alpha.Pow(p * (p + 1.0) / 2.0 + 1.0);
}

LogDouble SparseQonGapInstance::NoSideBound() const {
  return KBound() *
         alpha.Pow(params.base.d / 2.0 * static_cast<double>(n) - 1.0);
}

LogDouble SparseQonGapInstance::AuxiliarySlack() const {
  // Product of all auxiliary relation sizes: u^{m-n} = beta^{n (m-n)}.
  return u.Pow(static_cast<double>(m - n));
}

SparseQonGapInstance ReduceCliqueToSparseQon(const Graph& g1,
                                             const SparseQonParams& params,
                                             Rng* rng) {
  int n = g1.NumVertices();
  AQO_CHECK(n >= 2);
  AQO_CHECK(params.k >= 2);
  AQO_CHECK(params.base.log2_alpha >= 2.0);
  AQO_CHECK(params.log2_beta >= 1.0);
  int64_t m64 = IntPow(n, params.k);
  AQO_CHECK(m64 <= 20000) << "query graph too large to materialize";
  int m = static_cast<int>(m64);

  int64_t aux_edges = params.edge_budget - g1.NumEdges() - 1;
  Graph q = SpliceAuxiliary(g1, m, /*bridge_from=*/0, aux_edges, rng);
  AQO_CHECK_EQ(static_cast<int64_t>(q.NumEdges()), params.edge_budget);

  SparseQonGapInstance gap;
  gap.params = params;
  gap.n = n;
  gap.m = m;
  gap.alpha = LogDouble::FromLog2(params.base.log2_alpha);
  gap.beta = LogDouble::FromLog2(params.log2_beta);
  double p = (params.base.c - params.base.d / 2.0) * static_cast<double>(n);
  gap.t = gap.alpha.Pow(p);
  gap.u = gap.beta.Pow(static_cast<double>(n));

  std::vector<LogDouble> sizes(static_cast<size_t>(m), gap.u);
  for (int v = 0; v < n; ++v) sizes[static_cast<size_t>(v)] = gap.t;
  QonInstance inst(q, std::move(sizes));
  LogDouble inv_alpha = LogDouble::One() / gap.alpha;
  LogDouble inv_beta = LogDouble::One() / gap.beta;
  for (const auto& [a, b] : q.Edges()) {
    // E1 edges (both endpoints in V1) get 1/alpha; everything else —
    // auxiliary edges and the bridge — gets 1/beta.
    inst.SetSelectivity(a, b, (a < n && b < n) ? inv_alpha : inv_beta);
  }
  inst.Validate();
  gap.instance = std::move(inst);
  return gap;
}

JoinSequence SparseQonWitness(const SparseQonGapInstance& gap,
                              const Graph& g1,
                              const std::vector<int>& clique) {
  AQO_CHECK(g1.IsClique(clique));
  // Connectivity-greedy with smallest-index preference: exhausts V1
  // (indices < n) before crossing the bridge into V2.
  return CliqueFirstWitness(gap.instance.graph(), clique);
}

LogDouble SparseQohGapInstance::LBound() const {
  double dn = static_cast<double>(n);
  return t0 * alpha.Pow(dn * dn / 9.0);
}

LogDouble SparseQohGapInstance::GBound(double epsilon) const {
  AQO_CHECK(0.0 < epsilon && epsilon <= 2.0);
  double dn = static_cast<double>(n);
  return LBound() * alpha.Pow(dn * epsilon / 3.0 - 1.0);
}

SparseQohGapInstance ReduceTwoThirdsCliqueToSparseQoh(
    const Graph& g1, const SparseQohParams& params, Rng* rng) {
  int n = g1.NumVertices();
  AQO_CHECK(n >= 9 && n % 3 == 0);
  AQO_CHECK(n <= 52) << "auxiliary relation size 2^n must stay exact";
  AQO_CHECK(params.k >= 2);
  AQO_CHECK(params.base.log2_alpha >= 2.0);
  AQO_CHECK(params.base.log2_alpha * (n - 1) / 2.0 <= 52.0)
      << "t = alpha^{(n-1)/2} must stay exact in double";
  int64_t m64 = IntPow(n, params.k);
  AQO_CHECK(m64 <= 20000) << "query graph too large to materialize";
  int m = static_cast<int>(m64);

  SparseQohGapInstance gap;
  gap.params = params;
  gap.n = n;
  gap.m = m;
  gap.alpha = LogDouble::FromLog2(params.base.log2_alpha);
  gap.t = gap.alpha.Pow((static_cast<double>(n) - 1.0) / 2.0);
  LogDouble nt = LogDouble::FromLinear(static_cast<double>(n)) * gap.t;
  gap.t0 = nt.Pow(params.base.t0_exponent);

  // Core: v0 (relation 0) spoked to V1 (relations 1..n) carrying g1's
  // edges; auxiliary V2 on relations n+1..m-1 bridged from relation 1.
  Graph core(n + 1);
  for (int v = 0; v < n; ++v) core.AddEdge(0, v + 1);
  for (const auto& [a, b] : g1.Edges()) core.AddEdge(a + 1, b + 1);
  int64_t aux_edges =
      params.edge_budget - g1.NumEdges() - static_cast<int64_t>(n) - 1;
  Graph q = SpliceAuxiliary(core, m, /*bridge_from=*/1, aux_edges, rng);
  AQO_CHECK_EQ(static_cast<int64_t>(q.NumEdges()), params.edge_budget);

  LogDouble aux_size = LogDouble::FromLog2(static_cast<double>(n));  // 2^n
  std::vector<LogDouble> sizes(static_cast<size_t>(m), aux_size);
  sizes[0] = gap.t0;
  for (int v = 1; v <= n; ++v) sizes[static_cast<size_t>(v)] = gap.t;

  double t_linear = gap.t.ToLinear();
  double hjmin_t = std::ceil(std::pow(t_linear, params.base.eta));
  double memory =
      (static_cast<double>(n) / 3.0 - 1.0) * t_linear + 2.0 * hjmin_t;

  QohInstance inst(std::move(q), std::move(sizes), memory, params.base.eta);
  LogDouble inv_alpha = LogDouble::One() / gap.alpha;
  LogDouble spoke = LogDouble::FromLog2(-static_cast<double>(n));  // 2^{-n}
  LogDouble half = LogDouble::FromLinear(0.5);
  for (const auto& [a, b] : inst.graph().Edges()) {
    if (a == 0 || b == 0) {
      inst.SetSelectivity(a, b, spoke);
    } else if (a <= n && b <= n) {
      inst.SetSelectivity(a, b, inv_alpha);
    } else {
      inst.SetSelectivity(a, b, half);
    }
  }
  inst.Validate();
  AQO_CHECK(inst.HashJoinMinMemory(gap.t0) > LogDouble::FromLinear(memory));
  gap.instance = std::move(inst);
  return gap;
}

QohWitnessPlan SparseQohWitness(const SparseQohGapInstance& gap,
                                const Graph& g1,
                                const std::vector<int>& clique) {
  int n = gap.n;
  int m = gap.m;
  int third = n / 3;
  AQO_CHECK_EQ(static_cast<int>(clique.size()), 2 * third);
  AQO_CHECK(g1.IsClique(clique));

  QohWitnessPlan plan;
  plan.sequence.push_back(0);
  DynamicBitset used(m);
  used.Set(0);
  for (int v : clique) {
    plan.sequence.push_back(gap.RelationOf(v));
    used.Set(gap.RelationOf(v));
  }
  for (int v = 1; v <= n; ++v) {
    if (!used.Test(v)) {
      plan.sequence.push_back(v);
      used.Set(v);
    }
  }
  // V2 in a connected order (BFS from the bridge endpoint).
  const Graph& q = gap.instance.graph();
  std::vector<int> frontier = {n + 1};
  DynamicBitset seen(m);
  seen.Set(n + 1);
  for (size_t head = 0; head < frontier.size(); ++head) {
    int v = frontier[head];
    plan.sequence.push_back(v);
    q.Neighbors(v).ForEachSetBit([&](int w) {
      if (w > n && !seen.Test(w)) {
        seen.Set(w);
        frontier.push_back(w);
      }
    });
  }
  AQO_CHECK(IsPermutation(plan.sequence, m));

  // Lemma 12's five pipelines over joins 1..n, then V2 joins in chunks
  // whose hash tables (2^n pages each) fit fully in memory.
  plan.decomposition.starts = {1, 2, third + 1, 2 * third + 1, n};
  double aux_pages = std::exp2(static_cast<double>(n));
  int chunk = std::max(
      1, static_cast<int>(gap.instance.memory() / aux_pages));
  for (int j = n + 1; j <= m - 1; j += chunk) {
    plan.decomposition.starts.push_back(j);
  }
  return plan;
}

}  // namespace aqo
