// Fuzz target: the adaptive feedback record codec (qo/adaptive.h).
// Decode is strict — malformed bytes must fail with a reason — and the
// codec is canonical: whatever decodes must re-encode to the identical
// bytes (the feedback store dedupes on byte digests, so canonicality is
// load-bearing, not cosmetic).

#include <cstdint>
#include <string>
#include <string_view>

#include "qo/adaptive.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kMaxInput = 4096;
  if (size > kMaxInput) size = kMaxInput;
  std::string_view payload(reinterpret_cast<const char*>(data), size);

  aqo::FeedbackRecord record;
  std::string error;
  if (!aqo::DecodeFeedbackPayload(payload, &record, &error)) {
    AQO_CHECK(!error.empty());
    return 0;
  }
  std::string reencoded = aqo::EncodeFeedbackPayload(record);
  AQO_CHECK(reencoded == payload)
      << "feedback codec is not canonical: " << payload.size() << " vs "
      << reencoded.size() << " bytes";
  return 0;
}
