// Fuzz target: io/serialization.h Parse* readers. Malformed text must
// come back as a ParseResult error (never a crash or unbounded
// allocation — the kMaxSerializedRelations guard); accepted values must
// survive a write/reparse round trip.

#include <cstdint>
#include <sstream>
#include <string>

#include "io/serialization.h"
#include "util/check.h"

namespace {

template <typename T, typename ParseFn, typename WriteFn>
void Check(const std::string& text, ParseFn parse, WriteFn write) {
  std::istringstream is(text);
  aqo::ParseResult<T> parsed = parse(is);
  if (!parsed.ok()) {
    AQO_CHECK(!parsed.error.empty());
    return;
  }
  // Anything we accept must round-trip through our own writer.
  std::ostringstream os;
  write(*parsed.value, os);
  std::istringstream is2(os.str());
  aqo::ParseResult<T> reparsed = parse(is2);
  AQO_CHECK(reparsed.ok()) << "round-trip reparse failed: " << reparsed.error;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kMaxInput = 1 << 14;
  if (size > kMaxInput) size = kMaxInput;
  std::string text(reinterpret_cast<const char*>(data), size);

  Check<aqo::Graph>(text, aqo::ParseGraph,
                    [](const aqo::Graph& g, std::ostream& os) {
                      aqo::WriteGraph(g, os);
                    });
  Check<aqo::CnfFormula>(text, aqo::ParseDimacs,
                         [](const aqo::CnfFormula& f, std::ostream& os) {
                           aqo::WriteDimacs(f, os);
                         });
  Check<aqo::QonInstance>(text, aqo::ParseQonInstance,
                          [](const aqo::QonInstance& inst, std::ostream& os) {
                            aqo::WriteQonInstance(inst, os);
                          });
  Check<aqo::QohInstance>(text, aqo::ParseQohInstance,
                          [](const aqo::QohInstance& inst, std::ostream& os) {
                            aqo::WriteQohInstance(inst, os);
                          });
  return 0;
}
