// Fuzz target: io/framing.h — the frame codec and the resynchronizing
// FrameReader that guards the aqo_serve stdin loop. Any input must
// terminate without crashing, and the reader must account for every byte
// it consumed: frames delivered + garbage skipped never exceed the input.

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "io/framing.h"
#include "util/check.h"

namespace {

// The serve loop's validator (tools/aqo_serve.cc).
bool LooksLikeVerb(const std::string& payload) {
  return payload.rfind("req ", 0) == 0 || payload.rfind("ping ", 0) == 0 ||
         payload.rfind("health ", 0) == 0 ||
         payload.rfind("snapshot ", 0) == 0;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Resync slides one byte at a time (O(garbage^2) worst case); the cap
  // keeps a pathological input from looking like a hang.
  constexpr size_t kMaxInput = 1 << 14;
  if (size > kMaxInput) size = kMaxInput;
  std::string bytes(reinterpret_cast<const char*>(data), size);

  // The strict single-frame reader must fill exactly one of its outputs.
  {
    std::istringstream is(bytes);
    std::string payload;
    std::string error;
    aqo::FrameRead read = aqo::ReadFrame(is, &payload, &error);
    if (read == aqo::FrameRead::kError) AQO_CHECK(!error.empty());
  }

  std::istringstream is(bytes);
  aqo::FrameReader reader(is, LooksLikeVerb);
  std::string payload;
  std::string error;
  uint64_t consumed = 0;
  for (;;) {
    aqo::FrameRead read = reader.Next(&payload, &error);
    if (read == aqo::FrameRead::kFrame) {
      consumed += 4 + payload.size() + reader.last_skipped();
      continue;
    }
    if (read == aqo::FrameRead::kError) AQO_CHECK(!error.empty());
    break;
  }
  AQO_CHECK(consumed <= bytes.size())
      << "FrameReader accounted for more bytes than the input held";
  return 0;
}
