// Fuzz target: qo/persist.h file readers. The lenient recovery path
// (RecoverPersistFile / ScanFramedFile) must salvage or reject any byte
// soup without crashing, and must agree with the strict reader
// (ReadPersistFile) whenever the strict reader accepts.

#include <cstdint>
#include <sstream>
#include <string>

#include "qo/persist.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kMaxInput = 1 << 16;
  if (size > kMaxInput) size = kMaxInput;
  std::string bytes(reinterpret_cast<const char*>(data), size);

  for (aqo::PersistFileKind kind :
       {aqo::PersistFileKind::kSnapshot, aqo::PersistFileKind::kLog,
        aqo::PersistFileKind::kFeedback}) {
    aqo::FramedFileInfo scanned = aqo::ScanFramedFile(bytes, kind);
    AQO_CHECK(scanned.valid_bytes <= bytes.size());
    AQO_CHECK(scanned.ends.size() == scanned.payloads.size());
    if (!scanned.header_ok) {
      AQO_CHECK(!scanned.damage.empty());
      AQO_CHECK(scanned.payloads.empty());
    }

    std::istringstream lenient_in(bytes);
    aqo::PersistFileInfo lenient = aqo::RecoverPersistFile(lenient_in, kind);

    std::istringstream strict_in(bytes);
    aqo::ParseResult<std::vector<aqo::PersistedEntry>> strict =
        aqo::ReadPersistFile(strict_in, kind);
    if (strict.ok()) {
      // Strict acceptance implies the lenient reader salvages everything
      // with no damage and no torn tail.
      AQO_CHECK(lenient.damage.empty()) << lenient.damage;
      AQO_CHECK(!lenient.torn_tail);
      AQO_CHECK(lenient.entries.size() == strict.value->size());
    } else {
      AQO_CHECK(!strict.error.empty());
    }
  }
  return 0;
}
