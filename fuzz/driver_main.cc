// Standalone replay-and-mutate driver for the fuzz harnesses.
//
// The harnesses are plain LLVMFuzzerTestOneInput entry points. When the
// toolchain has libFuzzer (-fsanitize=fuzzer), fuzz/CMakeLists.txt links
// that and this file is unused. When it does not (g++-only containers),
// this driver supplies main(): it replays the corpus and then runs a
// budget of seeded deterministic mutations — a miniature libFuzzer with
// none of the coverage feedback but all of the crash-surfacing, and
// byte-reproducible from the command line alone.
//
// CLI (the libFuzzer subset CI uses):
//   fuzz_<target> [-runs=N] [-seed=S] [-max_len=M] [corpus file|dir]...
//
// Every corpus file runs once; then N mutated inputs derived from corpus
// picks via util/random.h Rng(seed). Any crash/sanitizer abort falls out
// as the process dying, which is what the CI job checks.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/random.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

// One seeded mutation pass over `base`: a few stacked edits drawn from
// the usual structural set (flip, overwrite, insert, erase, truncate,
// splice). Bounded by max_len.
std::string Mutate(const std::string& base,
                   const std::vector<std::string>& corpus, size_t max_len,
                   aqo::Rng* rng) {
  std::string out = base;
  int edits = static_cast<int>(rng->UniformInt(1, 4));
  for (int e = 0; e < edits; ++e) {
    switch (rng->UniformInt(0, 5)) {
      case 0:  // flip one bit
        if (!out.empty()) {
          size_t at = static_cast<size_t>(
              rng->UniformInt(0, static_cast<int>(out.size()) - 1));
          out[at] = static_cast<char>(out[at] ^ (1 << rng->UniformInt(0, 7)));
        }
        break;
      case 1:  // overwrite one byte
        if (!out.empty()) {
          size_t at = static_cast<size_t>(
              rng->UniformInt(0, static_cast<int>(out.size()) - 1));
          out[at] = static_cast<char>(rng->UniformInt(0, 255));
        }
        break;
      case 2: {  // insert a short run
        size_t at = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int>(out.size())));
        int len = static_cast<int>(rng->UniformInt(1, 8));
        std::string run;
        for (int i = 0; i < len; ++i) {
          run.push_back(static_cast<char>(rng->UniformInt(0, 255)));
        }
        out.insert(at, run);
        break;
      }
      case 3:  // erase a short range
        if (!out.empty()) {
          size_t at = static_cast<size_t>(
              rng->UniformInt(0, static_cast<int>(out.size()) - 1));
          size_t len = static_cast<size_t>(rng->UniformInt(1, 8));
          out.erase(at, len);
        }
        break;
      case 4:  // truncate
        if (!out.empty()) {
          out.resize(static_cast<size_t>(
              rng->UniformInt(0, static_cast<int>(out.size()) - 1)));
        }
        break;
      case 5:  // splice a random slice of another corpus entry
        if (!corpus.empty()) {
          const std::string& other = corpus[static_cast<size_t>(
              rng->UniformInt(0, static_cast<int>(corpus.size()) - 1))];
          if (!other.empty()) {
            size_t from = static_cast<size_t>(
                rng->UniformInt(0, static_cast<int>(other.size()) - 1));
            size_t len = static_cast<size_t>(rng->UniformInt(1, 32));
            size_t at = static_cast<size_t>(
                rng->UniformInt(0, static_cast<int>(out.size())));
            out.insert(at, other.substr(from, len));
          }
        }
        break;
    }
  }
  if (out.size() > max_len) out.resize(max_len);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 0;
  uint64_t seed = 1;
  size_t max_len = 4096;
  std::vector<std::filesystem::path> corpus_paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("-", 0) == 0) {
      // Unknown libFuzzer flag: accept and ignore so CI scripts can pass
      // a superset.
      std::cerr << "fuzz-driver: ignoring flag " << arg << "\n";
    } else {
      corpus_paths.push_back(arg);
    }
  }

  // Deterministic corpus order: directories expand to their sorted
  // regular files (non-recursive).
  std::vector<std::string> corpus;
  for (const std::filesystem::path& path : corpus_paths) {
    if (std::filesystem::is_directory(path)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) corpus.push_back(ReadFile(file));
    } else if (std::filesystem::is_regular_file(path)) {
      corpus.push_back(ReadFile(path));
    } else {
      std::cerr << "fuzz-driver: no such corpus path: " << path << "\n";
      return 2;
    }
  }

  for (const std::string& input : corpus) RunOne(input);

  aqo::Rng rng(seed);
  for (uint64_t i = 0; i < runs; ++i) {
    std::string base =
        corpus.empty() ? std::string()
                       : corpus[static_cast<size_t>(rng.UniformInt(
                             0, static_cast<int>(corpus.size()) - 1))];
    RunOne(Mutate(base, corpus, max_len, &rng));
  }

  std::cerr << "fuzz-driver: " << corpus.size() << " corpus inputs + "
            << runs << " mutated runs, no crashes\n";
  return 0;
}
