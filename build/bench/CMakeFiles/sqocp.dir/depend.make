# Empty dependencies file for sqocp.
# This may be replaced when dependencies are built.
