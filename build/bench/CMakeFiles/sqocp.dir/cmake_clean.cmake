file(REMOVE_RECURSE
  "CMakeFiles/sqocp.dir/sqocp.cc.o"
  "CMakeFiles/sqocp.dir/sqocp.cc.o.d"
  "sqocp"
  "sqocp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqocp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
