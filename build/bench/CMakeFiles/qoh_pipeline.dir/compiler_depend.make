# Empty compiler generated dependencies file for qoh_pipeline.
# This may be replaced when dependencies are built.
