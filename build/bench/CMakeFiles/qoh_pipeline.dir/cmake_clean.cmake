file(REMOVE_RECURSE
  "CMakeFiles/qoh_pipeline.dir/qoh_pipeline.cc.o"
  "CMakeFiles/qoh_pipeline.dir/qoh_pipeline.cc.o.d"
  "qoh_pipeline"
  "qoh_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoh_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
