file(REMOVE_RECURSE
  "CMakeFiles/ablation_extra_edges.dir/ablation_extra_edges.cc.o"
  "CMakeFiles/ablation_extra_edges.dir/ablation_extra_edges.cc.o.d"
  "ablation_extra_edges"
  "ablation_extra_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extra_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
