# Empty dependencies file for ablation_extra_edges.
# This may be replaced when dependencies are built.
