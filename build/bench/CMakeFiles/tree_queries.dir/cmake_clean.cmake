file(REMOVE_RECURSE
  "CMakeFiles/tree_queries.dir/tree_queries.cc.o"
  "CMakeFiles/tree_queries.dir/tree_queries.cc.o.d"
  "tree_queries"
  "tree_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
