# Empty dependencies file for tree_queries.
# This may be replaced when dependencies are built.
