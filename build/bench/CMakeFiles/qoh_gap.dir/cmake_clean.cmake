file(REMOVE_RECURSE
  "CMakeFiles/qoh_gap.dir/qoh_gap.cc.o"
  "CMakeFiles/qoh_gap.dir/qoh_gap.cc.o.d"
  "qoh_gap"
  "qoh_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoh_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
