# Empty dependencies file for qoh_gap.
# This may be replaced when dependencies are built.
