# Empty compiler generated dependencies file for qon_structure.
# This may be replaced when dependencies are built.
