file(REMOVE_RECURSE
  "CMakeFiles/qon_structure.dir/qon_structure.cc.o"
  "CMakeFiles/qon_structure.dir/qon_structure.cc.o.d"
  "qon_structure"
  "qon_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qon_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
