# Empty compiler generated dependencies file for sparse_qon.
# This may be replaced when dependencies are built.
