file(REMOVE_RECURSE
  "CMakeFiles/sparse_qon.dir/sparse_qon.cc.o"
  "CMakeFiles/sparse_qon.dir/sparse_qon.cc.o.d"
  "sparse_qon"
  "sparse_qon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_qon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
