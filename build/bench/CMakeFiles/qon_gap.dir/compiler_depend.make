# Empty compiler generated dependencies file for qon_gap.
# This may be replaced when dependencies are built.
