file(REMOVE_RECURSE
  "CMakeFiles/qon_gap.dir/qon_gap.cc.o"
  "CMakeFiles/qon_gap.dir/qon_gap.cc.o.d"
  "qon_gap"
  "qon_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qon_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
