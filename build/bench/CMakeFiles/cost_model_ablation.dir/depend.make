# Empty dependencies file for cost_model_ablation.
# This may be replaced when dependencies are built.
