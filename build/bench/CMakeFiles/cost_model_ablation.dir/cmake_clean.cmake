file(REMOVE_RECURSE
  "CMakeFiles/cost_model_ablation.dir/cost_model_ablation.cc.o"
  "CMakeFiles/cost_model_ablation.dir/cost_model_ablation.cc.o.d"
  "cost_model_ablation"
  "cost_model_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
