# Empty compiler generated dependencies file for reduction_scaling.
# This may be replaced when dependencies are built.
