file(REMOVE_RECURSE
  "CMakeFiles/reduction_scaling.dir/reduction_scaling.cc.o"
  "CMakeFiles/reduction_scaling.dir/reduction_scaling.cc.o.d"
  "reduction_scaling"
  "reduction_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
