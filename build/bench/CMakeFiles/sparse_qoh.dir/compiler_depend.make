# Empty compiler generated dependencies file for sparse_qoh.
# This may be replaced when dependencies are built.
