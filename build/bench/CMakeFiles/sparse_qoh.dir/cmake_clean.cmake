file(REMOVE_RECURSE
  "CMakeFiles/sparse_qoh.dir/sparse_qoh.cc.o"
  "CMakeFiles/sparse_qoh.dir/sparse_qoh.cc.o.d"
  "sparse_qoh"
  "sparse_qoh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_qoh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
