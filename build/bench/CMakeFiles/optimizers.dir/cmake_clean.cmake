file(REMOVE_RECURSE
  "CMakeFiles/optimizers.dir/optimizers.cc.o"
  "CMakeFiles/optimizers.dir/optimizers.cc.o.d"
  "optimizers"
  "optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
