# Empty compiler generated dependencies file for optimizers.
# This may be replaced when dependencies are built.
