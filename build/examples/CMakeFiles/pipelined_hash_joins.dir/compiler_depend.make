# Empty compiler generated dependencies file for pipelined_hash_joins.
# This may be replaced when dependencies are built.
