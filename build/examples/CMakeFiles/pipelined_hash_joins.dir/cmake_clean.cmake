file(REMOVE_RECURSE
  "CMakeFiles/pipelined_hash_joins.dir/pipelined_hash_joins.cpp.o"
  "CMakeFiles/pipelined_hash_joins.dir/pipelined_hash_joins.cpp.o.d"
  "pipelined_hash_joins"
  "pipelined_hash_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelined_hash_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
