file(REMOVE_RECURSE
  "CMakeFiles/star_query_np.dir/star_query_np.cpp.o"
  "CMakeFiles/star_query_np.dir/star_query_np.cpp.o.d"
  "star_query_np"
  "star_query_np.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_query_np.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
