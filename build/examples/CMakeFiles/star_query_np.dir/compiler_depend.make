# Empty compiler generated dependencies file for star_query_np.
# This may be replaced when dependencies are built.
