# Empty compiler generated dependencies file for hardness_gap_demo.
# This may be replaced when dependencies are built.
