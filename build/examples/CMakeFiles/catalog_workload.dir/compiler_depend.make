# Empty compiler generated dependencies file for catalog_workload.
# This may be replaced when dependencies are built.
