file(REMOVE_RECURSE
  "CMakeFiles/catalog_workload.dir/catalog_workload.cpp.o"
  "CMakeFiles/catalog_workload.dir/catalog_workload.cpp.o.d"
  "catalog_workload"
  "catalog_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
