file(REMOVE_RECURSE
  "CMakeFiles/aqo_gen.dir/aqo_gen.cc.o"
  "CMakeFiles/aqo_gen.dir/aqo_gen.cc.o.d"
  "aqo_gen"
  "aqo_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqo_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
