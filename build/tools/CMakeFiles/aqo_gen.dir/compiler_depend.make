# Empty compiler generated dependencies file for aqo_gen.
# This may be replaced when dependencies are built.
