# Empty compiler generated dependencies file for aqo_opt.
# This may be replaced when dependencies are built.
