file(REMOVE_RECURSE
  "CMakeFiles/aqo_opt.dir/aqo_opt.cc.o"
  "CMakeFiles/aqo_opt.dir/aqo_opt.cc.o.d"
  "aqo_opt"
  "aqo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
