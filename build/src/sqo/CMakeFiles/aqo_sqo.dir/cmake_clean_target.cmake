file(REMOVE_RECURSE
  "libaqo_sqo.a"
)
