file(REMOVE_RECURSE
  "CMakeFiles/aqo_sqo.dir/partition.cc.o"
  "CMakeFiles/aqo_sqo.dir/partition.cc.o.d"
  "CMakeFiles/aqo_sqo.dir/sppcs.cc.o"
  "CMakeFiles/aqo_sqo.dir/sppcs.cc.o.d"
  "CMakeFiles/aqo_sqo.dir/star_query.cc.o"
  "CMakeFiles/aqo_sqo.dir/star_query.cc.o.d"
  "libaqo_sqo.a"
  "libaqo_sqo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqo_sqo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
