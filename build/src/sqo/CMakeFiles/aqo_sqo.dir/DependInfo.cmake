
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqo/partition.cc" "src/sqo/CMakeFiles/aqo_sqo.dir/partition.cc.o" "gcc" "src/sqo/CMakeFiles/aqo_sqo.dir/partition.cc.o.d"
  "/root/repo/src/sqo/sppcs.cc" "src/sqo/CMakeFiles/aqo_sqo.dir/sppcs.cc.o" "gcc" "src/sqo/CMakeFiles/aqo_sqo.dir/sppcs.cc.o.d"
  "/root/repo/src/sqo/star_query.cc" "src/sqo/CMakeFiles/aqo_sqo.dir/star_query.cc.o" "gcc" "src/sqo/CMakeFiles/aqo_sqo.dir/star_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
