# Empty dependencies file for aqo_sqo.
# This may be replaced when dependencies are built.
