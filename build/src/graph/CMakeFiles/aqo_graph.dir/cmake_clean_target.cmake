file(REMOVE_RECURSE
  "libaqo_graph.a"
)
