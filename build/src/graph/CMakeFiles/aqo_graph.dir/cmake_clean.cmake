file(REMOVE_RECURSE
  "CMakeFiles/aqo_graph.dir/clique.cc.o"
  "CMakeFiles/aqo_graph.dir/clique.cc.o.d"
  "CMakeFiles/aqo_graph.dir/generators.cc.o"
  "CMakeFiles/aqo_graph.dir/generators.cc.o.d"
  "CMakeFiles/aqo_graph.dir/graph.cc.o"
  "CMakeFiles/aqo_graph.dir/graph.cc.o.d"
  "CMakeFiles/aqo_graph.dir/vertex_cover.cc.o"
  "CMakeFiles/aqo_graph.dir/vertex_cover.cc.o.d"
  "libaqo_graph.a"
  "libaqo_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqo_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
