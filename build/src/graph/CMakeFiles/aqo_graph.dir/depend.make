# Empty dependencies file for aqo_graph.
# This may be replaced when dependencies are built.
