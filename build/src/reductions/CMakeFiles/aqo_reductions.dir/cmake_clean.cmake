file(REMOVE_RECURSE
  "CMakeFiles/aqo_reductions.dir/clique_to_qoh.cc.o"
  "CMakeFiles/aqo_reductions.dir/clique_to_qoh.cc.o.d"
  "CMakeFiles/aqo_reductions.dir/clique_to_qon.cc.o"
  "CMakeFiles/aqo_reductions.dir/clique_to_qon.cc.o.d"
  "CMakeFiles/aqo_reductions.dir/pipeline.cc.o"
  "CMakeFiles/aqo_reductions.dir/pipeline.cc.o.d"
  "CMakeFiles/aqo_reductions.dir/sat_to_clique.cc.o"
  "CMakeFiles/aqo_reductions.dir/sat_to_clique.cc.o.d"
  "CMakeFiles/aqo_reductions.dir/sat_to_vc.cc.o"
  "CMakeFiles/aqo_reductions.dir/sat_to_vc.cc.o.d"
  "CMakeFiles/aqo_reductions.dir/sparse.cc.o"
  "CMakeFiles/aqo_reductions.dir/sparse.cc.o.d"
  "libaqo_reductions.a"
  "libaqo_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqo_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
