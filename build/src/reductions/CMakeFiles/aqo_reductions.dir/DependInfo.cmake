
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reductions/clique_to_qoh.cc" "src/reductions/CMakeFiles/aqo_reductions.dir/clique_to_qoh.cc.o" "gcc" "src/reductions/CMakeFiles/aqo_reductions.dir/clique_to_qoh.cc.o.d"
  "/root/repo/src/reductions/clique_to_qon.cc" "src/reductions/CMakeFiles/aqo_reductions.dir/clique_to_qon.cc.o" "gcc" "src/reductions/CMakeFiles/aqo_reductions.dir/clique_to_qon.cc.o.d"
  "/root/repo/src/reductions/pipeline.cc" "src/reductions/CMakeFiles/aqo_reductions.dir/pipeline.cc.o" "gcc" "src/reductions/CMakeFiles/aqo_reductions.dir/pipeline.cc.o.d"
  "/root/repo/src/reductions/sat_to_clique.cc" "src/reductions/CMakeFiles/aqo_reductions.dir/sat_to_clique.cc.o" "gcc" "src/reductions/CMakeFiles/aqo_reductions.dir/sat_to_clique.cc.o.d"
  "/root/repo/src/reductions/sat_to_vc.cc" "src/reductions/CMakeFiles/aqo_reductions.dir/sat_to_vc.cc.o" "gcc" "src/reductions/CMakeFiles/aqo_reductions.dir/sat_to_vc.cc.o.d"
  "/root/repo/src/reductions/sparse.cc" "src/reductions/CMakeFiles/aqo_reductions.dir/sparse.cc.o" "gcc" "src/reductions/CMakeFiles/aqo_reductions.dir/sparse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qo/CMakeFiles/aqo_qo.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/aqo_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aqo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
