# Empty compiler generated dependencies file for aqo_reductions.
# This may be replaced when dependencies are built.
