file(REMOVE_RECURSE
  "libaqo_reductions.a"
)
