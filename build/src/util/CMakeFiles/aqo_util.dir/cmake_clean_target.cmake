file(REMOVE_RECURSE
  "libaqo_util.a"
)
