# Empty compiler generated dependencies file for aqo_util.
# This may be replaced when dependencies are built.
