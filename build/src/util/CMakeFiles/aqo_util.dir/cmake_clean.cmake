file(REMOVE_RECURSE
  "CMakeFiles/aqo_util.dir/bigint.cc.o"
  "CMakeFiles/aqo_util.dir/bigint.cc.o.d"
  "CMakeFiles/aqo_util.dir/check.cc.o"
  "CMakeFiles/aqo_util.dir/check.cc.o.d"
  "CMakeFiles/aqo_util.dir/log_double.cc.o"
  "CMakeFiles/aqo_util.dir/log_double.cc.o.d"
  "CMakeFiles/aqo_util.dir/random.cc.o"
  "CMakeFiles/aqo_util.dir/random.cc.o.d"
  "CMakeFiles/aqo_util.dir/stats.cc.o"
  "CMakeFiles/aqo_util.dir/stats.cc.o.d"
  "CMakeFiles/aqo_util.dir/table.cc.o"
  "CMakeFiles/aqo_util.dir/table.cc.o.d"
  "libaqo_util.a"
  "libaqo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
