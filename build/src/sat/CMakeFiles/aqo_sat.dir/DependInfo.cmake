
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/cdcl.cc" "src/sat/CMakeFiles/aqo_sat.dir/cdcl.cc.o" "gcc" "src/sat/CMakeFiles/aqo_sat.dir/cdcl.cc.o.d"
  "/root/repo/src/sat/cnf.cc" "src/sat/CMakeFiles/aqo_sat.dir/cnf.cc.o" "gcc" "src/sat/CMakeFiles/aqo_sat.dir/cnf.cc.o.d"
  "/root/repo/src/sat/dpll.cc" "src/sat/CMakeFiles/aqo_sat.dir/dpll.cc.o" "gcc" "src/sat/CMakeFiles/aqo_sat.dir/dpll.cc.o.d"
  "/root/repo/src/sat/gen.cc" "src/sat/CMakeFiles/aqo_sat.dir/gen.cc.o" "gcc" "src/sat/CMakeFiles/aqo_sat.dir/gen.cc.o.d"
  "/root/repo/src/sat/walksat.cc" "src/sat/CMakeFiles/aqo_sat.dir/walksat.cc.o" "gcc" "src/sat/CMakeFiles/aqo_sat.dir/walksat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
