# Empty compiler generated dependencies file for aqo_sat.
# This may be replaced when dependencies are built.
