file(REMOVE_RECURSE
  "CMakeFiles/aqo_sat.dir/cdcl.cc.o"
  "CMakeFiles/aqo_sat.dir/cdcl.cc.o.d"
  "CMakeFiles/aqo_sat.dir/cnf.cc.o"
  "CMakeFiles/aqo_sat.dir/cnf.cc.o.d"
  "CMakeFiles/aqo_sat.dir/dpll.cc.o"
  "CMakeFiles/aqo_sat.dir/dpll.cc.o.d"
  "CMakeFiles/aqo_sat.dir/gen.cc.o"
  "CMakeFiles/aqo_sat.dir/gen.cc.o.d"
  "CMakeFiles/aqo_sat.dir/walksat.cc.o"
  "CMakeFiles/aqo_sat.dir/walksat.cc.o.d"
  "libaqo_sat.a"
  "libaqo_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqo_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
