file(REMOVE_RECURSE
  "libaqo_sat.a"
)
