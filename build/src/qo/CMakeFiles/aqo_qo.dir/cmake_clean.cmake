file(REMOVE_RECURSE
  "CMakeFiles/aqo_qo.dir/analysis.cc.o"
  "CMakeFiles/aqo_qo.dir/analysis.cc.o.d"
  "CMakeFiles/aqo_qo.dir/bnb.cc.o"
  "CMakeFiles/aqo_qo.dir/bnb.cc.o.d"
  "CMakeFiles/aqo_qo.dir/catalog.cc.o"
  "CMakeFiles/aqo_qo.dir/catalog.cc.o.d"
  "CMakeFiles/aqo_qo.dir/genetic.cc.o"
  "CMakeFiles/aqo_qo.dir/genetic.cc.o.d"
  "CMakeFiles/aqo_qo.dir/ikkbz.cc.o"
  "CMakeFiles/aqo_qo.dir/ikkbz.cc.o.d"
  "CMakeFiles/aqo_qo.dir/join_sequence.cc.o"
  "CMakeFiles/aqo_qo.dir/join_sequence.cc.o.d"
  "CMakeFiles/aqo_qo.dir/optimizers.cc.o"
  "CMakeFiles/aqo_qo.dir/optimizers.cc.o.d"
  "CMakeFiles/aqo_qo.dir/qoh.cc.o"
  "CMakeFiles/aqo_qo.dir/qoh.cc.o.d"
  "CMakeFiles/aqo_qo.dir/qoh_optimizers.cc.o"
  "CMakeFiles/aqo_qo.dir/qoh_optimizers.cc.o.d"
  "CMakeFiles/aqo_qo.dir/qon.cc.o"
  "CMakeFiles/aqo_qo.dir/qon.cc.o.d"
  "CMakeFiles/aqo_qo.dir/workloads.cc.o"
  "CMakeFiles/aqo_qo.dir/workloads.cc.o.d"
  "libaqo_qo.a"
  "libaqo_qo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqo_qo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
