
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qo/analysis.cc" "src/qo/CMakeFiles/aqo_qo.dir/analysis.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/analysis.cc.o.d"
  "/root/repo/src/qo/bnb.cc" "src/qo/CMakeFiles/aqo_qo.dir/bnb.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/bnb.cc.o.d"
  "/root/repo/src/qo/catalog.cc" "src/qo/CMakeFiles/aqo_qo.dir/catalog.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/catalog.cc.o.d"
  "/root/repo/src/qo/genetic.cc" "src/qo/CMakeFiles/aqo_qo.dir/genetic.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/genetic.cc.o.d"
  "/root/repo/src/qo/ikkbz.cc" "src/qo/CMakeFiles/aqo_qo.dir/ikkbz.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/ikkbz.cc.o.d"
  "/root/repo/src/qo/join_sequence.cc" "src/qo/CMakeFiles/aqo_qo.dir/join_sequence.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/join_sequence.cc.o.d"
  "/root/repo/src/qo/optimizers.cc" "src/qo/CMakeFiles/aqo_qo.dir/optimizers.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/optimizers.cc.o.d"
  "/root/repo/src/qo/qoh.cc" "src/qo/CMakeFiles/aqo_qo.dir/qoh.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/qoh.cc.o.d"
  "/root/repo/src/qo/qoh_optimizers.cc" "src/qo/CMakeFiles/aqo_qo.dir/qoh_optimizers.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/qoh_optimizers.cc.o.d"
  "/root/repo/src/qo/qon.cc" "src/qo/CMakeFiles/aqo_qo.dir/qon.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/qon.cc.o.d"
  "/root/repo/src/qo/workloads.cc" "src/qo/CMakeFiles/aqo_qo.dir/workloads.cc.o" "gcc" "src/qo/CMakeFiles/aqo_qo.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/aqo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
