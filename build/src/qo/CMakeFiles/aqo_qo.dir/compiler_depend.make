# Empty compiler generated dependencies file for aqo_qo.
# This may be replaced when dependencies are built.
