file(REMOVE_RECURSE
  "libaqo_qo.a"
)
