file(REMOVE_RECURSE
  "libaqo_io.a"
)
