file(REMOVE_RECURSE
  "CMakeFiles/aqo_io.dir/serialization.cc.o"
  "CMakeFiles/aqo_io.dir/serialization.cc.o.d"
  "libaqo_io.a"
  "libaqo_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqo_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
