# Empty compiler generated dependencies file for aqo_io.
# This may be replaced when dependencies are built.
