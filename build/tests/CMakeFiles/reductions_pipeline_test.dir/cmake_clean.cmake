file(REMOVE_RECURSE
  "CMakeFiles/reductions_pipeline_test.dir/reductions_pipeline_test.cc.o"
  "CMakeFiles/reductions_pipeline_test.dir/reductions_pipeline_test.cc.o.d"
  "reductions_pipeline_test"
  "reductions_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
