# Empty dependencies file for reductions_pipeline_test.
# This may be replaced when dependencies are built.
