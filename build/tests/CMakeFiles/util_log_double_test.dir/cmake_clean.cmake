file(REMOVE_RECURSE
  "CMakeFiles/util_log_double_test.dir/util_log_double_test.cc.o"
  "CMakeFiles/util_log_double_test.dir/util_log_double_test.cc.o.d"
  "util_log_double_test"
  "util_log_double_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_log_double_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
