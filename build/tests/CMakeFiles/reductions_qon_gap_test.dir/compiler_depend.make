# Empty compiler generated dependencies file for reductions_qon_gap_test.
# This may be replaced when dependencies are built.
