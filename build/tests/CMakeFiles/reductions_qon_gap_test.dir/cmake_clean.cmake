file(REMOVE_RECURSE
  "CMakeFiles/reductions_qon_gap_test.dir/reductions_qon_gap_test.cc.o"
  "CMakeFiles/reductions_qon_gap_test.dir/reductions_qon_gap_test.cc.o.d"
  "reductions_qon_gap_test"
  "reductions_qon_gap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_qon_gap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
