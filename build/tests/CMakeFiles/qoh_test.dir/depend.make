# Empty dependencies file for qoh_test.
# This may be replaced when dependencies are built.
