file(REMOVE_RECURSE
  "CMakeFiles/qoh_test.dir/qoh_test.cc.o"
  "CMakeFiles/qoh_test.dir/qoh_test.cc.o.d"
  "qoh_test"
  "qoh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
