# Empty compiler generated dependencies file for reductions_sat_graph_test.
# This may be replaced when dependencies are built.
