file(REMOVE_RECURSE
  "CMakeFiles/reductions_sat_graph_test.dir/reductions_sat_graph_test.cc.o"
  "CMakeFiles/reductions_sat_graph_test.dir/reductions_sat_graph_test.cc.o.d"
  "reductions_sat_graph_test"
  "reductions_sat_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_sat_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
