# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for reductions_sat_graph_test.
