file(REMOVE_RECURSE
  "CMakeFiles/reductions_sparse_test.dir/reductions_sparse_test.cc.o"
  "CMakeFiles/reductions_sparse_test.dir/reductions_sparse_test.cc.o.d"
  "reductions_sparse_test"
  "reductions_sparse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
