# Empty compiler generated dependencies file for reductions_sparse_test.
# This may be replaced when dependencies are built.
