file(REMOVE_RECURSE
  "CMakeFiles/qoh_optimizers_test.dir/qoh_optimizers_test.cc.o"
  "CMakeFiles/qoh_optimizers_test.dir/qoh_optimizers_test.cc.o.d"
  "qoh_optimizers_test"
  "qoh_optimizers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoh_optimizers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
