# Empty dependencies file for qoh_optimizers_test.
# This may be replaced when dependencies are built.
