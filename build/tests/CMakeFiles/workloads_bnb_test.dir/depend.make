# Empty dependencies file for workloads_bnb_test.
# This may be replaced when dependencies are built.
