file(REMOVE_RECURSE
  "CMakeFiles/workloads_bnb_test.dir/workloads_bnb_test.cc.o"
  "CMakeFiles/workloads_bnb_test.dir/workloads_bnb_test.cc.o.d"
  "workloads_bnb_test"
  "workloads_bnb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_bnb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
