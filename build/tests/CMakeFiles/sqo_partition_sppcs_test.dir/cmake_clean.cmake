file(REMOVE_RECURSE
  "CMakeFiles/sqo_partition_sppcs_test.dir/sqo_partition_sppcs_test.cc.o"
  "CMakeFiles/sqo_partition_sppcs_test.dir/sqo_partition_sppcs_test.cc.o.d"
  "sqo_partition_sppcs_test"
  "sqo_partition_sppcs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_partition_sppcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
