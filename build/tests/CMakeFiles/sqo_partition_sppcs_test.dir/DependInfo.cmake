
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sqo_partition_sppcs_test.cc" "tests/CMakeFiles/sqo_partition_sppcs_test.dir/sqo_partition_sppcs_test.cc.o" "gcc" "tests/CMakeFiles/sqo_partition_sppcs_test.dir/sqo_partition_sppcs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reductions/CMakeFiles/aqo_reductions.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/aqo_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sqo/CMakeFiles/aqo_sqo.dir/DependInfo.cmake"
  "/root/repo/build/src/qo/CMakeFiles/aqo_qo.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/aqo_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aqo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
