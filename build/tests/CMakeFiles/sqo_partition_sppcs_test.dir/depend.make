# Empty dependencies file for sqo_partition_sppcs_test.
# This may be replaced when dependencies are built.
