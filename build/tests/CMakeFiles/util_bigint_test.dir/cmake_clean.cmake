file(REMOVE_RECURSE
  "CMakeFiles/util_bigint_test.dir/util_bigint_test.cc.o"
  "CMakeFiles/util_bigint_test.dir/util_bigint_test.cc.o.d"
  "util_bigint_test"
  "util_bigint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_bigint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
