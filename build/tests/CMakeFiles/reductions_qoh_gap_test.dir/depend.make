# Empty dependencies file for reductions_qoh_gap_test.
# This may be replaced when dependencies are built.
