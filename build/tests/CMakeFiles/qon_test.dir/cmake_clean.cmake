file(REMOVE_RECURSE
  "CMakeFiles/qon_test.dir/qon_test.cc.o"
  "CMakeFiles/qon_test.dir/qon_test.cc.o.d"
  "qon_test"
  "qon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
