# Empty dependencies file for qon_test.
# This may be replaced when dependencies are built.
