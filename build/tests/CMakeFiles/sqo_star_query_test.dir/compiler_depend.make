# Empty compiler generated dependencies file for sqo_star_query_test.
# This may be replaced when dependencies are built.
