file(REMOVE_RECURSE
  "CMakeFiles/sqo_star_query_test.dir/sqo_star_query_test.cc.o"
  "CMakeFiles/sqo_star_query_test.dir/sqo_star_query_test.cc.o.d"
  "sqo_star_query_test"
  "sqo_star_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqo_star_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
