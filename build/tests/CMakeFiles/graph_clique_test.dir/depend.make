# Empty dependencies file for graph_clique_test.
# This may be replaced when dependencies are built.
