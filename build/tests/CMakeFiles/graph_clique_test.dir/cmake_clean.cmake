file(REMOVE_RECURSE
  "CMakeFiles/graph_clique_test.dir/graph_clique_test.cc.o"
  "CMakeFiles/graph_clique_test.dir/graph_clique_test.cc.o.d"
  "graph_clique_test"
  "graph_clique_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_clique_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
