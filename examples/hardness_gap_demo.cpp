// Hardness gap demo: runs the paper's full Theorem 9 chain on two 3SAT
// formulas — one satisfiable, one not — and shows the resulting QO_N
// instances' costs landing on opposite sides of the decision threshold.
//
//   ./build/examples/hardness_gap_demo

#include <iostream>

#include "qo/optimizers.h"
#include "reductions/pipeline.h"
#include "sat/cnf.h"
#include "sat/gen.h"
#include "util/random.h"

int main() {
  using namespace aqo;

  SatToQonOptions options;
  options.log2_alpha = 16.0;

  // A satisfiable formula (planted model) ...
  Rng rng(2024);
  CnfFormula yes_formula = PlantedSatisfiableThreeSat(4, 12, &rng);

  // ... and an unsatisfiable one with u* = 4 (four independent
  // contradictions — the executable stand-in for a gap-3SAT NO instance).
  CnfFormula no_formula(4);
  for (int i = 1; i <= 4; ++i) {
    no_formula.AddClause({i});
    no_formula.AddClause({i});
    no_formula.AddClause({-i});
  }

  std::cout << "=== Theorem 9: 3SAT -> CLIQUE -> QO_N ===\n\n";
  for (const CnfFormula* formula : {&yes_formula, &no_formula}) {
    SatToQonComposition out = ComposeSatToQon(*formula, options);
    std::cout << (formula == &yes_formula ? "[YES formula]" : "[NO formula]")
              << "  vars=" << formula->num_vars()
              << " clauses=" << formula->NumClauses()
              << " satisfiable=" << (out.satisfiable ? "yes" : "no")
              << " min-unsat=" << out.min_unsat << "\n";
    std::cout << "  query graph: " << out.gap.n << " relations, "
              << out.gap.instance.graph().NumEdges() << " predicates\n";
    std::cout << "  decision threshold  lg K = " << out.gap.KBound().Log2()
              << "\n";
    if (out.satisfiable) {
      std::cout << "  witness join sequence costs lg C = "
                << out.witness_cost.Log2() << "  (<= K: cheap plan exists)\n";
    } else {
      std::cout << "  certified floor for EVERY sequence lg C >= "
                << out.certified_floor.Log2()
                << "  (clears K by "
                << (out.certified_floor.Log2() - out.gap.KBound().Log2()) /
                       options.log2_alpha
                << " powers of alpha)\n";
    }
    // What a real optimizer achieves:
    Rng opt_rng(7);
    OptimizerOptions ii_options;
    ii_options.restarts = 2;
    OptimizerResult ii =
        IterativeImprovementOptimizer(out.gap.instance, &opt_rng, ii_options);
    std::cout << "  best plan found by local search: lg C = "
              << ii.cost.Log2() << "\n\n";
  }

  std::cout
      << "An optimizer that could approximate the cheapest join order\n"
         "within any polylog-of-K factor would separate these two cases\n"
         "in polynomial time — and so decide 3SAT. That is the paper's\n"
         "Theorem 9.\n";
  return 0;
}
