// Catalog front end: derive a QO_N instance from table statistics (row
// counts, NDVs, histograms) the way a real optimizer would, then optimize
// and print the plan.
//
//   ./build/examples/catalog_workload

#include <iostream>

#include "qo/analysis.h"
#include "qo/catalog.h"
#include "qo/optimizers.h"

int main() {
  using namespace aqo;

  // A small retail schema: sales fact + customers, products, stores, dates.
  Catalog catalog;
  {
    TableStats customers{.name = "customers", .rows = 200000};
    customers.columns.push_back({"id", 200000, 0, 200000, {}});
    catalog.AddTable(std::move(customers));

    TableStats products{.name = "products", .rows = 30000};
    products.columns.push_back({"id", 30000, 0, 30000, {}});
    catalog.AddTable(std::move(products));

    TableStats stores{.name = "stores", .rows = 450};
    stores.columns.push_back({"id", 450, 0, 450, {}});
    catalog.AddTable(std::move(stores));

    TableStats dates{.name = "dates", .rows = 3650};
    dates.columns.push_back({"day", 3650, 0, 3650, {}});
    catalog.AddTable(std::move(dates));

    TableStats sales{.name = "sales", .rows = 50000000};
    // Customer activity is skewed: most sales come from a loyal quartile.
    sales.columns.push_back(
        {"customer_id", 150000, 0, 200000, {0.55, 0.25, 0.12, 0.08}});
    sales.columns.push_back({"product_id", 28000, 0, 30000, {}});
    sales.columns.push_back({"store_id", 450, 0, 450, {}});
    sales.columns.push_back({"day", 3650, 0, 3650, {}});
    catalog.AddTable(std::move(sales));
  }

  std::vector<EquiJoin> joins = {
      {"sales", "customer_id", "customers", "id"},
      {"sales", "product_id", "products", "id"},
      {"sales", "store_id", "stores", "id"},
      {"sales", "day", "dates", "day"},
  };

  std::cout << "derived join selectivities:\n";
  for (const EquiJoin& join : joins) {
    std::cout << "  " << join.left_table << "." << join.left_column << " = "
              << join.right_table << "." << join.right_column << "  ->  "
              << EstimateJoinSelectivity(catalog, join) << "\n";
  }

  QonInstance query = BuildQonInstance(catalog, joins);
  OptimizerResult best = DpQonOptimizer(query);
  std::vector<std::string> names;
  for (int i = 0; i < catalog.NumTables(); ++i) {
    names.push_back(catalog.table(i).name);
  }
  std::cout << "\noptimal plan:\n"
            << PlanToString(query, best.sequence, names) << "\n";

  // How does the simplified C_out metric's plan fare under the full model?
  OptimizerResult cout_plan = CoutOptimalJoinOrder(query);
  std::cout << "C_out-optimal plan costs "
            << (QonSequenceCost(query, cout_plan.sequence) / best.cost)
                   .ToLinear()
            << "x the true optimum under the access-path model.\n";
  return 0;
}
