// Quickstart: build a small QO_N instance, cost a plan by hand, and run
// the optimizer suite against the exact optimum.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "graph/graph.h"
#include "qo/optimizers.h"
#include "qo/qon.h"
#include "util/random.h"

int main() {
  using namespace aqo;

  // A five-relation query: orders -- customers -- nation, orders --
  // lineitem, orders -- payments. The query graph has an edge per join
  // predicate.
  //
  //   lineitem(0) --- orders(1) --- customers(2) --- nation(3)
  //                      |
  //                  payments(4)
  Graph graph = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {1, 4}});
  std::vector<LogDouble> sizes = {
      LogDouble::FromLinear(6000000.0),  // lineitem
      LogDouble::FromLinear(1500000.0),  // orders
      LogDouble::FromLinear(150000.0),   // customers
      LogDouble::FromLinear(25.0),       // nation
      LogDouble::FromLinear(800000.0),   // payments
  };
  QonInstance query(graph, std::move(sizes));
  query.SetSelectivity(0, 1, LogDouble::FromLinear(1.0 / 1500000.0));
  query.SetSelectivity(1, 2, LogDouble::FromLinear(1.0 / 150000.0));
  query.SetSelectivity(2, 3, LogDouble::FromLinear(1.0 / 25.0));
  query.SetSelectivity(1, 4, LogDouble::FromLinear(1.0 / 1500000.0));
  query.Validate();

  const char* names[] = {"lineitem", "orders", "customers", "nation",
                         "payments"};

  // Cost a hand-written left-deep plan under the Section 2.1 nested-loops
  // model: C(Z) = sum_i N(prefix) * min-access-cost(next relation).
  JoinSequence hand = {3, 2, 1, 0, 4};  // nation first: worst idea ever?
  std::cout << "hand-written plan:";
  for (int r : hand) std::cout << " " << names[r];
  std::cout << "\n  cost = " << QonSequenceCost(query, hand) << "\n\n";

  // The exact optimum (dynamic programming over relation subsets).
  OptimizerResult optimal = DpQonOptimizer(query);
  std::cout << "optimal plan:    ";
  for (int r : optimal.sequence) std::cout << " " << names[r];
  std::cout << "\n  cost = " << optimal.cost << "\n\n";

  // Polynomial heuristics.
  Rng rng(1);
  OptimizerResult greedy = GreedyQonOptimizer(query);
  OptimizerResult local = IterativeImprovementOptimizer(query, &rng);
  std::cout << "greedy cost           = " << greedy.cost << "\n";
  std::cout << "local search cost     = " << local.cost << "\n";
  std::cout << "greedy/optimal ratio  = "
            << (greedy.cost / optimal.cost).ToLinear() << "\n";

  // Per-join cost breakdown of the optimal plan.
  std::cout << "\noptimal plan join costs:\n";
  std::vector<LogDouble> costs = QonJoinCosts(query, optimal.sequence);
  for (size_t i = 0; i < costs.size(); ++i) {
    std::cout << "  join " << i + 1 << " (+" << names[optimal.sequence[i + 1]]
              << "): " << costs[i] << "\n";
  }
  return 0;
}
