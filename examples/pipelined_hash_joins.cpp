// Pipelined hash-join planning (the QO_H model of Section 2.2): build a
// star-ish query, pick a join sequence, and let the library find the
// optimal pipeline decomposition and per-join memory allocation under a
// global memory budget.
//
//   ./build/examples/pipelined_hash_joins

#include <iostream>

#include "graph/graph.h"
#include "qo/optimizers.h"
#include "qo/qoh.h"

int main() {
  using namespace aqo;

  // A 6-relation query: fact table joined to five dimensions of varying
  // size, dimensions 4 and 5 also correlated with each other.
  Graph graph = Graph::FromEdges(
      6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {4, 5}});
  std::vector<LogDouble> sizes = {
      LogDouble::FromLinear(1 << 20),  // fact: 1M pages
      LogDouble::FromLinear(4096.0),   // dim 1
      LogDouble::FromLinear(16384.0),  // dim 2
      LogDouble::FromLinear(1024.0),   // dim 3
      LogDouble::FromLinear(65536.0),  // dim 4
      LogDouble::FromLinear(8192.0),   // dim 5
  };
  double memory = 40000.0;  // total pages for all hash tables in a pipeline
  QohInstance query(graph, std::move(sizes), memory);
  query.SetSelectivity(0, 1, LogDouble::FromLinear(1.0 / 4096.0));
  query.SetSelectivity(0, 2, LogDouble::FromLinear(1.0 / 16384.0));
  query.SetSelectivity(0, 3, LogDouble::FromLinear(1.0 / 1024.0));
  query.SetSelectivity(0, 4, LogDouble::FromLinear(1.0 / 65536.0));
  query.SetSelectivity(0, 5, LogDouble::FromLinear(1.0 / 8192.0));
  query.SetSelectivity(4, 5, LogDouble::FromLinear(0.25));
  query.Validate();

  // Fact table first (it streams; the dimensions get the hash tables).
  JoinSequence seq = {0, 3, 1, 5, 2, 4};

  QohPlan plan = OptimalDecomposition(query, seq);
  if (!plan.feasible) {
    std::cout << "no feasible execution: memory below the hjmin floors\n";
    return 1;
  }
  std::cout << "sequence: R0";
  for (size_t i = 1; i < seq.size(); ++i) std::cout << " |x| R" << seq[i];
  std::cout << "\n  optimal decomposition cost = " << plan.cost << "\n";
  int total_joins = static_cast<int>(seq.size()) - 1;
  for (int f = 0; f < plan.decomposition.NumFragments(); ++f) {
    auto [first, last] = plan.decomposition.Fragment(f, total_joins);
    PipelineCostResult frag = OptimalPipelineCost(query, seq, first, last);
    std::cout << "  pipeline " << f + 1 << ": joins " << first << ".." << last
              << ", cost " << frag.cost << ", memory grants:";
    for (double m : frag.allocation) std::cout << " " << m;
    std::cout << "\n";
  }

  // Compare against running everything as one pipeline (memory-starved)
  // and against materializing after every join.
  PipelineCostResult one = OptimalPipelineCost(query, seq, 1, total_joins);
  std::cout << "\nsingle pipeline cost       = "
            << (one.feasible ? one.cost : LogDouble::Zero()) << "\n";
  PipelineDecomposition all_breaks;
  for (int j = 1; j <= total_joins; ++j) all_breaks.starts.push_back(j);
  PipelineCostResult each = DecompositionCost(query, seq, all_breaks);
  std::cout << "materialize-every-join cost = " << each.cost << "\n";

  // And let the exhaustive optimizer pick the sequence too.
  QohOptimizerResult best = ExhaustiveQohOptimizer(query);
  std::cout << "\nbest sequence overall:";
  for (int r : best.sequence) std::cout << " R" << r;
  std::cout << "  cost = " << best.cost << "\n";
  return 0;
}
