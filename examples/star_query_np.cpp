// Star queries and the Appendix A/B NP-completeness: solve a PARTITION
// instance by optimizing a star query. The reduction chain is
// PARTITION -> SPPCS -> SQO-CP; the star-query optimizer's answer to
// "is there a plan of cost <= M?" equals the partition answer.
//
//   ./build/examples/star_query_np

#include <iostream>

#include "sqo/partition.h"
#include "sqo/sppcs.h"
#include "sqo/star_query.h"

int main() {
  using namespace aqo;

  // Can {5, 4, 3, 2, 2} be split into two halves of sum 8? (Yes: 5+3 = 4+2+2.)
  PartitionInstance partition{{5, 4, 3, 2, 2}};
  std::cout << "PARTITION instance {5, 4, 3, 2, 2}, half = "
            << partition.Half() << "\n";

  SppcsInstance sppcs = ReducePartitionToSppcs(partition);
  std::cout << "SPPCS instance: " << sppcs.pairs.size()
            << " pairs, L = " << sppcs.l_bound << "\n";
  for (size_t i = 0; i < sppcs.pairs.size(); ++i) {
    std::cout << "  pair " << i + 1 << ": p = " << sppcs.pairs[i].p
              << ", c = " << sppcs.pairs[i].c << "\n";
  }

  SppcsToSqoCpResult star = ReduceSppcsToSqoCp(sppcs);
  const SqoCpInstance& query = star.instance;
  std::cout << "\nSQO-CP star query: central relation R0 plus "
            << query.num_satellites << " satellites\n";
  std::cout << "  |R0| = " << query.central_tuples << " tuples\n";
  std::cout << "  budget M = " << query.budget << "\n";

  SqoCpResult best = SolveSqoCpExact(query);
  std::cout << "\noptimal star plan cost = " << best.best_cost << "\n";
  std::cout << "within budget? " << (best.within_budget ? "YES" : "NO")
            << "  => the partition " << (best.within_budget ? "exists" : "does not exist")
            << "\n";

  std::cout << "\noptimal plan: ";
  for (size_t i = 0; i < best.best_plan.sequence.size(); ++i) {
    int r = best.best_plan.sequence[i];
    std::cout << "R" << r;
    if (i + 1 < best.best_plan.sequence.size()) {
      std::cout << (best.best_plan.methods[i] == JoinMethod::kNestedLoops
                        ? " -NL-> "
                        : " -SM-> ");
    }
  }
  std::cout << "\n";
  std::cout << "(nested-loops joins = items in the product subset A;\n"
            << " sort-merge joins pay their c_i: the optimizer literally\n"
            << " solves Subset-Product-Plus-Complement-Sum.)\n";

  // Cross-check with the independent PARTITION solver.
  auto subset = SolvePartitionDp(partition);
  std::cout << "\nindependent DP check: partition "
            << (subset.has_value() ? "exists" : "does not exist") << "\n";
  if (subset) {
    std::cout << "  one half:";
    for (int i : *subset) std::cout << " " << partition.values[static_cast<size_t>(i)];
    std::cout << "\n";
  }
  return 0;
}
