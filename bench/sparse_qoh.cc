// Experiment E6 — Theorem 17: the QO_H construction on sparse query
// graphs. At implementable alpha (the exact linear-domain memory model
// caps log2(alpha) at 104/(n-1)) the V2 slack cannot be driven to
// alpha^{o(1)}, so this experiment validates the *structural* claims:
// exact edge budgets, the forced sentinel-first plan, the V1-phase floor
// on NO instances, and the witness slack accounting of Section 6.2.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "graph/clique.h"
#include "graph/generators.h"
#include "qo/optimizers.h"
#include "reductions/sparse.h"
#include "util/table.h"

namespace aqo {
namespace {

void Run(const bench::Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 6)));
  std::vector<int> ns =
      flags.Quick() ? std::vector<int>{9} : std::vector<int>{9, 12};
  double tau = flags.GetDouble("tau", 0.9);

  TextTable table;
  table.SetTitle("E6 / Theorem 17: sparse QO_H structure under f_{H,e}");
  table.SetHeader({"n", "m", "e(m)", "sentinel forced", "YES wit-L (lg)",
                   "slack cap (lg)", "NO sampled-G (lg, min)"});

  for (int n : ns) {
    int m = n * n;
    SparseQohParams params;
    params.base.log2_alpha = 2.0;
    params.k = 2;
    params.edge_budget = SparseEdgeBudget(m, tau);

    // YES: complete source graph.
    Graph yes_g1 = Graph::Complete(n);
    SparseQohGapInstance yes =
        ReduceTwoThirdsCliqueToSparseQoh(yes_g1, params, &rng);
    std::vector<int> clique;
    for (int v = 0; v < 2 * n / 3; ++v) clique.push_back(v);
    QohWitnessPlan witness = SparseQohWitness(yes, yes_g1, clique);
    PipelineCostResult wit =
        DecompositionCost(yes.instance, witness.sequence, witness.decomposition);

    // Sentinel check: swapping R_0 out of the front kills feasibility.
    JoinSequence bad = witness.sequence;
    std::swap(bad[0], bad[3]);
    bool forced = !OptimalDecomposition(yes.instance, bad).feasible;

    // NO: omega = 3.
    Graph no_g1 = CompleteMultipartite(n, 3);
    SparseQohGapInstance no =
        ReduceTwoThirdsCliqueToSparseQoh(no_g1, params, &rng);
    double epsilon = 2.0 - 9.0 / static_cast<double>(n);
    double floor = no.GBound(epsilon).Log2();
    double min_above_floor = 1e300;
    int samples = flags.Quick() ? 5 : 15;
    for (int s = 0; s < samples; ++s) {
      JoinSequence seq = {0};
      JoinSequence rest;
      for (int v = 1; v < no.m; ++v) rest.push_back(v);
      rng.Shuffle(&rest);
      seq.insert(seq.end(), rest.begin(), rest.end());
      QohPlan plan = OptimalDecomposition(no.instance, seq);
      if (plan.feasible) {
        min_above_floor = std::min(min_above_floor, plan.cost.Log2() - floor);
      }
    }

    double slack_cap = static_cast<double>(yes.n) *
                       static_cast<double>(yes.m - yes.n - 1);
    table.AddRow({std::to_string(n), std::to_string(m),
                  std::to_string(yes.instance.graph().NumEdges()),
                  forced ? "yes" : "NO",
                  FormatDouble(wit.cost.Log2() - yes.LBound().Log2(), 5),
                  FormatDouble(slack_cap, 5),
                  FormatDouble(min_above_floor, 5)});
  }
  table.Print(std::cout);
  std::cout << "The witness slack stays below the n(m-n-1) cap and every\n"
               "sampled NO plan clears the G floor (last column >= 0).\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "sparse_qoh", /*default_seed=*/6);
  aqo::Run(flags);
  return 0;
}
