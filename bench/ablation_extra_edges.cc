// Experiment E12 (ablation) — the open question of Section 6.3: trees are
// optimizable in polynomial time, and the paper shows hardness kicks in
// once the query graph has m + Theta(m^tau) edges. This ablation walks the
// boundary: start from a random tree query and add j extra random edges,
// j = 0, 1, 2, 4, ...; at each step measure how far the polynomial
// heuristics drift from the exact (DP) optimum.

#include <iostream>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "qo/optimizers.h"
#include "util/stats.h"
#include "util/table.h"

namespace aqo {
namespace {

QonInstance InstanceOn(const Graph& g, Rng* rng) {
  int n = g.NumVertices();
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(
        LogDouble::FromLinear(static_cast<double>(rng->UniformInt(10, 1000000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.00001, 0.9)));
  }
  return inst;
}

void Run(const bench::Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 12)));
  int n = static_cast<int>(flags.GetInt("n", 16));
  int trials = flags.Quick() ? 8 : 30;

  TextTable table;
  table.SetTitle(
      "E12 (ablation, §6.3): heuristic optimality loss vs extra non-tree edges");
  table.SetHeader({"extra edges", "trials", "greedy opt-rate",
                   "greedy p95 lg-ratio", "II opt-rate", "II p95 lg-ratio"});

  for (int extra : {0, 1, 2, 4, 8, 16, 32}) {
    if (n - 1 + extra > n * (n - 1) / 2) break;
    int greedy_opt = 0, ii_opt = 0;
    SampleSet greedy_ratio, ii_ratio;
    for (int t = 0; t < trials; ++t) {
      Graph g = RandomTree(n, &rng);
      int added = 0;
      while (added < extra) {
        int u = static_cast<int>(rng.UniformInt(0, n - 1));
        int v = static_cast<int>(rng.UniformInt(0, n - 1));
        if (u == v || g.HasEdge(u, v)) continue;
        g.AddEdge(u, v);
        ++added;
      }
      QonInstance inst = InstanceOn(g, &rng);
      OptimizerOptions options;
      options.forbid_cartesian = true;
      OptimizerResult opt = DpQonOptimizer(inst, options);
      if (!opt.feasible) continue;
      OptimizerResult greedy = GreedyQonOptimizer(inst, options);
      OptimizerOptions ii_options = options;
      ii_options.restarts = 2;
      OptimizerResult ii =
          IterativeImprovementOptimizer(inst, &rng, ii_options);
      double g_ratio = greedy.cost.Log2() - opt.cost.Log2();
      double i_ratio = ii.cost.Log2() - opt.cost.Log2();
      greedy_ratio.Add(g_ratio);
      ii_ratio.Add(i_ratio);
      greedy_opt += g_ratio < 1e-6;
      ii_opt += i_ratio < 1e-6;
    }
    table.AddRow({std::to_string(extra), std::to_string(trials),
                  FormatDouble(100.0 * greedy_opt / trials, 3) + "%",
                  FormatDouble(greedy_ratio.Percentile(95), 4),
                  FormatDouble(100.0 * ii_opt / trials, 3) + "%",
                  FormatDouble(ii_ratio.Percentile(95), 4)});
  }
  table.Print(std::cout);
  std::cout << "At 0 extra edges KBZ/greedy-style reasoning is exact\n"
               "(trees, [1]/[6]); the optimality rate decays as non-tree\n"
               "edges accumulate — the regime Theorems 16/17 prove hard.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "ablation_extra_edges", /*default_seed=*/12);
  aqo::Run(flags);
  return 0;
}
