// Experiment E9 — every theorem asserts "there is a polynomial time
// reduction": measure output sizes and wall-clock of each reduction
// against source size and fit the growth exponent (log-log slope).

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "reductions/clique_to_qoh.h"
#include "reductions/clique_to_qon.h"
#include "reductions/sat_to_clique.h"
#include "reductions/sat_to_vc.h"
#include "sat/gen.h"
#include "sqo/sppcs.h"
#include "sqo/star_query.h"
#include "util/stats.h"
#include "util/table.h"

namespace aqo {
namespace {

struct ScalingRow {
  std::string name;
  std::vector<double> input_sizes;
  std::vector<double> output_sizes;
  std::vector<double> times_ms;
};

void AddFit(TextTable* table, const ScalingRow& row) {
  std::vector<double> lx, ly;
  for (size_t i = 0; i < row.input_sizes.size(); ++i) {
    lx.push_back(std::log2(row.input_sizes[i]));
    ly.push_back(std::log2(row.output_sizes[i]));
  }
  LineFit size_fit = FitLine(lx, ly);
  table->AddRow({row.name, std::to_string(row.input_sizes.size()),
                 FormatDouble(size_fit.slope, 3),
                 FormatDouble(size_fit.r_squared, 3),
                 FormatDouble(row.times_ms.back(), 4)});
}

void Run(const bench::Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 9)));
  TextTable table;
  table.SetTitle("E9: reduction output-size growth exponents (log-log fit)");
  table.SetHeader({"reduction", "points", "size exponent", "R^2",
                   "largest time ms"});

  std::vector<int> vs = flags.Quick() ? std::vector<int>{4, 8}
                                      : std::vector<int>{4, 8, 16, 32, 64};

  // 3SAT -> VC -> CLIQUE (vertices out vs clauses in).
  {
    ScalingRow vc;
    vc.name = "3SAT->VERTEX COVER";
    ScalingRow cl;
    cl.name = "3SAT->CLIQUE (Lemma 3)";
    for (int v : vs) {
      CnfFormula f = PlantedSatisfiableThreeSat(v, 3 * v, &rng);
      bench::WallTimer t1;
      SatToVcResult r1 = ReduceSatToVertexCover(f);
      vc.times_ms.push_back(t1.Millis());
      vc.input_sizes.push_back(v + 3 * v);
      vc.output_sizes.push_back(r1.graph.NumVertices() + r1.graph.NumEdges());
      bench::WallTimer t2;
      SatToCliqueResult r2 = ReduceSatToClique(f);
      cl.times_ms.push_back(t2.Millis());
      cl.input_sizes.push_back(v + 3 * v);
      cl.output_sizes.push_back(r2.graph.NumVertices() + r2.graph.NumEdges());
    }
    AddFit(&table, vc);
    AddFit(&table, cl);
  }

  // CLIQUE -> QO_N (instance cells out vs vertices in).
  {
    ScalingRow row;
    row.name = "CLIQUE->QO_N (f_N)";
    for (int v : vs) {
      int n = 4 * v;
      Graph g = CliqueClassGraph(n, 13, 1.0, n / 2, &rng);
      bench::WallTimer t;
      QonGapInstance gap =
          ReduceCliqueToQon(g, QonGapParams{.c = 0.5, .d = 0.25,
                                            .log2_alpha = 4.0});
      row.times_ms.push_back(t.Millis());
      row.input_sizes.push_back(n);
      row.output_sizes.push_back(static_cast<double>(n) * n * 2);
      (void)gap;
    }
    AddFit(&table, row);
  }

  // (2/3)CLIQUE -> QO_H.
  {
    ScalingRow row;
    row.name = "2/3CLIQUE->QO_H (f_H)";
    // n is capped by the exact-memory constraint alpha^{(n-1)/2} <= 2^52.
    for (int v : {4, 6, 8, 12, 15}) {
      int n = 3 * (v + 2);
      Graph g = Graph::Complete(n);
      bench::WallTimer t;
      QohGapInstance gap = ReduceTwoThirdsCliqueToQoh(g, QohGapParams{});
      row.times_ms.push_back(t.Millis());
      row.input_sizes.push_back(n);
      row.output_sizes.push_back(static_cast<double>(n + 1) * (n + 1));
      (void)gap;
    }
    AddFit(&table, row);
  }

  // SPPCS -> SQO-CP (output bits vs input bits).
  {
    ScalingRow row;
    row.name = "SPPCS->SQO-CP (Appendix B)";
    for (int v : {2, 3, 4, 5, 6}) {
      SppcsInstance sppcs;
      int64_t bits_in = 0;
      for (int i = 0; i < v; ++i) {
        int64_t p = rng.UniformInt(2, 9), c = rng.UniformInt(1, 9);
        sppcs.pairs.push_back({BigInt(p), BigInt(c)});
        bits_in += 8;
      }
      sppcs.l_bound = rng.UniformInt(1, 100);
      bench::WallTimer t;
      SppcsToSqoCpResult red = ReduceSppcsToSqoCp(sppcs);
      row.times_ms.push_back(t.Millis());
      row.input_sizes.push_back(static_cast<double>(bits_in));
      double bits_out = red.instance.budget.BitLength();
      for (const BigInt& b : red.instance.tuples) bits_out += b.BitLength();
      row.output_sizes.push_back(bits_out);
    }
    AddFit(&table, row);
  }

  table.Print(std::cout);
  std::cout << "All exponents are small constants: every reduction is\n"
               "polynomial, as the theorems require.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "reduction_scaling", /*default_seed=*/9);
  aqo::Run(flags);
  return 0;
}
