// Experiment E10 — the positive side the paper contrasts against
// (Section 6.3, citing [1] and [6]): tree query graphs are optimizable in
// polynomial time. Table 1 confirms IK/KBZ matches the exponential DP on
// every random tree; Table 2 scales IK/KBZ to thousands of relations.

#include <iostream>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "qo/ikkbz.h"
#include "qo/optimizers.h"
#include "util/stats.h"
#include "util/table.h"

namespace aqo {
namespace {

QonInstance RandomTreeInstance(int n, Rng* rng) {
  Graph g = RandomTree(n, rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(LogDouble::FromLinear(
        static_cast<double>(rng->UniformInt(2, 1000000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.0001, 1.0)));
  }
  return inst;
}

void Run(const bench::Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 10)));

  TextTable exact;
  exact.SetTitle("E10a: IK/KBZ vs exponential DP on random trees");
  exact.SetHeader({"n", "trials", "optimal matches", "mean KBZ ms",
                   "mean DP ms"});
  int trials = flags.Quick() ? 10 : 40;
  for (int n : {8, 12, 16}) {
    int matches = 0;
    StatAccumulator kbz_ms, dp_ms;
    for (int t = 0; t < trials; ++t) {
      QonInstance inst = RandomTreeInstance(n, &rng);
      bench::WallTimer t1;
      OptimizerResult kbz = IkkbzOptimizer(inst);
      kbz_ms.Add(t1.Millis());
      OptimizerOptions options;
      options.forbid_cartesian = true;
      bench::WallTimer t2;
      OptimizerResult dp = DpQonOptimizer(inst, options);
      dp_ms.Add(t2.Millis());
      matches += kbz.cost.ApproxEquals(dp.cost, 1e-6);
    }
    exact.AddRow({std::to_string(n), std::to_string(trials),
                  std::to_string(matches) + "/" + std::to_string(trials),
                  FormatDouble(kbz_ms.mean(), 3),
                  FormatDouble(dp_ms.mean(), 3)});
  }
  exact.Print(std::cout);
  std::cout << "\n";

  TextTable scale;
  scale.SetTitle("E10b: IK/KBZ scaling (polynomial time on trees)");
  scale.SetHeader({"n", "time ms", "lg cost"});
  std::vector<int> ns = flags.Quick() ? std::vector<int>{100, 400}
                                      : std::vector<int>{100, 400, 1000};
  for (int n : ns) {
    QonInstance inst = RandomTreeInstance(n, &rng);
    bench::WallTimer t;
    OptimizerResult kbz = IkkbzOptimizer(inst);
    scale.AddRow({std::to_string(n), FormatDouble(t.Millis(), 4),
                  FormatDouble(kbz.cost.Log2(), 5)});
  }
  scale.Print(std::cout);
  std::cout << "Tree queries stay easy while (Section 6) adding Theta(m^tau)\n"
               "non-tree edges already makes polylog approximation NP-hard.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "tree_queries", /*default_seed=*/10);
  aqo::Run(flags);
  return 0;
}
