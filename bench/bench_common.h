#ifndef AQO_BENCH_BENCH_COMMON_H_
#define AQO_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment harness binaries: a wall-clock timer,
// minimal --flag=value parsing (every bench accepts --quick=1 to run a
// reduced sweep, --seed=<u64>, --threads=<n> to size the worker pool, and
// --json-out=<path> to emit a JSONL run-log, see docs/observability.md),
// the RunLogSession glue that attaches the process-wide run-log from those
// flags, and the SweepRunner that fans a parameter grid across a
// ThreadPool without letting the thread count leak into any output (see
// docs/parallelism.md).

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/runlog.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace aqo::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      raw_args_.push_back(arg);
      if (arg.rfind("--", 0) != 0) continue;
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)].value = "1";
      } else {
        values_[arg.substr(2, eq - 2)].value = arg.substr(eq + 1);
      }
    }
  }

  // Flags the binary never read are almost always typos (--qiuck=1).
  // Each Get* marks its flag as recognized; the destructor runs after the
  // bench body finished reading flags, so whatever is left unread gets a
  // stderr warning instead of being silently ignored.
  ~Flags() {
    for (const auto& [name, entry] : values_) {
      if (!entry.accessed) {
        std::cerr << "warning: unrecognized flag --" << name
                  << " (this benchmark never read it; typo?)\n";
      }
    }
  }

  Flags(const Flags&) = delete;
  Flags& operator=(const Flags&) = delete;

  bool Quick() const { return GetInt("quick", 0) != 0; }

  // Worker pool size: --threads=N, defaulting to the hardware parallelism.
  // Results never depend on this value — --threads=1 and --threads=64
  // produce identical tables and identically ordered run-logs.
  int Threads() const {
    int threads =
        static_cast<int>(GetInt("threads", ThreadPool::HardwareConcurrency()));
    return threads < 1 ? 1 : threads;
  }

  int64_t GetInt(const std::string& name, int64_t def) const {
    const std::string* v = Lookup(name);
    return v == nullptr ? def : std::strtoll(v->c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double def) const {
    const std::string* v = Lookup(name);
    return v == nullptr ? def : std::strtod(v->c_str(), nullptr);
  }

  std::string GetString(const std::string& name,
                        const std::string& def = "") const {
    const std::string* v = Lookup(name);
    return v == nullptr ? def : *v;
  }

  // Raw argv tail, recorded into run-log headers for provenance.
  const std::vector<std::string>& raw_args() const { return raw_args_; }

 private:
  struct Entry {
    std::string value;
    mutable bool accessed = false;
  };

  const std::string* Lookup(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return nullptr;
    it->second.accessed = true;
    return &it->second.value;
  }

  std::map<std::string, Entry> values_;
  std::vector<std::string> raw_args_;
};

// Attaches the process-wide JSONL run-log when --json-out=<path> is given
// and writes the provenance header record. Construct right after Flags in
// main(); the destructor closes the log. Without --json-out this is inert
// and the telemetry layer stays disabled (counters only).
class RunLogSession {
 public:
  // `default_seed` is the seed the bench uses when --seed is absent, so
  // the header always records the effective seed.
  RunLogSession(const Flags& flags, const std::string& binary,
                uint64_t default_seed = 0) {
    std::string path = flags.GetString("json-out");
    if (path.empty()) return;
    if (!obs::RunLog::OpenGlobal(path)) {
      std::cerr << "warning: cannot open --json-out=" << path
                << "; run-log disabled\n";
      return;
    }
    attached_ = true;
    obs::RunLog::Global()->WriteHeader(
        binary,
        static_cast<uint64_t>(
            flags.GetInt("seed", static_cast<int64_t>(default_seed))),
        flags.raw_args());
  }

  ~RunLogSession() {
    if (attached_) obs::RunLog::CloseGlobal();
  }

  RunLogSession(const RunLogSession&) = delete;
  RunLogSession& operator=(const RunLogSession&) = delete;

  bool attached() const { return attached_; }

 private:
  bool attached_ = false;
};

// Fans the cells of a seed/parameter grid across a thread pool while
// keeping every observable output a pure function of (base_seed, grid):
//
//   * each cell gets its own Rng stream, Rng(MixSeed(base_seed, index)),
//     so no cell ever consumes another cell's random draws — which thread
//     runs it (and how many threads exist) cannot matter;
//   * run-log records emitted inside a cell are captured in a per-cell
//     RunLogBuffer and replayed to the global log in cell-index order
//     after the sweep, so the JSONL body order is stable across thread
//     counts (records surface at sweep end rather than streaming);
//   * results come back indexed, so tables built from them in a plain
//     loop are byte-identical for every --threads value.
//
// The metamorphic guarantee (threads ∈ {1, 2, 8} agree exactly) is locked
// in by tests/property_test.cc and the qon_gap_threads_differential ctest.
class SweepRunner {
 public:
  SweepRunner(ThreadPool* pool, uint64_t base_seed)
      : pool_(pool), base_seed_(base_seed) {}

  // Runs fn(index, &rng) for every index in [0, count); returns the
  // results in index order. R must be default-constructible.
  template <typename R>
  std::vector<R> Map(size_t count,
                     const std::function<R(size_t, Rng*)>& fn) const {
    std::vector<R> results(count);
    std::vector<std::string> logs(count);
    pool_->ParallelFor(count, [&](size_t index) {
      Rng rng(MixSeed(base_seed_, index));
      obs::RunLogBuffer buffer;
      results[index] = fn(index, &rng);
      logs[index] = buffer.Take();
    });
    if (obs::RunLog* log = obs::RunLog::Global()) {
      for (const std::string& lines : logs) log->WriteRaw(lines);
    }
    return results;
  }

 private:
  ThreadPool* pool_;
  uint64_t base_seed_;
};

}  // namespace aqo::bench

#endif  // AQO_BENCH_BENCH_COMMON_H_
