#ifndef AQO_BENCH_BENCH_COMMON_H_
#define AQO_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment harness binaries: a wall-clock timer,
// minimal --flag=value parsing (every bench accepts --quick=1 to run a
// reduced sweep, --seed=<u64>, --threads=<n> to size the worker pool, and
// --json-out=<path> to emit a JSONL run-log, see docs/observability.md),
// the RunLogSession glue that attaches the process-wide run-log from those
// flags, and the SweepRunner that fans a parameter grid across a
// ThreadPool without letting the thread count leak into any output (see
// docs/parallelism.md).

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/runlog.h"
#include "obs/trace.h"
#include "qo/fingerprint.h"
#include "qo/plan_cache.h"
#include "qo/registry.h"
#include "qo/service.h"
#include "util/check.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace aqo::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      raw_args_.push_back(arg);
      if (arg.rfind("--", 0) != 0) continue;
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)].value = "1";
      } else {
        values_[arg.substr(2, eq - 2)].value = arg.substr(eq + 1);
      }
    }
  }

  // Flags the binary never read are almost always typos (--qiuck=1).
  // Each Get* marks its flag as recognized; the destructor runs after the
  // bench body finished reading flags, so whatever is left unread gets a
  // stderr warning instead of being silently ignored.
  ~Flags() {
    for (const auto& [name, entry] : values_) {
      if (!entry.accessed) {
        std::cerr << "warning: unrecognized flag --" << name
                  << " (this benchmark never read it; typo?)\n";
      }
    }
  }

  Flags(const Flags&) = delete;
  Flags& operator=(const Flags&) = delete;

  bool Quick() const { return GetInt("quick", 0) != 0; }

  // Worker pool size: --threads=N, defaulting to the hardware parallelism.
  // Results never depend on this value — --threads=1 and --threads=64
  // produce identical tables and identically ordered run-logs.
  int Threads() const {
    int threads =
        static_cast<int>(GetInt("threads", ThreadPool::HardwareConcurrency()));
    return threads < 1 ? 1 : threads;
  }

  int64_t GetInt(const std::string& name, int64_t def) const {
    const std::string* v = Lookup(name);
    return v == nullptr ? def : std::strtoll(v->c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double def) const {
    const std::string* v = Lookup(name);
    return v == nullptr ? def : std::strtod(v->c_str(), nullptr);
  }

  std::string GetString(const std::string& name,
                        const std::string& def = "") const {
    const std::string* v = Lookup(name);
    return v == nullptr ? def : *v;
  }

  // Raw argv tail, recorded into run-log headers for provenance.
  const std::vector<std::string>& raw_args() const { return raw_args_; }

 private:
  struct Entry {
    std::string value;
    mutable bool accessed = false;
  };

  const std::string* Lookup(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return nullptr;
    it->second.accessed = true;
    return &it->second.value;
  }

  std::map<std::string, Entry> values_;
  std::vector<std::string> raw_args_;
};

// Attaches the process-wide JSONL run-log when --json-out=<path> is given
// and writes the provenance header record; arms the Chrome trace-event
// recorder when --trace-out=<path> is given (docs/observability.md has
// the loading walkthrough). Construct right after Flags in main() —
// before any ThreadPool, so workers observe an armed recorder — and let
// the destructor close both. Without the flags this is inert and the
// telemetry layer stays disabled (counters only).
//
// --latency-table=1 additionally prints a percentile table of every
// registered histogram to stderr at session end and, when a run-log is
// attached, appends a `histogram_summary` record. Opt-in, so run-log
// bodies stay bit-comparable across runs by default.
class RunLogSession {
 public:
  // `default_seed` is the seed the bench uses when --seed is absent, so
  // the header always records the effective seed.
  RunLogSession(const Flags& flags, const std::string& binary,
                uint64_t default_seed = 0) {
    latency_table_ = flags.GetInt("latency-table", 0) != 0;
    std::string trace_path = flags.GetString("trace-out");
    if (!trace_path.empty()) {
      if (obs::TraceEventRecorder::OpenGlobal(trace_path)) {
        tracing_ = true;
      } else {
        std::cerr << "warning: cannot open --trace-out=" << trace_path
                  << "; tracing disabled\n";
      }
    }
    std::string path = flags.GetString("json-out");
    if (path.empty()) return;
    if (!obs::RunLog::OpenGlobal(path)) {
      std::cerr << "warning: cannot open --json-out=" << path
                << "; run-log disabled\n";
      return;
    }
    attached_ = true;
    obs::RunLog::Global()->WriteHeader(
        binary,
        static_cast<uint64_t>(
            flags.GetInt("seed", static_cast<int64_t>(default_seed))),
        flags.raw_args());
  }

  ~RunLogSession() {
    if (latency_table_) EmitLatencySummary();
    if (tracing_) obs::TraceEventRecorder::CloseGlobal();
    if (attached_) obs::RunLog::CloseGlobal();
  }

  RunLogSession(const RunLogSession&) = delete;
  RunLogSession& operator=(const RunLogSession&) = delete;

  bool attached() const { return attached_; }
  bool tracing() const { return tracing_; }

 private:
  void EmitLatencySummary() {
    obs::HistogramSnapshot snapshot = obs::Registry::Get().Histograms();
    std::cerr << "latency histograms (us):\n";
    for (const auto& [name, data] : snapshot) {
      if (data.count == 0) continue;
      std::cerr << "  " << name << ": count=" << data.count
                << " p50=" << data.Quantile(0.50)
                << " p90=" << data.Quantile(0.90)
                << " p99=" << data.Quantile(0.99)
                << " p999=" << data.Quantile(0.999) << " min=" << data.min
                << " max=" << data.max << "\n";
    }
    if (attached_) {
      obs::JsonValue rec = obs::JsonValue::Object();
      rec["type"] = "histogram_summary";
      rec["histograms"] = obs::HistogramsJson(snapshot);
      obs::RunLog::Global()->Write(rec);
    }
  }

  bool attached_ = false;
  bool tracing_ = false;
  bool latency_table_ = false;
};

// Fans the cells of a seed/parameter grid across a thread pool while
// keeping every observable output a pure function of (base_seed, grid):
//
//   * each cell gets its own Rng stream, Rng(MixSeed(base_seed, index)),
//     so no cell ever consumes another cell's random draws — which thread
//     runs it (and how many threads exist) cannot matter;
//   * run-log records emitted inside a cell are captured in a per-cell
//     RunLogBuffer and replayed to the global log in cell-index order
//     after the sweep, so the JSONL body order is stable across thread
//     counts (records surface at sweep end rather than streaming);
//   * results come back indexed, so tables built from them in a plain
//     loop are byte-identical for every --threads value.
//
// The metamorphic guarantee (threads ∈ {1, 2, 8} agree exactly) is locked
// in by tests/property_test.cc and the qon_gap_threads_differential ctest.
class SweepRunner {
 public:
  SweepRunner(ThreadPool* pool, uint64_t base_seed)
      : pool_(pool), base_seed_(base_seed) {}

  // Runs fn(index, &rng) for every index in [0, count); returns the
  // results in index order. R must be default-constructible.
  template <typename R>
  std::vector<R> Map(size_t count,
                     const std::function<R(size_t, Rng*)>& fn) const {
    std::vector<R> results(count);
    std::vector<std::string> logs(count);
    pool_->ParallelFor(count, [&](size_t index) {
      Rng rng(MixSeed(base_seed_, index));
      obs::RunLogBuffer buffer;
      results[index] = fn(index, &rng);
      logs[index] = buffer.Take();
    });
    if (obs::RunLog* log = obs::RunLog::Global()) {
      for (const std::string& lines : logs) log->WriteRaw(lines);
    }
    return results;
  }

 private:
  ThreadPool* pool_;
  uint64_t base_seed_;
};

// Reads the `adaptive` entry's knobs (the flags its KnobSpec schema
// advertises; see qo/registry.cc). Shared by ReadQonKnobs/ReadQohKnobs —
// always read, like every other knob, so the unread-flag warning stays
// honest when `adaptive` is not among the selected optimizers.
inline void ReadAdaptiveKnobs(const Flags& flags, AdaptiveKnobs* knobs) {
  knobs->fallback = flags.GetString("fallback", knobs->fallback);
  knobs->candidates =
      flags.GetString("adaptive-candidates", knobs->candidates);
  knobs->quality_target =
      flags.GetDouble("quality-target", knobs->quality_target);
  knobs->k_neighbors =
      static_cast<int>(flags.GetInt("knn-k", knobs->k_neighbors));
  knobs->min_trials =
      static_cast<int>(flags.GetInt("min-trials", knobs->min_trials));
  knobs->seed = static_cast<uint64_t>(
      flags.GetInt("adaptive-seed", static_cast<int64_t>(knobs->seed)));
}

// Reads every QO_N knob flag unconditionally, whether or not the selected
// --optimizers= subset uses it. That keeps the unread-flag warning honest:
// deselecting `sa` must not turn a legitimate --sa-iterations= into a
// "typo?" warning.
inline OptimizerOptions ReadQonKnobs(const Flags& flags,
                                     OptimizerOptions defaults = {}) {
  OptimizerOptions o = defaults;
  o.forbid_cartesian =
      flags.GetInt("no-cartesian", o.forbid_cartesian ? 1 : 0) != 0;
  o.samples = static_cast<int>(flags.GetInt("samples", o.samples));
  o.restarts = static_cast<int>(flags.GetInt("restarts", o.restarts));
  o.sa.iterations =
      static_cast<int>(flags.GetInt("sa-iterations", o.sa.iterations));
  o.sa.initial_temperature =
      flags.GetDouble("sa-temperature", o.sa.initial_temperature);
  o.sa.cooling = flags.GetDouble("sa-cooling", o.sa.cooling);
  o.sa.restarts = static_cast<int>(flags.GetInt("sa-restarts", o.sa.restarts));
  o.ga.population =
      static_cast<int>(flags.GetInt("ga-population", o.ga.population));
  o.ga.generations =
      static_cast<int>(flags.GetInt("ga-generations", o.ga.generations));
  o.ga.crossover_rate = flags.GetDouble("ga-crossover", o.ga.crossover_rate);
  o.ga.mutation_rate = flags.GetDouble("ga-mutation", o.ga.mutation_rate);
  o.bnb_node_limit = static_cast<uint64_t>(flags.GetInt(
      "bnb-node-limit", static_cast<int64_t>(o.bnb_node_limit)));
  // Anytime knobs (docs/robustness.md): --budget-evals= is the
  // deterministic evaluation cap, --deadline-ms= the wall-clock deadline.
  // Both default to 0 = unlimited, which changes nothing bit-for-bit.
  o.budget.max_evaluations = static_cast<uint64_t>(flags.GetInt(
      "budget-evals", static_cast<int64_t>(o.budget.max_evaluations)));
  o.budget.deadline_ms = flags.GetDouble("deadline-ms", o.budget.deadline_ms);
  {
    std::string tier = flags.GetString("eval-tier", EvalTierName(o.eval_tier));
    AQO_CHECK(ParseEvalTier(tier, &o.eval_tier))
        << "--eval-tier= must be 'exact' or 'fast', got: " << tier;
  }
  ReadAdaptiveKnobs(flags, &o.adaptive);
  return o;
}

// QO_H counterpart of ReadQonKnobs; same always-read-everything policy.
inline QohOptimizerOptions ReadQohKnobs(const Flags& flags,
                                        QohOptimizerOptions defaults = {}) {
  QohOptimizerOptions o = defaults;
  o.samples = static_cast<int>(flags.GetInt("samples", o.samples));
  o.restarts = static_cast<int>(flags.GetInt("restarts", o.restarts));
  o.sentinel_first =
      static_cast<int>(flags.GetInt("sentinel-first", o.sentinel_first));
  o.sa.iterations =
      static_cast<int>(flags.GetInt("sa-iterations", o.sa.iterations));
  o.sa.initial_temperature =
      flags.GetDouble("sa-temperature", o.sa.initial_temperature);
  o.sa.cooling = flags.GetDouble("sa-cooling", o.sa.cooling);
  o.sa.restarts = static_cast<int>(flags.GetInt("sa-restarts", o.sa.restarts));
  o.budget.max_evaluations = static_cast<uint64_t>(flags.GetInt(
      "budget-evals", static_cast<int64_t>(o.budget.max_evaluations)));
  o.budget.deadline_ms = flags.GetDouble("deadline-ms", o.budget.deadline_ms);
  {
    std::string tier = flags.GetString("eval-tier", EvalTierName(o.eval_tier));
    AQO_CHECK(ParseEvalTier(tier, &o.eval_tier))
        << "--eval-tier= must be 'exact' or 'fast', got: " << tier;
  }
  ReadAdaptiveKnobs(flags, &o.adaptive);
  return o;
}

namespace detail {

template <typename Registry>
std::vector<std::string> SelectedOptimizersOrDie(const Registry& registry,
                                                 const char* family,
                                                 const Flags& flags,
                                                 const std::string& def) {
  std::string csv = flags.GetString("optimizers", def);
  if (csv == "help") {
    // Uniform across every bench and tool: the registry's own Describe()
    // listing (names, descriptions, knob schemas, aliases).
    std::cout << registry.Describe();
    std::exit(0);
  }
  std::vector<std::string> names = ParseOptimizerList(csv);
  bool bad = names.empty();
  for (std::string& name : names) {
    const auto* entry = registry.Find(name);
    if (entry == nullptr) {
      std::cerr << "error: unknown " << family << " optimizer '" << name
                << "' in --optimizers=\n";
      bad = true;
    } else {
      name = entry->name;  // resolve aliases to canonical names
    }
  }
  if (bad) {
    std::cerr << "valid " << family << " optimizers:";
    for (const std::string& name : registry.Names()) std::cerr << " " << name;
    std::cerr << "\n";
    std::exit(2);  // hard error, never a silent skip
  }
  return names;
}

}  // namespace detail

// Parses --optimizers=<csv> (default `def`) against the QO_N registry.
// Unknown names are a hard error: print the valid list and exit(2).
inline std::vector<std::string> SelectedQonOptimizersOrDie(
    const Flags& flags, const std::string& def) {
  return detail::SelectedOptimizersOrDie(OptimizerRegistry::Qon(), "QO_N",
                                         flags, def);
}

inline std::vector<std::string> SelectedQohOptimizersOrDie(
    const Flags& flags, const std::string& def) {
  return detail::SelectedOptimizersOrDie(QohOptimizerRegistry::Get(), "QO_H",
                                         flags, def);
}

// Builds a PlanCache from --plan-cache-mb= / --plan-cache-shards=, or null
// when --plan-cache-mb is absent or 0. Both flags are always read so they
// never trip the unread-flag warning.
inline std::unique_ptr<PlanCache> PlanCacheFromFlags(const Flags& flags) {
  int64_t mb = flags.GetInt("plan-cache-mb", 0);
  int shards = static_cast<int>(flags.GetInt("plan-cache-shards", 16));
  if (mb <= 0) return nullptr;
  PlanCacheOptions options;
  options.byte_budget = static_cast<size_t>(mb) << 20;
  options.shards = shards < 1 ? 1 : shards;
  return std::make_unique<PlanCache>(options);
}

namespace detail {

// Duplicate-heavy plan-cache demonstration shared by the benches: expands
// each base instance into `dup_factor` relabeled copies (so a fraction
// (dup_factor-1)/dup_factor of the workload is duplicate work under
// canonical fingerprinting), runs the batch twice — once without the
// cache as the baseline, once through `cache` — and verifies the two are
// bit-identical. The deterministic report goes to stdout (the CI smoke
// diffs stdout across runs); timings go to stderr.
template <typename Instance, typename PermuteFn, typename BatchFn>
void RunPlanCacheDemo(const char* family, PlanCache* cache, ThreadPool* pool,
                      BatchOptions options,
                      const std::vector<Instance>& bases, int dup_factor,
                      const PermuteFn& permute, const BatchFn& run_batch) {
  AQO_CHECK(cache != nullptr);
  if (dup_factor < 1) dup_factor = 1;
  std::vector<Instance> batch;
  batch.reserve(bases.size() * static_cast<size_t>(dup_factor));
  for (size_t b = 0; b < bases.size(); ++b) {
    batch.push_back(bases[b]);
    int n = bases[b].NumRelations();
    for (int d = 1; d < dup_factor; ++d) {
      Rng rng(MixSeed(MixSeed(options.seed, b), static_cast<uint64_t>(d)));
      std::vector<int> perm(static_cast<size_t>(n));
      for (int v = 0; v < n; ++v) perm[static_cast<size_t>(v)] = v;
      rng.Shuffle(&perm);
      batch.push_back(permute(bases[b], perm));
    }
  }
  options.pool = pool;

  options.cache = nullptr;
  WallTimer cold_timer;
  auto baseline = run_batch(batch, options);
  double cold_seconds = cold_timer.Seconds();

  options.cache = cache;
  cache->LogConfig();
  WallTimer warm_timer;
  auto cached = run_batch(batch, options);
  double warm_seconds = warm_timer.Seconds();
  cache->LogStats();

  AQO_CHECK(baseline.size() == cached.size());
  size_t hits_seen = 0;
  for (size_t i = 0; i < cached.size(); ++i) {
    AQO_CHECK(baseline[i].result.feasible == cached[i].result.feasible)
        << family << " plan-cache demo: feasibility diverged at item " << i;
    AQO_CHECK(baseline[i].result.cost.Log2() == cached[i].result.cost.Log2())
        << family << " plan-cache demo: cost bits diverged at item " << i;
    AQO_CHECK(baseline[i].result.sequence == cached[i].result.sequence)
        << family << " plan-cache demo: sequence diverged at item " << i;
    if (cached[i].from_cache) ++hits_seen;
  }

  PlanCache::Stats stats = cache->GetStats();
  std::cout << family << " plan-cache demo: optimizer=" << options.optimizer
            << " instances=" << batch.size() << " bases=" << bases.size()
            << " dup_factor=" << dup_factor << "\n";
  std::cout << family << " plan-cache demo: hits=" << stats.hits
            << " misses=" << stats.misses << " inserts=" << stats.inserts
            << " evictions=" << stats.evictions << " entries=" << stats.entries
            << " served_from_cache=" << hits_seen << "\n";
  std::cout << family
            << " plan-cache demo: results bit-identical with cache on/off\n";
  std::cerr << family << " plan-cache demo: cold " << cold_seconds
            << "s, cached " << warm_seconds << "s\n";
}

}  // namespace detail

// QO_N duplicate-heavy cache demo; see detail::RunPlanCacheDemo.
inline void RunQonPlanCacheDemo(PlanCache* cache, ThreadPool* pool,
                                const BatchOptions& options,
                                const std::vector<QonInstance>& bases,
                                int dup_factor) {
  detail::RunPlanCacheDemo(
      "qon", cache, pool, options, bases, dup_factor,
      [](const QonInstance& inst, const std::vector<int>& perm) {
        return PermuteQonInstance(inst, perm);
      },
      [](const std::vector<QonInstance>& batch, const BatchOptions& opts) {
        return OptimizeQonBatch(batch, opts);
      });
}

// QO_H counterpart.
inline void RunQohPlanCacheDemo(PlanCache* cache, ThreadPool* pool,
                                const BatchOptions& options,
                                const std::vector<QohInstance>& bases,
                                int dup_factor) {
  detail::RunPlanCacheDemo(
      "qoh", cache, pool, options, bases, dup_factor,
      [](const QohInstance& inst, const std::vector<int>& perm) {
        return PermuteQohInstance(inst, perm);
      },
      [](const std::vector<QohInstance>& batch, const BatchOptions& opts) {
        return OptimizeQohBatch(batch, opts);
      });
}

}  // namespace aqo::bench

#endif  // AQO_BENCH_BENCH_COMMON_H_
