#ifndef AQO_BENCH_BENCH_COMMON_H_
#define AQO_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment harness binaries: a wall-clock timer
// and minimal --flag=value parsing (every bench accepts --quick=1 to run a
// reduced sweep, and --seed=<u64>).

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>

namespace aqo::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  bool Quick() const { return GetInt("quick", 0) != 0; }

  int64_t GetInt(const std::string& name, int64_t def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace aqo::bench

#endif  // AQO_BENCH_BENCH_COMMON_H_
