// Experiment E3 — Theorem 15: the QO_H approximation gap under f_H.
//
// YES side: complete source graphs (omega = n >= 2n/3), the Lemma 12
// 5-pipeline witness. NO side: complete 3-partite sources (omega = 3
// provably, epsilon = 2 - 9/n). We report witness cost vs L(alpha, n),
// the best plan found by the selected registry heuristics vs the
// G(alpha, n) floor, and the measured gap exponent vs the predicted
// n*eps/3 - 1.
//
// --optimizers= selects the QO_H heuristic pool (default random,greedy;
// unknown names are a hard error). With --plan-cache-mb=N the bench
// appends a duplicate-heavy plan-cache demonstration over relabeled NO
// instances.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/runlog.h"
#include "obs/trace.h"
#include "qo/optimizers.h"
#include "qo/qoh_optimizers.h"
#include "qo/workloads.h"
#include "reductions/clique_to_qoh.h"
#include "util/table.h"

namespace aqo {
namespace {

obs::InstanceShape ShapeOf(const QohInstance& inst, const std::string& kind,
                           const std::string& side) {
  return obs::InstanceShape{.family = "qoh",
                            .kind = kind,
                            .side = side,
                            .source = "f_H",
                            .n = inst.NumRelations(),
                            .edges = inst.graph().NumEdges()};
}

// Best optimal-decomposition cost over the selected registry optimizers.
double BestFoundCost(const QohInstance& inst,
                     const std::vector<std::string>& names,
                     const QohOptimizerOptions& knobs, Rng* rng,
                     const obs::InstanceShape& shape) {
  double best = 1e300;
  for (const std::string& name : names) {
    QohOptimizerResult r = obs::InstrumentedRun("qoh." + name, shape, [&] {
      return QohOptimizerRegistry::Get().Run(name, inst, knobs, rng);
    });
    if (r.feasible) best = std::min(best, r.cost.Log2());
  }
  return best;
}

// NO-side instance for a given n: complete 3-partite source, omega = 3.
QohGapInstance NoInstance(int n) {
  QohGapParams params;  // alpha = 4, eta = 0.5
  return ReduceTwoThirdsCliqueToQoh(CompleteMultipartite(n, 3), params);
}

void Run(const bench::Flags& flags, ThreadPool* pool,
         const std::vector<std::string>& names,
         const QohOptimizerOptions& knobs, const std::vector<int>& ns) {
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));

  TextTable table;
  table.SetTitle("E3 / Theorem 15: QO_H YES/NO gap under f_H (lg costs)");
  table.SetHeader({"n", "lg L", "YES wit-L", "YES best-L", "NO G-L",
                   "NO best-L", "gap (a units)", "paper n*eps/3-1"});

  // One cell per n, fanned across the pool on an Rng stream of its own;
  // see docs/parallelism.md for why output cannot depend on --threads.
  bench::SweepRunner sweep(pool, seed);
  auto cell = [&](size_t index, Rng* rng) -> std::vector<std::string> {
    int n = ns[index];
    // Whole-cell latency; TraceSpan (not obs::Span) so the nested
    // instrumented runs keep owning their profile trees.
    static obs::Histogram& cell_us =
        obs::Registry::Get().GetHistogram("qoh_gap.cell_us");
    obs::ScopedLatencyTimer cell_timer(cell_us);
    obs::TraceSpan cell_slice("qoh_gap.cell", "bench");
    cell_slice.Annotate("n", static_cast<uint64_t>(n));
    QohGapParams params;  // alpha = 4, eta = 0.5

    // YES: complete graph; clique = first 2n/3 vertices.
    Graph yes_graph = Graph::Complete(n);
    QohGapInstance yes = ReduceTwoThirdsCliqueToQoh(yes_graph, params);
    std::vector<int> clique;
    for (int v = 0; v < 2 * n / 3; ++v) clique.push_back(v);
    QohWitnessPlan witness = QohYesWitness(yes, clique);
    PipelineCostResult wit_cost =
        DecompositionCost(yes.instance, witness.sequence, witness.decomposition);
    double yes_best = BestFoundCost(yes.instance, names, knobs, rng,
                                    ShapeOf(yes.instance, "complete_yes", "yes"));
    yes_best = std::min(yes_best, wit_cost.feasible ? wit_cost.cost.Log2()
                                                    : 1e300);

    // NO: omega = 3 exactly.
    QohGapInstance no = NoInstance(n);
    double epsilon = 2.0 - 9.0 / static_cast<double>(n);
    double no_best = BestFoundCost(no.instance, names, knobs, rng,
                                   ShapeOf(no.instance, "multipartite_no", "no"));

    double l = yes.LBound().Log2();
    double l_no = no.LBound().Log2();
    return {std::to_string(n), FormatDouble(l, 6),
            FormatDouble(wit_cost.cost.Log2() - l, 4),
            FormatDouble(yes_best - l, 4),
            FormatDouble(no.GBound(epsilon).Log2() - l_no, 4),
            FormatDouble(no_best - l_no, 4),
            FormatDouble((no_best - l_no - (yes_best - l)) / params.log2_alpha,
                         4),
            FormatDouble(static_cast<double>(n) * epsilon / 3.0 - 1.0, 4)};
  };
  for (const std::vector<std::string>& row :
       sweep.Map<std::vector<std::string>>(ns.size(), cell)) {
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "Reading: the YES witness tracks L while no sampled NO plan\n"
               "gets below the G floor; the measured gap exponent follows\n"
               "n*eps/3 - 1 as Theorem 15 predicts.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "qoh_gap", /*default_seed=*/3);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  std::vector<std::string> names =
      aqo::bench::SelectedQohOptimizersOrDie(flags, "random,greedy");
  aqo::QohOptimizerOptions defaults;
  defaults.samples = flags.Quick() ? 40 : 200;
  defaults.sentinel_first = 0;  // pin the sentinel, as the reduction intends
  aqo::QohOptimizerOptions knobs = aqo::bench::ReadQohKnobs(flags, defaults);
  std::vector<int> ns = flags.Quick() ? std::vector<int>{9, 12}
                                      : std::vector<int>{9, 12, 15, 18, 21};
  aqo::ThreadPool pool(flags.Threads());
  aqo::Run(flags, &pool, names, knobs, ns);

  // Duplicate-heavy plan-cache demonstration (--plan-cache-mb=N enables).
  // The bases are random workloads rather than the (vertex-transitive,
  // hence 1-WL-symmetric) gap instances — see the matching comment in
  // bench/qon_gap.cc. All cache flags are read unconditionally so none
  // can warn as unread.
  auto cache = aqo::bench::PlanCacheFromFlags(flags);
  int dup_factor = static_cast<int>(flags.GetInt("dup-factor", 3));
  std::string cache_opt = flags.GetString("cache-optimizer", "greedy");
  if (cache != nullptr) {
    const aqo::QohOptimizerEntry* entry =
        aqo::QohOptimizerRegistry::Get().Find(cache_opt);
    if (entry == nullptr) {
      std::cerr << "error: unknown QO_H optimizer '" << cache_opt
                << "' in --cache-optimizer=\n";
      return 2;
    }
    std::vector<aqo::QohInstance> bases;
    aqo::Rng base_rng(aqo::MixSeed(seed, 0xcafe));
    int num_bases = flags.Quick() ? 4 : 8;
    for (int i = 0; i < num_bases; ++i) {
      int n = static_cast<int>(base_rng.UniformInt(8, 14));
      bases.push_back(aqo::RandomQohWorkload(n, &base_rng, 0.5));
    }
    aqo::BatchOptions batch;
    batch.optimizer = entry->name;
    batch.qoh = knobs;
    // sentinel_first names a relation in caller labels, which differ
    // across relabeled duplicates — pinning it would give every duplicate
    // a distinct cache key and defeat the demonstration.
    batch.qoh.sentinel_first = -1;
    batch.seed = seed;
    std::cout << "\n";
    aqo::bench::RunQohPlanCacheDemo(cache.get(), &pool, batch, bases,
                                    dup_factor);
  }
  return 0;
}
