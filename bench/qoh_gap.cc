// Experiment E3 — Theorem 15: the QO_H approximation gap under f_H.
//
// YES side: complete source graphs (omega = n >= 2n/3), the Lemma 12
// 5-pipeline witness. NO side: complete 3-partite sources (omega = 3
// provably, epsilon = 2 - 9/n). We report witness cost vs L(alpha, n),
// the best plan found by sampling + greedy vs the G(alpha, n) floor, and
// the measured gap exponent vs the predicted n*eps/3 - 1.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "obs/runlog.h"
#include "qo/optimizers.h"
#include "qo/qoh_optimizers.h"
#include "reductions/clique_to_qoh.h"
#include "util/table.h"

namespace aqo {
namespace {

obs::InstanceShape ShapeOf(const QohInstance& inst, const std::string& kind,
                           const std::string& side) {
  return obs::InstanceShape{.family = "qoh",
                            .kind = kind,
                            .side = side,
                            .source = "f_H",
                            .n = inst.NumRelations(),
                            .edges = inst.graph().NumEdges()};
}

// Best optimal-decomposition cost over sampled feasible sequences
// (sentinel first, random tail) plus the greedy QO_H optimizer.
double BestFoundCost(const QohInstance& inst, int samples, Rng* rng,
                     const obs::InstanceShape& shape) {
  QohOptimizerResult sampled = obs::InstrumentedRun(
      "qoh.sample", shape,
      [&] { return RandomSamplingQohOptimizer(inst, rng, samples, 0); });
  QohOptimizerResult greedy = obs::InstrumentedRun(
      "qoh.greedy", shape, [&] { return GreedyQohOptimizer(inst); });
  double best = 1e300;
  if (sampled.feasible) best = std::min(best, sampled.cost.Log2());
  if (greedy.feasible) best = std::min(best, greedy.cost.Log2());
  return best;
}

void Run(const bench::Flags& flags) {
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  std::vector<int> ns = flags.Quick() ? std::vector<int>{9, 12}
                                      : std::vector<int>{9, 12, 15, 18, 21};
  int samples = flags.Quick() ? 40 : 200;

  TextTable table;
  table.SetTitle("E3 / Theorem 15: QO_H YES/NO gap under f_H (lg costs)");
  table.SetHeader({"n", "lg L", "YES wit-L", "YES best-L", "NO G-L",
                   "NO best-L", "gap (a units)", "paper n*eps/3-1"});

  // One cell per n, fanned across the pool on an Rng stream of its own;
  // see docs/parallelism.md for why output cannot depend on --threads.
  ThreadPool pool(flags.Threads());
  bench::SweepRunner sweep(&pool, seed);
  auto cell = [&](size_t index, Rng* rng) -> std::vector<std::string> {
    int n = ns[index];
    QohGapParams params;  // alpha = 4, eta = 0.5

    // YES: complete graph; clique = first 2n/3 vertices.
    Graph yes_graph = Graph::Complete(n);
    QohGapInstance yes = ReduceTwoThirdsCliqueToQoh(yes_graph, params);
    std::vector<int> clique;
    for (int v = 0; v < 2 * n / 3; ++v) clique.push_back(v);
    QohWitnessPlan witness = QohYesWitness(yes, clique);
    PipelineCostResult wit_cost =
        DecompositionCost(yes.instance, witness.sequence, witness.decomposition);
    double yes_best = BestFoundCost(yes.instance, samples, rng,
                                    ShapeOf(yes.instance, "complete_yes", "yes"));
    yes_best = std::min(yes_best, wit_cost.feasible ? wit_cost.cost.Log2()
                                                    : 1e300);

    // NO: omega = 3 exactly.
    Graph no_graph = CompleteMultipartite(n, 3);
    QohGapInstance no = ReduceTwoThirdsCliqueToQoh(no_graph, params);
    double epsilon = 2.0 - 9.0 / static_cast<double>(n);
    double no_best = BestFoundCost(no.instance, samples, rng,
                                   ShapeOf(no.instance, "multipartite_no", "no"));

    double l = yes.LBound().Log2();
    double l_no = no.LBound().Log2();
    return {std::to_string(n), FormatDouble(l, 6),
            FormatDouble(wit_cost.cost.Log2() - l, 4),
            FormatDouble(yes_best - l, 4),
            FormatDouble(no.GBound(epsilon).Log2() - l_no, 4),
            FormatDouble(no_best - l_no, 4),
            FormatDouble((no_best - l_no - (yes_best - l)) / params.log2_alpha,
                         4),
            FormatDouble(static_cast<double>(n) * epsilon / 3.0 - 1.0, 4)};
  };
  for (const std::vector<std::string>& row :
       sweep.Map<std::vector<std::string>>(ns.size(), cell)) {
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "Reading: the YES witness tracks L while no sampled NO plan\n"
               "gets below the G floor; the measured gap exponent follows\n"
               "n*eps/3 - 1 as Theorem 15 predicts.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "qoh_gap", /*default_seed=*/3);
  aqo::Run(flags);
  return 0;
}
