// Experiment E13 (ablation) — cost-model choice. The paper's QO_N model
// prices each join as N(prefix) * best-access-path; a large slice of the
// join-ordering literature optimizes C_out (sum of intermediate sizes,
// e.g. [2] in the paper) instead. How much does optimizing the wrong
// model cost? For each workload shape we compute both exact optima and
// evaluate each plan under the other metric (the "regret", in lg).

#include <iostream>

#include "bench/bench_common.h"
#include "qo/analysis.h"
#include "qo/optimizers.h"
#include "qo/workloads.h"
#include "util/stats.h"
#include "util/table.h"

namespace aqo {
namespace {

void Run(const bench::Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 13)));
  int n = static_cast<int>(flags.GetInt("n", 12));
  int trials = flags.Quick() ? 8 : 40;

  TextTable table;
  table.SetTitle("E13 (ablation): optimizing H-cost vs C_out (regret in lg)");
  table.SetHeader({"shape", "trials", "H-equivalent", "Cout-plan H-regret p50/p95",
                   "H-plan Cout-regret p50/p95"});

  struct ShapeRow {
    const char* name;
    WorkloadShape shape;
  };
  for (ShapeRow shape : {ShapeRow{"chain", WorkloadShape::kChain},
                         ShapeRow{"star", WorkloadShape::kStar},
                         ShapeRow{"tree", WorkloadShape::kTree},
                         ShapeRow{"cycle", WorkloadShape::kCycle},
                         ShapeRow{"random p=.5", WorkloadShape::kRandom},
                         ShapeRow{"clique", WorkloadShape::kClique}}) {
    int same = 0;
    SampleSet h_regret, cout_regret;
    for (int t = 0; t < trials; ++t) {
      WorkloadOptions options;
      options.shape = shape.shape;
      QonInstance inst = RandomQonWorkload(n, &rng, options);
      OptimizerResult h_opt = DpQonOptimizer(inst);
      OptimizerResult cout_opt = CoutOptimalJoinOrder(inst);
      if (!h_opt.feasible) continue;
      // Evaluate each plan under the other metric.
      double regret = QonSequenceCost(inst, cout_opt.sequence).Log2() -
                      h_opt.cost.Log2();
      same += regret < 1e-6;  // the C_out plan is H-optimal too
      h_regret.Add(regret);
      cout_regret.Add(CoutSequenceCost(inst, h_opt.sequence).Log2() -
                      cout_opt.cost.Log2());
    }
    table.AddRow({shape.name, std::to_string(trials),
                  FormatDouble(100.0 * same / trials, 3) + "%",
                  FormatDouble(h_regret.Percentile(50), 3) + "/" +
                      FormatDouble(h_regret.Percentile(95), 3),
                  FormatDouble(cout_regret.Percentile(50), 3) + "/" +
                      FormatDouble(cout_regret.Percentile(95), 3)});
  }
  table.Print(std::cout);
  std::cout << "Regret 0 = the models agree on the plan; positive lg regret\n"
               "means optimizing the simplified C_out metric ships a plan\n"
               "that the paper's access-path-aware model charges 2^regret\n"
               "more. The models diverge most on star/random shapes where\n"
               "index access paths dominate.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "cost_model_ablation", /*default_seed=*/13);
  aqo::Run(flags);
  return 0;
}
