// Experiment E11 — micro-benchmarks (google-benchmark) of the primitives
// every other experiment is built on: log-domain arithmetic, cost
// evaluation, the exact solvers, and BigInt.
//
// Unlike the other benches this one delegates timing to google-benchmark,
// so --json-out is honored by a reporter shim that mirrors every finished
// benchmark into the run-log as a `micro_benchmark` record. Our own flags
// (--json-out, --quick, --seed) are stripped before benchmark::Initialize
// sees argv; --benchmark_* flags pass through untouched.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "graph/clique.h"
#include "graph/generators.h"
#include "qo/cost_eval.h"
#include "qo/fast_eval.h"
#include "qo/optimizers.h"
#include "qo/qoh.h"
#include "qo/qon.h"
#include "sat/cdcl.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "util/bigint.h"
#include "util/log_double.h"
#include "util/random.h"

namespace aqo {
namespace {

void BM_LogDoubleAdd(benchmark::State& state) {
  LogDouble a = LogDouble::FromLog2(1000.5);
  LogDouble b = LogDouble::FromLog2(998.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a = a * LogDouble::FromLog2(-0.001) + b);
  }
}
BENCHMARK(BM_LogDoubleAdd);

QonInstance MakeQonInstance(int n, uint64_t seed) {
  Rng rng(seed);
  Graph g = Gnp(n, 0.5, &rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(
        LogDouble::FromLinear(static_cast<double>(rng.UniformInt(2, 100000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng.UniformReal(0.001, 1.0)));
  }
  return inst;
}

void BM_QonSequenceCost(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QonInstance inst = MakeQonInstance(n, 42);
  JoinSequence seq = IdentitySequence(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QonSequenceCost(inst, seq));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_QonSequenceCost)->Arg(10)->Arg(30)->Arg(100)->Complexity();

void BM_DpOptimizer(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QonInstance inst = MakeQonInstance(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DpQonOptimizer(inst));
  }
}
BENCHMARK(BM_DpOptimizer)->Arg(10)->Arg(14)->Arg(18)->Unit(benchmark::kMillisecond);

void BM_GreedyOptimizer(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QonInstance inst = MakeQonInstance(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyQonOptimizer(inst));
  }
}
BENCHMARK(BM_GreedyOptimizer)->Arg(20)->Arg(60)->Unit(benchmark::kMicrosecond);

void BM_QohDecomposition(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(5);
  Graph g = Gnp(n, 0.6, &rng);
  std::vector<LogDouble> sizes(static_cast<size_t>(n),
                               LogDouble::FromLinear(4096.0));
  QohInstance inst(g, std::move(sizes), 8192.0);
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, LogDouble::FromLinear(0.25));
  }
  JoinSequence seq = IdentitySequence(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimalDecomposition(inst, seq));
  }
}
BENCHMARK(BM_QohDecomposition)->Arg(10)->Arg(30)->Unit(benchmark::kMicrosecond);

// --- Incremental cost evaluators (docs/performance.md) ------------------
//
// Swap-neighborhood workloads: each candidate differs from its predecessor
// by one uniform random transposition — the move simulated annealing and
// iterative improvement generate. The *Full variants re-price every
// candidate from scratch through the naive entry points; the *Incremental
// variants resume the evaluator's fold at the first changed position. Same
// instances and swap schedules as tools/bench_snapshot, which freezes the
// measured ratios in BENCH_COST_EVAL.json; CI's perf-smoke job asserts
// Incremental beats Full on these.

QohInstance MakeQohInstance(int n, uint64_t seed) {
  Rng rng(seed);
  Graph g = Gnp(n, 0.6, &rng);
  std::vector<LogDouble> sizes(static_cast<size_t>(n),
                               LogDouble::FromLinear(4096.0));
  QohInstance inst(g, std::move(sizes), 8192.0);
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, LogDouble::FromLinear(0.25));
  }
  return inst;
}

std::vector<std::pair<int, int>> SwapSchedule(int n, int count,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> swaps;
  swaps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    swaps.emplace_back(static_cast<int>(rng.UniformInt(0, n - 1)),
                       static_cast<int>(rng.UniformInt(0, n - 1)));
  }
  return swaps;
}

void BM_QonSwapFull(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QonInstance inst = MakeQonInstance(n, 42);
  std::vector<std::pair<int, int>> swaps = SwapSchedule(n, 1024, 11);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);
  size_t it = 0;
  for (auto _ : state) {
    auto [i, j] = swaps[it++ % swaps.size()];
    std::swap(seq[static_cast<size_t>(i)], seq[static_cast<size_t>(j)]);
    benchmark::DoNotOptimize(QonSequenceCost(inst, seq));
  }
}
BENCHMARK(BM_QonSwapFull)->Arg(10)->Arg(30)->Arg(100)->Arg(300);

void BM_QonSwapIncremental(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QonInstance inst = MakeQonInstance(n, 42);
  std::vector<std::pair<int, int>> swaps = SwapSchedule(n, 1024, 11);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);
  QonCostEvaluator eval(inst);
  eval.Cost(seq);
  size_t it = 0;
  for (auto _ : state) {
    auto [i, j] = swaps[it++ % swaps.size()];
    benchmark::DoNotOptimize(eval.CostAfterSwap(i, j));
  }
}
BENCHMARK(BM_QonSwapIncremental)->Arg(10)->Arg(30)->Arg(100)->Arg(300);

void BM_QohSwapFull(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QohInstance inst = MakeQohInstance(n, 5);
  std::vector<std::pair<int, int>> swaps = SwapSchedule(n, 1024, 13);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);
  size_t it = 0;
  for (auto _ : state) {
    auto [i, j] = swaps[it++ % swaps.size()];
    std::swap(seq[static_cast<size_t>(i)], seq[static_cast<size_t>(j)]);
    benchmark::DoNotOptimize(OptimalDecomposition(inst, seq));
  }
}
BENCHMARK(BM_QohSwapFull)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);

void BM_QohSwapIncremental(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QohInstance inst = MakeQohInstance(n, 5);
  std::vector<std::pair<int, int>> swaps = SwapSchedule(n, 1024, 13);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);
  QohCostEvaluator eval(inst);
  eval.Evaluate(seq);
  size_t it = 0;
  for (auto _ : state) {
    auto [i, j] = swaps[it++ % swaps.size()];
    std::swap(seq[static_cast<size_t>(i)], seq[static_cast<size_t>(j)]);
    benchmark::DoNotOptimize(eval.Evaluate(seq));
  }
}
BENCHMARK(BM_QohSwapIncremental)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);

// Neighborhood pricing: all n-1 adjacent transpositions of one sequence.
// "Exact" pays what a local-search loop pays per candidate — a probe
// evaluation plus the restore that rebuilds the evaluator's incremental
// state after the (typical) rejection. "Fast" is one Load plus the
// batched certified pass. items_processed = candidates, so the reported
// rate is per-candidate and directly comparable across the two.
void BM_QonNeighborhoodExact(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QonInstance inst = MakeQonInstance(n, 42);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);
  QonCostEvaluator eval(inst);
  eval.Cost(seq);
  for (auto _ : state) {
    for (int i = 0; i + 1 < n; ++i) {
      benchmark::DoNotOptimize(eval.CostAfterSwap(i, i + 1));  // probe
      benchmark::DoNotOptimize(eval.CostAfterSwap(i, i + 1));  // restore
    }
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_QonNeighborhoodExact)->Arg(10)->Arg(30)->Arg(100)->Arg(300);

void BM_QonNeighborhoodFast(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QonInstance inst = MakeQonInstance(n, 42);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);
  QonNeighborhoodEvaluator fast(inst);
  for (auto _ : state) {
    fast.Load(seq);
    benchmark::DoNotOptimize(fast.PriceAdjacentAll());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_QonNeighborhoodFast)->Arg(10)->Arg(30)->Arg(100)->Arg(300);

void BM_QohNeighborhoodExact(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QohInstance inst = MakeQohInstance(n, 5);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);
  QohCostEvaluator eval(inst);
  eval.Evaluate(seq);
  for (auto _ : state) {
    for (int i = 0; i + 1 < n; ++i) {
      size_t a = static_cast<size_t>(i);
      std::swap(seq[a], seq[a + 1]);
      benchmark::DoNotOptimize(eval.Evaluate(seq));  // probe
      std::swap(seq[a], seq[a + 1]);
      benchmark::DoNotOptimize(eval.Evaluate(seq));  // restore
    }
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_QohNeighborhoodExact)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);

void BM_QohNeighborhoodFast(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QohInstance inst = MakeQohInstance(n, 5);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);
  QohNeighborhoodEvaluator fast(inst);
  for (auto _ : state) {
    fast.Load(seq);
    for (int i = 0; i + 1 < n; ++i) {
      bool feasible = false;
      benchmark::DoNotOptimize(fast.PriceSwap(i, i + 1, &feasible));
    }
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_QohNeighborhoodFast)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);

void BM_MaxClique(benchmark::State& state) {
  Rng rng(11);
  Graph g = Gnp(static_cast<int>(state.range(0)), 0.5, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxClique(g));
  }
}
BENCHMARK(BM_MaxClique)->Arg(30)->Arg(50)->Unit(benchmark::kMicrosecond);

void BM_Dpll(benchmark::State& state) {
  Rng rng(13);
  CnfFormula f = RandomThreeSat(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(0) * 4), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveDpll(f));
  }
}
BENCHMARK(BM_Dpll)->Arg(20)->Arg(40)->Unit(benchmark::kMicrosecond);

void BM_Cdcl(benchmark::State& state) {
  Rng rng(13);
  CnfFormula f = RandomThreeSat(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(0) * 4), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveCdcl(f));
  }
}
BENCHMARK(BM_Cdcl)->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMicrosecond);

void BM_CdclPigeonhole(benchmark::State& state) {
  CnfFormula f = PigeonholeFormula(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveCdcl(f));
  }
}
BENCHMARK(BM_CdclPigeonhole)->Arg(4)->Arg(6)->Unit(benchmark::kMicrosecond);

void BM_BigIntMul(benchmark::State& state) {
  Rng rng(17);
  BigInt a = 1, b = 1;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    a = (a << 61) + BigInt::FromUint64(rng.Next());
    b = (b << 61) + BigInt::FromUint64(rng.Next());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(4)->Arg(16)->Arg(64);

void BM_BigIntDivMod(benchmark::State& state) {
  Rng rng(19);
  BigInt a = 1, b = 1;
  for (int i = 0; i < 32; ++i) a = (a << 61) + BigInt::FromUint64(rng.Next());
  for (int i = 0; i < 8; ++i) b = (b << 61) + BigInt::FromUint64(rng.Next());
  for (auto _ : state) {
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigIntDivMod);

// --- Telemetry-primitive overheads (docs/observability.md) ---
//
// The acceptance bar for the histogram layer: recording a latency sample
// must cost no more than ~2x a bare counter increment, and a disarmed
// trace check must be branch-predictable noise. Compare these three.

void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter& counter =
      obs::Registry::Get().GetCounter("micro.bench_counter");
  for (auto _ : state) {
    counter.Increment();
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& histogram =
      obs::Registry::Get().GetHistogram("micro.bench_histogram_us");
  uint64_t value = 0;
  for (auto _ : state) {
    histogram.Record(value);
    value = (value + 37) & 0xffff;  // walk the buckets, stay realistic
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramBucketIndex(benchmark::State& state) {
  uint64_t value = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::Histogram::BucketIndex(value));
    value = value * 2862933555777941757ULL + 3037000493ULL;
  }
}
BENCHMARK(BM_HistogramBucketIndex);

void BM_TraceSpanDisarmed(benchmark::State& state) {
  // No recorder armed: the whole TraceSpan lifetime is one relaxed flag
  // load on each end. This is what every annotated region pays in normal
  // (untraced) runs.
  for (auto _ : state) {
    obs::TraceSpan span("micro.disarmed", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSpanDisarmed);

// Console output as usual, plus one JSONL record per finished benchmark
// when a global run-log is attached.
class JsonlReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    obs::RunLog* log = obs::RunLog::Global();
    if (log == nullptr) return;
    for (const Run& run : reports) {
      obs::JsonValue rec = obs::JsonValue::Object();
      rec["type"] = "micro_benchmark";
      rec["benchmark"] = run.benchmark_name();
      rec["error"] = run.error_occurred;
      rec["iterations"] = static_cast<int64_t>(run.iterations);
      rec["real_time"] = run.GetAdjustedRealTime();
      rec["cpu_time"] = run.GetAdjustedCPUTime();
      rec["time_unit"] = benchmark::GetTimeUnitString(run.time_unit);
      log->Write(rec);
    }
  }
};

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "micro");
  // benchmark::Initialize aborts on flags it does not know, so only argv[0]
  // and --benchmark_* survive; everything else belongs to aqo::bench::Flags.
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  std::string quick_filter = "--benchmark_filter=BM_(LogDoubleAdd|BigIntMul)";
  bool has_filter = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      bench_argv.push_back(argv[i]);
      if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0)
        has_filter = true;
    }
  }
  if (flags.Quick() && !has_filter)
    bench_argv.push_back(quick_filter.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  aqo::JsonlReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
