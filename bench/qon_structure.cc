// Experiment E2 — Lemmas 5, 6, 7: structure of the f_N cost profile.
//
// Table 1: the per-join cost profile H_i along a clique-first witness —
// measured peak position vs the predicted (c - d/2) n, and the geometric
// decay rate beyond position cn (Lemma 5 promises at most 1/2 per step;
// the construction actually gives 1/alpha per missing edge).
// Table 2: tightness of the Lemma 7 edge bound on random graphs.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "graph/clique.h"
#include "graph/generators.h"
#include "qo/qon.h"
#include "reductions/clique_to_qon.h"
#include "util/stats.h"
#include "util/table.h"

namespace aqo {
namespace {

void ProfileTable(const bench::Flags& flags, Rng* rng) {
  TextTable table;
  table.SetTitle("E2a / Lemmas 5-6: H_i profile along clique-first witnesses");
  table.SetHeader({"n", "peak pred", "peak meas", "max decay lg(H_{i+1}/H_i)",
                   "C(Z)-K (lg)", "rising violations"});
  std::vector<int> ns =
      flags.Quick() ? std::vector<int>{90} : std::vector<int>{90, 150, 210};
  for (int n : ns) {
    double c = 2.0 / 3.0, d = 1.0 / 6.0;
    std::vector<int> planted;
    Graph g = CliqueClassGraph(n, 13, 1.0, static_cast<int>(c * n), rng,
                               &planted);
    QonGapParams params{.c = c, .d = d, .log2_alpha = 2.0};
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    JoinSequence witness = CliqueFirstWitness(g, planted);
    std::vector<LogDouble> h = QonJoinCosts(gap.instance, witness);

    int peak_measured = 0;
    for (size_t i = 1; i < h.size(); ++i) {
      if (h[i] > h[static_cast<size_t>(peak_measured)])
        peak_measured = static_cast<int>(i);
    }
    // Decay beyond cn (paper positions are 1-based; h[i-1] = H_i).
    double worst_decay = -1e300;
    int cn = static_cast<int>(c * n);
    for (size_t i = static_cast<size_t>(cn); i < h.size(); ++i) {
      worst_decay = std::max(worst_decay, h[i].Log2() - h[i - 1].Log2());
    }
    int rising_violations = 0;
    for (int i = 1; i < static_cast<int>(gap.PeakPosition()) - 1; ++i) {
      if (h[static_cast<size_t>(i)].Log2() <
          h[static_cast<size_t>(i) - 1].Log2() - 1e-9) {
        ++rising_violations;
      }
    }
    LogDouble cost = QonSequenceCost(gap.instance, witness);
    table.AddRow({std::to_string(n), FormatDouble(gap.PeakPosition(), 5),
                  std::to_string(peak_measured + 1),
                  FormatDouble(worst_decay, 4),
                  FormatDouble(cost.Log2() - gap.KBound().Log2(), 4),
                  std::to_string(rising_violations)});
  }
  table.Print(std::cout);
  std::cout << "Lemma 5 requires decay <= lg(1/2) = -1 beyond cn; Lemma 6\n"
               "places the peak at (c-d/2)n and the total below K.\n\n";
}

void Lemma7Table(const bench::Flags& flags, Rng* rng) {
  TextTable table;
  table.SetTitle("E2b / Lemma 7: |E| <= n(n-1)/2 - n + omega on random graphs");
  table.SetHeader({"n", "p", "trials", "violations", "mean slack",
                   "min slack"});
  int trials = flags.Quick() ? 20 : 100;
  for (int n : {10, 14}) {
    for (double p : {0.3, 0.6, 0.9}) {
      StatAccumulator slack;
      int violations = 0;
      for (int t = 0; t < trials; ++t) {
        Graph g = Gnp(n, p, rng);
        int omega = static_cast<int>(MaxClique(g).clique.size());
        int bound = n * (n - 1) / 2 - n + omega;
        if (g.NumEdges() > bound) ++violations;
        slack.Add(bound - g.NumEdges());
      }
      table.AddRow({std::to_string(n), FormatDouble(p, 2),
                    std::to_string(trials), std::to_string(violations),
                    FormatDouble(slack.mean(), 4),
                    FormatDouble(slack.min(), 4)});
    }
  }
  table.Print(std::cout);
  std::cout << "Violations must be zero; the bound is tight (min slack 0)\n"
               "for graphs that are one clique short of complete.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "qon_structure", /*default_seed=*/2);
  aqo::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 2)));
  aqo::ProfileTable(flags, &rng);
  aqo::Lemma7Table(flags, &rng);
  return 0;
}
