// Experiment E4 — Lemma 10: optimal memory allocation inside a pipeline.
//
// On an f_H instance, run the exact allocator on the witness prefix
// pipeline at lengths n/3 - 1, n/3, and n/3 + 1 and report the allocation
// shape (how many hash tables run at full size vs starved) and the cost —
// Lemma 10 predicts 0, 1, and 2 starved joins and costs
// O(N_{i-1} + N_k (+ starved outers)). A second table shows the pipeline
// decomposition DP recovering the Lemma 12 witness decomposition.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "qo/qoh.h"
#include "reductions/clique_to_qoh.h"
#include "util/table.h"

namespace aqo {
namespace {

void AllocationTable(const bench::Flags& flags) {
  TextTable table;
  table.SetTitle("E4a / Lemma 10: allocation shape vs pipeline length");
  table.SetHeader({"n", "pipeline joins", "full tables", "starved",
                   "lg pipeline cost", "lg (N_in + N_out)"});
  std::vector<int> ns =
      flags.Quick() ? std::vector<int>{12} : std::vector<int>{12, 18, 24};
  for (int n : ns) {
    Graph g = Graph::Complete(n);
    QohGapInstance gap = ReduceTwoThirdsCliqueToQoh(g, QohGapParams{});
    std::vector<int> clique;
    for (int v = 0; v < 2 * n / 3; ++v) clique.push_back(v);
    QohWitnessPlan witness = QohYesWitness(gap, clique);
    double t = gap.t.ToLinear();

    int third = n / 3;
    // Pipelines of length third-1, third, third+1 starting at join 2.
    for (int len : {third - 1, third, third + 1}) {
      int first = 2, last = 1 + len;
      PipelineCostResult r =
          OptimalPipelineCost(gap.instance, witness.sequence, first, last);
      if (!r.feasible) continue;
      int full = 0, starved = 0;
      for (double m : r.allocation) {
        if (m == t) {
          ++full;
        } else {
          ++starved;
        }
      }
      std::vector<LogDouble> prefix =
          QohPrefixSizes(gap.instance, witness.sequence);
      LogDouble in_out = prefix[static_cast<size_t>(first)] +
                         prefix[static_cast<size_t>(last) + 1];
      table.AddRow({std::to_string(n), std::to_string(len),
                    std::to_string(full), std::to_string(starved),
                    FormatDouble(r.cost.Log2(), 6),
                    FormatDouble(in_out.Log2(), 6)});
    }
  }
  table.Print(std::cout);
  std::cout << "Lemma 10: n/3-1 joins -> all full; n/3 -> one starved;\n"
               "n/3+1 -> two starved. Starved joins re-read their outer\n"
               "stream, which the cost column shows.\n\n";
}

void DecompositionTable(const bench::Flags& flags) {
  TextTable table;
  table.SetTitle("E4b / Lemma 12: decomposition DP vs the 5-pipeline witness");
  table.SetHeader({"n", "lg witness cost", "lg DP cost", "DP fragments",
                   "witness fragments"});
  std::vector<int> ns =
      flags.Quick() ? std::vector<int>{12} : std::vector<int>{12, 18, 24, 30};
  for (int n : ns) {
    Graph g = Graph::Complete(n);
    QohGapInstance gap = ReduceTwoThirdsCliqueToQoh(g, QohGapParams{});
    std::vector<int> clique;
    for (int v = 0; v < 2 * n / 3; ++v) clique.push_back(v);
    QohWitnessPlan witness = QohYesWitness(gap, clique);
    PipelineCostResult wit = DecompositionCost(
        gap.instance, witness.sequence, witness.decomposition);
    QohPlan dp = OptimalDecomposition(gap.instance, witness.sequence);
    table.AddRow({std::to_string(n),
                  FormatDouble(wit.feasible ? wit.cost.Log2() : -1, 6),
                  FormatDouble(dp.feasible ? dp.cost.Log2() : -1, 6),
                  std::to_string(dp.decomposition.NumFragments()),
                  std::to_string(witness.decomposition.NumFragments())});
  }
  table.Print(std::cout);
  std::cout << "The DP never does worse than the hand decomposition and\n"
               "typically matches it to within rounding.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "qoh_pipeline");
  aqo::AllocationTable(flags);
  aqo::DecompositionTable(flags);
  return 0;
}
