// Experiment E8 — Appendix A/B: NP-completeness of SQO-CP.
//
// Runs the full PARTITION -> SPPCS -> SQO-CP chain on random instances and
// reports (a) the YES/NO agreement of the three exactly-solved problems —
// which must be 100% for the many-one reductions to stand — and (b) the
// size blow-up (bit lengths) of the constructed numbers.

#include <iostream>

#include "bench/bench_common.h"
#include "sqo/partition.h"
#include "sqo/sppcs.h"
#include "sqo/star_query.h"
#include "util/stats.h"
#include "util/table.h"

namespace aqo {
namespace {

void Run(const bench::Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 8)));
  int trials = flags.Quick() ? 20 : 100;

  TextTable table;
  table.SetTitle("E8 / Appendix A+B: PARTITION -> SPPCS -> SQO-CP");
  table.SetHeader({"items", "trials", "yes rate", "sppcs agree", "sqo agree",
                   "max M bits", "mean time ms"});

  for (int n : {3, 4, 5}) {
    int agree_sppcs = 0, agree_sqo = 0, yes_count = 0, run = 0;
    int max_bits = 0;
    StatAccumulator time_ms;
    for (int t = 0; t < trials; ++t) {
      PartitionInstance part =
          RandomPartitionInstance(n, 6, rng.Bernoulli(0.5), &rng);
      // Appendix B's WLOG needs positive items.
      PartitionInstance cleaned;
      for (int64_t v : part.values) {
        if (v > 0) cleaned.values.push_back(v);
      }
      if (cleaned.values.empty() || cleaned.Total() < 4) continue;
      ++run;

      bench::WallTimer timer;
      bool partition_yes = SolvePartitionBrute(cleaned).has_value();
      SppcsInstance sppcs = ReducePartitionToSppcs(cleaned);
      bool sppcs_yes = SolveSppcsBrute(sppcs).yes;
      SppcsToSqoCpResult red = ReduceSppcsToSqoCp(sppcs);
      SqoCpResult sqo = SolveSqoCpExact(red.instance);
      time_ms.Add(timer.Millis());

      yes_count += partition_yes;
      agree_sppcs += partition_yes == sppcs_yes;
      agree_sqo += partition_yes == sqo.within_budget;
      max_bits = std::max(max_bits, red.instance.budget.BitLength());
    }
    table.AddRow({std::to_string(n), std::to_string(run),
                  FormatDouble(100.0 * yes_count / std::max(run, 1), 3) + "%",
                  FormatDouble(100.0 * agree_sppcs / std::max(run, 1), 4) + "%",
                  FormatDouble(100.0 * agree_sqo / std::max(run, 1), 4) + "%",
                  std::to_string(max_bits),
                  FormatDouble(time_ms.mean(), 3)});
  }
  table.Print(std::cout);
  std::cout << "Both 'agree' columns must read 100%: the star-query\n"
               "optimizer decides PARTITION through the reduction chain.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "sqocp", /*default_seed=*/8);
  aqo::Run(flags);
  return 0;
}
