// Experiment E5 — Theorem 16: the QO_N gap on sparse query graphs.
//
// Sweep the sparsity exponent tau (and both ends of the edge-budget range)
// for f_{N,e}: the table reports the realized edge count e(m), the
// YES-side witness cost against K * slack, and the NO-side floor — the
// gap persists at every tau exactly as Section 6.1 claims.

#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "qo/qon.h"
#include "reductions/sparse.h"
#include "util/table.h"

namespace aqo {
namespace {

void Run(const bench::Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 5)));
  int n = static_cast<int>(flags.GetInt("n", 8));
  int k = 3;
  int m = n * n * n;

  TextTable table;
  table.SetTitle("E5 / Theorem 16: sparse QO_N gap under f_{N,e} (m = n^3)");
  table.SetHeader({"tau", "budget kind", "e(m)", "wit-K (lg)",
                   "slack (lg)", "floor-K (lg)", "gap ok"});

  std::vector<double> taus =
      flags.Quick() ? std::vector<double>{0.7}
                     : std::vector<double>{0.7, 0.75, 0.85};  // tau >= 2/k for the
                                                           // sparse end to absorb E1
  for (double tau : taus) {
    for (bool dense : {false, true}) {
      // Both ends need Theta(m^tau) to absorb the O(n^2) V1 structure.
      if (std::pow(static_cast<double>(m), tau) <
          static_cast<double>(n) * n) {
        continue;
      }
      std::vector<int> planted;
      Graph g1 = CliqueClassGraph(n, 2, 1.0, 3 * n / 4, &rng, &planted);
      SparseQonParams params;
      params.base = {.c = 0.75, .d = 0.5, .log2_alpha = 60000.0};
      params.k = k;
      params.edge_budget = dense ? DenseEdgeBudget(m, tau)
                                 : SparseEdgeBudget(m, tau);
      SparseQonGapInstance gap = ReduceCliqueToSparseQon(g1, params, &rng);

      JoinSequence witness = SparseQonWitness(gap, g1, planted);
      double wit = QonSequenceCost(gap.instance, witness).Log2();
      double k_bound = gap.KBound().Log2();
      double slack = gap.AuxiliarySlack().Log2();
      double floor = gap.NoSideBound().Log2();
      bool gap_ok = floor > wit && floor - k_bound > slack;
      table.AddRow({FormatDouble(tau, 3), dense ? "dense end" : "sparse end",
                    std::to_string(gap.instance.graph().NumEdges()),
                    FormatDouble(wit - k_bound, 4), FormatDouble(slack, 5),
                    FormatDouble(floor - k_bound, 5),
                    gap_ok ? "yes" : "NO"});
    }
  }
  table.Print(std::cout);
  std::cout << "'gap ok' requires the NO floor to clear both the witness\n"
               "cost and the auxiliary slack: the hardness gap survives\n"
               "every prescribed edge budget.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "sparse_qon", /*default_seed=*/5);
  aqo::Run(flags);
  return 0;
}
