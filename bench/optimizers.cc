// Experiment E7 — the paper's headline implication: no polynomial-time
// algorithm can be polylog-competitive on QO_N.
//
// Table 1: on random query graphs, polynomial heuristics stay within small
// factors of the exact (DP) optimum — the "justifiable optimism" of the
// introduction.
// Table 2: on f_N NO-side gap instances, the same heuristics' *certified*
// competitive ratios (heuristic cost over the certified floor, which
// bounds their ratio to the unknown optimum from below... conservatively:
// ratio to the YES-side K threshold) explode as alpha^{Theta(n)}: exactly
// the behaviour Theorem 9 proves unavoidable.
//
// The heuristic columns come from the optimizer registry: --optimizers=
// selects the subset (unknown names are a hard error), knob flags like
// --restarts= / --sa-iterations= override the per-table defaults. With
// --plan-cache-mb=N the bench appends a duplicate-heavy plan-cache
// demonstration over relabeled random workloads.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "obs/runlog.h"
#include "qo/optimizers.h"
#include "reductions/clique_to_qon.h"
#include "util/stats.h"
#include "util/table.h"

namespace aqo {
namespace {

obs::InstanceShape ShapeOf(const QonInstance& inst, const std::string& kind,
                           const std::string& side, const std::string& source) {
  return obs::InstanceShape{.family = "qon",
                            .kind = kind,
                            .side = side,
                            .source = source,
                            .n = inst.NumRelations(),
                            .edges = inst.graph().NumEdges()};
}

QonInstance RandomWorkload(int n, double p, Rng* rng) {
  Graph g = Gnp(n, p, rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(LogDouble::FromLinear(
        static_cast<double>(rng->UniformInt(10, 1000000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.0001, 0.5)));
  }
  return inst;
}

OptimizerResult RunRegistered(const std::string& name, const QonInstance& inst,
                              const OptimizerOptions& knobs, Rng* rng,
                              const obs::InstanceShape& shape) {
  return obs::InstrumentedRun("qon." + name, shape, [&] {
    return OptimizerRegistry::Qon().Run(name, inst, knobs, rng);
  });
}

void RandomWorkloadTable(const bench::Flags& flags,
                         const bench::SweepRunner& sweep,
                         const std::vector<std::string>& names) {
  OptimizerOptions defaults;
  defaults.restarts = 4;
  defaults.sa.iterations = 4000;
  defaults.sa.restarts = 2;
  defaults.samples = 200;
  OptimizerOptions knobs = bench::ReadQonKnobs(flags, defaults);

  TextTable table;
  table.SetTitle("E7a: competitive ratios on random workloads (vs DP optimum)");
  std::vector<std::string> header = {"n", "p", "trials"};
  for (const std::string& name : names) {
    header.push_back(name + " p50/p95 (lg ratio)");
  }
  table.SetHeader(header);
  int trials = flags.Quick() ? 5 : 25;
  const std::vector<int> ns = {10, 14};
  const std::vector<double> ps = {0.4, 0.8};
  // One cell per (n, p); each cell's `trials` instances draw from the
  // cell's own Rng stream, so the table cannot depend on --threads.
  auto cell = [&](size_t index, Rng* rng) -> std::vector<std::string> {
    int n = ns[index / ps.size()];
    double p = ps[index % ps.size()];
    std::vector<SampleSet> ratios(names.size());
    for (int t = 0; t < trials; ++t) {
      QonInstance inst = RandomWorkload(n, p, rng);
      obs::InstanceShape shape = ShapeOf(inst, "gnp_random", "", "");
      OptimizerResult opt = obs::InstrumentedRun(
          "qon.dp", shape, [&] { return DpQonOptimizer(inst); });
      if (!opt.feasible) continue;
      double base = opt.cost.Log2();
      for (size_t a = 0; a < names.size(); ++a) {
        OptimizerResult r = RunRegistered(names[a], inst, knobs, rng, shape);
        if (r.feasible) ratios[a].Add(r.cost.Log2() - base);
      }
    }
    std::vector<std::string> row = {std::to_string(n), FormatDouble(p, 2),
                                    std::to_string(trials)};
    for (const SampleSet& s : ratios) {
      row.push_back(FormatDouble(s.Percentile(50), 3) + "/" +
                    FormatDouble(s.Percentile(95), 3));
    }
    return row;
  };
  for (const std::vector<std::string>& row :
       sweep.Map<std::vector<std::string>>(ns.size() * ps.size(), cell)) {
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "lg-ratio 0 = optimal; heuristics are near-optimal on\n"
               "benign random workloads.\n\n";
}

void GapInstanceTable(const bench::Flags& flags,
                      const bench::SweepRunner& sweep,
                      const std::vector<std::string>& names) {
  OptimizerOptions defaults;
  defaults.restarts = 2;
  defaults.sa.iterations = flags.Quick() ? 2000 : 10000;
  defaults.samples = 200;
  OptimizerOptions knobs = bench::ReadQonKnobs(flags, defaults);

  TextTable table;
  table.SetTitle(
      "E7b: the same heuristics on f_N NO instances (ratios vs YES-side K)");
  std::vector<std::string> header = {"n", "lg alpha", "floor/K (a units)"};
  for (const std::string& name : names) header.push_back(name + "/K");
  table.SetHeader(header);
  std::vector<int> ns =
      flags.Quick() ? std::vector<int>{30} : std::vector<int>{30, 60, 90};
  auto cell = [&](size_t index, Rng* rng) -> std::vector<std::string> {
    int n = ns[index];
    double log2_alpha = 8.0;
    QonGapParams params{.c = 2.0 / 3.0, .d = 1.0 / 3.0,
                        .log2_alpha = log2_alpha};
    int s = n / 3;  // omega of the multipartite NO instance
    Graph g = CompleteMultipartite(n, s);
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    double k = gap.KBound().Log2();
    auto units = [&](double lg) { return FormatDouble((lg - k) / log2_alpha, 4); };
    obs::InstanceShape shape = ShapeOf(gap.instance, "gap", "no", "f_N");
    std::vector<std::string> row = {std::to_string(n),
                                    FormatDouble(log2_alpha, 3),
                                    units(gap.CertifiedLowerBound(s).Log2())};
    for (const std::string& name : names) {
      OptimizerResult r = RunRegistered(name, gap.instance, knobs, rng, shape);
      row.push_back(units(r.cost.Log2()));
    }
    return row;
  };
  for (const std::vector<std::string>& row :
       sweep.Map<std::vector<std::string>>(ns.size(), cell)) {
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "Every polynomial heuristic lands a Theta(n) number of alpha\n"
               "powers above the YES threshold K: on gap instances the\n"
               "competitive ratio is 2^{Theta(log^{1-d} K)}, not polylog.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "optimizers", /*default_seed=*/7);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  std::vector<std::string> names =
      aqo::bench::SelectedQonOptimizersOrDie(flags, "greedy,ii,sa,random");
  aqo::ThreadPool pool(flags.Threads());
  // The two tables use disjoint stream ranges of the same base seed, so
  // adding cells to E7a can never perturb E7b's draws.
  aqo::bench::SweepRunner e7a(&pool, aqo::MixSeed(seed, 1));
  aqo::bench::SweepRunner e7b(&pool, aqo::MixSeed(seed, 2));
  aqo::RandomWorkloadTable(flags, e7a, names);
  aqo::GapInstanceTable(flags, e7b, names);

  // Duplicate-heavy plan-cache demonstration (--plan-cache-mb=N enables).
  // All cache flags are read unconditionally so none can warn as unread.
  auto cache = aqo::bench::PlanCacheFromFlags(flags);
  int dup_factor = static_cast<int>(flags.GetInt("dup-factor", 3));
  std::string cache_opt = flags.GetString("cache-optimizer", "dp");
  if (cache != nullptr) {
    const aqo::QonOptimizerEntry* entry =
        aqo::OptimizerRegistry::Qon().Find(cache_opt);
    if (entry == nullptr) {
      std::cerr << "error: unknown QO_N optimizer '" << cache_opt
                << "' in --cache-optimizer=\n";
      return 2;
    }
    std::vector<aqo::QonInstance> bases;
    aqo::Rng base_rng(aqo::MixSeed(seed, 3));
    int num_bases = flags.Quick() ? 4 : 8;
    for (int i = 0; i < num_bases; ++i) {
      bases.push_back(aqo::RandomWorkload(12, 0.5, &base_rng));
    }
    aqo::BatchOptions batch;
    batch.optimizer = entry->name;
    batch.qon = aqo::bench::ReadQonKnobs(flags);
    batch.seed = seed;
    std::cout << "\n";
    aqo::bench::RunQonPlanCacheDemo(cache.get(), &pool, batch, bases,
                                    dup_factor);
  }
  return 0;
}
