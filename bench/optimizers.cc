// Experiment E7 — the paper's headline implication: no polynomial-time
// algorithm can be polylog-competitive on QO_N.
//
// Table 1: on random query graphs, polynomial heuristics stay within small
// factors of the exact (DP) optimum — the "justifiable optimism" of the
// introduction.
// Table 2: on f_N NO-side gap instances, the same heuristics' *certified*
// competitive ratios (heuristic cost over the certified floor, which
// bounds their ratio to the unknown optimum from below... conservatively:
// ratio to the YES-side K threshold) explode as alpha^{Theta(n)}: exactly
// the behaviour Theorem 9 proves unavoidable.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "obs/runlog.h"
#include "qo/optimizers.h"
#include "reductions/clique_to_qon.h"
#include "util/stats.h"
#include "util/table.h"

namespace aqo {
namespace {

obs::InstanceShape ShapeOf(const QonInstance& inst, const std::string& kind,
                           const std::string& side, const std::string& source) {
  return obs::InstanceShape{.family = "qon",
                            .kind = kind,
                            .side = side,
                            .source = source,
                            .n = inst.NumRelations(),
                            .edges = inst.graph().NumEdges()};
}

QonInstance RandomWorkload(int n, double p, Rng* rng) {
  Graph g = Gnp(n, p, rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(LogDouble::FromLinear(
        static_cast<double>(rng->UniformInt(10, 1000000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.0001, 0.5)));
  }
  return inst;
}

void RandomWorkloadTable(const bench::Flags& flags,
                         const bench::SweepRunner& sweep) {
  TextTable table;
  table.SetTitle("E7a: competitive ratios on random workloads (vs DP optimum)");
  table.SetHeader({"n", "p", "trials", "greedy p50/p95 (lg ratio)",
                   "II p50/p95", "SA p50/p95", "random p50/p95"});
  int trials = flags.Quick() ? 5 : 25;
  const std::vector<int> ns = {10, 14};
  const std::vector<double> ps = {0.4, 0.8};
  // One cell per (n, p); each cell's `trials` instances draw from the
  // cell's own Rng stream, so the table cannot depend on --threads.
  auto cell = [&](size_t index, Rng* rng) -> std::vector<std::string> {
    int n = ns[index / ps.size()];
    double p = ps[index % ps.size()];
    SampleSet greedy_r, ii_r, sa_r, rnd_r;
    for (int t = 0; t < trials; ++t) {
      QonInstance inst = RandomWorkload(n, p, rng);
      obs::InstanceShape shape = ShapeOf(inst, "gnp_random", "", "");
      OptimizerResult opt = obs::InstrumentedRun(
          "qon.dp", shape, [&] { return DpQonOptimizer(inst); });
      if (!opt.feasible) continue;
      double base = opt.cost.Log2();
      greedy_r.Add(obs::InstrumentedRun("qon.greedy", shape, [&] {
                     return GreedyQonOptimizer(inst);
                   }).cost.Log2() -
                   base);
      ii_r.Add(obs::InstrumentedRun("qon.ii", shape, [&] {
                 return IterativeImprovementOptimizer(inst, rng, 4);
               }).cost.Log2() -
               base);
      AnnealingOptions sa;
      sa.iterations = 4000;
      sa.restarts = 2;
      sa_r.Add(obs::InstrumentedRun("qon.sa", shape, [&] {
                 return SimulatedAnnealingOptimizer(inst, rng, sa);
               }).cost.Log2() -
               base);
      rnd_r.Add(obs::InstrumentedRun("qon.random", shape, [&] {
                  return RandomSamplingOptimizer(inst, rng, 200);
                }).cost.Log2() -
                base);
    }
    auto fmt = [](const SampleSet& s) {
      return FormatDouble(s.Percentile(50), 3) + "/" +
             FormatDouble(s.Percentile(95), 3);
    };
    return {std::to_string(n), FormatDouble(p, 2), std::to_string(trials),
            fmt(greedy_r), fmt(ii_r), fmt(sa_r), fmt(rnd_r)};
  };
  for (const std::vector<std::string>& row :
       sweep.Map<std::vector<std::string>>(ns.size() * ps.size(), cell)) {
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "lg-ratio 0 = optimal; heuristics are near-optimal on\n"
               "benign random workloads.\n\n";
}

void GapInstanceTable(const bench::Flags& flags,
                      const bench::SweepRunner& sweep) {
  TextTable table;
  table.SetTitle(
      "E7b: the same heuristics on f_N NO instances (ratios vs YES-side K)");
  table.SetHeader({"n", "lg alpha", "floor/K (a units)", "greedy/K (a units)",
                   "II/K", "SA/K", "random/K"});
  std::vector<int> ns =
      flags.Quick() ? std::vector<int>{30} : std::vector<int>{30, 60, 90};
  auto cell = [&](size_t index, Rng* rng) -> std::vector<std::string> {
    int n = ns[index];
    double log2_alpha = 8.0;
    QonGapParams params{.c = 2.0 / 3.0, .d = 1.0 / 3.0,
                        .log2_alpha = log2_alpha};
    int s = n / 3;  // omega of the multipartite NO instance
    Graph g = CompleteMultipartite(n, s);
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    double k = gap.KBound().Log2();
    auto units = [&](double lg) { return FormatDouble((lg - k) / log2_alpha, 4); };
    OptimizerResult greedy = GreedyQonOptimizer(gap.instance);
    OptimizerResult ii = IterativeImprovementOptimizer(gap.instance, rng, 2);
    AnnealingOptions sa_opts;
    sa_opts.iterations = flags.Quick() ? 2000 : 10000;
    OptimizerResult sa = SimulatedAnnealingOptimizer(gap.instance, rng, sa_opts);
    OptimizerResult rnd = RandomSamplingOptimizer(gap.instance, rng, 200);
    return {std::to_string(n), FormatDouble(log2_alpha, 3),
            units(gap.CertifiedLowerBound(s).Log2()),
            units(greedy.cost.Log2()), units(ii.cost.Log2()),
            units(sa.cost.Log2()), units(rnd.cost.Log2())};
  };
  for (const std::vector<std::string>& row :
       sweep.Map<std::vector<std::string>>(ns.size(), cell)) {
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "Every polynomial heuristic lands a Theta(n) number of alpha\n"
               "powers above the YES threshold K: on gap instances the\n"
               "competitive ratio is 2^{Theta(log^{1-d} K)}, not polylog.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "optimizers", /*default_seed=*/7);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  aqo::ThreadPool pool(flags.Threads());
  // The two tables use disjoint stream ranges of the same base seed, so
  // adding cells to E7a can never perturb E7b's draws.
  aqo::bench::SweepRunner e7a(&pool, aqo::MixSeed(seed, 1));
  aqo::bench::SweepRunner e7b(&pool, aqo::MixSeed(seed, 2));
  aqo::RandomWorkloadTable(flags, e7a);
  aqo::GapInstanceTable(flags, e7b);
  return 0;
}
