// Experiment E1 — Theorem 9: the QO_N approximation gap.
//
// For each n, build f_N instances from (a) YES-side CLIQUE-class graphs
// with a planted clique of size cn, and (b) NO-side complete s-partite
// graphs with omega exactly s = (c-d)n (provably, without a clique
// solver). Report the YES witness/heuristic costs against K_{c,d}(alpha,n)
// and the NO certified floor and heuristic costs, plus the gap exponent
// measured in powers of alpha against the paper's (d/2)n - 1.
//
// The NO-side heuristic pool comes from the optimizer registry:
// --optimizers= selects it (default greedy,ii; unknown names are a hard
// error). With --plan-cache-mb=N the bench appends a duplicate-heavy
// plan-cache demonstration over relabeled NO instances — the workload the
// canonical-fingerprint cache is built for.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/runlog.h"
#include "obs/trace.h"
#include "qo/optimizers.h"
#include "qo/workloads.h"
#include "reductions/clique_to_qon.h"
#include "util/table.h"

namespace aqo {
namespace {

obs::InstanceShape ShapeOf(const QonInstance& inst, const std::string& kind,
                           const std::string& side) {
  return obs::InstanceShape{.family = "qon",
                            .kind = kind,
                            .side = side,
                            .source = "f_N",
                            .n = inst.NumRelations(),
                            .edges = inst.graph().NumEdges()};
}

constexpr double kC = 2.0 / 3.0;
constexpr double kD = 1.0 / 3.0;

std::vector<int> GridNs(const bench::Flags& flags) {
  // n >= 30/d = 90 is the paper regime.
  return flags.Quick() ? std::vector<int>{60, 90}
                       : std::vector<int>{60, 90, 120, 150};
}

// NO-side instance for a grid point: complete s-partite with omega
// exactly s = (c-d) n. Deterministic — no rng involved.
QonGapInstance NoInstance(int n, double log2_alpha) {
  QonGapParams params{.c = kC, .d = kD, .log2_alpha = log2_alpha};
  int s = static_cast<int>((kC - kD) * n);
  return ReduceCliqueToQon(CompleteMultipartite(n, s), params);
}

void Run(const bench::Flags& flags, ThreadPool* pool,
         const std::vector<std::string>& names,
         const OptimizerOptions& knobs) {
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  std::vector<int> ns = GridNs(flags);
  std::vector<double> alphas = {2.0, 8.0};  // log2(alpha)

  TextTable table;
  table.SetTitle(
      "E1 / Theorem 9: QO_N YES/NO gap under f_N (costs as log2)");
  table.SetHeader({"n", "lg a", "lg K", "YES wit-K", "YES greedy-K",
                   "NO floor-K", "NO best-K", "gap (a units)",
                   "paper (d/2)n-1"});

  // One grid cell per (n, alpha); each cell draws from its own Rng stream
  // and cells fan across the pool, so the table and run-log are identical
  // for every --threads value.
  bench::SweepRunner sweep(pool, seed);
  auto cell = [&](size_t index, Rng* rng) -> std::vector<std::string> {
    int n = ns[index / alphas.size()];
    double log2_alpha = alphas[index % alphas.size()];
    // Whole-cell latency (instance build + every optimizer run). A
    // TraceSpan, not an obs::Span: a profile span here would take over
    // the thread's profile tree and empty the nested runs' "spans".
    static obs::Histogram& cell_us =
        obs::Registry::Get().GetHistogram("qon_gap.cell_us");
    obs::ScopedLatencyTimer cell_timer(cell_us);
    obs::TraceSpan cell_slice("qon_gap.cell", "bench");
    cell_slice.Annotate("n", static_cast<uint64_t>(n));
    QonGapParams params{.c = kC, .d = kD, .log2_alpha = log2_alpha};

    // YES instance.
    std::vector<int> planted;
    int clique = static_cast<int>(kC * n);
    Graph yes_graph = CliqueClassGraph(n, 13, 1.0, clique, rng, &planted);
    QonGapInstance yes = ReduceCliqueToQon(yes_graph, params);
    JoinSequence witness = CliqueFirstWitnessGreedy(yes.instance, planted);
    double witness_cost = QonSequenceCost(yes.instance, witness).Log2();
    OptimizerResult yes_greedy = obs::InstrumentedRun(
        "qon.greedy", ShapeOf(yes.instance, "clique_yes", "yes"),
        [&] { return GreedyQonOptimizer(yes.instance); });

    // NO instance: best plan any selected registry heuristic finds.
    QonGapInstance no = NoInstance(n, log2_alpha);
    double floor = no.CertifiedLowerBound(
        static_cast<int>((kC - kD) * n)).Log2();
    obs::InstanceShape no_shape = ShapeOf(no.instance, "multipartite_no", "no");
    double no_best = 0.0;
    bool have_best = false;
    for (const std::string& name : names) {
      OptimizerResult r =
          obs::InstrumentedRun("qon." + name, no_shape, [&] {
            return OptimizerRegistry::Qon().Run(name, no.instance, knobs, rng);
          });
      if (!r.feasible) continue;
      double lg = r.cost.Log2();
      no_best = have_best ? std::min(no_best, lg) : lg;
      have_best = true;
    }

    double k = yes.KBound().Log2();
    double k_no = no.KBound().Log2();
    return {std::to_string(n), FormatDouble(log2_alpha, 3),
            FormatDouble(k, 6), FormatDouble(witness_cost - k, 4),
            FormatDouble(yes_greedy.cost.Log2() - k, 4),
            FormatDouble(floor - k_no, 4), FormatDouble(no_best - k_no, 4),
            FormatDouble((no_best - k_no - (witness_cost - k)) / log2_alpha,
                         4),
            FormatDouble(kD / 2.0 * n - 1.0, 4)};
  };
  for (const std::vector<std::string>& row :
       sweep.Map<std::vector<std::string>>(ns.size() * alphas.size(), cell)) {
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "Reading: YES costs sit at/below K while every NO plan found\n"
               "sits a growing power of alpha above it; the measured gap\n"
               "tracks the paper's (d/2)n - 1 exponent.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "qon_gap", /*default_seed=*/1);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  std::vector<std::string> names =
      aqo::bench::SelectedQonOptimizersOrDie(flags, "greedy,ii");
  aqo::OptimizerOptions defaults;
  defaults.restarts = 2;
  aqo::OptimizerOptions knobs = aqo::bench::ReadQonKnobs(flags, defaults);
  aqo::ThreadPool pool(flags.Threads());
  aqo::Run(flags, &pool, names, knobs);

  // Duplicate-heavy plan-cache demonstration (--plan-cache-mb=N enables):
  // each base instance appears --dup-factor times under random
  // relabelings, so (dup_factor-1)/dup_factor of the batch is duplicate
  // work under canonical fingerprinting. The bases are *random* workloads
  // (qo/workloads.h), not the gap instances: the gap constructions are
  // vertex-transitive by design, which is exactly the symmetric corner
  // where 1-WL canonicalization legitimately misses relabeled duplicates
  // (qo/fingerprint.h) — whereas production-like instances with generic
  // statistics canonicalize exactly. All cache flags are read
  // unconditionally so none can warn as unread.
  auto cache = aqo::bench::PlanCacheFromFlags(flags);
  int dup_factor = static_cast<int>(flags.GetInt("dup-factor", 3));
  std::string cache_opt = flags.GetString("cache-optimizer", "greedy");
  if (cache != nullptr) {
    const aqo::QonOptimizerEntry* entry =
        aqo::OptimizerRegistry::Qon().Find(cache_opt);
    if (entry == nullptr) {
      std::cerr << "error: unknown QO_N optimizer '" << cache_opt
                << "' in --cache-optimizer=\n";
      return 2;
    }
    std::vector<aqo::QonInstance> bases;
    aqo::Rng base_rng(aqo::MixSeed(seed, 0xcafe));
    int num_bases = flags.Quick() ? 4 : 8;
    for (int i = 0; i < num_bases; ++i) {
      int n = static_cast<int>(base_rng.UniformInt(20, 40));
      bases.push_back(aqo::RandomQonWorkload(n, &base_rng));
    }
    aqo::BatchOptions batch;
    batch.optimizer = entry->name;
    batch.qon = knobs;
    batch.seed = seed;
    std::cout << "\n";
    aqo::bench::RunQonPlanCacheDemo(cache.get(), &pool, batch, bases,
                                    dup_factor);
  }
  return 0;
}
