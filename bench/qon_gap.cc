// Experiment E1 — Theorem 9: the QO_N approximation gap.
//
// For each n, build f_N instances from (a) YES-side CLIQUE-class graphs
// with a planted clique of size cn, and (b) NO-side complete s-partite
// graphs with omega exactly s = (c-d)n (provably, without a clique
// solver). Report the YES witness/heuristic costs against K_{c,d}(alpha,n)
// and the NO certified floor and heuristic costs, plus the gap exponent
// measured in powers of alpha against the paper's (d/2)n - 1.

#include <iostream>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "obs/runlog.h"
#include "qo/optimizers.h"
#include "reductions/clique_to_qon.h"
#include "util/table.h"

namespace aqo {
namespace {

obs::InstanceShape ShapeOf(const QonInstance& inst, const std::string& kind,
                           const std::string& side) {
  return obs::InstanceShape{.family = "qon",
                            .kind = kind,
                            .side = side,
                            .source = "f_N",
                            .n = inst.NumRelations(),
                            .edges = inst.graph().NumEdges()};
}

void Run(const bench::Flags& flags) {
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  double c = 2.0 / 3.0;
  double d = 1.0 / 3.0;
  std::vector<int> ns = flags.Quick() ? std::vector<int>{60, 90}
                                      : std::vector<int>{60, 90, 120, 150};  // n >= 30/d = 90 is the paper regime
  std::vector<double> alphas = {2.0, 8.0};  // log2(alpha)

  TextTable table;
  table.SetTitle(
      "E1 / Theorem 9: QO_N YES/NO gap under f_N (costs as log2)");
  table.SetHeader({"n", "lg a", "lg K", "YES wit-K", "YES greedy-K",
                   "NO floor-K", "NO best-K", "gap (a units)",
                   "paper (d/2)n-1"});

  // One grid cell per (n, alpha); each cell draws from its own Rng stream
  // and cells fan across the pool, so the table and run-log are identical
  // for every --threads value.
  ThreadPool pool(flags.Threads());
  bench::SweepRunner sweep(&pool, seed);
  auto cell = [&](size_t index, Rng* rng) -> std::vector<std::string> {
    int n = ns[index / alphas.size()];
    double log2_alpha = alphas[index % alphas.size()];
    QonGapParams params{.c = c, .d = d, .log2_alpha = log2_alpha};

    // YES instance.
    std::vector<int> planted;
    int clique = static_cast<int>(c * n);
    Graph yes_graph = CliqueClassGraph(n, 13, 1.0, clique, rng, &planted);
    QonGapInstance yes = ReduceCliqueToQon(yes_graph, params);
    JoinSequence witness = CliqueFirstWitnessGreedy(yes.instance, planted);
    double witness_cost = QonSequenceCost(yes.instance, witness).Log2();
    OptimizerResult yes_greedy = obs::InstrumentedRun(
        "qon.greedy", ShapeOf(yes.instance, "clique_yes", "yes"),
        [&] { return GreedyQonOptimizer(yes.instance); });

    // NO instance: omega = (c-d) n exactly.
    int s = static_cast<int>((c - d) * n);
    Graph no_graph = CompleteMultipartite(n, s);
    QonGapInstance no = ReduceCliqueToQon(no_graph, params);
    double floor = no.CertifiedLowerBound(s).Log2();
    OptimizerResult no_greedy = obs::InstrumentedRun(
        "qon.greedy", ShapeOf(no.instance, "multipartite_no", "no"),
        [&] { return GreedyQonOptimizer(no.instance); });
    OptimizerResult no_ii = obs::InstrumentedRun(
        "qon.ii", ShapeOf(no.instance, "multipartite_no", "no"),
        [&] { return IterativeImprovementOptimizer(no.instance, rng, 2); });
    double no_best = std::min(no_greedy.cost.Log2(), no_ii.cost.Log2());

    double k = yes.KBound().Log2();
    double k_no = no.KBound().Log2();
    return {std::to_string(n), FormatDouble(log2_alpha, 3),
            FormatDouble(k, 6), FormatDouble(witness_cost - k, 4),
            FormatDouble(yes_greedy.cost.Log2() - k, 4),
            FormatDouble(floor - k_no, 4), FormatDouble(no_best - k_no, 4),
            FormatDouble((no_best - k_no - (witness_cost - k)) / log2_alpha,
                         4),
            FormatDouble(d / 2.0 * n - 1.0, 4)};
  };
  for (const std::vector<std::string>& row :
       sweep.Map<std::vector<std::string>>(ns.size() * alphas.size(), cell)) {
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "Reading: YES costs sit at/below K while every NO plan found\n"
               "sits a growing power of alpha above it; the measured gap\n"
               "tracks the paper's (d/2)n - 1 exponent.\n";
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) {
  aqo::bench::Flags flags(argc, argv);
  aqo::bench::RunLogSession session(flags, "qon_gap", /*default_seed=*/1);
  aqo::Run(flags);
  return 0;
}
