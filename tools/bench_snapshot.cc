// Seeded perf snapshot for the incremental cost evaluators: measures
// ns/evaluation of the naive cost functions (QonSequenceCost /
// OptimalDecomposition) against QonCostEvaluator / QohCostEvaluator on
// full-evaluation and swap-neighborhood workloads, and writes the results
// (with speedup ratios) as JSON.
//
// Regenerate the committed snapshot from a Release build:
//
//   cmake -S . -B build-release -DCMAKE_BUILD_TYPE=Release
//   cmake --build build-release -j --target bench_snapshot
//   ./build-release/tools/bench_snapshot --out=BENCH_COST_EVAL.json
//
// Workloads are fully seeded (instances, start sequences, and the swap
// schedule), so reruns on the same machine are directly comparable; only
// the timings themselves vary. The swap schedule is the one local search
// actually generates: uniform random position pairs (the SA move) applied
// to the current sequence, never undone — each candidate differs from its
// predecessor by one transposition.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "qo/cost_eval.h"
#include "qo/qoh.h"
#include "qo/qon.h"
#include "util/random.h"

namespace aqo {
namespace {

constexpr int kSizes[] = {10, 30, 100, 300};

QonInstance MakeQonInstance(int n, uint64_t seed) {
  Rng rng(seed);
  Graph g = Gnp(n, 0.5, &rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(
        LogDouble::FromLinear(static_cast<double>(rng.UniformInt(2, 100000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng.UniformReal(0.001, 1.0)));
  }
  return inst;
}

QohInstance MakeQohInstance(int n, uint64_t seed) {
  Rng rng(seed);
  Graph g = Gnp(n, 0.6, &rng);
  std::vector<LogDouble> sizes(static_cast<size_t>(n),
                               LogDouble::FromLinear(4096.0));
  QohInstance inst(g, std::move(sizes), 8192.0);
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, LogDouble::FromLinear(0.25));
  }
  return inst;
}

std::vector<std::pair<int, int>> SwapSchedule(int n, int count,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> swaps;
  swaps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    swaps.emplace_back(static_cast<int>(rng.UniformInt(0, n - 1)),
                       static_cast<int>(rng.UniformInt(0, n - 1)));
  }
  return swaps;
}

// Runs `body(iteration)` until both the minimum rep count and the minimum
// wall time are met; returns ns per iteration. The body's per-iteration
// work must not depend on how many iterations ran before it (the swap
// workloads walk a precomputed cyclic schedule).
template <typename Body>
double TimeNs(int min_reps, double min_seconds, Body&& body) {
  using Clock = std::chrono::steady_clock;
  long iters = 0;
  Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    for (int r = 0; r < min_reps; ++r) body(iters++);
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return elapsed * 1e9 / static_cast<double>(iters);
}

struct Row {
  const char* family;
  const char* workload;
  int n;
  double naive_ns;
  double eval_ns;
  double speedup() const { return naive_ns / eval_ns; }
};

// Accumulates costs so the optimizer cannot discard the evaluations.
LogDouble g_sink;

Row MeasureQonFull(int n, double min_seconds) {
  QonInstance inst = MakeQonInstance(n, 42);
  QonCostEvaluator eval(inst);
  // A cyclic pool of start sequences so "full" really is full every time.
  Rng rng(7);
  std::vector<JoinSequence> pool(16, IdentitySequence(n));
  for (JoinSequence& seq : pool) rng.Shuffle(&seq);
  double naive = TimeNs(64, min_seconds, [&](long it) {
    g_sink += QonSequenceCost(inst, pool[static_cast<size_t>(it) % 16]);
  });
  double fast = TimeNs(64, min_seconds, [&](long it) {
    // Forces a recompute from position 0: a full, but zero-allocation,
    // evaluation through the evaluator.
    g_sink += eval.CostWithPrefix(pool[static_cast<size_t>(it) % 16], 0);
  });
  return {"qon", "full", n, naive, fast};
}

Row MeasureQonSwap(int n, double min_seconds) {
  QonInstance inst = MakeQonInstance(n, 42);
  std::vector<std::pair<int, int>> swaps = SwapSchedule(n, 4096, 11);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);

  JoinSequence naive_seq = seq;
  double naive = TimeNs(64, min_seconds, [&](long it) {
    auto [i, j] = swaps[static_cast<size_t>(it) % swaps.size()];
    std::swap(naive_seq[static_cast<size_t>(i)],
              naive_seq[static_cast<size_t>(j)]);
    g_sink += QonSequenceCost(inst, naive_seq);
  });

  QonCostEvaluator eval(inst);
  eval.Cost(seq);
  double fast = TimeNs(64, min_seconds, [&](long it) {
    auto [i, j] = swaps[static_cast<size_t>(it) % swaps.size()];
    g_sink += eval.CostAfterSwap(i, j);
  });
  return {"qon", "swap", n, naive, fast};
}

Row MeasureQohFull(int n, double min_seconds) {
  QohInstance inst = MakeQohInstance(n, 5);
  QohCostEvaluator eval(inst);
  Rng rng(7);
  std::vector<JoinSequence> pool(16, IdentitySequence(n));
  for (JoinSequence& seq : pool) rng.Shuffle(&seq);
  double naive = TimeNs(4, min_seconds, [&](long it) {
    g_sink += OptimalDecomposition(inst, pool[static_cast<size_t>(it) % 16]).cost;
  });
  double fast = TimeNs(4, min_seconds, [&](long it) {
    g_sink += eval.Evaluate(pool[static_cast<size_t>(it) % 16]).cost;
  });
  return {"qoh", "full", n, naive, fast};
}

Row MeasureQohSwap(int n, double min_seconds) {
  QohInstance inst = MakeQohInstance(n, 5);
  std::vector<std::pair<int, int>> swaps = SwapSchedule(n, 4096, 13);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);

  JoinSequence naive_seq = seq;
  double naive = TimeNs(4, min_seconds, [&](long it) {
    auto [i, j] = swaps[static_cast<size_t>(it) % swaps.size()];
    std::swap(naive_seq[static_cast<size_t>(i)],
              naive_seq[static_cast<size_t>(j)]);
    g_sink += OptimalDecomposition(inst, naive_seq).cost;
  });

  QohCostEvaluator eval(inst);
  JoinSequence fast_seq = seq;
  eval.Evaluate(fast_seq);
  double fast = TimeNs(4, min_seconds, [&](long it) {
    auto [i, j] = swaps[static_cast<size_t>(it) % swaps.size()];
    std::swap(fast_seq[static_cast<size_t>(i)],
              fast_seq[static_cast<size_t>(j)]);
    g_sink += eval.Evaluate(fast_seq).cost;
  });
  return {"qoh", "swap", n, naive, fast};
}

int Main(int argc, char** argv) {
  std::string out = "BENCH_COST_EVAL.json";
  double min_seconds = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--min-seconds=", 14) == 0) {
      min_seconds = std::atof(argv[i] + 14);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=FILE] [--min-seconds=S]\n", argv[0]);
      return 2;
    }
  }

  std::vector<Row> rows;
  for (int n : kSizes) {
    rows.push_back(MeasureQonFull(n, min_seconds));
    rows.push_back(MeasureQonSwap(n, min_seconds));
    rows.push_back(MeasureQohFull(n, min_seconds));
    rows.push_back(MeasureQohSwap(n, min_seconds));
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"cost_eval\",\n");
  std::fprintf(f, "  \"unit\": \"ns_per_evaluation\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"family\": \"%s\", \"workload\": \"%s\", \"n\": %d, "
                 "\"naive_ns\": %.1f, \"eval_ns\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 r.family, r.workload, r.n, r.naive_ns, r.eval_ns, r.speedup(),
                 i + 1 < rows.size() ? "," : "");
    std::printf("%-4s %-5s n=%-4d naive=%10.1f ns  eval=%10.1f ns  %6.2fx\n",
                r.family, r.workload, r.n, r.naive_ns, r.eval_ns, r.speedup());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (sink=%g)\n", out.c_str(), g_sink.Log2());
  return 0;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
