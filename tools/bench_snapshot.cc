// Seeded perf snapshot for the incremental cost evaluators: measures
// ns/evaluation of the naive cost functions (QonSequenceCost /
// OptimalDecomposition) against QonCostEvaluator / QohCostEvaluator on
// full-evaluation and swap-neighborhood workloads, and writes the results
// (with speedup ratios) as JSON.
//
// Regenerate the committed snapshot from a Release build:
//
//   cmake -S . -B build-release -DCMAKE_BUILD_TYPE=Release
//   cmake --build build-release -j --target bench_snapshot
//   ./build-release/tools/bench_snapshot
//       --out=BENCH_COST_EVAL.json --fast-out=BENCH_FAST_EVAL.json
// (one invocation with both flags on the command line)
//
// One run emits both snapshots: the incremental-vs-naive comparison
// (BENCH_COST_EVAL.json) and the certified fast tier vs exact
// neighborhood pricing (BENCH_FAST_EVAL.json, which also records whether
// the fast tier ran its SIMD or scalar kernels).
//
// Workloads are fully seeded (instances, start sequences, and the swap
// schedule), so reruns on the same machine are directly comparable; only
// the timings themselves vary. The swap schedule is the one local search
// actually generates: uniform random position pairs (the SA move) applied
// to the current sequence, never undone — each candidate differs from its
// predecessor by one transposition.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "qo/cost_eval.h"
#include "qo/fast_eval.h"
#include "qo/qoh.h"
#include "qo/qon.h"
#include "util/random.h"

namespace aqo {
namespace {

constexpr int kSizes[] = {10, 30, 100, 300};

QonInstance MakeQonInstance(int n, uint64_t seed) {
  Rng rng(seed);
  Graph g = Gnp(n, 0.5, &rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(
        LogDouble::FromLinear(static_cast<double>(rng.UniformInt(2, 100000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng.UniformReal(0.001, 1.0)));
  }
  return inst;
}

QohInstance MakeQohInstance(int n, uint64_t seed) {
  Rng rng(seed);
  Graph g = Gnp(n, 0.6, &rng);
  std::vector<LogDouble> sizes(static_cast<size_t>(n),
                               LogDouble::FromLinear(4096.0));
  QohInstance inst(g, std::move(sizes), 8192.0);
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v, LogDouble::FromLinear(0.25));
  }
  return inst;
}

std::vector<std::pair<int, int>> SwapSchedule(int n, int count,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> swaps;
  swaps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    swaps.emplace_back(static_cast<int>(rng.UniformInt(0, n - 1)),
                       static_cast<int>(rng.UniformInt(0, n - 1)));
  }
  return swaps;
}

// Runs `body(iteration)` until both the minimum rep count and the minimum
// wall time are met; returns ns per iteration. The body's per-iteration
// work must not depend on how many iterations ran before it (the swap
// workloads walk a precomputed cyclic schedule).
template <typename Body>
double TimeNs(int min_reps, double min_seconds, Body&& body) {
  using Clock = std::chrono::steady_clock;
  long iters = 0;
  Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    for (int r = 0; r < min_reps; ++r) body(iters++);
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return elapsed * 1e9 / static_cast<double>(iters);
}

struct Row {
  const char* family;
  const char* workload;
  int n;
  double naive_ns;
  double eval_ns;
  double speedup() const { return naive_ns / eval_ns; }
};

// Accumulates costs so the optimizer cannot discard the evaluations.
LogDouble g_sink;

// Leaks a pointer to `p` into an empty asm so the compiler must assume the
// object is read and written externally. GCC 12's -O3 IPA otherwise decides
// an internal-linkage accumulator like g_sink is effectively constant and
// places it in .rodata — while still emitting stores to it, which fault.
void EscapeSink(void* p) { asm volatile("" : : "r"(p) : "memory"); }

Row MeasureQonFull(int n, double min_seconds) {
  QonInstance inst = MakeQonInstance(n, 42);
  QonCostEvaluator eval(inst);
  // A cyclic pool of start sequences so "full" really is full every time.
  Rng rng(7);
  std::vector<JoinSequence> pool(16, IdentitySequence(n));
  for (JoinSequence& seq : pool) rng.Shuffle(&seq);
  double naive = TimeNs(64, min_seconds, [&](long it) {
    g_sink += QonSequenceCost(inst, pool[static_cast<size_t>(it) % 16]);
  });
  double fast = TimeNs(64, min_seconds, [&](long it) {
    // Forces a recompute from position 0: a full, but zero-allocation,
    // evaluation through the evaluator.
    g_sink += eval.CostWithPrefix(pool[static_cast<size_t>(it) % 16], 0);
  });
  return {"qon", "full", n, naive, fast};
}

Row MeasureQonSwap(int n, double min_seconds) {
  QonInstance inst = MakeQonInstance(n, 42);
  std::vector<std::pair<int, int>> swaps = SwapSchedule(n, 4096, 11);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);

  JoinSequence naive_seq = seq;
  double naive = TimeNs(64, min_seconds, [&](long it) {
    auto [i, j] = swaps[static_cast<size_t>(it) % swaps.size()];
    std::swap(naive_seq[static_cast<size_t>(i)],
              naive_seq[static_cast<size_t>(j)]);
    g_sink += QonSequenceCost(inst, naive_seq);
  });

  QonCostEvaluator eval(inst);
  eval.Cost(seq);
  double fast = TimeNs(64, min_seconds, [&](long it) {
    auto [i, j] = swaps[static_cast<size_t>(it) % swaps.size()];
    g_sink += eval.CostAfterSwap(i, j);
  });
  return {"qon", "swap", n, naive, fast};
}

Row MeasureQohFull(int n, double min_seconds) {
  QohInstance inst = MakeQohInstance(n, 5);
  QohCostEvaluator eval(inst);
  Rng rng(7);
  std::vector<JoinSequence> pool(16, IdentitySequence(n));
  for (JoinSequence& seq : pool) rng.Shuffle(&seq);
  double naive = TimeNs(4, min_seconds, [&](long it) {
    g_sink += OptimalDecomposition(inst, pool[static_cast<size_t>(it) % 16]).cost;
  });
  double fast = TimeNs(4, min_seconds, [&](long it) {
    g_sink += eval.Evaluate(pool[static_cast<size_t>(it) % 16]).cost;
  });
  return {"qoh", "full", n, naive, fast};
}

Row MeasureQohSwap(int n, double min_seconds) {
  QohInstance inst = MakeQohInstance(n, 5);
  std::vector<std::pair<int, int>> swaps = SwapSchedule(n, 4096, 13);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);

  JoinSequence naive_seq = seq;
  double naive = TimeNs(4, min_seconds, [&](long it) {
    auto [i, j] = swaps[static_cast<size_t>(it) % swaps.size()];
    std::swap(naive_seq[static_cast<size_t>(i)],
              naive_seq[static_cast<size_t>(j)]);
    g_sink += OptimalDecomposition(inst, naive_seq).cost;
  });

  QohCostEvaluator eval(inst);
  JoinSequence fast_seq = seq;
  eval.Evaluate(fast_seq);
  double fast = TimeNs(4, min_seconds, [&](long it) {
    auto [i, j] = swaps[static_cast<size_t>(it) % swaps.size()];
    std::swap(fast_seq[static_cast<size_t>(i)],
              fast_seq[static_cast<size_t>(j)]);
    g_sink += eval.Evaluate(fast_seq).cost;
  });
  return {"qoh", "swap", n, naive, fast};
}

// Double sink for the raw log2 prices of the fast tier.
double g_fast_sink;

// Neighborhood pricing: all n-1 adjacent transpositions of one sequence,
// reported per candidate. "Exact" pays a CostAfterSwap probe plus the
// restore that rebuilds the incremental state after the (typical)
// rejection; "fast" is one Load plus the batched certified pass.
Row MeasureQonNeighborhood(int n, double min_seconds) {
  QonInstance inst = MakeQonInstance(n, 42);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);
  double candidates = static_cast<double>(n - 1);

  QonCostEvaluator eval(inst);
  eval.Cost(seq);
  double exact = TimeNs(4, min_seconds, [&](long) {
    for (int i = 0; i + 1 < n; ++i) {
      g_sink += eval.CostAfterSwap(i, i + 1);  // probe
      g_sink += eval.CostAfterSwap(i, i + 1);  // restore
    }
  }) / candidates;

  QonNeighborhoodEvaluator fast_eval(inst);
  double fast = TimeNs(4, min_seconds, [&](long) {
    fast_eval.Load(seq);
    const double* prices = fast_eval.PriceAdjacentAll();
    g_fast_sink += prices[0];
  }) / candidates;
  return {"qon", "neighborhood", n, exact, fast};
}

Row MeasureQohNeighborhood(int n, double min_seconds) {
  QohInstance inst = MakeQohInstance(n, 5);
  JoinSequence seq = IdentitySequence(n);
  Rng rng(7);
  rng.Shuffle(&seq);
  double candidates = static_cast<double>(n - 1);

  QohCostEvaluator eval(inst);
  eval.Evaluate(seq);
  double exact = TimeNs(4, min_seconds, [&](long) {
    for (int i = 0; i + 1 < n; ++i) {
      size_t a = static_cast<size_t>(i);
      std::swap(seq[a], seq[a + 1]);
      g_sink += eval.Evaluate(seq).cost;  // probe
      std::swap(seq[a], seq[a + 1]);
      g_sink += eval.Evaluate(seq).cost;  // restore
    }
  }) / candidates;

  QohNeighborhoodEvaluator fast_eval(inst);
  double fast = TimeNs(4, min_seconds, [&](long) {
    fast_eval.Load(seq);
    for (int i = 0; i + 1 < n; ++i) {
      bool feasible = false;
      g_fast_sink += fast_eval.PriceSwap(i, i + 1, &feasible);
    }
  }) / candidates;
  return {"qoh", "neighborhood", n, exact, fast};
}

// Writes one snapshot file. `baseline_key`/`eval_key` name the two timing
// columns ("naive"/"eval" for the cost-eval snapshot, "exact"/"fast" for
// the fast-eval one), and `extra` is injected verbatim after the unit
// field (used for the SIMD-path marker).
int WriteSnapshot(const std::string& out, const char* benchmark,
                  const char* unit, const char* extra,
                  const char* baseline_key, const char* eval_key,
                  const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n", benchmark);
  std::fprintf(f, "  \"unit\": \"%s\",\n%s  \"rows\": [\n", unit, extra);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"family\": \"%s\", \"workload\": \"%s\", \"n\": %d, "
                 "\"%s_ns\": %.1f, \"%s_ns\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 r.family, r.workload, r.n, baseline_key, r.naive_ns,
                 eval_key, r.eval_ns, r.speedup(),
                 i + 1 < rows.size() ? "," : "");
    std::printf("%-4s %-12s n=%-4d %s=%10.1f ns  %s=%10.1f ns  %6.2fx\n",
                r.family, r.workload, r.n, baseline_key, r.naive_ns,
                eval_key, r.eval_ns, r.speedup());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  EscapeSink(&g_sink);
  EscapeSink(&g_fast_sink);
  std::string out = "BENCH_COST_EVAL.json";
  std::string fast_out = "BENCH_FAST_EVAL.json";
  double min_seconds = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--fast-out=", 11) == 0) {
      fast_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--min-seconds=", 14) == 0) {
      min_seconds = std::atof(argv[i] + 14);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=FILE] [--fast-out=FILE]"
                   " [--min-seconds=S]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<Row> rows;
  std::vector<Row> fast_rows;
  for (int n : kSizes) {
    rows.push_back(MeasureQonFull(n, min_seconds));
    rows.push_back(MeasureQonSwap(n, min_seconds));
    rows.push_back(MeasureQohFull(n, min_seconds));
    rows.push_back(MeasureQohSwap(n, min_seconds));
    fast_rows.push_back(MeasureQonNeighborhood(n, min_seconds));
    fast_rows.push_back(MeasureQohNeighborhood(n, min_seconds));
  }

  int rc = WriteSnapshot(out, "cost_eval", "ns_per_evaluation", "",
                         "naive", "eval", rows);
  if (rc != 0) return rc;
  std::string simd_field =
      std::string("  \"simd\": \"") + fast_eval_internal::SimdPath() +
      "\",\n";
  rc = WriteSnapshot(fast_out, "fast_eval", "ns_per_candidate",
                     simd_field.c_str(), "exact", "fast", fast_rows);
  if (rc != 0) return rc;
  std::printf("(sink=%g fast_sink=%g)\n", g_sink.Log2(), g_fast_sink);
  return 0;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
