// persist_fixture_gen — writes the corruption fixtures under
// examples/fixtures/persist/ used by tests/persist_test.cc.
//
// Each fixture starts from the same valid two-record snapshot file and
// breaks exactly one invariant, so every test failure reason is isolated:
//
//   valid.bin            — untouched (the control)
//   bad_magic.bin        — first magic byte flipped
//   wrong_version.bin    — format version 99
//   truncated_header.bin — file ends 6 bytes into the 16-byte header
//   crc_flip.bin         — one payload byte of record #1 flipped (CRC now
//                          mismatches); record #0 must still salvage
//   torn_tail.bin        — record #1 cut mid-payload (crash artifact);
//                          record #0 must still salvage
//
// Deterministic: same bytes every run. Run from the repo root:
//   ./build/tools/persist_fixture_gen examples/fixtures/persist

#include <fstream>
#include <iostream>
#include <string>

#include "qo/persist.h"
#include "util/log_double.h"

namespace aqo {
namespace {

PersistedEntry FixtureEntry(int i) {
  PersistedEntry entry;
  entry.key = Hash128{0x1111111111111111ULL * static_cast<uint64_t>(i + 1),
                      0x2222222222222222ULL * static_cast<uint64_t>(i + 1)};
  entry.plan.feasible = true;
  entry.plan.sequence = {1, 3, 2, 4};
  entry.plan.pipeline_starts = {1, 3};
  entry.plan.cost = LogDouble::FromLog2(10.5 + i);
  entry.plan.evaluations = 100 + static_cast<uint64_t>(i);
  entry.plan.status = PlanStatus::kComplete;
  return entry;
}

void WriteFixture(const std::string& dir, const std::string& name,
                  const std::string& bytes) {
  std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(1);
  }
  std::cout << name << " (" << bytes.size() << " bytes)\n";
}

int Main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "examples/fixtures/persist";

  std::string header = EncodePersistHeader(PersistFileKind::kSnapshot);
  std::string record0 = EncodePersistRecord(FixtureEntry(0));
  std::string record1 = EncodePersistRecord(FixtureEntry(1));
  std::string valid = header + record0 + record1;

  WriteFixture(dir, "valid.bin", valid);

  std::string bad_magic = valid;
  bad_magic[0] = 'X';
  WriteFixture(dir, "bad_magic.bin", bad_magic);

  std::string wrong_version = valid;
  wrong_version[8] = 99;  // u32 LE version field at offset 8
  WriteFixture(dir, "wrong_version.bin", wrong_version);

  WriteFixture(dir, "truncated_header.bin", valid.substr(0, 6));

  std::string crc_flip = valid;
  // Flip one byte inside record #1's payload (8 bytes past its frame).
  crc_flip[header.size() + record0.size() + 8 + 4] ^= 0x01;
  WriteFixture(dir, "crc_flip.bin", crc_flip);

  // Cut record #1 in the middle of its payload.
  WriteFixture(dir, "torn_tail.bin",
               valid.substr(0, header.size() + record0.size() + 8 +
                                   (record1.size() - 8) / 2));
  return 0;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
