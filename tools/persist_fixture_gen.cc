// persist_fixture_gen — writes the corruption fixtures under
// examples/fixtures/persist/ used by tests/persist_test.cc.
//
// Each fixture starts from the same valid two-record snapshot file and
// breaks exactly one invariant, so every test failure reason is isolated:
//
//   valid.bin            — untouched (the control)
//   bad_magic.bin        — first magic byte flipped
//   wrong_version.bin    — format version 99
//   truncated_header.bin — file ends 6 bytes into the 16-byte header
//   crc_flip.bin         — one payload byte of record #1 flipped (CRC now
//                          mismatches); record #0 must still salvage
//   torn_tail.bin        — record #1 cut mid-payload (crash artifact);
//                          record #0 must still salvage
//
// Also emits the fuzz-corpus seed fixtures one level up (fuzz/ and
// tests/serve_corrupt_frame use them):
//
//   feedback_valid.bin   — one canonical EncodeFeedbackPayload record
//   frames_valid.bin     — three well-formed serve-protocol frames
//   frames_garbage.bin   — the same frames with raw garbage spliced
//                          between frames #1 and #2 (resync exercise)
//
// Deterministic: same bytes every run. Run from the repo root:
//   ./build/tools/persist_fixture_gen examples/fixtures/persist [examples/fixtures]

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "io/framing.h"
#include "qo/adaptive.h"
#include "qo/persist.h"
#include "util/log_double.h"

namespace aqo {
namespace {

PersistedEntry FixtureEntry(int i) {
  PersistedEntry entry;
  entry.key = Hash128{0x1111111111111111ULL * static_cast<uint64_t>(i + 1),
                      0x2222222222222222ULL * static_cast<uint64_t>(i + 1)};
  entry.plan.feasible = true;
  entry.plan.sequence = {1, 3, 2, 4};
  entry.plan.pipeline_starts = {1, 3};
  entry.plan.cost = LogDouble::FromLog2(10.5 + i);
  entry.plan.evaluations = 100 + static_cast<uint64_t>(i);
  entry.plan.status = PlanStatus::kComplete;
  return entry;
}

void WriteFixture(const std::string& dir, const std::string& name,
                  const std::string& bytes) {
  std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(1);
  }
  std::cout << name << " (" << bytes.size() << " bytes)\n";
}

int Main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "examples/fixtures/persist";

  std::string header = EncodePersistHeader(PersistFileKind::kSnapshot);
  std::string record0 = EncodePersistRecord(FixtureEntry(0));
  std::string record1 = EncodePersistRecord(FixtureEntry(1));
  std::string valid = header + record0 + record1;

  WriteFixture(dir, "valid.bin", valid);

  std::string bad_magic = valid;
  bad_magic[0] = 'X';
  WriteFixture(dir, "bad_magic.bin", bad_magic);

  std::string wrong_version = valid;
  wrong_version[8] = 99;  // u32 LE version field at offset 8
  WriteFixture(dir, "wrong_version.bin", wrong_version);

  WriteFixture(dir, "truncated_header.bin", valid.substr(0, 6));

  std::string crc_flip = valid;
  // Flip one byte inside record #1's payload (8 bytes past its frame).
  crc_flip[header.size() + record0.size() + 8 + 4] ^= 0x01;
  WriteFixture(dir, "crc_flip.bin", crc_flip);

  // Cut record #1 in the middle of its payload.
  WriteFixture(dir, "torn_tail.bin",
               valid.substr(0, header.size() + record0.size() + 8 +
                                   (record1.size() - 8) / 2));

  std::string fixtures_root = argc > 2 ? argv[2] : "examples/fixtures";

  FeedbackRecord feedback;
  feedback.family = AdaptiveFamily::kQon;
  feedback.optimizer = "greedy";
  feedback.knob_hash = 0x0123456789abcdefULL;
  feedback.features.n = 7;
  feedback.features.edges = 9;
  feedback.features.edge_density = 0.4285714285714286;
  feedback.features.log_size_mean = 10.25;
  feedback.features.log_size_min = 8.0;
  feedback.features.log_size_max = 12.5;
  feedback.features.sel_log_mean = -3.5;
  feedback.features.sel_log_min = -7.0;
  feedback.features.access_log_mean = 9.5;
  feedback.features.access_log_max = 11.0;
  feedback.features.memory_log2 = 20.0;
  feedback.features.eta = 0.5;
  feedback.features.wl_class = 42;
  feedback.feasible = true;
  feedback.cost_log2 = 33.125;
  feedback.regret_log2 = 0.5;
  feedback.evaluations = 49;
  feedback.status = PlanStatus::kComplete;
  WriteFixture(fixtures_root, "feedback_valid.bin",
               EncodeFeedbackPayload(feedback));

  auto framed = [](const std::string& payload) {
    std::ostringstream os;
    WriteFrame(os, payload);
    return os.str();
  };
  std::string frame0 = framed(
      "req r0\nqon 3\nrel 0 4.0\nrel 1 5.0\nrel 2 6.0\n"
      "edge 0 1 -2.0\nedge 1 2 -1.5\n");
  std::string frame1 = framed("ping p0");
  std::string frame2 =
      framed("req r1\nqon 2\nrel 0 3.0\nrel 1 3.5\nedge 0 1 -1.0\n");
  WriteFixture(fixtures_root, "frames_valid.bin", frame0 + frame1 + frame2);

  // Garbage spliced after the first frame: bytes keep the high bit set so
  // no window decodes to a plausible length (io/framing.h resync path).
  std::string garbage = "\x81\x93\xa7\xbb\xcf\xd3\xe1\xf5\x89";
  WriteFixture(fixtures_root, "frames_garbage.bin",
               frame0 + garbage + frame1 + frame2);
  return 0;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
