// aqo_opt — join-order optimizer CLI.
//
// Reads a QO_N instance (library text format, see io/serialization.h) from
// stdin and optimizes it:
//
//   aqo_gen --kind=random --n=14 | aqo_opt --algo=dp
//   aqo_gen --kind=gap-no --n=60 | aqo_opt --algo=greedy,ii,sa
//
// Algorithms: dp (exact, n <= 24), bnb (exact branch & bound, anytime),
// exhaustive (n <= 10), greedy, random, ii (iterative improvement),
// sa (simulated annealing), ga (genetic), kbz (trees only), cout (exact
// under the C_out metric). Prints one line per algorithm.

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "io/serialization.h"
#include "qo/analysis.h"
#include "qo/bnb.h"
#include "qo/genetic.h"
#include "qo/ikkbz.h"
#include "qo/optimizers.h"
#include "util/random.h"

namespace aqo {
namespace {

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& def) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

void Report(const std::string& name, const OptimizerResult& r) {
  if (!r.feasible) {
    std::cout << name << ": infeasible\n";
    return;
  }
  std::cout << name << ": lg cost = " << r.cost.Log2() << "  (" << r.evaluations
            << " evaluations)\n  sequence:";
  for (int v : r.sequence) std::cout << " " << v;
  std::cout << "\n";
}

int Main(int argc, char** argv) {
  QonInstance inst = ReadQonInstance(std::cin);
  std::cout << "instance: " << inst.NumRelations() << " relations, "
            << inst.graph().NumEdges() << " predicates\n";

  std::string algos = GetFlag(argc, argv, "algo", "dp,greedy,ii");
  bool no_cartesian = GetFlag(argc, argv, "no-cartesian", "0") == "1";
  Rng rng(std::stoull(GetFlag(argc, argv, "seed", "1")));
  OptimizerOptions base;
  base.forbid_cartesian = no_cartesian;

  std::stringstream ss(algos);
  std::string algo;
  while (std::getline(ss, algo, ',')) {
    if (algo == "dp") {
      Report("dp", DpQonOptimizer(inst, base));
    } else if (algo == "exhaustive") {
      Report("exhaustive", ExhaustiveQonOptimizer(inst, base));
    } else if (algo == "greedy") {
      Report("greedy", GreedyQonOptimizer(inst, base));
    } else if (algo == "random") {
      Report("random", RandomSamplingOptimizer(inst, &rng, 1000, base));
    } else if (algo == "ii") {
      Report("ii", IterativeImprovementOptimizer(inst, &rng, 4, base));
    } else if (algo == "sa") {
      AnnealingOptions sa;
      sa.base = base;
      Report("sa", SimulatedAnnealingOptimizer(inst, &rng, sa));
    } else if (algo == "ga") {
      GeneticOptions ga;
      ga.base = base;
      Report("ga", GeneticOptimizer(inst, &rng, ga));
    } else if (algo == "bnb") {
      BnbResult bnb = BranchAndBoundQonOptimizer(inst, 0, base);
      Report(bnb.proven_optimal ? "bnb (proven optimal)" : "bnb (anytime)",
             bnb.result);
    } else if (algo == "cout") {
      Report("cout (C_out metric)", CoutOptimalJoinOrder(inst));
    } else if (algo == "kbz") {
      if (IsTreeQueryGraph(inst.graph())) {
        Report("kbz", IkkbzOptimizer(inst));
      } else {
        std::cout << "kbz: skipped (query graph is not a tree)\n";
      }
    } else {
      std::cerr << "unknown algorithm '" << algo << "'\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
