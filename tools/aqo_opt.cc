// aqo_opt — join-order optimizer CLI.
//
// Reads a QO_N instance (library text format, see io/serialization.h) from
// stdin and optimizes it with every optimizer named in --optimizers=
// (--algo= is an alias):
//
//   aqo_gen --kind=random --n=14 | aqo_opt --optimizers=dp
//   aqo_gen --kind=gap-no --n=60 | aqo_opt --optimizers=greedy,ii,sa
//
// The names come from the optimizer registry (qo/registry.h): dp (exact,
// n <= 24), bnb (exact branch & bound, anytime under --bnb-node-limit),
// exhaustive (n <= 10), greedy, random, ii, sa, genetic/ga, kbz (trees
// only, else infeasible), cout (exact under the C_out metric). Unknown
// names are a hard error listing the valid set. Knob flags (--samples=,
// --restarts=, --sa-iterations=, ...) apply to whichever optimizers read
// them. Prints one line per optimizer.
//
// --in=<file> reads the instance from a file instead of stdin; malformed
// input prints `error: <file>: <reason>` and exits nonzero instead of
// aborting. --budget-evals=N / --deadline-ms=M cut runs short (anytime
// mode, docs/robustness.md); cut-short lines carry a [status] marker.
//
// --plan-cache-mb=N demonstrates the canonical-fingerprint plan cache:
// the instance is expanded into --repeat relabeled duplicates and the
// batch is optimized through the cache (see docs/api.md).
//
// --json-out=<path> writes a JSONL run-log, --trace-out=<path> a Chrome
// trace-event JSON of the run, and --latency-table=1 a percentile table
// of every latency histogram (docs/observability.md).
//
// --threads=N runs the subset DP on an N-worker pool (default: hardware
// concurrency); every thread count returns bit-identical results.

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "io/serialization.h"
#include "obs/runlog.h"
#include "qo/optimizers.h"
#include "qo/registry.h"
#include "util/random.h"

namespace aqo {
namespace {

void Report(const std::string& name, const OptimizerResult& r) {
  if (!r.feasible) {
    std::cout << name << ": infeasible\n";
    return;
  }
  std::cout << name << ": lg cost = " << r.cost.Log2() << "  (" << r.evaluations
            << " evaluations)";
  // Cut-short runs are flagged; complete runs keep the historical line.
  if (r.status != PlanStatus::kComplete) {
    std::cout << "  [" << PlanStatusName(r.status) << "]";
  }
  std::cout << "\n  sequence:";
  for (int v : r.sequence) std::cout << " " << v;
  std::cout << "\n";
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::RunLogSession session(flags, "aqo_opt", /*default_seed=*/1);

  // --optimizers= takes precedence; --algo= is the historical alias.
  std::string def = flags.GetString("algo", "dp,greedy,ii");
  std::vector<std::string> names = bench::SelectedQonOptimizersOrDie(flags, def);

  // --in=<file> reads the instance from a file instead of stdin. Malformed
  // input is a structured error (ParseResult), not an abort.
  std::string in_path = flags.GetString("in");
  ParseResult<QonInstance> parsed;
  if (in_path.empty()) {
    parsed = ParseQonInstance(std::cin);
  } else {
    std::ifstream in(in_path);
    if (!in.is_open()) {
      std::cerr << "error: " << in_path << ": cannot open\n";
      return 1;
    }
    parsed = ParseQonInstance(in);
  }
  if (!parsed.ok()) {
    std::cerr << "error: " << (in_path.empty() ? "<stdin>" : in_path) << ": "
              << parsed.error << "\n";
    return 1;
  }
  QonInstance inst = *std::move(parsed.value);
  std::cout << "instance: " << inst.NumRelations() << " relations, "
            << inst.graph().NumEdges() << " predicates\n";
  obs::InstanceShape shape{.family = "qon",
                           .kind = "stdin",
                           .side = "",
                           .source = "",
                           .n = inst.NumRelations(),
                           .edges = inst.graph().NumEdges()};

  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  Rng rng(seed);
  // --threads=N sizes the pool the subset DP runs on; the result is
  // bit-identical for every value (see docs/parallelism.md).
  ThreadPool pool(flags.Threads());
  OptimizerOptions defaults;
  defaults.samples = 1000;
  defaults.restarts = 4;
  OptimizerOptions knobs = bench::ReadQonKnobs(flags, defaults);
  knobs.pool = &pool;

  // Run through InstrumentedRun so --json-out records each algorithm.
  for (const std::string& name : names) {
    Report(name, obs::InstrumentedRun("qon." + name, shape, [&] {
             return OptimizerRegistry::Qon().Run(name, inst, knobs, &rng);
           }));
  }

  // Plan-cache demonstration: --repeat relabeled duplicates of the input
  // instance, optimized as one batch through the cache with the first
  // selected optimizer. Flags are read unconditionally (never warn).
  auto cache = bench::PlanCacheFromFlags(flags);
  int repeat = static_cast<int>(flags.GetInt("repeat", 4));
  if (cache != nullptr) {
    BatchOptions batch;
    batch.optimizer = names.front();
    batch.qon = knobs;
    batch.qon.pool = nullptr;  // batch-level pool fans the instances instead
    batch.seed = seed;
    std::cout << "\n";
    bench::RunQonPlanCacheDemo(cache.get(), &pool, batch, {inst}, repeat);
  }
  return 0;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
