// aqo_opt — join-order optimizer CLI.
//
// Reads a QO_N instance (library text format, see io/serialization.h) from
// stdin and optimizes it:
//
//   aqo_gen --kind=random --n=14 | aqo_opt --algo=dp
//   aqo_gen --kind=gap-no --n=60 | aqo_opt --algo=greedy,ii,sa
//
// Algorithms: dp (exact, n <= 24), bnb (exact branch & bound, anytime),
// exhaustive (n <= 10), greedy, random, ii (iterative improvement),
// sa (simulated annealing), ga (genetic), kbz (trees only), cout (exact
// under the C_out metric). Prints one line per algorithm.
//
// --threads=N runs the subset DP on an N-worker pool (default: hardware
// concurrency); every thread count returns bit-identical results.

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "io/serialization.h"
#include "obs/runlog.h"
#include "qo/analysis.h"
#include "qo/bnb.h"
#include "qo/genetic.h"
#include "qo/ikkbz.h"
#include "qo/optimizers.h"
#include "util/random.h"

namespace aqo {
namespace {

void Report(const std::string& name, const OptimizerResult& r) {
  if (!r.feasible) {
    std::cout << name << ": infeasible\n";
    return;
  }
  std::cout << name << ": lg cost = " << r.cost.Log2() << "  (" << r.evaluations
            << " evaluations)\n  sequence:";
  for (int v : r.sequence) std::cout << " " << v;
  std::cout << "\n";
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::RunLogSession session(flags, "aqo_opt", /*default_seed=*/1);

  QonInstance inst = ReadQonInstance(std::cin);
  std::cout << "instance: " << inst.NumRelations() << " relations, "
            << inst.graph().NumEdges() << " predicates\n";
  obs::InstanceShape shape{.family = "qon",
                           .kind = "stdin",
                           .side = "",
                           .source = "",
                           .n = inst.NumRelations(),
                           .edges = inst.graph().NumEdges()};

  std::string algos = flags.GetString("algo", "dp,greedy,ii");
  bool no_cartesian = flags.GetInt("no-cartesian", 0) != 0;
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  // --threads=N sizes the pool the subset DP runs on; the result is
  // bit-identical for every value (see docs/parallelism.md).
  ThreadPool pool(flags.Threads());
  OptimizerOptions base;
  base.forbid_cartesian = no_cartesian;
  base.pool = &pool;

  // Run through InstrumentedRun so --json-out records each algorithm.
  auto run = [&](const std::string& name, auto fn) {
    Report(name, obs::InstrumentedRun("qon." + name, shape, fn));
  };

  std::stringstream ss(algos);
  std::string algo;
  while (std::getline(ss, algo, ',')) {
    if (algo == "dp") {
      run("dp", [&] { return DpQonOptimizer(inst, base); });
    } else if (algo == "exhaustive") {
      run("exhaustive", [&] { return ExhaustiveQonOptimizer(inst, base); });
    } else if (algo == "greedy") {
      run("greedy", [&] { return GreedyQonOptimizer(inst, base); });
    } else if (algo == "random") {
      run("random",
          [&] { return RandomSamplingOptimizer(inst, &rng, 1000, base); });
    } else if (algo == "ii") {
      run("ii",
          [&] { return IterativeImprovementOptimizer(inst, &rng, 4, base); });
    } else if (algo == "sa") {
      AnnealingOptions sa;
      sa.base = base;
      run("sa", [&] { return SimulatedAnnealingOptimizer(inst, &rng, sa); });
    } else if (algo == "ga") {
      GeneticOptions ga;
      ga.base = base;
      run("ga", [&] { return GeneticOptimizer(inst, &rng, ga); });
    } else if (algo == "bnb") {
      bool proven = false;
      OptimizerResult bnb = obs::InstrumentedRun("qon.bnb", shape, [&] {
        BnbResult full = BranchAndBoundQonOptimizer(inst, 0, base);
        proven = full.proven_optimal;
        return full.result;
      });
      Report(proven ? "bnb (proven optimal)" : "bnb (anytime)", bnb);
    } else if (algo == "cout") {
      run("cout", [&] { return CoutOptimalJoinOrder(inst); });
    } else if (algo == "kbz") {
      if (IsTreeQueryGraph(inst.graph())) {
        run("kbz", [&] { return IkkbzOptimizer(inst); });
      } else {
        std::cout << "kbz: skipped (query graph is not a tree)\n";
      }
    } else {
      std::cerr << "unknown algorithm '" << algo << "'\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
