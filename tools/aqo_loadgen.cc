// aqo_loadgen — seeded workload generator and driver for aqo_serve.
//
// Two modes:
//
//   * generate (default): writes a stream of request frames (io/framing.h,
//     protocol in tools/aqo_serve.cc) to --out= or stdout. Pipe it into
//     aqo_serve, or save it to replay the identical byte stream against a
//     cold and a warm server (the warm-start differential ctest does
//     exactly that).
//   * drive (--serve=<path-to-aqo_serve> [--serve-args="..."]): forks the
//     server over a pipe pair, sends the same stream with open-loop
//     pacing (--pace-ms= between arrivals, or --burst=<k>/<gap-ms> for
//     back-to-back groups of k with a gap between groups — both
//     independent of response times), reads responses, and records
//     per-request round-trip latency
//     into the loadgen.request_us histogram — print percentiles with
//     --latency-table, or export everything with --json-out.
//
// The workload is a heavy-tailed duplicate mix: --bases= distinct random
// instances (qo/workloads.h) are sampled per arrival from a Zipf(--zipf=)
// distribution over base rank, and every arrival is relabeled by a fresh
// seeded permutation (qo/fingerprint.h). Repeat arrivals of a base are
// therefore duplicate work under canonical fingerprinting — a server-side
// cache should converge to a hit rate near 1 - bases/requests. Everything
// is a pure function of --seed.
//
// --optimizer=<name> stamps an `optimizer=` token into every request
// header so the server runs that registry entry (e.g. `adaptive` — the CI
// adaptive smoke drives same-seed streams through it twice and diffs the
// bytes); --optimizer=help prints both registries' listings.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "io/framing.h"
#include "io/serialization.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "qo/fingerprint.h"
#include "qo/workloads.h"
#include "util/check.h"
#include "util/random.h"

namespace aqo {
namespace {

WorkloadShape ShapeFromName(const std::string& name) {
  if (name == "chain") return WorkloadShape::kChain;
  if (name == "star") return WorkloadShape::kStar;
  if (name == "tree") return WorkloadShape::kTree;
  if (name == "cycle") return WorkloadShape::kCycle;
  if (name == "clique") return WorkloadShape::kClique;
  if (name == "random") return WorkloadShape::kRandom;
  std::cerr << "error: unknown --shape '" << name
            << "' (chain|star|tree|cycle|clique|random)\n";
  std::exit(2);
}

// Zipf(s) over ranks 0..k-1 by inverse-CDF on the normalized harmonic
// weights — k is small (the base pool), so the linear scan is fine.
class ZipfPicker {
 public:
  ZipfPicker(int k, double skew) : cdf_(static_cast<size_t>(k)) {
    double total = 0.0;
    for (int i = 0; i < k; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[static_cast<size_t>(i)] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  int Pick(Rng* rng) const {
    double u = rng->UniformReal();
    for (size_t i = 0; i < cdf_.size(); ++i) {
      if (u < cdf_[i]) return static_cast<int>(i);
    }
    return static_cast<int>(cdf_.size()) - 1;
  }

 private:
  std::vector<double> cdf_;
};

struct Workload {
  std::vector<std::string> frames;  // request payloads, arrival order
};

Workload BuildWorkload(const bench::Flags& flags) {
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int requests = static_cast<int>(flags.GetInt("requests", 200));
  int bases = static_cast<int>(flags.GetInt("bases", 8));
  int n = static_cast<int>(flags.GetInt("n", 9));
  double zipf = flags.GetDouble("zipf", 1.1);
  std::string family = flags.GetString("family", "qon");
  AQO_CHECK(family == "qon" || family == "qoh");
  // --optimizer=<name> rides along in every request header so the server
  // runs that entry (validated here against the family's registry, aliases
  // resolved); --optimizer=help prints the registry listings and exits.
  std::string optimizer = flags.GetString("optimizer");
  if (optimizer == "help") {
    std::cout << OptimizerRegistry::Qon().Describe()
              << QohOptimizerRegistry::Get().Describe();
    std::exit(0);
  }
  if (!optimizer.empty()) {
    if (family == "qon") {
      const auto* entry = OptimizerRegistry::Qon().Find(optimizer);
      if (entry == nullptr) {
        std::cerr << "error: unknown QO_N optimizer '" << optimizer
                  << "' in --optimizer=\n";
        std::exit(2);
      }
      optimizer = entry->name;
    } else {
      const auto* entry = QohOptimizerRegistry::Get().Find(optimizer);
      if (entry == nullptr) {
        std::cerr << "error: unknown QO_H optimizer '" << optimizer
                  << "' in --optimizer=\n";
        std::exit(2);
      }
      optimizer = entry->name;
    }
  }
  WorkloadOptions wopts;
  wopts.shape = ShapeFromName(flags.GetString("shape", "random"));
  wopts.edge_probability = flags.GetDouble("edge-prob", 0.5);

  std::vector<QonInstance> qon_bases;
  std::vector<QohInstance> qoh_bases;
  for (int b = 0; b < bases; ++b) {
    Rng rng(MixSeed(seed, static_cast<uint64_t>(b)));
    if (family == "qon") {
      qon_bases.push_back(RandomQonWorkload(n, &rng, wopts));
    } else {
      qoh_bases.push_back(RandomQohWorkload(n, &rng, 0.3, wopts));
    }
  }

  Workload workload;
  ZipfPicker picker(bases, zipf);
  Rng arrivals(MixSeed(seed, 0x4c4f4144u));  // "LOAD"
  for (int r = 0; r < requests; ++r) {
    int base = picker.Pick(&arrivals);
    std::vector<int> perm(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) perm[static_cast<size_t>(v)] = v;
    arrivals.Shuffle(&perm);
    std::ostringstream payload;
    payload << "req r" << r;
    if (!optimizer.empty()) payload << " optimizer=" << optimizer;
    payload << "\n";
    if (family == "qon") {
      WriteQonInstance(PermuteQonInstance(qon_bases[static_cast<size_t>(base)],
                                          perm),
                       payload);
    } else {
      WriteQohInstance(PermuteQohInstance(qoh_bases[static_cast<size_t>(base)],
                                          perm),
                       payload);
    }
    workload.frames.push_back(payload.str());
  }
  return workload;
}

// Burst pacing (--burst=<k>/<gap-ms>): arrivals leave in back-to-back
// groups of k with a gap-ms pause between groups — the overload shape the
// load governor is built for. Pacing only shifts *when* frames are sent;
// the frame byte stream itself is unchanged, so a burst run and a smooth
// run of the same seed produce identical request bytes (and therefore
// identical shed/degrade decisions from the slot-indexed governor).
struct BurstSpec {
  int k = 0;  // 0 = bursting off
  double gap_ms = 0.0;
};

BurstSpec ParseBurst(const std::string& spec) {
  BurstSpec burst;
  if (spec.empty()) return burst;
  size_t slash = spec.find('/');
  burst.k = std::atoi(spec.c_str());
  burst.gap_ms =
      slash == std::string::npos ? 0.0 : std::atof(spec.c_str() + slash + 1);
  if (burst.k <= 0) {
    std::cerr << "error: --burst expects <k>/<gap-ms> with k >= 1, got '"
              << spec << "'\n";
    std::exit(2);
  }
  return burst;
}

// Sleeps after frame `index` according to burst/pace settings.
void PaceAfter(size_t index, const BurstSpec& burst, double pace_ms) {
  if (burst.k > 0) {
    if ((index + 1) % static_cast<size_t>(burst.k) == 0 &&
        burst.gap_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(burst.gap_ms));
    }
  } else if (pace_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(pace_ms));
  }
}

int Drive(const Workload& workload, const std::string& serve_path,
          const std::string& serve_args, double pace_ms,
          const BurstSpec& burst) {
  int to_server[2];
  int from_server[2];
  AQO_CHECK(::pipe(to_server) == 0 && ::pipe(from_server) == 0);
  pid_t pid = ::fork();
  AQO_CHECK(pid >= 0);
  if (pid == 0) {
    ::dup2(to_server[0], STDIN_FILENO);
    ::dup2(from_server[1], STDOUT_FILENO);
    ::close(to_server[0]);
    ::close(to_server[1]);
    ::close(from_server[0]);
    ::close(from_server[1]);
    std::vector<std::string> arg_strings;
    arg_strings.push_back(serve_path);
    std::istringstream split(serve_args);
    for (std::string a; split >> a;) arg_strings.push_back(a);
    std::vector<char*> argv;
    for (std::string& a : arg_strings) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(serve_path.c_str(), argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  ::close(to_server[0]);
  ::close(from_server[1]);

  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> sent(workload.frames.size());

  // Open-loop writer: arrivals are paced by the schedule alone, never by
  // response progress (a slow server just sees the queue deepen).
  std::thread writer([&] {
    for (size_t i = 0; i < workload.frames.size(); ++i) {
      sent[i] = Clock::now();
      if (!WriteFrameFd(to_server[1], workload.frames[i])) break;
      PaceAfter(i, burst, pace_ms);
    }
    ::close(to_server[1]);  // EOF → graceful server shutdown
  });

  obs::Histogram& latency =
      obs::Registry::Get().GetHistogram("loadgen.request_us");
  obs::Counter& responses =
      obs::Registry::Get().GetCounter("loadgen.responses");
  obs::Counter& errors = obs::Registry::Get().GetCounter("loadgen.errors");
  std::string payload;
  size_t index = 0;
  while (index < workload.frames.size()) {
    int read = ReadFrameFd(from_server[0], &payload);
    if (read <= 0) break;
    // Responses come back in request order (the server is serial).
    uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              sent[index])
            .count());
    latency.Record(us);
    responses.Increment();
    if (payload.compare(0, 4, "err ") == 0) errors.Increment();
    ++index;
  }
  writer.join();
  ::close(from_server[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  std::cerr << "aqo_loadgen: " << index << "/" << workload.frames.size()
            << " responses; server "
            << (WIFEXITED(status) ? WEXITSTATUS(status) : -1) << "\n";
  if (index < workload.frames.size()) {
    std::cerr << "error: server stream ended after " << index << " of "
              << workload.frames.size() << " responses\n";
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::RunLogSession session(flags, "aqo_loadgen", /*default_seed=*/1);

  Workload workload = BuildWorkload(flags);
  std::string serve_path = flags.GetString("serve");
  double pace_ms = flags.GetDouble("pace-ms", 0.0);
  BurstSpec burst = ParseBurst(flags.GetString("burst"));
  // --eval-tier= forwards to the driven server's knob of the same name
  // (validated here so typos fail in the driver, not three frames into a
  // server run). Plans are bit-identical across tiers, so this only
  // changes server-side evaluation effort.
  std::string eval_tier = flags.GetString("eval-tier");
  if (!eval_tier.empty()) {
    EvalTier parsed_tier;
    AQO_CHECK(ParseEvalTier(eval_tier, &parsed_tier))
        << "--eval-tier= must be 'exact' or 'fast', got: " << eval_tier;
  }
  if (!serve_path.empty()) {
    std::string serve_args = flags.GetString("serve-args");
    if (!eval_tier.empty()) {
      if (!serve_args.empty()) serve_args += ' ';
      serve_args += "--eval-tier=" + eval_tier;
    }
    return Drive(workload, serve_path, serve_args, pace_ms, burst);
  }

  std::string out_path = flags.GetString("out");
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path, std::ios::binary);
    if (!file) {
      std::cerr << "error: cannot open " << out_path << " for writing\n";
      return 1;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : file;
  for (size_t i = 0; i < workload.frames.size(); ++i) {
    WriteFrame(out, workload.frames[i]);
    if (burst.k > 0 || pace_ms > 0) {
      out.flush();
      PaceAfter(i, burst, pace_ms);
    }
  }
  out.flush();
  std::cerr << "aqo_loadgen: wrote " << workload.frames.size()
            << " request frames\n";
  return out ? 0 : 1;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
