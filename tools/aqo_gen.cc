// aqo_gen — instance generator CLI.
//
// Emits a QO_N instance (the library text format) on stdout:
//
//   aqo_gen --kind=random --n=12 --p=0.5 --seed=1
//       random query graph, uniform sizes/selectivities
//   aqo_gen --kind=tree --n=40
//       random tree query (IK/KBZ territory)
//   aqo_gen --kind=gap-yes --n=60 --log2alpha=8
//       f_N YES instance (planted clique of size cn, c = 2/3, d = 1/3)
//   aqo_gen --kind=gap-no --n=60 --log2alpha=8
//       f_N NO instance (complete (c-d)n-partite source, omega = (c-d)n)
//
// Pipe into aqo_opt to optimize.

#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "io/serialization.h"
#include "reductions/clique_to_qon.h"
#include "util/random.h"

namespace aqo {
namespace {

QonInstance RandomInstance(int n, double p, bool tree, Rng* rng) {
  Graph g = tree ? RandomTree(n, rng) : Gnp(n, p, rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(LogDouble::FromLinear(
        static_cast<double>(rng->UniformInt(10, 1000000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.0001, 1.0)));
  }
  return inst;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::RunLogSession session(flags, "aqo_gen", /*default_seed=*/1);
  std::string kind = flags.GetString("kind", "random");
  int n = static_cast<int>(flags.GetInt("n", 12));
  double p = flags.GetDouble("p", 0.5);
  double log2_alpha = flags.GetDouble("log2alpha", 8);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));

  if (kind == "random" || kind == "tree") {
    WriteQonInstance(RandomInstance(n, p, kind == "tree", &rng), std::cout);
    return 0;
  }
  QonGapParams params{.c = 2.0 / 3.0, .d = 1.0 / 3.0,
                      .log2_alpha = log2_alpha};
  if (kind == "gap-yes") {
    std::vector<int> planted;
    Graph g = CliqueClassGraph(n, 13, 1.0, 2 * n / 3, &rng, &planted);
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    std::cout << "# f_N YES instance; planted clique:";
    for (int v : planted) std::cout << " " << v;
    std::cout << "\n# lg K = " << gap.KBound().Log2() << "\n";
    WriteQonInstance(gap.instance, std::cout);
    return 0;
  }
  if (kind == "gap-no") {
    int s = n / 3;
    Graph g = CompleteMultipartite(n, s);
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    std::cout << "# f_N NO instance; omega = " << s << "\n";
    std::cout << "# lg K = " << gap.KBound().Log2()
              << ", certified floor lg = "
              << gap.CertifiedLowerBound(s).Log2() << "\n";
    WriteQonInstance(gap.instance, std::cout);
    return 0;
  }
  std::cerr << "unknown --kind=" << kind
            << " (use random|tree|gap-yes|gap-no)\n";
  return 1;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
