// aqo_gen — instance generator CLI.
//
// Emits a QO_N instance (the library text format) on stdout:
//
//   aqo_gen --kind=random --n=12 --p=0.5 --seed=1
//       random query graph, uniform sizes/selectivities
//   aqo_gen --kind=tree --n=40
//       random tree query (IK/KBZ territory)
//   aqo_gen --kind=gap-yes --n=60 --log2alpha=8
//       f_N YES instance (planted clique of size cn, c = 2/3, d = 1/3)
//   aqo_gen --kind=gap-no --n=60 --log2alpha=8
//       f_N NO instance (complete (c-d)n-partite source, omega = (c-d)n)
//   aqo_gen --graph-in=g.txt --log2alpha=8
//       f_N reduction applied to a user-supplied graph file (library text
//       format); malformed files print `error: <file>: <reason>` and exit
//       nonzero instead of aborting.
//
// Pipe into aqo_opt to optimize.

#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "io/serialization.h"
#include "reductions/clique_to_qon.h"
#include "util/random.h"

namespace aqo {
namespace {

QonInstance RandomInstance(int n, double p, bool tree, Rng* rng) {
  Graph g = tree ? RandomTree(n, rng) : Gnp(n, p, rng);
  std::vector<LogDouble> sizes;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(LogDouble::FromLinear(
        static_cast<double>(rng->UniformInt(10, 1000000))));
  }
  QonInstance inst(g, std::move(sizes));
  for (const auto& [u, v] : g.Edges()) {
    inst.SetSelectivity(u, v,
                        LogDouble::FromLinear(rng->UniformReal(0.0001, 1.0)));
  }
  return inst;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::RunLogSession session(flags, "aqo_gen", /*default_seed=*/1);
  std::string kind = flags.GetString("kind", "random");
  int n = static_cast<int>(flags.GetInt("n", 12));
  double p = flags.GetDouble("p", 0.5);
  double log2_alpha = flags.GetDouble("log2alpha", 8);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));

  // --graph-in=<file>: run the f_N reduction on a user-supplied graph.
  // User input goes through the recoverable parser: a malformed file is a
  // structured error, never an abort.
  std::string graph_in = flags.GetString("graph-in");
  if (!graph_in.empty()) {
    std::ifstream in(graph_in);
    if (!in.is_open()) {
      std::cerr << "error: " << graph_in << ": cannot open\n";
      return 1;
    }
    ParseResult<Graph> parsed = ParseGraph(in);
    if (!parsed.ok()) {
      std::cerr << "error: " << graph_in << ": " << parsed.error << "\n";
      return 1;
    }
    Graph g = *std::move(parsed.value);
    if (g.NumVertices() < 2) {
      std::cerr << "error: " << graph_in
                << ": f_N reduction needs at least 2 vertices\n";
      return 1;
    }
    QonGapParams user_params{.c = 2.0 / 3.0, .d = 1.0 / 3.0,
                             .log2_alpha = log2_alpha};
    QonGapInstance gap = ReduceCliqueToQon(g, user_params);
    std::cout << "# f_N reduction of " << graph_in << "; lg K = "
              << gap.KBound().Log2() << "\n";
    WriteQonInstance(gap.instance, std::cout);
    return 0;
  }

  if (kind == "random" || kind == "tree") {
    WriteQonInstance(RandomInstance(n, p, kind == "tree", &rng), std::cout);
    return 0;
  }
  QonGapParams params{.c = 2.0 / 3.0, .d = 1.0 / 3.0,
                      .log2_alpha = log2_alpha};
  if (kind == "gap-yes") {
    std::vector<int> planted;
    Graph g = CliqueClassGraph(n, 13, 1.0, 2 * n / 3, &rng, &planted);
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    std::cout << "# f_N YES instance; planted clique:";
    for (int v : planted) std::cout << " " << v;
    std::cout << "\n# lg K = " << gap.KBound().Log2() << "\n";
    WriteQonInstance(gap.instance, std::cout);
    return 0;
  }
  if (kind == "gap-no") {
    int s = n / 3;
    Graph g = CompleteMultipartite(n, s);
    QonGapInstance gap = ReduceCliqueToQon(g, params);
    std::cout << "# f_N NO instance; omega = " << s << "\n";
    std::cout << "# lg K = " << gap.KBound().Log2()
              << ", certified floor lg = "
              << gap.CertifiedLowerBound(s).Log2() << "\n";
    WriteQonInstance(gap.instance, std::cout);
    return 0;
  }
  std::cerr << "unknown --kind=" << kind
            << " (use random|tree|gap-yes|gap-no)\n";
  return 1;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
