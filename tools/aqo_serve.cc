// aqo_serve — long-running optimization server over stdin/stdout.
//
// Speaks a length-prefixed frame protocol (io/framing.h): each request
// frame carries a small text payload —
//
//   req <id> [deadline_ms] [optimizer=<name>]
//   qon <n>            (or qoh — the full instance text, io/serialization.h)
//   ...
//
// The optional `optimizer=` token selects any registry entry (family-
// checked, aliases resolved) for that one request; `--optimizer=help`
// prints both registries' Describe() listings and exits.
//
// and produces exactly one response frame per request:
//
//   ok <id> <family> feasible=<0|1> status=<status> cost_log2=<g17> evaluations=<n>
//   seq <v...>                       (feasible only)
//   pipelines <v...>                 (qoh, feasible only)
//
// or `err <id> <reason>` (parse failures, admission rejections). Control
// frames: `ping <id>` and `snapshot <id>` (forces a snapshot rotation).
//
// Responses are a pure function of (instance, optimizer, knobs, seed):
// cache hits return bit-identical bytes to a fresh computation, so a
// warm restart reproduces a cold run's stdout byte-for-byte — the
// warm-start differential ctest and the CI crash-recovery smoke both
// assert exactly that. Anything nondeterministic (timings, hit counts)
// goes to stderr and the JSONL run-log only.
//
// Durability (docs/persistence.md): --cache-dir=<dir> arms plan-cache
// persistence. On startup the cache is warmed with
// PlanStore::LoadAndRecover (tolerating torn journal tails from a crash);
// every insert is written through to the journal; a graceful shutdown
// (stdin EOF, SIGTERM, SIGINT) rotates a fresh snapshot. SIGKILL loses
// nothing but the snapshot rotation — the journal already holds every
// insert. --feedback-dir=<dir> does the same for the adaptive feedback
// store (docs/adaptive.md): warm from <dir>/feedback.bin, append every
// committed record write-through.
//
// Admission control: --max-n= rejects instances above a relation-count
// ceiling before any optimization work; --request-deadline-ms= (or the
// per-request field) arms the Budget/CancelToken machinery so an
// overloaded item returns its best-so-far plan with status
// deadline_exceeded — such plans are never cached. --budget-evals= is the
// deterministic analogue and IS cacheable (docs/robustness.md).
//
// Telemetry: qo.serve.* counters, the qo.serve.request_us histogram,
// qo.persist.* for storage, plus --json-out/--trace-out/--latency-table
// from the shared harness flags.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "io/framing.h"
#include "io/serialization.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/runlog.h"
#include "qo/adaptive.h"
#include "qo/overload.h"
#include "qo/persist.h"
#include "qo/plan_cache.h"
#include "qo/service.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace aqo {
namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

// Formats a double with enough digits to round-trip, so equal bits print
// equal bytes (the warm/cold differential depends on this).
std::string FormatG17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct ServerConfig {
  BatchOptions qon_batch;
  BatchOptions qoh_batch;
  double default_deadline_ms = 0.0;
  int max_n = 0;  // 0 = unlimited
  int64_t snapshot_every = 0;  // optimize requests between rotations; 0 = off
};

// Emits one `overload_decision` JSONL record for a shed or degraded
// request (admits are the common case and stay silent).
void LogOverloadDecision(const std::string& id, const OverloadDecision& d,
                         const std::string& requested,
                         const std::string& effective) {
  if (obs::RunLog* log = obs::RunLog::Global()) {
    obs::JsonValue record = obs::JsonValue::Object();
    record["type"] = "overload_decision";
    record["id"] = id;
    record["tier"] = OverloadTierName(d.tier);
    record["pressure_permille"] = d.pressure_permille;
    record["optimizer"] = requested;
    if (d.tier == OverloadTier::kDegrade) record["effective"] = effective;
    record["reason"] = d.reason;
    log->Write(record);
  }
}

// One optimize request: parses, admits, runs a single-instance batch
// through the shared cache, formats the response payload. A non-empty
// `optimizer` (the per-request `optimizer=<name>` header token) overrides
// the configured entry for this request only.
std::string ServeOptimize(const std::string& id, double deadline_ms,
                          const std::string& optimizer,
                          const std::string& body, const ServerConfig& config,
                          PlanCache* cache, ThreadPool* pool,
                          LoadGovernor* governor) {
  static obs::Counter& rejects =
      obs::Registry::Get().GetCounter("qo.serve.admission_rejects");
  static obs::Counter& cache_hits =
      obs::Registry::Get().GetCounter("qo.serve.cache_hits");
  static obs::Counter& shed_counter =
      obs::Registry::Get().GetCounter("qo.serve.sheds");
  static obs::Counter& degrade_counter =
      obs::Registry::Get().GetCounter("qo.serve.degraded");
  std::istringstream in(body);
  std::string family;
  in >> family;
  in.seekg(0);
  std::ostringstream out;
  if (family == "qon") {
    ParseResult<QonInstance> parsed = ParseQonInstance(in);
    if (!parsed.ok()) {
      out << "err " << id << " parse: " << parsed.error;
      return out.str();
    }
    const QonInstance& inst = *parsed.value;
    if (config.max_n > 0 && inst.NumRelations() > config.max_n) {
      rejects.Increment();
      out << "err " << id << " admission: n=" << inst.NumRelations()
          << " exceeds --max-n=" << config.max_n;
      return out.str();
    }
    BatchOptions options = config.qon_batch;
    options.cache = cache;
    options.pool = nullptr;  // single instance; optimizer-level pool below
    options.qon.pool = pool;
    options.deadline_ms = deadline_ms;
    if (!optimizer.empty()) {
      const auto* entry = OptimizerRegistry::Qon().Find(optimizer);
      if (entry == nullptr) {
        rejects.Increment();
        out << "err " << id << " optimizer: unknown QO_N entry '" << optimizer
            << "'";
        return out.str();
      }
      options.optimizer = entry->name;
    }
    bool degraded = false;
    if (governor != nullptr && governor->armed()) {
      OptimizerOptions degraded_knobs = options.qon;
      std::string fallback = DegradeQon(options.optimizer, &degraded_knobs);
      OverloadDecision d = governor->OnArrival(
          EstimateQonCostUnits(options.optimizer, options.qon,
                               inst.NumRelations()),
          EstimateQonCostUnits(fallback, degraded_knobs,
                               inst.NumRelations()));
      if (d.tier == OverloadTier::kShed) {
        shed_counter.Increment();
        LogOverloadDecision(id, d, options.optimizer, fallback);
        out << "err " << id << " shed: " << d.reason;
        return out.str();
      }
      if (d.tier == OverloadTier::kDegrade) {
        degrade_counter.Increment();
        LogOverloadDecision(id, d, options.optimizer, fallback);
        options.optimizer = fallback;
        options.qon = degraded_knobs;
        options.qon.pool = pool;
        degraded = true;
      }
    }
    std::vector<QonBatchItem> items = OptimizeQonBatch({inst}, options);
    const QonBatchItem& item = items.front();
    if (item.from_cache) cache_hits.Increment();
    out << "ok " << id << " qon feasible=" << (item.result.feasible ? 1 : 0)
        << " status=" << PlanStatusName(item.result.status)
        << " cost_log2=" << FormatG17(item.result.cost.Log2())
        << " evaluations=" << item.result.evaluations;
    if (degraded) out << " degraded=1";
    if (item.result.feasible) {
      out << "\nseq";
      for (int v : item.result.sequence) out << " " << v;
    }
    return out.str();
  }
  if (family == "qoh") {
    ParseResult<QohInstance> parsed = ParseQohInstance(in);
    if (!parsed.ok()) {
      out << "err " << id << " parse: " << parsed.error;
      return out.str();
    }
    const QohInstance& inst = *parsed.value;
    if (config.max_n > 0 && inst.NumRelations() > config.max_n) {
      rejects.Increment();
      out << "err " << id << " admission: n=" << inst.NumRelations()
          << " exceeds --max-n=" << config.max_n;
      return out.str();
    }
    BatchOptions options = config.qoh_batch;
    options.cache = cache;
    options.pool = nullptr;
    options.deadline_ms = deadline_ms;
    if (!optimizer.empty()) {
      const auto* entry = QohOptimizerRegistry::Get().Find(optimizer);
      if (entry == nullptr) {
        rejects.Increment();
        out << "err " << id << " optimizer: unknown QO_H entry '" << optimizer
            << "'";
        return out.str();
      }
      options.optimizer = entry->name;
    }
    bool degraded = false;
    if (governor != nullptr && governor->armed()) {
      QohOptimizerOptions degraded_knobs = options.qoh;
      std::string fallback = DegradeQoh(options.optimizer, &degraded_knobs);
      OverloadDecision d = governor->OnArrival(
          EstimateQohCostUnits(options.optimizer, options.qoh,
                               inst.NumRelations()),
          EstimateQohCostUnits(fallback, degraded_knobs,
                               inst.NumRelations()));
      if (d.tier == OverloadTier::kShed) {
        shed_counter.Increment();
        LogOverloadDecision(id, d, options.optimizer, fallback);
        out << "err " << id << " shed: " << d.reason;
        return out.str();
      }
      if (d.tier == OverloadTier::kDegrade) {
        degrade_counter.Increment();
        LogOverloadDecision(id, d, options.optimizer, fallback);
        options.optimizer = fallback;
        options.qoh = degraded_knobs;
        degraded = true;
      }
    }
    std::vector<QohBatchItem> items = OptimizeQohBatch({inst}, options);
    const QohBatchItem& item = items.front();
    if (item.from_cache) cache_hits.Increment();
    out << "ok " << id << " qoh feasible=" << (item.result.feasible ? 1 : 0)
        << " status=" << PlanStatusName(item.result.status)
        << " cost_log2=" << FormatG17(item.result.cost.Log2())
        << " evaluations=" << item.result.evaluations;
    if (degraded) out << " degraded=1";
    if (item.result.feasible) {
      out << "\nseq";
      for (int v : item.result.sequence) out << " " << v;
      out << "\npipelines";
      for (int v : item.result.decomposition.starts) out << " " << v;
    }
    return out.str();
  }
  out << "err " << id << " parse: unknown instance family '" << family
      << "' (expected qon or qoh)";
  return out.str();
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::RunLogSession session(flags, "aqo_serve", /*default_seed=*/1);

  ServerConfig config;
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.qon_batch.optimizer = flags.GetString("optimizer", "dp");
  config.qon_batch.qon = bench::ReadQonKnobs(flags);
  config.qon_batch.seed = seed;
  config.qoh_batch.optimizer = flags.GetString("qoh-optimizer", "greedy");
  config.qoh_batch.qoh = bench::ReadQohKnobs(flags);
  config.qoh_batch.seed = seed;
  if (config.qon_batch.optimizer == "help" ||
      config.qoh_batch.optimizer == "help") {
    std::cout << OptimizerRegistry::Qon().Describe()
              << QohOptimizerRegistry::Get().Describe();
    return 0;
  }
  // Note: `--deadline-ms` (without the prefix) is the per-optimizer anytime
  // budget consumed by ReadQonKnobs above; this one arms the batch-level
  // wall-clock deadline default for requests that don't carry their own.
  config.default_deadline_ms = flags.GetDouble("request-deadline-ms", 0.0);
  config.max_n = static_cast<int>(flags.GetInt("max-n", 0));
  config.snapshot_every = flags.GetInt("snapshot-every", 0);

  // Load governor (qo/overload.h): disarmed unless a capacity is set, in
  // which case shed/degrade decisions are a pure function of the request
  // stream — two runs over the same stream shed the same requests.
  OverloadOptions overload;
  overload.queue_capacity = flags.GetDouble("overload-queue-cap", 0.0);
  overload.cost_capacity = flags.GetDouble("overload-cost-cap", 0.0);
  overload.drain_requests = flags.GetDouble("overload-drain-requests", 1.0);
  overload.drain_cost = flags.GetDouble("overload-drain-cost", 0.0);
  overload.degrade_threshold = flags.GetDouble("overload-degrade", 0.75);
  LoadGovernor governor(overload);

  // --fault=<site>@<ordinal>[x<times>] (or <site>@any) arms the
  // deterministic fault injector for chaos runs (tools/aqo_chaos.cc):
  // e.g. --fault=persist.append@3 tears the 4th journal append exactly as
  // tests/persist_crash_test.cc does in-process.
  std::string fault_spec = flags.GetString("fault");
  if (!fault_spec.empty()) {
    size_t at = fault_spec.find('@');
    if (at == std::string::npos) {
      std::cerr << "error: --fault expects <site>@<ordinal>[x<times>], got '"
                << fault_spec << "'\n";
      return 2;
    }
    std::string site = fault_spec.substr(0, at);
    std::string rest = fault_spec.substr(at + 1);
    int times = 1;
    size_t x = rest.find('x');
    if (x != std::string::npos) {
      times = std::atoi(rest.c_str() + x + 1);
      rest = rest.substr(0, x);
    }
    uint64_t ordinal = rest == "any"
                           ? FaultInjector::kAnyOrdinal
                           : std::strtoull(rest.c_str(), nullptr, 10);
    FaultInjector::Get().Arm(site, ordinal, times);
    std::cerr << "aqo_serve: armed fault " << site << "@" << rest
              << " x" << times << "\n";
  }
  if (OptimizerRegistry::Qon().Find(config.qon_batch.optimizer) == nullptr) {
    std::cerr << "error: unknown QO_N optimizer '"
              << config.qon_batch.optimizer << "'\n";
    return 2;
  }
  if (QohOptimizerRegistry::Get().Find(config.qoh_batch.optimizer) ==
      nullptr) {
    std::cerr << "error: unknown QO_H optimizer '"
              << config.qoh_batch.optimizer << "'\n";
    return 2;
  }

  PlanCacheOptions cache_options;
  cache_options.byte_budget =
      static_cast<size_t>(flags.GetInt("plan-cache-mb", 64)) << 20;
  cache_options.shards =
      static_cast<int>(flags.GetInt("plan-cache-shards", 16));
  PlanCache cache(cache_options);
  cache.LogConfig();

  ThreadPool pool(flags.Threads());

  // Durable state: recover, then write through.
  std::unique_ptr<PlanStore> store;
  std::string cache_dir = flags.GetString("cache-dir");
  if (!cache_dir.empty()) {
    PersistOptions persist_options;
    persist_options.dir = cache_dir;
    persist_options.fsync = flags.GetInt("fsync", 1) != 0;
    // Circuit breaker (docs/robustness.md): --persist-breaker=0 restores
    // the legacy first-failure latch; backoff counts refused writes.
    persist_options.breaker.enabled =
        flags.GetInt("persist-breaker", 1) != 0;
    persist_options.breaker.backoff_base = static_cast<uint64_t>(
        flags.GetInt("persist-backoff", 8));
    persist_options.breaker.backoff_max = static_cast<uint64_t>(
        flags.GetInt("persist-backoff-max", 1024));
    persist_options.breaker.seed = seed;
    store = std::make_unique<PlanStore>(persist_options);
    ParseResult<RecoveryStats> recovered = store->LoadAndRecover(&cache);
    if (!recovered.ok()) {
      std::cerr << "error: " << recovered.error << "\n";
      return 1;
    }
    std::cerr << "aqo_serve: recovered " << recovered.value->entries_loaded
              << " entries (snapshot " << recovered.value->snapshot_entries
              << ", journal " << recovered.value->log_entries << ") in "
              << recovered.value->recover_us << " us";
    if (recovered.value->torn_tail) std::cerr << " [torn journal tail]";
    if (!recovered.value->damage.empty()) {
      std::cerr << " [damage: " << recovered.value->damage << "]";
    }
    std::cerr << "\n";
    store->AttachTo(&cache);
  }

  // Adaptive feedback durability: warm the default store from
  // <dir>/feedback.bin (salvaging up to any damage point), then make
  // every commit append write-through. The batch service commits after
  // each adaptive request, so learning survives restarts.
  std::string feedback_dir = flags.GetString("feedback-dir");
  if (!feedback_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(feedback_dir, ec);
    std::string feedback_path = feedback_dir + "/feedback.bin";
    FeedbackStore& feedback = FeedbackStore::Default();
    FeedbackLoadStats loaded = feedback.LoadFrom(feedback_path);
    std::cerr << "aqo_serve: feedback store loaded " << loaded.records
              << " records (" << loaded.duplicates << " duplicates)";
    if (loaded.torn_tail) std::cerr << " [torn tail]";
    if (!loaded.damage.empty()) {
      std::cerr << " [damage: " << loaded.damage << "]";
    }
    std::cerr << "\n";
    std::string attach_error;
    if (!feedback.AttachFile(feedback_path, &attach_error)) {
      std::cerr << "error: --feedback-dir: " << attach_error << "\n";
      return 1;
    }
  }

  // SIGTERM/SIGINT end the serve loop for a graceful snapshot; no
  // SA_RESTART, so a blocking stdin read returns early.
  struct sigaction sa = {};
  sa.sa_handler = HandleStop;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  static obs::Counter& requests =
      obs::Registry::Get().GetCounter("qo.serve.requests");
  static obs::Counter& errors =
      obs::Registry::Get().GetCounter("qo.serve.errors");
  static obs::Histogram& request_us =
      obs::Registry::Get().GetHistogram("qo.serve.request_us");

  uint64_t served = 0;
  int64_t since_snapshot = 0;
  bool clean = true;
  std::string payload;
  std::string frame_error;
  // Corruption in the byte stream must not poison the session: the
  // reader resynchronizes on the next frame whose payload starts with a
  // known protocol verb, and the skipped garbage is answered with one
  // `err ?` frame so the client knows bytes were dropped.
  FrameReader frames(std::cin, [](const std::string& p) {
    return p.rfind("req ", 0) == 0 || p.rfind("ping ", 0) == 0 ||
           p.rfind("health ", 0) == 0 || p.rfind("snapshot ", 0) == 0;
  });
  while (g_stop == 0) {
    FrameRead read = frames.Next(&payload, &frame_error);
    if (read == FrameRead::kEof) break;
    if (read == FrameRead::kError) {
      if (g_stop != 0) break;  // interrupted mid-read by a stop signal
      std::cerr << "error: <stdin>: " << frame_error << "\n";
      clean = false;
      break;
    }
    if (frames.resynced()) {
      static obs::Counter& resyncs =
          obs::Registry::Get().GetCounter("qo.serve.frame_resyncs");
      resyncs.Increment();
      errors.Increment();
      std::ostringstream garbage;
      garbage << "err ? parse: resynchronized after "
              << frames.last_skipped() << " bytes of frame garbage";
      WriteFrame(std::cout, garbage.str());
      std::cout.flush();
    }
    obs::ScopedLatencyTimer timer(request_us);
    requests.Increment();
    // First line: "<verb> <id> [deadline_ms]"; the rest is the body.
    size_t eol = payload.find('\n');
    std::string head =
        eol == std::string::npos ? payload : payload.substr(0, eol);
    std::string body =
        eol == std::string::npos ? std::string() : payload.substr(eol + 1);
    std::istringstream header(head);
    std::string verb, id;
    header >> verb >> id;
    std::string response;
    if (verb == "req" && !id.empty()) {
      // Optional header tokens after the id: a bare number is a deadline
      // override, `optimizer=<name>` selects the registry entry for this
      // request (aqo_loadgen --optimizer= emits it).
      double deadline_ms = config.default_deadline_ms;
      std::string optimizer;
      for (std::string token; header >> token;) {
        if (token.rfind("optimizer=", 0) == 0) {
          optimizer = token.substr(10);
        } else {
          deadline_ms = std::strtod(token.c_str(), nullptr);
        }
      }
      response = ServeOptimize(id, deadline_ms, optimizer, body, config,
                               &cache, &pool, &governor);
      ++served;
      ++since_snapshot;
    } else if (verb == "ping" && !id.empty()) {
      // Extended health ping: everything here is a deterministic
      // function of the request stream (+ fault schedule), so pinged
      // runs still diff byte-identically.
      governor.OnControlFrame();
      std::ostringstream pong;
      pong << "ok " << id << " pong pressure="
           << governor.PressurePermille() << " sheds=" << governor.sheds()
           << " degrades=" << governor.degrades() << " persist="
           << (store != nullptr ? PersistHealthName(store->health())
                                : "none")
           << " feedback=" << (feedback_dir.empty() ? "none" : "attached");
      response = pong.str();
    } else if (verb == "health" && !id.empty()) {
      governor.OnControlFrame();
      PlanCache::Stats stats = cache.GetStats();
      std::ostringstream health;
      health << "ok " << id << " health\n"
             << "governor armed=" << (governor.armed() ? 1 : 0)
             << " pressure=" << governor.PressurePermille()
             << " admits=" << governor.admits()
             << " degrades=" << governor.degrades()
             << " sheds=" << governor.sheds() << "\n"
             << "persist ";
      if (store != nullptr) {
        health << PersistHealthName(store->health())
               << " trips=" << store->breaker_trips()
               << " probes=" << store->breaker_probes()
               << " reopens=" << store->breaker_reopens();
      } else {
        health << "none";
      }
      health << "\ncache entries=" << stats.entries
             << " bytes=" << stats.bytes << " hits=" << stats.hits
             << " misses=" << stats.misses << "\nfeedback "
             << (feedback_dir.empty() ? "none" : "attached");
      response = health.str();
    } else if (verb == "snapshot" && !id.empty()) {
      governor.OnControlFrame();
      if (store == nullptr) {
        response = "err " + id + " snapshot: no --cache-dir configured";
      } else if (store->SaveSnapshot(cache)) {
        response = "ok " + id + " snapshot";
      } else {
        response = "err " + id + " snapshot: " + store->error();
      }
    } else {
      response = "err ? bad request header: " + head;
    }
    if (response.compare(0, 4, "err ") == 0) errors.Increment();
    WriteFrame(std::cout, response);
    std::cout.flush();
    if (store != nullptr && config.snapshot_every > 0 &&
        since_snapshot >= config.snapshot_every) {
      if (store->SaveSnapshot(cache)) since_snapshot = 0;
    }
  }

  // Graceful shutdown: rotate a snapshot so the next start recovers from
  // one file instead of replaying the whole journal.
  if (store != nullptr) {
    if (!store->SaveSnapshot(cache)) {
      std::cerr << "warning: shutdown snapshot failed: " << store->error()
                << "\n";
    }
  }
  if (governor.armed()) {
    if (obs::RunLog* log = obs::RunLog::Global()) {
      obs::JsonValue record = obs::JsonValue::Object();
      record["type"] = "overload_summary";
      record["admits"] = governor.admits();
      record["degrades"] = governor.degrades();
      record["sheds"] = governor.sheds();
      record["final_pressure_permille"] = governor.PressurePermille();
      log->Write(record);
    }
    std::cerr << "aqo_serve: governor admits=" << governor.admits()
              << " degrades=" << governor.degrades()
              << " sheds=" << governor.sheds() << "\n";
  }
  cache.LogStats();
  PlanCache::Stats stats = cache.GetStats();
  std::cerr << "aqo_serve: served " << served << " requests"
            << (g_stop != 0 ? " (stopped by signal)" : "") << "; cache hits="
            << stats.hits << " misses=" << stats.misses
            << " entries=" << stats.entries << " bytes=" << stats.bytes
            << "\n";
  return clean ? 0 : 1;
}

}  // namespace
}  // namespace aqo

int main(int argc, char** argv) { return aqo::Main(argc, argv); }
